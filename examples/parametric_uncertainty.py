#!/usr/bin/env python
"""Parametric inference and data-driven confidence intervals (§8).

The paper's future-work list asks for (a) "alternative, parametric methods
for inferring loss characteristics" and (b) estimating "the variability of
the estimates ... directly from the measured data". This example runs one
BADABING measurement and reports three analyses of the *same* probe data:

1. the §5 nonparametric estimators (the paper's),
2. a Gilbert (two-state Markov) maximum-likelihood fit with delta-method
   confidence intervals,
3. nonparametric bootstrap percentile intervals (no model assumed).

Run:
    python examples/parametric_uncertainty.py
"""

import random

from repro.core.parametric import estimate_gilbert
from repro.core.uncertainty import bootstrap_estimates
from repro.experiments.runner import run_badabing

SLOT = 0.005


def main() -> None:
    result, truth = run_badabing(
        "episodic_cbr",
        p=0.5,
        n_slots=36_000,  # 180 s
        seed=42,
        scenario_kwargs={"episode_durations": (0.068,), "mean_spacing": 4.0},
    )

    print("=== One measurement, three analyses ===")
    print(f"ground truth:       F = {truth.frequency:.4f}   "
          f"D = {truth.duration_mean * 1000:.1f} ms  "
          f"({truth.n_episodes} episodes)\n")

    print("1. §5 nonparametric estimators")
    print(f"   F-hat = {result.frequency:.4f}")
    print(f"   D-hat = {result.duration_seconds * 1000:.1f} ms\n")

    fit = estimate_gilbert(result.outcomes)
    f_low, f_high = fit.frequency_interval()
    d_low, d_high = fit.duration_interval(SLOT)
    print("2. Gilbert (Markov) MLE with 95% delta-method intervals")
    print(f"   F = {fit.frequency:.4f}  [{f_low:.4f}, {f_high:.4f}]")
    print(f"   D = {fit.duration_seconds(SLOT) * 1000:.1f} ms  "
          f"[{d_low * 1000:.1f}, {d_high * 1000:.1f}] ms")
    print(f"   (g-hat = {fit.g:.3f}/slot, b-hat = {fit.b:.5f}/slot)\n")

    boot = bootstrap_estimates(
        result.outcomes, n_resamples=300, rng=random.Random(1)
    )
    bf_low, bf_high = boot.frequency_interval
    bd_low, bd_high = boot.duration_interval_seconds(SLOT)
    print("3. Bootstrap percentile intervals (model-free, 95%)")
    print(f"   F = {boot.frequency:.4f}  [{bf_low:.4f}, {bf_high:.4f}]")
    print(f"   D = {boot.duration_slots * SLOT * 1000:.1f} ms  "
          f"[{bd_low * 1000:.1f}, {bd_high * 1000:.1f}] ms")
    print(f"   (duration defined on {boot.duration_support:.0%} of resamples)")

    print()
    in_f = bf_low <= truth.frequency <= bf_high
    in_d = bd_low <= truth.duration_mean <= bd_high
    print(f"bootstrap interval covers true F: {in_f}; covers true D: {in_d}")


if __name__ == "__main__":
    main()
