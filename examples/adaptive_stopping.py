#!/usr/bin/env python
"""Open-ended measurement with the §5.4 validation-based stopping rule.

§7 sketches an alternate BADABING design: "take measurements continuously,
and report when our validation techniques confirm that the estimation is
robust" — useful at low p, where the probe stream barely perturbs the path
but needs to run longer for a trustworthy estimate.

This example uses the first-class :class:`AdaptiveMeasurement` API: a
low-rate (p = 0.1) measurement advances in 30-second chunks and stops as
soon as (a) enough 01/10 transitions have accumulated for the predicted
relative error to drop below the target and (b) the §5.4 symmetry checks
pass.

Run:
    python examples/adaptive_stopping.py
"""

from repro.core.adaptive import AdaptiveMeasurement
from repro.core.validation import SequentialValidator
from repro.experiments.runner import (
    apply_scenario,
    build_testbed,
    compute_ground_truth,
)

WARMUP = 5.0
SLOT = 0.005


def main() -> None:
    sim, testbed = build_testbed(seed=11)
    apply_scenario(
        sim, testbed, "episodic_cbr",
        episode_durations=(0.068,), mean_spacing=5.0,
    )
    measurement = AdaptiveMeasurement(
        sim,
        testbed.probe_sender,
        testbed.probe_receiver,
        p=0.1,
        chunk_seconds=30.0,
        max_seconds=1200.0,
        start=WARMUP,
        validator=SequentialValidator(
            target_relative_error=0.25, min_transitions=15
        ),
    )

    print("=== Adaptive low-impact measurement (p = 0.1) ===")
    outcome = measurement.run()

    print(f"{'elapsed':>8} {'transitions':>12} {'rel. error':>10}")
    for elapsed, transitions, error in measurement.progress:
        error_text = f"{error:.3f}" if error is not None else "inf"
        print(f"{elapsed:>7.0f}s {transitions:>12} {error_text:>10}")

    truth = compute_ground_truth(testbed, SLOT, WARMUP, outcome.elapsed)
    print()
    print(f"verdict: {outcome.reason} after {outcome.elapsed:.0f} s "
          f"({outcome.chunks} chunks)")
    print(f"frequency  true={truth.frequency:.4f}  "
          f"estimated={outcome.result.frequency:.4f}")
    print(f"duration   true={truth.duration_mean * 1000:.1f} ms  "
          f"estimated={outcome.result.duration_seconds * 1000:.1f} ms")


if __name__ == "__main__":
    main()
