#!/usr/bin/env python
"""Chaos run: one BADABING measurement through an impaired path.

Injects the "chaos" fault profile (random + bursty drops, reordering,
duplication, a collector outage) into the probe path of the scaled
dumbbell testbed, then shows how the estimation pipeline degrades
gracefully: duplicates are discarded at the log join, the collector's
known outage reduces *coverage* instead of masquerading as congestion,
and the §5.4 validation can be gated on coverage. Finally runs a small
sweep where one cell is starved of its event budget, demonstrating that
the sweep still completes with a structured failure.

Run:
    python examples/chaos_run.py
"""

from repro.experiments import run_badabing, sweep_badabing
from repro.experiments.runner import RunBudget
from repro.net.faults import FAULT_PROFILES

RUN = dict(
    scenario="episodic_cbr",
    p=0.5,
    n_slots=12_000,            # 60 s of 5 ms slots
    seed=7,
    scenario_kwargs={"episode_durations": (0.068,), "mean_spacing": 5.0},
)


def main() -> None:
    profile = FAULT_PROFILES["chaos"]
    print("=== chaos profile ===")
    print(f"random drop: {profile.drop_probability:.3f}   "
          f"gilbert: b={profile.gilbert_b} g={profile.gilbert_g}")
    print(f"reorder: {profile.reorder_probability:.3f}   "
          f"duplicate: {profile.duplicate_probability:.3f}   "
          f"outages: {profile.outage_windows}")
    print()

    clean, truth = run_badabing(**RUN)
    keep = {}
    chaos, _ = run_badabing(faults="chaos", keep=keep, **RUN)
    injector = keep["fault_injector"]

    print("=== clean vs impaired measurement ===")
    print(f"true frequency:       {truth.frequency:.4f}")
    print(f"clean estimate:       {clean.frequency:.4f}")
    print(f"impaired estimate:    {chaos.frequency:.4f}")
    print()
    print("injected faults:", injector.stats.as_dict())
    print(f"duplicate arrivals discarded at join: {chaos.duplicate_arrivals}")
    print(chaos.coverage.describe())
    print(f"validation acceptable (no coverage bar):  "
          f"{chaos.validation.is_acceptable()}")
    print(f"validation acceptable (>=95% coverage):   "
          f"{chaos.validation.is_acceptable(min_coverage=0.95)}")
    print()

    print("=== crash-tolerant sweep (one cell starved of events) ===")
    cells = [
        {"label": "clean", "seed": 7},
        {"label": "starved", "seed": 7, "max_events": 500},
        {"label": "chaos", "seed": 7, "faults": "chaos"},
    ]
    common = dict(RUN)
    common.pop("seed")
    outcomes = sweep_badabing(cells, budget=RunBudget(max_attempts=1), **common)
    for outcome in outcomes:
        print(f"  {outcome.describe()}")


if __name__ == "__main__":
    main()
