#!/usr/bin/env python
"""Quickstart: measure loss-episode characteristics with BADABING.

Builds the scaled dumbbell testbed, drives it with engineered
constant-duration loss episodes (the paper's modified-Iperf scenario),
runs one BADABING measurement, and compares the §5 estimates against the
router-level ground truth the simulator records.

Run:
    python examples/quickstart.py
"""

from repro.experiments import run_badabing


def main() -> None:
    # p: per-slot probability of starting a probe experiment (§5.2).
    # n_slots: measurement length N in 5 ms slots (24,000 -> 120 seconds).
    result, truth = run_badabing(
        "episodic_cbr",
        p=0.5,
        n_slots=24_000,
        seed=1,
        scenario_kwargs={"episode_durations": (0.068,), "mean_spacing": 5.0},
    )

    print("=== BADABING quickstart (engineered 68 ms loss episodes) ===")
    print(f"probes sent:          {result.n_probes_sent}")
    print(f"probe load:           {result.probe_load_bps / 1e3:.0f} kb/s")
    print(f"probe packets lost:   {result.lost_probe_packets}")
    print()
    print(f"loss-episode frequency   true: {truth.frequency:.4f}   "
          f"estimated: {result.frequency:.4f}")
    print(f"loss-episode duration    true: {truth.duration_mean * 1000:.1f} ms  "
          f"estimated: {result.duration_seconds * 1000:.1f} ms")
    print()
    validation = result.validation
    print("validation (§5.4):")
    print(f"  transitions observed (01/10): {validation.n01}/{validation.n10}")
    print(f"  transition asymmetry:         {validation.transition_asymmetry:.3f}")
    print(f"  impossible patterns (010/101): {validation.violations}")
    print(f"  acceptable: {validation.is_acceptable()}")


if __name__ == "__main__":
    main()
