#!/usr/bin/env python
"""Overlay path selection driven by BADABING measurements.

The paper's introduction names a practical application: "its use for path
selection in peer-to-peer overlay networks". This example builds two
candidate paths as independent dumbbell testbeds with different congestion
regimes, measures both concurrently with identical low-impact BADABING
configurations, and picks the path with the lower estimated loss-episode
frequency (breaking ties on estimated duration).

The decision is then checked against ground truth — the selection an
oracle with router access would have made.

Run:
    python examples/overlay_path_selection.py
"""

from dataclasses import dataclass

from repro.experiments.runner import run_badabing

N_SLOTS = 24_000  # 120 s at 5 ms slots
P = 0.3


@dataclass
class PathReport:
    name: str
    estimated_frequency: float
    estimated_duration: float
    true_frequency: float
    true_duration: float


def measure_path(name: str, scenario: str, seed: int, **scenario_kwargs) -> PathReport:
    result, truth = run_badabing(
        scenario,
        p=P,
        n_slots=N_SLOTS,
        seed=seed,
        scenario_kwargs=scenario_kwargs or None,
    )
    duration = result.duration_seconds
    return PathReport(
        name=name,
        estimated_frequency=result.frequency,
        estimated_duration=duration if duration == duration else 0.0,  # nan -> 0
        true_frequency=truth.frequency,
        true_duration=truth.duration_mean,
    )


def pick(reports) -> PathReport:
    return min(
        reports,
        key=lambda r: (r.estimated_frequency, r.estimated_duration),
    )


def main() -> None:
    print("=== Overlay path selection ===")
    print("measuring two candidate paths with identical BADABING probes...\n")
    paths = [
        # Path A: heavily loaded by web-like traffic with frequent surges.
        measure_path(
            "path-A (busy)", "harpoon_web", seed=31,
            load_factor=0.6, surge_interval_mean=10.0,
        ),
        # Path B: occasional short engineered episodes, mostly idle.
        measure_path(
            "path-B (quiet)", "episodic_cbr", seed=32,
            episode_durations=(0.068,), mean_spacing=20.0,
        ),
    ]

    header = (f"{'path':<16} {'est freq':>10} {'est dur':>10} "
              f"{'true freq':>10} {'true dur':>10}")
    print(header)
    print("-" * len(header))
    for report in paths:
        print(f"{report.name:<16} {report.estimated_frequency:>10.4f} "
              f"{report.estimated_duration * 1000:>8.1f}ms "
              f"{report.true_frequency:>10.4f} "
              f"{report.true_duration * 1000:>8.1f}ms")

    chosen = pick(paths)
    oracle = min(paths, key=lambda r: (r.true_frequency, r.true_duration))
    print()
    print(f"selected by BADABING estimates: {chosen.name}")
    print(f"selected by ground-truth oracle: {oracle.name}")
    print("agreement!" if chosen.name == oracle.name else "disagreement "
          "(rerun with larger N for tighter estimates)")


if __name__ == "__main__":
    main()
