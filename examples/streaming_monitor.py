#!/usr/bin/env python
"""Continuous monitoring: windowed estimates and regime-change detection.

§7's continuous-measurement deployment, taken one step further: instead of
one aggregate estimate, report a *time series* of loss-episode frequency
over one-minute windows and flag level shifts — the "constancy" question
of Zhang et al. [39], which the paper builds its definitions on.

The scenario engineered here changes regime halfway through: episodes
every ~15 s for the first half of the run, every ~2 s afterwards. The
windowed estimator sees the step; the aggregate estimate smears it.

Run:
    python examples/streaming_monitor.py
"""

from repro.config import BadabingConfig
from repro.core.badabing import BadabingTool
from repro.core.streaming import WindowedEstimator, detect_level_shift
from repro.experiments.runner import DRAIN_TIME, build_testbed
from repro.traffic.cbr import EpisodicCbrTraffic

SLOT = 0.005
HALF = 150.0  # seconds per regime
WARMUP = 5.0


def main() -> None:
    sim, testbed = build_testbed(seed=23)
    cfg = testbed.config

    # Regime 1: quiet (episodes every ~15 s). Regime 2: busy (~2 s).
    quiet = EpisodicCbrTraffic(
        sim, testbed.traffic_senders[0], testbed.traffic_receivers[0],
        bottleneck_bps=cfg.bottleneck_bps, buffer_bytes=cfg.buffer_bytes,
        mean_spacing=15.0, rng_label="quiet-regime",
    )
    sim.schedule_at(WARMUP + HALF, quiet.source.stop)

    def start_busy():
        quiet._schedule_next = lambda: None  # freeze the quiet process
        EpisodicCbrTraffic(
            sim, testbed.traffic_senders[1], testbed.traffic_receivers[1],
            bottleneck_bps=cfg.bottleneck_bps, buffer_bytes=cfg.buffer_bytes,
            mean_spacing=2.0, rng_label="busy-regime",
        )

    sim.schedule_at(WARMUP + HALF, start_busy)

    config = BadabingConfig(p=0.5, n_slots=int(2 * HALF / SLOT))
    tool = BadabingTool(
        sim, testbed.probe_sender, testbed.probe_receiver, config, start=WARMUP
    )
    sim.run(until=tool.end_time + DRAIN_TIME)
    result = tool.result()

    windows = WindowedEstimator(window_slots=int(60.0 / SLOT)).windows(
        result.outcomes
    )
    print("=== Streaming loss monitor (60 s windows) ===")
    print(f"{'window':>8} {'F-hat':>8} {'D-hat':>9} {'transitions':>12} {'ok?':>4}")
    for point in windows:
        duration = point.duration_seconds(SLOT)
        duration_text = f"{duration * 1000:6.1f}ms" if duration else "      -"
        start_s = point.start_slot * SLOT
        print(f"{start_s:>6.0f}s {point.frequency:>8.4f} {duration_text:>9} "
              f"{point.transitions:>12} {str(point.acceptable):>4}")

    shift = detect_level_shift(windows, factor=2.5)
    print()
    print(f"aggregate F-hat over the whole run: {result.frequency:.4f}")
    if shift is not None:
        when = windows[shift].start_slot * SLOT
        print(f"level shift detected at the window starting t={when:.0f}s "
              f"(true regime change at t={HALF:.0f}s)")
    else:
        print("no level shift detected")


if __name__ == "__main__":
    main()
