#!/usr/bin/env python
"""Compare BADABING against Poisson (ZING) and periodic (PING-like) probing.

All three tools measure the *same* web-like traffic at (approximately) the
same probe bit rate — the paper's Table 8 comparison, extended with the
fixed-interval baseline from the introduction. The punchline: the tools
that infer loss only from their own lost packets underestimate episode
frequency by an order of magnitude and report near-zero durations, while
BADABING's experiment design recovers both.

Run:
    python examples/compare_tools.py
"""

from repro.config import ProbeConfig
from repro.core.pinglike import PingLikeTool
from repro.experiments.runner import (
    DRAIN_TIME,
    apply_scenario,
    build_testbed,
    compute_ground_truth,
    run_badabing,
    run_zing,
)

DURATION = 180.0  # seconds of measurement
WARMUP = 10.0
SEED = 7
P = 0.3


def matched_interval(probe: ProbeConfig, p: float) -> float:
    """Poisson/periodic interval whose bit rate matches BADABING at p."""
    coverage = 1.0 - (1.0 - p) ** 2
    load = coverage * probe.packets_per_probe * probe.probe_size * 8 / probe.slot
    return probe.probe_size * 8 / load


def run_pinglike() -> tuple:
    sim, testbed = build_testbed(seed=SEED)
    apply_scenario(sim, testbed, "harpoon_web")
    tool = PingLikeTool(
        sim,
        testbed.probe_sender,
        testbed.probe_receiver,
        interval=matched_interval(ProbeConfig(), P),
        packet_size=600,
        duration=DURATION,
        start=WARMUP,
    )
    sim.run(until=WARMUP + DURATION + DRAIN_TIME)
    truth = compute_ground_truth(testbed, 0.005, WARMUP, DURATION)
    return tool.result(), truth


def main() -> None:
    probe = ProbeConfig()
    n_slots = int(DURATION / probe.slot)

    badabing, bb_truth = run_badabing(
        "harpoon_web", p=P, n_slots=n_slots, seed=SEED, warmup=WARMUP
    )
    zing, zing_truth = run_zing(
        "harpoon_web",
        mean_interval=matched_interval(probe, P),
        packet_size=probe.probe_size,
        duration=DURATION,
        seed=SEED,
        warmup=WARMUP,
    )
    pinglike, ping_truth = run_pinglike()

    print("=== Tool comparison on Harpoon web-like traffic "
          f"(~{badabing.probe_load_bps / 1e3:.0f} kb/s probe budget each) ===")
    header = f"{'tool':<12} {'freq (true)':>12} {'freq (meas)':>12} {'dur true':>10} {'dur meas':>10}"
    print(header)
    print("-" * len(header))
    rows = [
        ("BADABING", bb_truth.frequency, badabing.frequency,
         bb_truth.duration_mean, badabing.duration_seconds),
        ("ZING", zing_truth.frequency, zing.frequency,
         zing_truth.duration_mean, zing.duration_mean),
        ("PING-like", ping_truth.frequency, pinglike.frequency,
         ping_truth.duration_mean, pinglike.duration_mean),
    ]
    for name, true_f, meas_f, true_d, meas_d in rows:
        print(f"{name:<12} {true_f:>12.4f} {meas_f:>12.4f} "
              f"{true_d * 1000:>8.1f}ms {meas_d * 1000:>8.1f}ms")
    print()
    print("BADABING estimates both characteristics; the self-loss tools see")
    print("only the packets they themselves lose, so both frequency and")
    print("duration collapse toward zero.")


if __name__ == "__main__":
    main()
