#!/usr/bin/env python
"""BADABING across a multi-hop path with several congestible bottlenecks.

The paper evaluates a single bottleneck and defers "more complex multi-hop
scenarios" to future work (§6.2). This example probes a 3-hop chain where
*every* hop runs its own independent loss-episode process, and compares
the estimates against the path-level truth — the union of the per-hop
episodes, which is the congestion an end-to-end flow actually experiences.

It also prints per-hop truth, showing how the end-to-end view aggregates
hops that would each look mild in isolation.

Run:
    python examples/multihop_monitoring.py
"""

from repro.analysis.episodes import episodes_from_monitor
from repro.experiments.runner import run_badabing_multihop

N_SLOTS = 36_000  # 180 s
WARMUP = 5.0


def main() -> None:
    keep = {}
    result, truth = run_badabing_multihop(
        n_hops=3,
        p=0.5,
        n_slots=N_SLOTS,
        seed=17,
        mean_spacings=[6.0, 10.0, 14.0],  # hop 0 busiest, hop 2 quietest
        warmup=WARMUP,
        keep=keep,
    )
    testbed = keep["testbed"]

    print("=== Multi-hop loss monitoring (3 bottlenecks in series) ===\n")
    print("per-hop ground truth:")
    duration = N_SLOTS * 0.005
    for hop, monitor in enumerate(testbed.hop_monitors):
        episodes = [
            e for e in episodes_from_monitor(monitor)
            if e.end >= WARMUP and e.start <= WARMUP + duration
        ]
        share = sum(e.duration for e in episodes) / duration
        print(f"  hop {hop}: {len(episodes):>3} episodes, "
              f"{share * 100:5.2f}% of time in loss, "
              f"{monitor.total_drops:>5} drops")

    print()
    print(f"path-level truth:   F = {truth.frequency:.4f}   "
          f"D = {truth.duration_mean * 1000:.1f} ms   "
          f"({truth.n_episodes} merged episodes)")
    print(f"BADABING estimate:  F = {result.frequency:.4f}   "
          f"D = {result.duration_seconds * 1000:.1f} ms")
    validation = result.validation
    print(f"validation: transitions={validation.transition_count}, "
          f"asymmetry={validation.transition_asymmetry:.2f}, "
          f"acceptable={validation.is_acceptable()}")
    print()
    print("one probe stream measures the union of all hops' congestion —")
    print("no per-hop instrumentation required.")


if __name__ == "__main__":
    main()
