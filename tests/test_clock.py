"""Tests for clock sources, clock models, and convex-hull skew removal (§7)."""

import random

import pytest

from repro.core.clock import (
    AffineClock,
    Clock,
    MonotonicClock,
    SimClock,
    estimate_skew,
    lower_convex_hull,
    rebase_probe_owds,
    remove_skew,
)
from repro.errors import EstimationError


def test_clock_reads_affine():
    clock = AffineClock(offset=2.0, skew=1e-4)
    assert clock.read(0.0) == 2.0
    assert clock.read(1000.0) == pytest.approx(1000.1 + 2.0)


def test_clock_rejects_degenerate_skew():
    with pytest.raises(EstimationError):
        AffineClock(skew=-1.0)


def test_sim_clock_tracks_virtual_time_and_skew_model():
    from repro.net.simulator import Simulator

    sim = Simulator(seed=1)
    plain = SimClock(sim)
    skewed = SimClock(sim, AffineClock(offset=2.0, skew=1e-3))
    sim.schedule(1.0, lambda: None)
    sim.run(until=1.0)
    assert plain.now() == pytest.approx(1.0)
    assert plain.now_ns() == 1_000_000_000
    assert skewed.now() == pytest.approx(1.001 + 2.0)
    assert isinstance(plain, Clock)
    assert isinstance(skewed, Clock)


def test_monotonic_clock_is_a_clock_and_advances():
    clock = MonotonicClock()
    assert isinstance(clock, Clock)
    a = clock.now_ns()
    b = clock.now_ns()
    assert isinstance(a, int)
    assert b >= a
    assert clock.now() == pytest.approx(clock.now_ns() / 1e9, rel=1e-3)


def test_rebase_probe_owds_removes_constant_offset():
    from repro.core.records import ProbeRecord

    offset = 12345.678  # two unsynchronized monotonic epochs
    probes = [
        ProbeRecord(
            slot=i,
            send_time=i * 0.005,
            n_packets=2,
            owds=(offset + 0.010 + i * 1e-4, offset + 0.011),
            owd_before_loss=offset + 0.050 if i == 1 else None,
        )
        for i in range(3)
    ]
    rebased = rebase_probe_owds(probes)
    all_owds = [owd for probe in rebased for owd in probe.owds]
    assert min(all_owds) == pytest.approx(0.0, abs=1e-12)
    # Relative structure preserved exactly.
    assert rebased[1].owd_before_loss - rebased[1].owds[1] == pytest.approx(0.039)
    # Delivery-free and empty streams pass through untouched.
    blind = [ProbeRecord(slot=0, send_time=0.0, n_packets=3, owds=())]
    assert rebase_probe_owds(blind) == blind
    assert rebase_probe_owds([]) == []


def test_lower_convex_hull_simple():
    points = [(0.0, 1.0), (1.0, 0.5), (2.0, 2.0), (3.0, 0.2), (4.0, 3.0)]
    hull = lower_convex_hull(sorted(points))
    assert hull[0] == (0.0, 1.0)
    assert hull[-1] == (4.0, 3.0)
    assert (3.0, 0.2) in hull
    assert (2.0, 2.0) not in hull


def test_skew_estimated_from_noisy_owds():
    # True OWD = 50 ms floor + positive queueing noise; receiver clock runs
    # 50 ppm fast, so measured OWD drifts upward at 5e-5 s/s.
    rng = random.Random(1)
    skew = 5e-5
    points = []
    for i in range(2000):
        t = i * 0.5
        queueing = rng.expovariate(1 / 0.01) if rng.random() < 0.9 else 0.0
        points.append((t, 0.050 + skew * t + queueing))
    intercept, slope = estimate_skew(points)
    assert slope == pytest.approx(skew, rel=0.05)
    assert intercept == pytest.approx(0.050, abs=0.002)


def test_skew_zero_when_clocks_agree():
    points = [(float(i), 0.05 + (0.01 if i % 7 == 0 else 0.0)) for i in range(500)]
    _intercept, slope = estimate_skew(points)
    assert slope == pytest.approx(0.0, abs=1e-6)


def test_remove_skew_flattens_the_floor():
    skew = 1e-4
    points = [(i * 1.0, 0.05 + skew * i) for i in range(100)]
    cleaned = remove_skew(points)
    delays = [d for _t, d in cleaned]
    assert max(delays) - min(delays) < 1e-9
    assert delays[0] == pytest.approx(0.05)


def test_remove_skew_preserves_queueing_excursions():
    skew = 1e-4
    points = []
    for i in range(100):
        extra = 0.02 if i == 50 else 0.0
        points.append((i * 1.0, 0.05 + skew * i + extra))
    cleaned = remove_skew(points)
    flat = [d for t, d in cleaned if t != 50.0]
    spike = [d for t, d in cleaned if t == 50.0][0]
    assert spike - max(flat) == pytest.approx(0.02, rel=0.01)


def test_estimate_skew_needs_two_distinct_times():
    with pytest.raises(EstimationError):
        estimate_skew([(1.0, 0.05)])
    with pytest.raises(EstimationError):
        estimate_skew([(1.0, 0.05), (1.0, 0.06)])


def test_deskew_probe_records_restores_flat_floor():
    from repro.core.clock import deskew_probe_records
    from repro.core.records import ProbeRecord

    skew = 1e-4
    probes = [
        ProbeRecord(
            slot=i,
            send_time=i * 1.0,
            n_packets=2,
            owds=(0.05 + skew * i, 0.05 + skew * i),
            owd_before_loss=(0.15 + skew * i) if i == 50 else None,
        )
        for i in range(100)
    ]
    cleaned = deskew_probe_records(probes)
    floors = [probe.owds[0] for probe in cleaned]
    assert max(floors) - min(floors) < 1e-9
    # The OWD_max estimate at i=50 keeps its 100 ms queueing excursion.
    assert cleaned[50].owd_before_loss - cleaned[50].owds[0] == pytest.approx(0.1)


def test_deskew_probe_records_passthrough_when_underdetermined():
    from repro.core.clock import deskew_probe_records
    from repro.core.records import ProbeRecord

    lonely = [ProbeRecord(slot=0, send_time=0.0, n_packets=3, owds=(0.05,))]
    assert deskew_probe_records(lonely) == lonely
    empty = []
    assert deskew_probe_records(empty) == []
