"""Tests for the fixed-interval PING-like baseline."""

import pytest

from repro.core.pinglike import PingLikeTool
from repro.experiments.runner import DRAIN_TIME, build_testbed


def test_intervals_are_constant():
    sim, testbed = build_testbed()
    tool = PingLikeTool(
        sim, testbed.probe_sender, testbed.probe_receiver,
        interval=0.01, duration=5.0, start=1.0,
    )
    sim.run(until=6.0 + DRAIN_TIME)
    times = sorted(tool.sender.sent.values())
    gaps = {round(b - a, 9) for a, b in zip(times, times[1:])}
    assert gaps == {0.01}


def test_rate_matches_interval():
    sim, testbed = build_testbed()
    tool = PingLikeTool(
        sim, testbed.probe_sender, testbed.probe_receiver,
        interval=0.02, duration=10.0, start=1.0,
    )
    sim.run(until=11.0 + DRAIN_TIME)
    assert tool.result().n_sent == pytest.approx(500, abs=2)


def test_flight_trains_supported():
    sim, testbed = build_testbed()
    tool = PingLikeTool(
        sim, testbed.probe_sender, testbed.probe_receiver,
        interval=0.05, duration=2.0, start=1.0, flight=5,
    )
    sim.run(until=3.0 + DRAIN_TIME)
    assert all(len(flight) == 5 for flight in tool.sender.flights if flight)


def test_reporting_matches_zing_semantics():
    sim, testbed = build_testbed()
    tool = PingLikeTool(
        sim, testbed.probe_sender, testbed.probe_receiver,
        interval=0.01, duration=3.0, start=1.0,
    )
    sim.run(until=4.0 + DRAIN_TIME)
    result = tool.result()
    assert result.frequency == 0.0
    assert result.n_lost == 0
