"""Tests for package-level exports and the error hierarchy."""

import pytest

import repro
from repro import errors


def test_version_exported():
    assert repro.__version__ == "1.0.0"


def test_top_level_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_core_exports_resolve():
    import repro.core as core

    for name in core.__all__:
        assert getattr(core, name) is not None


def test_net_exports_resolve():
    import repro.net as net

    for name in net.__all__:
        assert getattr(net, name) is not None


def test_traffic_exports_resolve():
    import repro.traffic as traffic

    for name in traffic.__all__:
        assert getattr(traffic, name) is not None


def test_analysis_exports_resolve():
    import repro.analysis as analysis

    for name in analysis.__all__:
        assert getattr(analysis, name) is not None


def test_error_hierarchy():
    assert issubclass(errors.ConfigurationError, errors.ReproError)
    assert issubclass(errors.SimulationError, errors.ReproError)
    assert issubclass(errors.RoutingError, errors.SimulationError)
    assert issubclass(errors.EstimationError, errors.ReproError)
    assert issubclass(errors.ValidationError, errors.ReproError)


def test_library_errors_catchable_as_repro_error():
    from repro.config import ProbeConfig

    with pytest.raises(errors.ReproError):
        ProbeConfig(slot=-1)


def test_main_module_entrypoint(capsys):
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-m", "repro", "list"],
        capture_output=True,
        text=True,
        check=True,
    )
    assert "episodic_cbr" in proc.stdout


def test_synthetic_exports_resolve():
    import repro.synthetic as synthetic

    for name in synthetic.__all__:
        assert getattr(synthetic, name) is not None


def test_io_exports_resolve():
    import repro.io as io_pkg

    for name in io_pkg.__all__:
        assert getattr(io_pkg, name) is not None


def test_experiments_exports_resolve():
    import repro.experiments as experiments

    for name in experiments.__all__:
        assert getattr(experiments, name) is not None
