"""Multi-tenant fleet reflector tests: admission, eviction, backpressure.

The synchronous tests drive :class:`FleetReflectorProtocol` directly with
a fake clock and a recording transport (``datagram_received`` and
``sweep`` are deliberately synchronous so policy behavior is testable
without real time). The asyncio tests exercise the sender's BUSY-retry
backoff, mid-session restart detection, and the fleet loopback soak the
CI ``live-fleet`` job runs at larger scale.
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import BadabingConfig, MarkingConfig, ProbeConfig
from repro.errors import ConfigurationError, LiveSessionError
from repro.live import wire
from repro.live.fleet import (
    FleetPolicy,
    FleetReflectorProtocol,
    TokenBucket,
    idle_deadline_seconds,
    nominal_pps,
    run_fleet_loopback,
    start_fleet_reflector,
)
from repro.live.reflector import NAK_PER_SECOND
from repro.live.runtime import run_live_loopback, run_live_send
from repro.live.sender import LiveSender, open_sender
from repro.live.session import make_session_id, schedule_from_spec, spec_for


# ------------------------------------------------------------- fixtures
class FakeClock:
    """Deterministic nanosecond clock the sweep tests advance by hand."""

    def __init__(self, start_ns: int = 1_000_000_000):
        self.t = start_ns

    def now_ns(self) -> int:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += int(seconds * 1e9)


class FakeTransport:
    """Records every outbound datagram for assertion."""

    def __init__(self):
        self.sent = []

    def sendto(self, payload, addr=None):
        self.sent.append((payload, addr))

    def kinds(self):
        return [wire.decode_header(payload).kind for payload, _addr in self.sent]


def make_config(n_slots=40, slot=0.005, p=0.3, packets=3):
    return BadabingConfig(
        probe=ProbeConfig(slot=slot, probe_size=64, packets_per_probe=packets),
        marking=MarkingConfig(tau=0.0),
        p=p,
        n_slots=n_slots,
    )


def make_protocol(policy=None, **kwargs):
    clock = FakeClock()
    protocol = FleetReflectorProtocol(policy=policy, clock=clock, **kwargs)
    transport = FakeTransport()
    protocol.connection_made(transport)
    return protocol, transport, clock


def hello(protocol, clock, seed, config=None, addr=None):
    """Deliver a HELLO for ``seed``; returns (session_id, spec)."""
    config = config if config is not None else make_config()
    spec = spec_for(config, seed)
    session_id = make_session_id(seed)
    protocol.datagram_received(
        wire.encode_hello(session_id, spec, clock.now_ns()),
        addr if addr is not None else ("127.0.0.1", 40000 + seed),
    )
    return session_id, spec


def probe(protocol, clock, session_id, slot, index, k=3, addr=None):
    protocol.datagram_received(
        wire.encode_probe(session_id, slot * 8 + index, slot, index, k, clock.now_ns()),
        addr if addr is not None else ("127.0.0.1", 40001),
    )


# ----------------------------------------------------------- token bucket
def test_token_bucket_caps_burst_and_refills():
    bucket = TokenBucket(rate=10.0, burst=5.0, last_ns=0)
    assert all(bucket.allow(0) for _ in range(5))
    assert not bucket.allow(0)  # burst exhausted, no time elapsed
    assert bucket.allow(100_000_000)  # +0.1s at 10/s refills one token
    assert not bucket.allow(100_000_000)
    # A long quiet period refills to the burst cap, never beyond.
    assert sum(bucket.allow(10_000_000_000) for _ in range(10)) == 5


def test_token_bucket_rejects_nonpositive_parameters():
    with pytest.raises(ConfigurationError):
        TokenBucket(rate=0.0, burst=1.0)
    with pytest.raises(ConfigurationError):
        TokenBucket(rate=1.0, burst=-1.0)


def test_fleet_policy_validates():
    with pytest.raises(ConfigurationError):
        FleetPolicy(max_sessions=0)
    with pytest.raises(ConfigurationError):
        FleetPolicy(max_aggregate_pps=-1.0)
    with pytest.raises(ConfigurationError):
        FleetPolicy(rate_headroom=0.0)
    with pytest.raises(ConfigurationError):
        FleetPolicy(max_reports=0)


def test_idle_deadline_prefers_policy_override():
    spec = spec_for(make_config(n_slots=100, slot=0.005), 1)
    assert idle_deadline_seconds(spec, FleetPolicy(idle_timeout=3.0)) == 3.0
    derived = idle_deadline_seconds(spec, FleetPolicy(idle_grace=2.0))
    assert derived == pytest.approx(100 * 0.005 + 2.0)


# -------------------------------------------------------------- admission
def test_session_cap_rejects_with_busy_retry_after():
    policy = FleetPolicy(max_sessions=1, retry_after=0.7)
    protocol, transport, clock = make_protocol(policy=policy)
    sid_a, _ = hello(protocol, clock, seed=1)
    assert transport.kinds() == [wire.HELLO_ACK]
    sid_b, _ = hello(protocol, clock, seed=2)
    assert transport.kinds() == [wire.HELLO_ACK, wire.BUSY]
    header, retry_after, reason = wire.decode_busy(transport.sent[-1][0])
    assert header.session == sid_b
    assert retry_after == pytest.approx(0.7)
    assert reason == wire.BUSY_SESSIONS
    assert protocol.admission_rejected == 1
    assert protocol.rejected_sessions_full == 1
    assert list(protocol.sessions) == [sid_a]
    # HELLO retransmits from the admitted tenant stay idempotent acks.
    hello(protocol, clock, seed=1)
    assert transport.kinds()[-1] == wire.HELLO_ACK
    assert protocol.sessions_admitted == 1


def test_aggregate_pps_cap_frees_capacity_on_retirement():
    config = make_config()
    spec = spec_for(config, 1)
    policy = FleetPolicy(max_aggregate_pps=nominal_pps(spec) * 1.5)
    protocol, transport, clock = make_protocol(policy=policy)
    sid_a, _ = hello(protocol, clock, seed=1, config=config)
    hello(protocol, clock, seed=2, config=config)
    assert transport.kinds() == [wire.HELLO_ACK, wire.BUSY]
    assert wire.decode_busy(transport.sent[-1][0])[2] == wire.BUSY_RATE
    assert protocol.rejected_rate_full == 1
    protocol.retire_session(sid_a)
    assert protocol.admitted_pps == pytest.approx(0.0)
    hello(protocol, clock, seed=2, config=config)
    assert transport.kinds()[-1] == wire.HELLO_ACK


# ----------------------------------------------------------- backpressure
def test_token_bucket_rate_limits_flooding_tenant():
    policy = FleetPolicy(rate_cap_pps=50.0, rate_burst_seconds=0.5)
    protocol, _transport, clock = make_protocol(policy=policy)
    sid, spec = hello(protocol, clock, seed=1, config=make_config(n_slots=200, p=0.5))
    slots = list(schedule_from_spec(spec).probe_slots)
    # Flood far past the 25-token burst without letting time advance.
    sent = 0
    for slot in slots:
        for index in range(spec.packets_per_probe):
            probe(protocol, clock, sid, slot, index, k=spec.packets_per_probe)
            sent += 1
    session = protocol.sessions[sid]
    assert session.rate_limited == sent - 25
    assert session.probes_received == 25
    assert protocol.rate_limited_total == sent - 25


def test_honest_sender_is_never_rate_limited_by_spec_bucket():
    # Spec-derived buckets (rate = nominal × headroom) must pass a sender
    # that emits exactly its declared schedule in real time.
    protocol, _transport, clock = make_protocol(policy=FleetPolicy())
    sid, spec = hello(protocol, clock, seed=3)
    for slot in schedule_from_spec(spec).probe_slots:
        clock.t = 1_000_000_000 + slot * spec.slot_ns
        for index in range(spec.packets_per_probe):
            probe(protocol, clock, sid, slot, index, k=spec.packets_per_probe)
    assert protocol.sessions[sid].rate_limited == 0


# --------------------------------------------------------------- eviction
def test_idle_session_evicted_with_partial_result():
    protocol, _transport, clock = make_protocol(policy=FleetPolicy(idle_grace=1.0))
    config = make_config(n_slots=40)
    sid, spec = hello(protocol, clock, seed=1, config=config)
    slots = list(schedule_from_spec(spec).probe_slots)
    # The sender delivers a few trains, then stalls forever.
    for slot in slots[:3]:
        clock.t = 1_000_000_000 + slot * spec.slot_ns
        for index in range(spec.packets_per_probe):
            probe(protocol, clock, sid, slot, index, k=spec.packets_per_probe)
    assert protocol.sweep() == []  # not idle long enough yet
    clock.advance(spec.duration_seconds + 1.5)
    reports = protocol.sweep()
    assert [r.reason for r in reports] == ["evicted"]
    report = reports[0]
    assert report.session_id == sid
    assert report.probes_received == 3 * spec.packets_per_probe
    # The tenant's partial data survives as a receiver-side estimate.
    assert report.result is not None
    assert 0.0 <= report.result.frequency <= 1.0
    assert protocol.evicted == 1
    assert sid not in protocol.sessions
    assert sid in protocol.recent_sessions
    assert list(protocol.reports) == reports


def test_finished_session_retires_after_fin_linger():
    protocol, _transport, clock = make_protocol(policy=FleetPolicy(fin_linger=1.0))
    sid, spec = hello(protocol, clock, seed=1)
    for slot in schedule_from_spec(spec).probe_slots:
        clock.t = 1_000_000_000 + slot * spec.slot_ns
        for index in range(spec.packets_per_probe):
            probe(protocol, clock, sid, slot, index, k=spec.packets_per_probe)
    protocol.datagram_received(
        wire.encode_control(wire.FIN, sid, clock.now_ns()), ("127.0.0.1", 40001)
    )
    assert protocol.sweep() == []  # lingering for FIN retries
    clock.advance(1.2)
    reports = protocol.sweep()
    assert [r.reason for r in reports] == ["finished"]
    assert not reports[0].evicted
    assert protocol.evicted == 0
    assert protocol.sessions_retired == 1
    # A straggler probe after retirement is a duplicate, not an unknown —
    # and draws no NAK (the sender did nothing wrong).
    naks_before = protocol.naks_sent
    probe(protocol, clock, sid, 0, 0)
    assert protocol.late_duplicates == 1
    assert protocol.unknown_session == 0
    assert protocol.naks_sent == naks_before


def test_recent_session_lru_stays_bounded():
    protocol, _transport, clock = make_protocol(recent_capacity=4)
    sids = []
    for seed in range(1, 11):
        sid, _spec = hello(protocol, clock, seed=seed)
        sids.append(sid)
        protocol.retire_session(sid)
    assert len(protocol.recent_sessions) == 4
    assert list(protocol.recent_sessions) == sids[-4:]
    # Retirement folds per-session counters into monotonic totals.
    assert protocol.sessions_retired == 10


def test_nak_throttle_bounds_amplification():
    protocol, transport, clock = make_protocol()
    for i in range(3 * NAK_PER_SECOND):
        probe(protocol, clock, session_id=0xDEAD + i, slot=0, index=0)
    assert protocol.unknown_session == 3 * NAK_PER_SECOND
    assert protocol.naks_sent == NAK_PER_SECOND
    assert transport.kinds().count(wire.NAK) == NAK_PER_SECOND
    clock.advance(1.1)  # a fresh window reopens the (bounded) tap
    probe(protocol, clock, session_id=0xBEEF, slot=0, index=0)
    assert protocol.naks_sent == NAK_PER_SECOND + 1


# ------------------------------------------------- spec_for p>1 regression
def test_spec_for_refuses_to_clamp_p_above_one():
    config = make_config()
    config.p = 1.5  # corrupt post-construction, as a buggy caller would
    with pytest.raises(LiveSessionError, match="refusing to clamp"):
        spec_for(config, 1)


def test_spec_for_still_accepts_p_of_exactly_one():
    config = make_config(p=1.0)
    assert spec_for(config, 1).p_ppm == wire.PPM


# ------------------------------------------------------- cross-tenant fuzz
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_interleaved_sessions_never_bleed_state(data):
    """Arbitrarily interleaved datagrams from many tenants stay isolated."""
    n_sessions = data.draw(st.integers(min_value=2, max_value=5))
    protocol, _transport, clock = make_protocol()
    expected = {}
    datagrams = []
    for i in range(n_sessions):
        seed = i + 1
        config = make_config(n_slots=20 + 4 * i, p=0.4)
        sid, spec = hello(protocol, clock, seed=seed, config=config)
        keys = [
            (slot, index)
            for slot in schedule_from_spec(spec).probe_slots
            for index in range(spec.packets_per_probe)
        ]
        chosen = data.draw(
            st.lists(st.sampled_from(keys), unique=True, max_size=len(keys))
        )
        expected[sid] = set(chosen)
        datagrams.extend(
            (sid, slot, index, spec.packets_per_probe) for slot, index in chosen
        )
    order = data.draw(st.permutations(datagrams))
    for sid, slot, index, k in order:
        probe(protocol, clock, sid, slot, index, k=k)
    assert set(protocol.sessions) == set(expected)
    for sid, keys in expected.items():
        session = protocol.sessions[sid]
        assert set(session.recv_ns) == keys
        assert session.probes_received == len(keys)
        assert session.duplicate_arrivals == 0
    assert protocol.unknown_session == 0
    assert protocol.wire_errors == 0


# ------------------------------------------------------ asyncio integration
def _quick_config(n_slots=60):
    return make_config(n_slots=n_slots, slot=0.005, p=0.4)


def test_busy_sender_backs_off_and_succeeds_on_retry():
    async def scenario():
        policy = FleetPolicy(max_sessions=1, retry_after=0.3)
        transport, protocol, watchdog_task = await start_fleet_reflector(
            "127.0.0.1", 0, policy=policy
        )
        port = transport.get_extra_info("sockname")[1]
        # Occupy the only slot with a synthetic tenant, freeing it after
        # the live sender has been rejected at least once.
        blocker_spec = spec_for(_quick_config(), 999)
        blocker_id = make_session_id(999)
        header, spec = wire.decode_hello(
            wire.encode_hello(blocker_id, blocker_spec, 0)
        )
        protocol._register(header, spec, ("127.0.0.1", 1))

        async def free_slot_later():
            await asyncio.sleep(0.45)
            protocol.retire_session(blocker_id)

        release = asyncio.ensure_future(free_slot_later())
        try:
            run = await run_live_send(
                "127.0.0.1", port, config=_quick_config(), seed=5
            )
        finally:
            await release
            watchdog_task.cancel()
            try:
                await watchdog_task
            except asyncio.CancelledError:
                pass
            transport.close()
        return run, protocol

    run, protocol = asyncio.run(scenario())
    assert run.stats.hello_busy >= 1
    assert run.stats.hello_attempts >= 2
    assert run.stats.completed
    assert protocol.admission_rejected >= 1
    assert protocol.sessions_finished == 1


def test_reflector_restart_mid_session_degrades_cleanly():
    async def scenario():
        transport, protocol, watchdog_task = await start_fleet_reflector(
            "127.0.0.1", 0
        )
        port = transport.get_extra_info("sockname")[1]

        async def restart_reflector():
            await asyncio.sleep(0.3)
            # A restarted reflector has an empty session map but the same
            # socket; in-flight probes now hit the unknown-session path.
            protocol.sessions.clear()

        restart = asyncio.ensure_future(restart_reflector())
        try:
            run = await run_live_send(
                "127.0.0.1", port, config=make_config(n_slots=400, p=0.4), seed=7
            )
        finally:
            await restart
            watchdog_task.cancel()
            try:
                await watchdog_task
            except asyncio.CancelledError:
                pass
            transport.close()
        return run, protocol

    run, protocol = asyncio.run(scenario())
    assert run.stats.stopped == "reflector-restart"
    assert run.degraded
    assert protocol.naks_sent >= 1
    # The partial estimate is still a well-formed result object.
    assert 0.0 <= run.result.frequency <= 1.0


def test_fleet_loopback_matches_serial_runs():
    """Concurrent tenants estimate exactly what serial runs estimate.

    With tau=0 marking, outcomes depend only on which packets were
    dropped — and the impairment shim is a pure function of (seed, slot,
    index) — so each fleet session must reproduce its serial twin's
    experiment outcomes bit for bit.
    """
    config = _quick_config(n_slots=80)
    n_sessions, base_seed = 6, 11

    serial = {}
    for offset in range(n_sessions):
        seed = base_seed + offset
        run = asyncio.run(run_live_loopback(config=config, seed=seed, faults="mild"))
        serial[seed] = run

    soak = asyncio.run(
        run_fleet_loopback(
            config, n_sessions=n_sessions, base_seed=base_seed, faults="mild"
        )
    )
    assert soak.ok
    assert soak.wire_errors == 0
    assert soak.unknown_session == 0
    assert len(soak.outcomes) == n_sessions
    for outcome in soak.outcomes:
        (seed,) = outcome.seeds
        twin = serial[seed]
        run = outcome.result
        assert run.session_id == twin.session_id
        assert run.result.outcomes == twin.result.outcomes
        assert run.result.frequency == twin.result.frequency
        assert run.stats.packets_sent == twin.stats.packets_sent
    # Every session was retired by the watchdog: bounded steady state.
    assert soak.sessions_admitted == n_sessions
    assert soak.sessions_active == 0


def test_fleet_soak_acceptance():
    """ISSUE acceptance: 50 tenants + a stalled one + an admission burst.

    The stalled session must be evicted as a structured partial report,
    the rejected sessions must succeed after honoring RETRY_AFTER, and
    the reflector's session map must end bounded (empty).
    """
    n_sessions = 50
    config = make_config(n_slots=60, slot=0.005, p=0.3)

    async def scenario():
        policy = FleetPolicy(
            max_sessions=n_sessions - 10,
            retry_after=0.3,
            idle_timeout=1.5,
            fin_linger=0.3,
        )
        transport, protocol, watchdog_task = await start_fleet_reflector(
            "127.0.0.1", 0, policy=policy
        )
        port = transport.get_extra_info("sockname")[1]

        async def stalled_session():
            # HELLO then silence: the watchdog must evict this tenant.
            stall_seed = 7777
            sid = make_session_id(stall_seed)
            s_transport, s_protocol = await open_sender("127.0.0.1", port, sid)
            try:
                sender = LiveSender(
                    s_transport,
                    s_protocol,
                    spec_for(config, stall_seed),
                    schedule_from_spec(spec_for(config, stall_seed)),
                )
                await sender.handshake()
                return sid
            finally:
                s_transport.close()

        tasks = [
            run_live_send("127.0.0.1", port, config=config, seed=100 + i)
            for i in range(n_sessions)
        ]
        stalled_id, *runs = await asyncio.gather(stalled_session(), *tasks)
        # Give the watchdog time to retire finished tenants and evict the
        # stalled one (idle_timeout 1.5s + sweep interval slack).
        await asyncio.sleep(2.5)
        try:
            return stalled_id, runs, protocol
        finally:
            watchdog_task.cancel()
            try:
                await watchdog_task
            except asyncio.CancelledError:
                pass
            transport.close()

    stalled_id, runs, protocol = asyncio.run(scenario())
    assert len(runs) == n_sessions
    assert all(run.stats.completed for run in runs)
    assert protocol.wire_errors == 0
    # The burst over the admission cap was rejected, retried, and served.
    assert protocol.admission_rejected >= 1
    assert any(run.stats.hello_busy >= 1 for run in runs)
    assert protocol.sessions_finished == n_sessions
    # The stalled tenant was evicted as a structured partial report.
    evicted = [r for r in protocol.reports if r.evicted]
    assert [r.session_id for r in evicted] == [stalled_id]
    # Bounded steady state: every session left the map.
    assert protocol.sessions == {}
    assert protocol.sessions_retired == n_sessions + 1
