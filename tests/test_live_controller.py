"""Adaptive fleet-controller tests: rebalancing, backoff, merge, alerts.

The synchronous tests drive :class:`FleetController` with a fake clock
and hand-built :class:`ValidationReport` s, so budget decisions are
checked deterministically without sockets. The asyncio acceptance test
runs the real 3-path loopback fleet (one path behind a heavy-loss
Gilbert impairment) and asserts the headline property from the issue:
after the clean paths converge, at least 30% of the remaining probe
budget above an even split shifts to the unconverged path, while the
canonical merged-registry digest equals a serial replay of the shards
in observed completion order.
"""

import asyncio
import json
import random
from collections import Counter

import pytest

from repro.cli import main
from repro.config import BadabingConfig, MarkingConfig, ProbeConfig
from repro.core.validation import report_from_counter
from repro.errors import ConfigurationError, ObservabilityError
from repro.experiments.fleetrun import run_fleet
from repro.live.controller import (
    CONTROLLER_SCHEMA,
    ControllerPolicy,
    FleetController,
    PathTarget,
    read_controller_events,
    shard_label,
    validate_controller_file,
    validate_controller_record,
)
from repro.obs.alerts import AlertRules, controller_alert_rules
from repro.obs.export import rollup_sessions
from repro.obs.metrics import MetricsRegistry, snapshot_digest
from repro.obs.summary import (
    group_label_path,
    split_snapshot_by_label,
    split_snapshot_by_path,
)


# ------------------------------------------------------------- fixtures
class FakeClock:
    """Deterministic nanosecond clock the controller tests advance by hand."""

    def __init__(self, start_ns: int = 1_000_000_000):
        self.t = start_ns

    def now_ns(self) -> int:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += int(seconds * 1e9)


def make_config(n_slots=40, slot=0.005, p=0.3, packets=3):
    return BadabingConfig(
        probe=ProbeConfig(slot=slot, probe_size=64, packets_per_probe=packets),
        marking=MarkingConfig(tau=0.0),
        p=p,
        n_slots=n_slots,
    )


def make_target(name, faults=None):
    return PathTarget(name=name, config=make_config(), faults=faults)


def clean_report(m=100):
    """A perfectly loss-free session: M experiments, zero transitions."""
    return report_from_counter(Counter({"M": m}))


def lossy_report(m=100):
    """A session whose validator keeps rejecting the estimate (§5.4).

    The violation patterns 010/101 push the violation rate above the
    acceptability bound, so the stopping rule never fires for this path.
    """
    return report_from_counter(
        Counter({"M": m, "01": 1, "10": 1, "010": 3, "101": 3})
    )


def make_controller(paths, policy=None, **kwargs):
    clock = FakeClock()
    controller = FleetController(paths, policy=policy, clock=clock, **kwargs)
    return controller, clock


# ------------------------------------------------------------ validation
def test_policy_and_roster_validate():
    with pytest.raises(ConfigurationError):
        ControllerPolicy(budget_slots=0)
    with pytest.raises(ConfigurationError):
        ControllerPolicy(min_session_slots=0)
    with pytest.raises(ConfigurationError):
        ControllerPolicy(min_share=0.6, max_share=0.4)
    with pytest.raises(ConfigurationError):
        ControllerPolicy(target_relative_error=0.0)
    with pytest.raises(ConfigurationError):
        PathTarget(name="a/b", config=make_config())
    with pytest.raises(ConfigurationError):
        FleetController([make_target("dup"), make_target("dup")])
    with pytest.raises(ConfigurationError):
        FleetController([])


# ------------------------------------------------------------ rebalancing
def test_step_allocates_evenly_and_records_rebalance_event():
    policy = ControllerPolicy(budget_slots=600, round_slots=100, min_session_slots=40)
    registry = MetricsRegistry()
    controller, clock = make_controller(
        [make_target("a"), make_target("b"), make_target("c")],
        policy=policy,
        registry=registry,
    )
    launches = controller.step()
    # Even three-way split of the 300-slot quantum, in roster order.
    assert [d.path for d in launches] == ["a", "b", "c"]
    assert [d.n_slots for d in launches] == [100, 100, 100]
    assert all(d.round_index == 0 for d in launches)
    assert all(d.config.n_slots == d.n_slots for d in launches)
    assert controller.remaining_slots == 300
    # Everything is now in flight at max_concurrent_per_path: no-op pass.
    clock.advance(0.1)
    assert controller.step() == []
    # One rebalance event carrying the allocations plus all-path signals.
    (event,) = controller.events
    assert event["kind"] == "rebalance"
    assert validate_controller_record(event) == []
    assert [a["path"] for a in event["allocations"]] == ["a", "b", "c"]
    assert len(event["signals"]) == 3
    assert registry.counter("controller.launches").value == 3
    assert registry.counter("controller.slots_allocated").value == 300


def test_launch_seeds_are_deterministic():
    roster = [make_target("a"), make_target("b")]
    first, _ = make_controller(roster, base_seed=7)
    second, _ = make_controller(roster, base_seed=7)
    other, _ = make_controller(roster, base_seed=8)
    seeds = [d.seed for d in first.step()]
    assert seeds == [d.seed for d in second.step()]
    assert seeds != [d.seed for d in other.step()]
    assert len(set(seeds)) == len(seeds)


# ------------------------------------------------------- BUSY backpressure
def test_busy_path_waits_out_the_advertised_delay_never_sooner():
    policy = ControllerPolicy(budget_slots=400, round_slots=100, min_session_slots=40)
    controller, clock = make_controller([make_target("a")], policy=policy)
    (directive,) = controller.step()
    spent_before = controller.spent_slots
    controller.on_session_busy("a", directive.round_index, retry_after=3.0)
    # The rejected session spent no probes: fully refunded.
    assert controller.spent_slots == spent_before - directive.n_slots
    assert controller.state_of("a").busy_deferrals == 1
    busy = controller.events[-1]
    assert busy["kind"] == "busy" and busy["retry_after"] == 3.0
    assert busy["refunded_slots"] == directive.n_slots
    # Never sooner: repeated decision passes inside the window all skip.
    for _ in range(5):
        clock.advance(0.5)
        assert controller.step() == []  # 0.5s .. 2.5s after BUSY
    clock.advance(0.499_999)
    assert controller.step() == []  # 2.999999s: still inside the window
    assert controller.next_retry_in() == pytest.approx(1e-6, abs=1e-9)
    # At exactly now + retry_after the path is admitted again.
    clock.advance(0.000_001)
    (retry,) = controller.step()
    assert retry.path == "a"
    assert controller.next_retry_in() is None


def test_busy_without_hint_falls_back_to_policy_delay():
    policy = ControllerPolicy(
        budget_slots=400, round_slots=100, min_session_slots=40, retry_fallback=2.0
    )
    controller, clock = make_controller([make_target("a")], policy=policy)
    (directive,) = controller.step()
    controller.on_session_busy("a", directive.round_index, retry_after=None)
    clock.advance(1.999)
    assert controller.step() == []
    clock.advance(0.002)
    assert len(controller.step()) == 1


# --------------------------------------------------------- budget shifting
def drive_to_exhaustion(controller, clock, lossy="lossy"):
    """Synchronously complete every launch until the budget is spent."""
    round_counter = Counter()
    while True:
        launches = controller.step()
        if not launches:
            break
        for directive in launches:
            rounds = round_counter[directive.path]
            round_counter[directive.path] += 1
            if directive.path == lossy:
                # ΔF̂ stays above epsilon_f, so the fallback convergence
                # rule never fires either: the path stays hungry.
                frequency = 0.5 if rounds % 2 else 0.1
                report = lossy_report(m=directive.n_slots)
            else:
                frequency = 0.0
                report = clean_report(m=directive.n_slots)
            clock.advance(0.05)
            controller.on_session_complete(
                directive.path,
                directive.round_index,
                frequency,
                report,
                duration_seconds=0.001,
            )
        clock.advance(0.05)


def test_budget_shifts_toward_unconverged_path():
    policy = ControllerPolicy(budget_slots=2400, round_slots=100, min_session_slots=40)
    controller, clock = make_controller(
        [make_target("clean-a"), make_target("clean-b"), make_target("lossy")],
        policy=policy,
    )
    drive_to_exhaustion(controller, clock)
    controller.finalize()

    assert controller.remaining_slots < policy.min_session_slots
    assert controller.converged("clean-a") and controller.converged("clean-b")
    assert not controller.converged("lossy")

    # From the recorded decisions: once every clean path reports
    # converged, the lossy path must capture well over an even split of
    # the remaining budget — at least 30 points above 1/3.
    post, lossy_post = 0, 0
    for event in controller.events:
        if event["kind"] != "rebalance":
            continue
        others = [
            s for s in event["signals"] if s["path"] != "lossy"
        ]
        if not all(s["converged"] for s in others):
            continue
        for allocation in event["allocations"]:
            post += allocation["slots"]
            if allocation["path"] == "lossy":
                lossy_post += allocation["slots"]
    assert post > 0
    assert lossy_post / post >= 1 / 3 + 0.30
    # The converged paths keep drift-detection heartbeats alive (paid
    # from monitor credit), but only at the fixed minimum session size.
    clean_post = [
        a["slots"]
        for e in controller.events
        if e["kind"] == "rebalance"
        for a in e["allocations"]
        if a["path"] != "lossy" and a["round"] >= 2
    ]
    assert clean_post and all(s == policy.min_session_slots for s in clean_post)


def test_step_stops_when_all_paths_converge():
    policy = ControllerPolicy(budget_slots=10_000, round_slots=100, min_session_slots=40)
    controller, clock = make_controller(
        [make_target("a"), make_target("b")], policy=policy
    )
    for _ in range(2):
        for directive in controller.step():
            controller.on_session_complete(
                directive.path, directive.round_index, 0.0, clean_report(100)
            )
        clock.advance(0.1)
    assert controller.all_converged
    assert controller.step() == []
    assert controller.done
    assert controller.remaining_slots > 0  # budget left unspent, not burned


# ------------------------------------------------------------------ merge
def make_shard(seed, f_hat):
    """A fake per-session registry shard with awkward float content."""
    rng = random.Random(seed)
    shard = MetricsRegistry()
    shard.counter("probes.sent", role="sender").value = 100 + seed
    shard.counter("probes.lost").value = seed
    hist = shard.histogram("live.timing_error_seconds")
    for _ in range(50):
        # Mantissa-rich values make float-sum order dependence visible.
        hist.observe(rng.random() * 1e-3 + 1e-9)
    series = shard.series("live.frequency", role="sender")
    for i in range(5):
        series.append(i * 0.1, f_hat + i * 1e-4)
    return shard


def test_merged_digest_is_independent_of_completion_order():
    policy = ControllerPolicy(budget_slots=1200, round_slots=100, min_session_slots=40)
    controller, clock = make_controller(
        [make_target("a"), make_target("b"), make_target("c")], policy=policy
    )
    schedule = []
    for round_index in range(2):
        launches = controller.step()
        assert launches
        for directive in launches:
            clock.advance(0.05)
            controller.on_session_complete(
                directive.path,
                directive.round_index,
                0.2,
                lossy_report(directive.n_slots),
                shard=make_shard(
                    directive.seed % 1000, 0.2 + 0.01 * directive.round_index
                ),
            )
            schedule.append((directive.path, directive.round_index))
        clock.advance(0.05)

    canonical = controller.merged_digest()
    rng = random.Random(42)
    for _ in range(6):
        order = schedule[:]
        rng.shuffle(order)
        assert controller.replay_digest(order) == canonical
    # Every shard lands under its own path/session[round] series label.
    snapshot = controller.merged_registry().snapshot()
    labels = {
        key.split("session=", 1)[1].rstrip("}")
        for key in snapshot["series"]
        if "session=" in key
    }
    assert labels == {shard_label(p, r) for p, r in schedule}
    # Counters fold additively across shards.
    total_sent = sum(
        value
        for key, value in snapshot["counters"].items()
        if key.startswith("probes.sent")
    )
    assert total_sent == sum(100 + (s % 1000) for s in
                             [d["seed"] for e in controller.events
                              if e["kind"] == "rebalance"
                              for d in e["allocations"]])


def test_two_path_merge_groups_by_label_and_path():
    merged = MetricsRegistry()
    for name, f_hat in (("alpha", 0.1), ("beta", 0.4)):
        shard = make_shard(seed=len(name), f_hat=f_hat)
        merged.merge(shard, series_labels={"session": shard_label(name, 0)})
    snapshot = merged.snapshot()

    assert group_label_path("alpha/session[0]") == "alpha"
    assert group_label_path("session[3]") == "session[3]"  # bare soak label

    _shared, by_label = split_snapshot_by_label(snapshot)
    assert set(by_label) == {"alpha/session[0]", "beta/session[0]"}
    _shared, by_path = split_snapshot_by_path(snapshot)
    assert set(by_path) == {"alpha", "beta"}
    assert by_path["alpha"]["series"]  # fold keeps the shard instruments

    rows = {row["label"]: row for row in rollup_sessions(snapshot)}
    assert set(rows) == {"alpha/session[0]", "beta/session[0]"}
    assert rows["alpha/session[0]"]["f_hat"] == pytest.approx(0.1004)
    assert rows["beta/session[0]"]["f_hat"] == pytest.approx(0.4004)


# ----------------------------------------------------------- event artifact
def test_controller_event_log_roundtrip_and_validation(tmp_path):
    events_path = tmp_path / "controller.ndjson"
    policy = ControllerPolicy(budget_slots=400, round_slots=100, min_session_slots=40)
    clock = FakeClock()
    controller = FleetController(
        [make_target("a")], policy=policy, clock=clock, events_path=events_path
    )
    (directive,) = controller.step()
    controller.on_session_busy("a", directive.round_index, retry_after=1.5)
    clock.advance(1.5)
    (retry,) = controller.step()
    controller.on_session_complete("a", retry.round_index, 0.1, clean_report(100))
    controller.finalize()

    records = read_controller_events(events_path)
    assert [r["kind"] for r in records] == [
        "rebalance", "busy", "rebalance", "complete", "final",
    ]
    assert all(r["schema"] == CONTROLLER_SCHEMA for r in records)
    assert validate_controller_file(events_path) == []
    assert main(["obs", "validate", "--controller", str(events_path)]) == 0

    # A truncated trailing line (killed mid-write) is tolerated...
    truncated = tmp_path / "truncated.ndjson"
    lines = events_path.read_text().splitlines()
    truncated.write_text("\n".join(lines[:-1]) + '\n{"schema": "re')
    assert validate_controller_file(truncated) == []
    # ...corruption anywhere else is not.
    corrupt = tmp_path / "corrupt.ndjson"
    corrupt.write_text(lines[0] + "\n{nope}\n" + lines[2] + "\n")
    assert validate_controller_file(corrupt)
    assert main(["obs", "validate", "--controller", str(corrupt)]) == 1


def test_validate_controller_record_flags_structural_problems():
    assert validate_controller_record([]) == [
        "record: expected an object, got list"
    ]
    bad = {
        "schema": "nope/9",
        "seq": 0,
        "t": -1.0,
        "kind": "rebalance",
        "remaining_slots": -2,
        "allocations": [{"path": "a", "slots": 0, "round": 0, "seed": 1}],
    }
    problems = validate_controller_record(bad)
    for field in ("schema", "seq", "t", "remaining_slots", "allocations[0]"):
        assert any(field in p for p in problems), (field, problems)


# ------------------------------------------------------------------ alerts
def test_controller_alert_rules_fire_on_failures_busy_storm_and_stall():
    registry = MetricsRegistry()
    registry.counter("controller.launches").value = 10
    registry.counter("controller.busy_deferred").value = 6
    registry.counter("controller.completions").value = 5
    registry.counter("controller.failures").value = 1
    engine = AlertRules(rules=controller_alert_rules(stall_deadline=30.0))

    events = engine.evaluate(registry.snapshot(), wall=0.0)
    fired = {event.rule for event in events if event.state == "firing"}
    assert fired == {"controller-busy-storm", "controller-failures"}
    # Completions counter never moves again: the stall alert fires after
    # the deadline, and resolves as soon as a session completes.
    assert engine.evaluate(registry.snapshot(), wall=10.0) == []
    stale = engine.evaluate(registry.snapshot(), wall=31.0)
    assert [e.rule for e in stale if e.state == "firing"] == ["controller-stalled"]
    registry.counter("controller.completions").inc()
    resolved = engine.evaluate(registry.snapshot(), wall=32.0)
    assert [e.rule for e in resolved if e.state == "resolved"] == [
        "controller-stalled"
    ]


# ------------------------------------------------------ asyncio acceptance
def test_three_path_loopback_fleet_shifts_budget_and_replays_bytewise():
    """The issue's acceptance scenario, scaled down for test wall time.

    Three loopback paths, one behind a heavy-loss Gilbert impairment;
    the clean paths converge early, after which the controller must
    steer ≥30 points above an even split of the remaining budget to the
    lossy path — and the canonical merged registry must be byte-identical
    to a serial replay of the shards in observed completion order.
    """
    paths = [
        make_target("clean-a"),
        make_target("clean-b"),
        make_target("lossy", faults="heavy-loss"),
    ]
    policy = ControllerPolicy(
        budget_slots=1200, round_slots=60, min_session_slots=40
    )
    registry = MetricsRegistry()

    result = asyncio.run(
        run_fleet(
            paths,
            policy=policy,
            base_seed=1,
            registry=registry,
            rebalance_interval=0.05,
            max_wall_seconds=90.0,
        )
    )
    assert not result.deadline_hit
    assert not result.failures, [o.error for o in result.failures]
    assert result.ok

    # Byte-identical replay: canonical roster/round merge == serial
    # chronological re-merge of the same shards.
    assert result.merged_digest == result.replay_digest
    assert result.completion_order  # sanity: sessions actually completed
    controller = result.controller
    assert result.merged_digest == snapshot_digest(
        controller.merged_registry(order=result.completion_order).snapshot()
    )

    # The lossy path kept measuring while the clean paths idled.
    lossy = result.path_summary["lossy"]
    assert lossy["f_hat"] is not None and lossy["f_hat"] > 0.02
    post, lossy_post = 0, 0
    for event in result.events:
        if event["kind"] != "rebalance":
            continue
        others = [s for s in event["signals"] if s["path"] != "lossy"]
        if not all(s["converged"] for s in others):
            continue
        for allocation in event["allocations"]:
            post += allocation["slots"]
            if allocation["path"] == "lossy":
                lossy_post += allocation["slots"]
    assert post > 0, "clean paths never converged within the budget"
    assert lossy_post / post >= 1 / 3 + 0.30

    # The event stream is a valid repro.live.controller/1 artifact.
    problems = []
    for index, record in enumerate(result.events):
        problems.extend(validate_controller_record(record, f"events[{index}]"))
    assert problems == []
    assert result.events[-1]["kind"] == "final"
