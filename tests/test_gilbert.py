"""Tests for the Gilbert(-Elliott) synthetic channel."""

import random

import pytest

from repro.core.parametric import estimate_gilbert
from repro.core.schedule import GeometricSchedule, outcomes_from_true_states
from repro.errors import ConfigurationError
from repro.synthetic.gilbert import GilbertProcess, sample_packet_losses
from repro.synthetic.renewal import AlternatingRenewalProcess


def test_closed_form_properties():
    process = GilbertProcess(g=0.25, b=0.025, rng=random.Random(1))
    assert process.mean_episode_slots == pytest.approx(4.0)
    assert process.mean_gap_slots == pytest.approx(40.0)
    assert process.frequency == pytest.approx(0.025 / 0.275)


def test_generated_series_matches_parameters():
    process = GilbertProcess(g=0.2, b=0.02, rng=random.Random(2))
    states = process.generate(300_000)
    frequency, duration = AlternatingRenewalProcess.truth(states)
    assert frequency == pytest.approx(process.frequency, rel=0.08)
    assert duration == pytest.approx(5.0, rel=0.08)


def test_parametric_estimator_recovers_gilbert_parameters():
    # End-to-end consistency: generate from Gilbert, observe through the
    # geometric schedule, fit with the §8 parametric estimator.
    process = GilbertProcess(g=0.2, b=0.01, rng=random.Random(3))
    states = process.generate(400_000)
    schedule = GeometricSchedule(0.3, len(states), random.Random(4))
    outcomes = outcomes_from_true_states(schedule.experiments, states)
    fit = estimate_gilbert(outcomes)
    assert fit.g == pytest.approx(0.2, rel=0.05)
    assert fit.b == pytest.approx(0.01, rel=0.1)


def test_parameter_validation():
    with pytest.raises(ConfigurationError):
        GilbertProcess(g=0.0, b=0.1, rng=random.Random(5))
    with pytest.raises(ConfigurationError):
        GilbertProcess(g=0.1, b=1.5, rng=random.Random(5))


def test_packet_losses_track_state_dependent_probability():
    rng = random.Random(6)
    states = [True] * 5000 + [False] * 5000
    sent, lost = sample_packet_losses(
        states, packets_per_slot=2, rng=rng,
        loss_prob_congested=0.5, loss_prob_clear=0.0,
    )
    assert sent == 20_000
    # Only the congested half loses, at ~50%: ~5000 of 10,000.
    assert lost == pytest.approx(5000, rel=0.1)


def test_packet_losses_clear_channel_lossless():
    sent, lost = sample_packet_losses(
        [False] * 100, packets_per_slot=3, rng=random.Random(7)
    )
    assert (sent, lost) == (300, 0)


def test_packet_loss_validation():
    with pytest.raises(ConfigurationError):
        sample_packet_losses([True], 0, random.Random(8))
    with pytest.raises(ConfigurationError):
        sample_packet_losses([True], 1, random.Random(8), loss_prob_congested=1.5)


def test_zing_style_underestimate_on_gilbert_channel():
    # The paper's core phenomenon, reproduced analytically: a per-packet
    # loss fraction (what ZING reports) equals F x loss-prob-in-episode,
    # strictly below the congestion frequency F whenever that probability
    # is below 1.
    process = GilbertProcess(g=0.2, b=0.005, rng=random.Random(9))
    states = process.generate(200_000)
    sent, lost = sample_packet_losses(
        states, packets_per_slot=1, rng=random.Random(10),
        loss_prob_congested=0.5,
    )
    packet_loss_fraction = lost / sent
    frequency, _ = AlternatingRenewalProcess.truth(states)
    assert packet_loss_fraction < 0.6 * frequency
