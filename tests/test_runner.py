"""Tests for the experiment runner helpers."""

import math

import pytest

from repro.analysis.episodes import LossEpisode
from repro.config import MarkingConfig, TestbedConfig
from repro.errors import ConfigurationError
from repro.experiments.runner import (
    GroundTruth,
    build_testbed,
    compute_ground_truth,
    default_marking_for,
    run_badabing,
    run_zing,
)


def test_build_testbed_is_seed_deterministic():
    sim_a, _ = build_testbed(seed=5)
    sim_b, _ = build_testbed(seed=5)
    assert sim_a.rng("x").random() == sim_b.rng("x").random()


def test_default_marking_tau_grows_as_p_shrinks():
    slot = 0.005
    tau_low = default_marking_for(0.1, slot).tau
    tau_high = default_marking_for(0.9, slot).tau
    assert tau_low > tau_high
    # tau is "expected gap plus one std": always at least one slot.
    assert tau_high >= slot


def test_default_marking_alpha_steps():
    slot = 0.005
    assert default_marking_for(0.1, slot).alpha == 0.2
    assert default_marking_for(0.3, slot).alpha == 0.1
    assert default_marking_for(0.5, slot).alpha == 0.1
    assert default_marking_for(0.7, slot).alpha == 0.05
    assert default_marking_for(0.9, slot).alpha == 0.05


def test_ground_truth_window_clipping():
    sim, testbed = build_testbed(seed=2)
    # Inject synthetic drops straight into the monitor.
    testbed.monitor.drops.extend([(5.0, "tcp"), (5.05, "tcp"), (50.0, "tcp")])
    truth = compute_ground_truth(testbed, 0.005, start=4.0, duration=10.0)
    # The drop at t=50 lies outside [4, 14].
    assert truth.n_episodes == 1
    assert truth.episodes[0].drops == 2
    assert truth.n_slots == 2000


def test_ground_truth_empty_window():
    sim, testbed = build_testbed()
    truth = compute_ground_truth(testbed, 0.005, start=0.0, duration=10.0)
    assert truth.frequency == 0.0
    assert truth.duration_mean == 0.0
    assert truth.n_episodes == 0
    assert truth.loss_event_rate_per_slot == 0.0


def test_ground_truth_rejects_bad_duration():
    sim, testbed = build_testbed()
    with pytest.raises(ConfigurationError):
        compute_ground_truth(testbed, 0.005, 0.0, 0.0)


def test_loss_event_rate_per_slot():
    truth = GroundTruth(
        episodes=[LossEpisode(1.0, 1.1, 2)] * 3,
        frequency=0.01,
        duration_mean=0.1,
        duration_std=0.0,
        loss_rate=0.001,
        n_slots=6000,
        slot=0.005,
        window=(0.0, 30.0),
    )
    assert truth.loss_event_rate_per_slot == pytest.approx(3 / 6000)


def test_run_badabing_end_to_end_smoke():
    result, truth = run_badabing(
        "episodic_cbr",
        p=0.5,
        n_slots=6000,
        seed=9,
        scenario_kwargs={"episode_durations": (0.068,), "mean_spacing": 3.0},
        warmup=5.0,
    )
    assert truth.n_episodes >= 3
    assert result.frequency > 0
    # The estimate lands within a factor of ~2.5 of truth even on a 30 s run.
    assert truth.frequency / 2.5 < result.frequency < truth.frequency * 2.5


def test_run_badabing_keep_exposes_internals():
    keep = {}
    run_badabing(
        "episodic_cbr", p=0.3, n_slots=2000, seed=1, warmup=2.0, keep=keep
    )
    assert {"sim", "testbed", "tool", "traffic"} <= set(keep)


def test_run_badabing_custom_marking_respected():
    marking = MarkingConfig(alpha=0.05, tau=0.02)
    keep = {}
    run_badabing(
        "episodic_cbr", p=0.3, n_slots=2000, seed=1, marking=marking,
        warmup=2.0, keep=keep,
    )
    assert keep["tool"].marker.config is marking


def test_run_zing_end_to_end_smoke():
    result, truth = run_zing(
        "episodic_cbr",
        mean_interval=0.05,
        packet_size=256,
        duration=30.0,
        seed=10,
        scenario_kwargs={"episode_durations": (0.068,), "mean_spacing": 3.0},
        warmup=5.0,
    )
    assert truth.n_episodes >= 3
    # The §4 result: ZING's probe-loss frequency underestimates truth.
    assert result.frequency < truth.frequency


def test_run_with_custom_testbed_config():
    config = TestbedConfig(n_traffic_pairs=2)
    result, truth = run_badabing(
        "episodic_cbr", p=0.3, n_slots=2000, seed=1,
        testbed_config=config, warmup=2.0,
    )
    assert math.isnan(result.duration_seconds) or result.duration_seconds >= 0
