"""Cross-module integration tests reproducing the paper's headline shapes.

Each test runs the full pipeline — testbed, traffic, tool, ground truth —
at a scale big enough (120-300 simulated seconds) for the qualitative
results to be statistically stable, while staying fast enough for CI.
"""

import math

import pytest

from repro.core.clock import AffineClock, estimate_skew
from repro.core.jitter import SpikeJitter
from repro.experiments.runner import run_badabing, run_zing

CBR_KWARGS = {"episode_durations": (0.068,), "mean_spacing": 5.0}


@pytest.fixture(scope="module")
def badabing_cbr():
    return run_badabing(
        "episodic_cbr",
        p=0.5,
        n_slots=36_000,  # 180 s
        seed=21,
        scenario_kwargs=CBR_KWARGS,
        warmup=5.0,
    )


@pytest.fixture(scope="module")
def zing_cbr():
    return run_zing(
        "episodic_cbr",
        mean_interval=0.05,
        packet_size=256,
        duration=180.0,
        seed=21,
        scenario_kwargs=CBR_KWARGS,
        warmup=5.0,
    )


def test_badabing_frequency_accuracy(badabing_cbr):
    result, truth = badabing_cbr
    assert truth.n_episodes >= 15
    assert result.frequency == pytest.approx(truth.frequency, rel=0.6)


def test_badabing_duration_accuracy(badabing_cbr):
    result, truth = badabing_cbr
    assert result.estimate.duration_valid
    # The paper reports durations within ~25% at p >= 0.3 over 900 s; on a
    # 180 s run allow 50%.
    assert result.duration_seconds == pytest.approx(truth.duration_mean, rel=0.5)


def test_badabing_validation_passes_on_clean_run(badabing_cbr):
    result, _truth = badabing_cbr
    assert result.validation.violations == 0
    assert result.validation.is_acceptable()


def test_zing_underestimates_frequency(zing_cbr):
    result, truth = zing_cbr
    assert truth.n_episodes >= 15
    assert result.frequency < 0.7 * truth.frequency


def test_zing_cannot_measure_duration(zing_cbr):
    result, truth = zing_cbr
    assert result.duration_mean < 0.5 * truth.duration_mean


def test_badabing_beats_zing_on_same_traffic(badabing_cbr, zing_cbr):
    bb_result, bb_truth = badabing_cbr
    zing_result, zing_truth = zing_cbr
    bb_rel_error = abs(bb_result.frequency - bb_truth.frequency) / bb_truth.frequency
    zing_rel_error = (
        abs(zing_result.frequency - zing_truth.frequency) / zing_truth.frequency
    )
    assert bb_rel_error < zing_rel_error


def test_improved_algorithm_runs_end_to_end():
    result, truth = run_badabing(
        "episodic_cbr",
        p=0.5,
        n_slots=24_000,
        seed=23,
        improved=True,
        scenario_kwargs=CBR_KWARGS,
        warmup=5.0,
    )
    assert result.estimate.improved
    assert any(outcome.is_extended for outcome in result.outcomes)
    if result.estimate.duration_valid:
        assert result.duration_seconds == pytest.approx(truth.duration_mean, rel=1.0)
    assert result.frequency == pytest.approx(truth.frequency, rel=0.8)


def test_probe_jitter_degrades_but_does_not_break_estimates():
    clean, truth_clean = run_badabing(
        "episodic_cbr", p=0.5, n_slots=24_000, seed=25,
        scenario_kwargs=CBR_KWARGS, warmup=5.0,
    )
    jittered, truth_jitter = run_badabing(
        "episodic_cbr", p=0.5, n_slots=24_000, seed=25,
        scenario_kwargs=CBR_KWARGS, warmup=5.0,
        jitter=SpikeJitter(base_sigma=0.0005, spike_prob=0.02, spike_delay=0.02),
    )
    # Jitter shifts probes off slot boundaries but the estimator still
    # lands in the right decade.
    assert jittered.frequency == pytest.approx(truth_jitter.frequency, rel=1.0)
    assert clean.frequency > 0 and jittered.frequency > 0


def test_clock_skew_inflates_owds_and_is_removable():
    keep = {}
    result, _truth = run_badabing(
        "episodic_cbr", p=0.3, n_slots=24_000, seed=27,
        scenario_kwargs=CBR_KWARGS, warmup=5.0,
        receiver_clock=AffineClock(offset=0.0, skew=5e-5),
        keep=keep,
    )
    points = [
        (probe.send_time, owd)
        for probe in result.probes
        for owd in probe.owds[:1]
    ]
    _intercept, slope = estimate_skew(points)
    assert slope == pytest.approx(5e-5, rel=0.15)


def test_frequency_estimates_scale_with_true_frequency():
    sparse = run_badabing(
        "episodic_cbr", p=0.5, n_slots=24_000, seed=29,
        scenario_kwargs={"episode_durations": (0.068,), "mean_spacing": 10.0},
        warmup=5.0,
    )
    dense = run_badabing(
        "episodic_cbr", p=0.5, n_slots=24_000, seed=29,
        scenario_kwargs={"episode_durations": (0.068,), "mean_spacing": 2.0},
        warmup=5.0,
    )
    assert dense[1].frequency > sparse[1].frequency
    assert dense[0].frequency > sparse[0].frequency
