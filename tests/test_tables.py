"""Tests for the table-reproduction harness (smoke profile).

These run the real experiment pipeline end to end but on the tiny SMOKE
profile; the benchmark suite runs the paper-scale versions. Assertions
target the paper's qualitative *shapes*, not absolute numbers.
"""

import math

import pytest

from repro.experiments.profiles import SMOKE
from repro.experiments.tables import (
    ALL_TABLES,
    TableResult,
    table_1,
    table_2,
    table_4,
    table_7,
    table_8,
)


@pytest.fixture(scope="module")
def table1():
    return table_1(profile=SMOKE)


@pytest.fixture(scope="module")
def table2():
    return table_2(profile=SMOKE)


def test_registry_has_all_eight():
    assert sorted(ALL_TABLES) == [f"table{i}" for i in range(1, 9)]


def test_table1_structure(table1):
    assert isinstance(table1, TableResult)
    assert [row.label for row in table1.rows] == [
        "true values", "ZING (10Hz)", "ZING (20Hz)",
    ]
    assert table1.profile == "smoke"


def test_table1_zing_underestimates_tcp_loss(table1):
    truth = table1.rows[0]
    assert truth.true_frequency > 0.005  # TCP scenario does lose packets
    for row in table1.rows[1:]:
        # The §4 headline: ZING reports a small fraction of the truth.
        assert row.measured_frequency < 0.5 * row.true_frequency


def test_table2_zing_closer_on_cbr_but_still_low(table2):
    truth = table2.rows[0]
    assert truth.true_duration == pytest.approx(0.068, abs=0.04)
    for row in table2.rows[1:]:
        assert 0.0 <= row.measured_frequency < row.true_frequency
        # Duration from consecutive lost probes is far below the true 68 ms.
        assert row.measured_duration < row.true_duration


def test_table4_badabing_tracks_frequency():
    result = table_4(profile=SMOKE)
    assert len(result.rows) == 5
    # At moderate-to-high p, the estimate lands within ~2.5x of truth even
    # on the 60 s smoke profile (the paper's 900 s runs are much tighter).
    for row in result.rows:
        if row.extra["p"] >= 0.5:
            assert row.measured_frequency == pytest.approx(
                row.true_frequency, rel=1.5
            )
    # Probe load grows with p.
    loads = [row.extra["probe_load_bps"] for row in result.rows]
    assert loads == sorted(loads)


def test_table7_structure():
    result = table_7(profile=SMOKE)
    assert len(result.rows) == 4
    taus = [row.extra["tau"] for row in result.rows]
    assert taus == [0.040, 0.080, 0.040, 0.080]
    n_values = [row.extra["n_slots"] for row in result.rows]
    assert n_values[0] == n_values[1] == SMOKE.n_slots
    assert n_values[2] == n_values[3] == SMOKE.n_slots_large


def test_table8_badabing_beats_zing():
    # On the 60 s SMOKE profile only a handful of episodes occur, so this
    # asserts the robust qualitative shape; the benchmark harness runs the
    # paper-scale version where the accuracy gap is decisive.
    result = table_8(profile=SMOKE)
    assert len(result.rows) == 4
    by_label = {row.label: row for row in result.rows}
    for scenario in ("CBR", "Harpoon web-like"):
        badabing = by_label[f"{scenario} / BADABING"]
        zing = by_label[f"{scenario} / ZING"]
        # ZING systematically underestimates frequency (PASTA sees loss
        # only when its own packet dies); BADABING stays within ~2.5x.
        assert zing.measured_frequency < 0.6 * zing.true_frequency
        assert badabing.measured_frequency == pytest.approx(
            badabing.true_frequency, rel=1.5
        )
    # Web-like traffic is where the gap is starkest even on short runs.
    harpoon_bb = by_label["Harpoon web-like / BADABING"]
    harpoon_zing = by_label["Harpoon web-like / ZING"]
    assert abs(harpoon_bb.measured_frequency - harpoon_bb.true_frequency) < abs(
        harpoon_zing.measured_frequency - harpoon_zing.true_frequency
    )
    # Duration: ZING's consecutive-loss-run estimate collapses toward zero.
    assert harpoon_zing.measured_duration < 0.2 * harpoon_zing.true_duration
    assert harpoon_bb.measured_duration == pytest.approx(
        harpoon_bb.true_duration, rel=0.8
    )
