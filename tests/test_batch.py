"""Scalar-vs-vectorized equivalence for the array-batched slot pipeline.

The contract (`repro.core.batch`): for identical inputs the batch pipeline
produces the *same bits* as the scalar reference — the same experiments for
the same seed (including the state the RNG is left in), the same marked
slot states, the same pattern counter, the same estimates and coverage —
so sweep scorecard and metrics digests are byte-identical between modes.
Hypothesis drives random seeds, probe streams, and marking parameters at
the pieces; an end-to-end sweep pins the digests.
"""

import filecmp
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.config import MarkingConfig
from repro.core import batch
from repro.core.estimators import count_patterns, estimate_from_counter
from repro.core.marking import CongestionMarker
from repro.core.records import ProbeRecord
from repro.core.schedule import Experiment, GeometricSchedule, coverage_report
from repro.core.validation import SequentialValidator, report_from_counter
from repro.experiments.runner import (
    run_badabing,
    scorecard_from_outcomes,
    sweep_badabing,
)
from repro.obs.audit import scorecard_digest
from repro.obs.metrics import MetricsRegistry, snapshot_digest


def assert_same_estimate(a, b):
    """Field-wise LossEstimate equality where nan == nan (dataclass == has
    the IEEE nan != nan hazard exactly when no transition was observed)."""
    assert a.frequency == b.frequency
    assert a.duration_slots == b.duration_slots or (
        a.duration_slots != a.duration_slots and b.duration_slots != b.duration_slots
    )
    assert a.n_experiments == b.n_experiments
    assert a.counts == b.counts
    assert a.r_hat == b.r_hat
    assert a.improved == b.improved
    assert a.coverage == b.coverage

# ---------------------------------------------------------------------------
# Mirrored RNG
# ---------------------------------------------------------------------------


@given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 500))
@settings(max_examples=25, deadline=None)
def test_mirrored_rng_matches_python_stream(seed, n):
    rng = random.Random(seed)
    twin = random.Random(seed)
    expected = [twin.random() for _ in range(n)]
    block = batch.random_block(rng, n)
    assert block.tolist() == expected
    # The source RNG was advanced past the block: the next scalar draws
    # continue the stream exactly where a pure-Python consumer would be.
    reference = random.Random(seed)
    for _ in range(n):
        reference.random()
    assert rng.getstate() == reference.getstate()


# ---------------------------------------------------------------------------
# Schedule generation
# ---------------------------------------------------------------------------


@given(
    seed=st.integers(0, 2**32 - 1),
    p=st.floats(0.01, 1.0, allow_nan=False),
    improved=st.booleans(),
    n_slots=st.integers(2, 300),
)
@settings(max_examples=60, deadline=None)
def test_schedule_scalar_vs_vectorized(seed, p, improved, n_slots):
    rng_a = random.Random(seed)
    rng_b = random.Random(seed)
    scalar = GeometricSchedule(p, n_slots, rng_a, improved=improved)
    batched = GeometricSchedule(p, n_slots, rng_b, improved=improved, vectorized=True)
    assert scalar.experiments == batched.experiments
    assert scalar.probe_slots == batched.probe_slots
    # Not just the same schedule: the same number of draws consumed, so
    # downstream users of the shared RNG stay aligned across modes.
    assert rng_a.getstate() == rng_b.getstate()


def test_vectorized_schedule_exposes_arrays():
    schedule = GeometricSchedule(0.4, 50, random.Random(9), improved=True, vectorized=True)
    assert schedule.start_array is not None
    assert schedule.start_array.tolist() == [e.start_slot for e in schedule.experiments]
    assert schedule.length_array.tolist() == [e.length for e in schedule.experiments]
    scalar = GeometricSchedule(0.4, 50, random.Random(9), improved=True)
    assert scalar.start_array is None


# ---------------------------------------------------------------------------
# Probe streams → marking → fold
# ---------------------------------------------------------------------------


@st.composite
def probe_streams(draw):
    """A chronological probe stream over a small slot window."""
    n_slots = draw(st.integers(2, 40))
    probes = []
    for slot in range(n_slots):
        if not draw(st.booleans()):
            continue
        offset = draw(st.floats(0.0, 0.004, allow_nan=False))
        delivered = draw(st.integers(0, 3))
        owds = tuple(
            draw(st.floats(0.001, 0.2, allow_nan=False)) for _ in range(delivered)
        )
        lost = delivered < 3
        obl = (
            draw(st.one_of(st.none(), st.floats(0.001, 0.2, allow_nan=False)))
            if lost
            else None
        )
        probes.append(
            ProbeRecord(
                slot=slot,
                send_time=slot * 0.005 + offset,
                n_packets=3,
                owds=owds,
                owd_before_loss=obl,
            )
        )
    return n_slots, probes


@st.composite
def marking_configs(draw):
    return MarkingConfig(
        alpha=draw(st.floats(0.01, 0.5, allow_nan=False)),
        tau=draw(st.floats(0.001, 0.1, allow_nan=False)),
        owd_history=draw(st.integers(1, 8)),
        owd_statistic=draw(st.sampled_from(["mean", "max", "median"])),
        filter_uncorrelated_losses=draw(st.booleans()),
    )


@given(stream=probe_streams(), config=marking_configs())
@settings(max_examples=80, deadline=None)
def test_marking_scalar_vs_vectorized(stream, config):
    _n_slots, probes = stream
    marker = CongestionMarker(config)
    scalar = marker.mark(probes)
    batched = marker.mark_arrays(batch.ProbeArrays.from_records(probes))
    assert batched.slot_states == scalar.slot_states
    assert batched.marked_by_loss == scalar.marked_by_loss
    assert batched.marked_by_delay == scalar.marked_by_delay
    assert batched.noise_losses == scalar.noise_losses
    assert batched.owd_max_estimates == scalar.owd_max_estimates


@given(
    stream=probe_streams(),
    config=marking_configs(),
    seed=st.integers(0, 2**16),
    p=st.floats(0.1, 1.0, allow_nan=False),
    improved=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_pipeline_counter_outcomes_coverage_match_scalar(
    stream, config, seed, p, improved
):
    n_slots, probes = stream
    schedule = GeometricSchedule(p, n_slots, random.Random(seed), improved=improved)

    marker = CongestionMarker(config)
    marked = marker.mark(probes)
    outcomes = schedule.outcomes_from_states(marked.slot_states)
    counter = count_patterns(outcomes)
    coverage = schedule.coverage_from_states(marked.slot_states)

    starts, lengths = batch.experiment_arrays(schedule.experiments)
    pipeline = batch.run_slot_pipeline(
        starts,
        lengths,
        batch.ProbeArrays.from_records(probes),
        marking=config,
        n_slots=n_slots,
    )
    assert pipeline.counter == counter
    assert (
        batch.materialize_outcomes(pipeline.starts, pipeline.keys, pipeline.valid)
        == outcomes
    )
    assert pipeline.coverage == coverage
    # The one counter serves both consumers identically.
    if counter.get("M", 0):
        assert_same_estimate(
            estimate_from_counter(counter, improved=improved),
            estimate_from_counter(pipeline.counter, improved=improved),
        )
    assert report_from_counter(pipeline.counter) == report_from_counter(counter)
    validator = SequentialValidator()
    validator.extend(outcomes)
    absorbed = SequentialValidator()
    absorbed.absorb_counter(pipeline.counter)
    assert absorbed.pattern_counter == validator.pattern_counter


def test_counter_from_histogram_covers_every_pattern():
    """One of each outcome key reconstructs exactly the scalar counter."""
    from repro.core.records import ExperimentOutcome

    outcomes = [
        ExperimentOutcome(i, bits)
        for i, bits in enumerate(
            [(a, b) for a in (0, 1) for b in (0, 1)]
            + [(a, b, c) for a in (0, 1) for b in (0, 1) for c in (0, 1)]
        )
    ]
    starts = np.arange(len(outcomes), dtype=np.int64)
    lengths = np.array([len(o.bits) for o in outcomes], dtype=np.int64)
    dense = np.full(0, -1, dtype=np.int8)  # unused: keys built directly
    keys = np.array(
        [
            (len(o.bits) - 2) * 8
            + sum(bit << (len(o.bits) - 1 - i) for i, bit in enumerate(o.bits))
            for o in outcomes
        ],
        dtype=np.int64,
    )
    del dense, lengths
    histogram = batch.pattern_histogram(keys, np.ones(len(keys), dtype=bool))
    assert batch.counter_from_histogram(histogram) == count_patterns(outcomes)
    assert batch.materialize_outcomes(
        starts, keys, np.ones(len(keys), dtype=bool)
    ) == outcomes


# ---------------------------------------------------------------------------
# End to end: identical results and digests
# ---------------------------------------------------------------------------


def _run_cell(vectorized):
    result, truth = run_badabing(
        "episodic_cbr",
        p=0.3,
        n_slots=2500,
        seed=11,
        improved=True,
        vectorized=vectorized,
        scenario_kwargs={"mean_spacing": 2.0},
    )
    return result, truth


def test_run_badabing_vectorized_equivalence():
    scalar, truth_s = _run_cell(False)
    batched, truth_v = _run_cell(True)
    assert_same_estimate(scalar.estimate, batched.estimate)
    assert scalar.validation == batched.validation
    assert scalar.outcomes == batched.outcomes
    assert scalar.coverage == batched.coverage
    assert scalar.probes == batched.probes
    assert scalar.marking.slot_states == batched.marking.slot_states
    assert scalar.n_probes_sent == batched.n_probes_sent
    assert truth_s.frequency == truth_v.frequency


def _sweep_digests(vectorized):
    metrics = MetricsRegistry()
    outcomes = sweep_badabing(
        [{"p": 0.3, "seed": 3}, {"p": 0.5, "seed": 4}],
        metrics=metrics,
        scenario="episodic_cbr",
        n_slots=1200,
        scenario_kwargs={"mean_spacing": 2.0},
        vectorized=vectorized,
    )
    assert all(outcome.ok for outcome in outcomes)
    scorecard = scorecard_from_outcomes(outcomes)
    return scorecard_digest(scorecard), snapshot_digest(metrics.snapshot())


def test_sweep_digests_identical_across_modes():
    assert _sweep_digests(False) == _sweep_digests(True)


def test_trace_binary_roundtrip_and_vectorized_reestimate(tmp_path):
    from repro.io import (
        load_measurement,
        load_measurement_binary,
        reestimate,
        save_measurement,
        save_measurement_binary,
    )
    from repro.io.traces import TraceWriter, measurement_from_tool

    keep = {}
    run_badabing(
        "episodic_cbr",
        p=0.3,
        n_slots=1500,
        seed=6,
        improved=True,
        scenario_kwargs={"mean_spacing": 2.0},
        keep=keep,
    )
    measurement = measurement_from_tool(keep["tool"], {"note": "batch"})

    jsonl = tmp_path / "trace.jsonl"
    packed = tmp_path / "trace.npz"
    save_measurement(jsonl, measurement)
    save_measurement_binary(packed, measurement)
    from_jsonl = load_measurement(jsonl)
    from_binary = load_measurement_binary(packed)
    assert from_binary.experiments == from_jsonl.experiments
    assert from_binary.probes == from_jsonl.probes
    assert from_binary.metadata == from_jsonl.metadata

    scalar = reestimate(from_jsonl, vectorized=False)
    batched = reestimate(from_binary, vectorized=True)
    assert_same_estimate(batched.estimate, scalar.estimate)
    assert batched.validation == scalar.validation
    assert batched.outcomes == scalar.outcomes
    assert batched.coverage == scalar.coverage
    assert batched.marking.slot_states == scalar.marking.slot_states
    assert batched.probe_load_bps == scalar.probe_load_bps

    # Batched writes produce byte-identical trace files.
    one_by_one = tmp_path / "a.jsonl"
    batched_path = tmp_path / "b.jsonl"
    args = (
        measurement.slot_width,
        measurement.n_slots,
        measurement.p,
        measurement.experiments,
        measurement.metadata,
    )
    with TraceWriter(one_by_one, *args) as writer:
        for probe in measurement.probes:
            writer.write_probe(probe)
    with TraceWriter(batched_path, *args) as writer:
        writer.write_probes(measurement.probes)
    assert filecmp.cmp(one_by_one, batched_path, shallow=False)


def test_simulator_vectorized_flag_sets_tool_default():
    from repro.net.simulator import Simulator

    sim = Simulator(seed=1, vectorized=True)
    assert sim.vectorized is True
    assert Simulator(seed=1).vectorized is False
