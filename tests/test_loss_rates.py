"""Tests for §3's router-centric vs end-to-end loss rates.

The paper's central observation (end of §3): "during a period where the
router-centric loss rate is non-zero, there may be flows that do not lose
any packets and therefore have end-to-end loss rates of zero." This is
exactly why self-loss probing (ZING/PING) underestimates — and the
simulator reproduces it directly.
"""

import pytest

from repro.core.estimators import LossEstimate
from repro.errors import ConfigurationError, EstimationError
from repro.net.monitor import QueueMonitor
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.net.simulator import Simulator
from repro.net.topology import DumbbellTestbed
from repro.traffic.tcp import start_tcp_flow
from repro.config import TestbedConfig


def test_per_flow_counters_require_opt_in():
    sim = Simulator()
    monitor = QueueMonitor(sim)
    with pytest.raises(ConfigurationError):
        monitor.end_to_end_loss_rates()


def test_per_flow_rates_computed():
    sim = Simulator()
    queue = DropTailQueue(1500)
    monitor = QueueMonitor(sim, track_flows=True)
    queue.attach(monitor)
    queue.offer(0.0, Packet("a", "b", 1500, flow="f1"))  # accepted
    queue.offer(0.1, Packet("a", "b", 1500, flow="f1"))  # dropped
    queue.offer(0.2, Packet("c", "b", 1500, flow="f2"))  # dropped (full)
    rates = monitor.end_to_end_loss_rates()
    assert rates["f1"] == pytest.approx(0.5)
    assert rates["f2"] == 1.0  # never got a packet through


def test_some_flows_lose_nothing_during_episodes():
    # Multiple TCP flows through a congested bottleneck: the router-centric
    # loss rate is positive, yet typically at least one flow exits a run
    # without a single drop, and flow loss rates differ from the aggregate.
    sim = Simulator(seed=5)
    testbed = DumbbellTestbed(sim, TestbedConfig(buffer_time=0.03))
    testbed.monitor.track_flows = True
    for i in range(4):
        start_tcp_flow(
            sim,
            testbed.traffic_senders[i % 4],
            testbed.traffic_receivers[i % 4],
            total_segments=None if i else 2000,
        )
    sim.run(until=30.0)
    monitor = testbed.monitor
    assert monitor.loss_rate > 0
    rates = monitor.end_to_end_loss_rates()
    data_rates = {f: r for f, r in rates.items() if f.startswith("tcp:")}
    assert len(data_rates) >= 4
    # End-to-end rates are heterogeneous around the router-centric rate.
    assert min(data_rates.values()) < monitor.loss_rate < max(data_rates.values()) + 1e-9


def test_estimate_episode_rate_and_loss_rate():
    estimate = LossEstimate(
        frequency=0.02, duration_slots=4.0, n_experiments=100, counts={}
    )
    assert estimate.episode_rate_per_slot == pytest.approx(0.005)
    assert estimate.loss_rate(0.5) == pytest.approx(0.01)
    with pytest.raises(EstimationError):
        estimate.loss_rate(1.5)


def test_episode_rate_nan_when_duration_invalid():
    import math

    estimate = LossEstimate(
        frequency=0.02, duration_slots=float("nan"), n_experiments=10, counts={}
    )
    assert math.isnan(estimate.episode_rate_per_slot)
