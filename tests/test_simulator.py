"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.net.simulator import Simulator, _stable_seed


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(0.3, order.append, "c")
    sim.schedule(0.1, order.append, "a")
    sim.schedule(0.2, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for tag in ("first", "second", "third"):
        sim.schedule(1.0, order.append, tag)
    sim.run()
    assert order == ["first", "second", "third"]


def test_clock_advances_to_event_times():
    sim = Simulator()
    seen = []
    sim.schedule(0.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [0.5]
    assert sim.now == 0.5


def test_run_until_is_inclusive_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "at-1")
    sim.schedule(2.0, fired.append, "at-2")
    sim.run(until=1.0)
    assert fired == ["at-1"]
    assert sim.now == 1.0
    sim.run(until=3.0)
    assert fired == ["at-1", "at-2"]
    # Clock advances to `until` even though the queue drained earlier.
    assert sim.now == 3.0


def test_events_scheduled_during_run_are_dispatched():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            sim.schedule(0.1, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert seen == [0, 1, 2, 3]


def test_cancelled_events_do_not_fire():
    sim = Simulator()
    seen = []
    event = sim.schedule(0.5, seen.append, "no")
    sim.schedule(0.6, seen.append, "yes")
    event.cancel()
    sim.run()
    assert seen == ["yes"]


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(0.5, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_scheduling_into_the_past_raises():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_max_events_limits_dispatch():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.schedule(0.1 * (i + 1), seen.append, i)
    sim.run(max_events=4)
    assert seen == [0, 1, 2, 3]


def test_pending_counts_uncancelled():
    sim = Simulator()
    keep = sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    drop.cancel()
    assert sim.pending() == 1
    assert keep is not drop


def test_rng_streams_are_deterministic_per_seed_and_label():
    values_a = Simulator(seed=42).rng("x").random()
    values_b = Simulator(seed=42).rng("x").random()
    assert values_a == values_b


def test_rng_streams_differ_across_labels_and_seeds():
    sim = Simulator(seed=42)
    assert sim.rng("x").random() != sim.rng("y").random()
    assert Simulator(seed=1).rng("x").random() != Simulator(seed=2).rng("x").random()


def test_rng_returns_same_stream_for_same_label():
    sim = Simulator()
    assert sim.rng("a") is sim.rng("a")


def test_stable_seed_independent_of_hash_randomization():
    # FNV-1a over the bytes: fixed forever, so runs are reproducible across
    # interpreter invocations.
    assert _stable_seed(1, "badabing") == _stable_seed(1, "badabing")
    assert _stable_seed(1, "a") != _stable_seed(1, "b")


def test_events_processed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(0.1 * (i + 1), lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_reentrant_run_rejected():
    sim = Simulator()

    def nested():
        sim.run()

    sim.schedule(0.1, nested)
    with pytest.raises(SimulationError):
        sim.run()


def test_run_returns_dispatch_count():
    sim = Simulator()
    for i in range(5):
        sim.schedule(0.1 * (i + 1), lambda: None)
    assert sim.run() == 5
    assert sim.run() == 0  # drained


def test_budget_exhaustion_is_exposed():
    sim = Simulator()
    for i in range(10):
        sim.schedule(0.1 * (i + 1), lambda: None)
    dispatched = sim.run(max_events=4)
    assert dispatched == 4
    assert sim.budget_exhausted
    # Finishing the queue clears the flag.
    assert sim.run() == 6
    assert not sim.budget_exhausted


def test_budget_exactly_sufficient_is_not_exhausted():
    sim = Simulator()
    for i in range(4):
        sim.schedule(0.1 * (i + 1), lambda: None)
    sim.run(max_events=4)
    assert not sim.budget_exhausted


def test_budget_with_until_ignores_events_beyond_until():
    sim = Simulator()
    sim.schedule(0.1, lambda: None)
    sim.schedule(5.0, lambda: None)  # beyond until: not runnable this call
    sim.run(until=1.0, max_events=1)
    assert not sim.budget_exhausted
    assert sim.now == 1.0


def test_exhausted_run_does_not_jump_clock_past_pending_events():
    sim = Simulator()
    fired = []
    sim.schedule(0.1, fired.append, 1)
    sim.schedule(0.2, fired.append, 2)
    sim.run(until=1.0, max_events=1)
    assert sim.budget_exhausted
    assert sim.now == pytest.approx(0.1)  # not advanced to until
    sim.run(until=1.0)
    assert fired == [1, 2]
    assert sim.now == 1.0
