"""Integration tests: instrumentation threaded through the pipeline.

Covers the observability acceptance criteria:

* same-seed runs produce byte-identical metric snapshots,
* exported metrics documents and trace files validate against the schemas,
* run manifests carry provenance + timing + headline metrics,
* budget exhaustion is structured (events/sim-time on the exception),
* drop attribution separates injected-fault drops from queue tail drops,
* the CLI round-trips ``--metrics-out``/``--trace-out`` through
  ``obs validate`` and ``obs summary``.
"""

import json

import pytest

from repro.cli import main
from repro.errors import BudgetExhaustedError
from repro.experiments.runner import (
    run_badabing,
    run_protected,
    run_zing,
    sweep_badabing,
)
from repro.net.faults import FaultProfile
from repro.obs import (
    MetricsRegistry,
    NullRegistry,
    Tracer,
    metrics_document,
    validate_metrics_document,
    validate_trace_lines,
)
from repro.obs.manifest import MANIFEST_SCHEMA

RUN_KWARGS = dict(
    scenario="episodic_cbr",
    p=0.3,
    n_slots=1500,
    seed=3,
    warmup=2.0,
    scenario_kwargs={"mean_spacing": 2.0},
)


def _run(metrics=None, tracer=None, **overrides):
    kwargs = dict(RUN_KWARGS, **overrides)
    return run_badabing(metrics=metrics, tracer=tracer, **kwargs)


class TestDeterminism:
    def test_same_seed_same_snapshot(self):
        snaps = []
        for _ in range(2):
            registry = MetricsRegistry()
            _run(metrics=registry)
            snaps.append(registry.snapshot())
        assert snaps[0] == snaps[1]
        # and it is truly byte-identical once serialized
        assert json.dumps(snaps[0], sort_keys=True) == json.dumps(
            snaps[1], sort_keys=True
        )

    def test_different_seed_different_snapshot(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        _run(metrics=a, seed=3)
        _run(metrics=b, seed=4)
        assert a.snapshot() != b.snapshot()

    def test_same_seed_same_deterministic_manifest(self):
        result_a, _ = _run(metrics=MetricsRegistry())
        result_b, _ = _run(metrics=MetricsRegistry())
        assert (
            result_a.manifest.deterministic_dict()
            == result_b.manifest.deterministic_dict()
        )

    def test_null_registry_estimates_match_enabled(self):
        result_null, truth_null = _run(metrics=NullRegistry())
        result_on, truth_on = _run(metrics=MetricsRegistry())
        assert result_null.frequency == result_on.frequency
        assert truth_null.frequency == truth_on.frequency
        assert result_null.n_probes_sent == result_on.n_probes_sent


class TestManifest:
    def test_manifest_fields(self):
        registry = MetricsRegistry()
        result, _ = _run(metrics=registry)
        manifest = result.manifest
        assert manifest is not None
        assert manifest.tool == "badabing"
        assert manifest.seed == 3
        assert manifest.schema == MANIFEST_SCHEMA
        assert len(manifest.config_digest) == 64
        assert manifest.events_processed > 0
        assert manifest.sim_seconds > 0
        assert manifest.wall_seconds > 0
        assert manifest.sim_rate > 0
        assert manifest.metrics["probe.packets_sent"] > 0

    def test_manifest_attached_even_without_registry(self):
        # Default (no explicit registry) still instruments: on by default.
        result, _ = _run()
        assert result.manifest is not None
        assert result.manifest.metrics["sim.events_processed"] > 0

    def test_config_digest_tracks_configuration(self):
        result_a, _ = _run()
        result_b, _ = _run(p=0.5)
        assert result_a.manifest.config_digest != result_b.manifest.config_digest

    def test_zing_manifest(self):
        result, _ = run_zing(
            "episodic_cbr",
            mean_interval=0.05,
            packet_size=64,
            duration=10.0,
            seed=3,
            warmup=2.0,
            scenario_kwargs={"mean_spacing": 2.0},
            metrics=MetricsRegistry(),
        )
        assert result.manifest.tool == "zing"
        assert result.manifest.metrics["probe.packets_sent"] > 0

    def test_manifest_roundtrip(self):
        from repro.obs import RunManifest

        result, _ = _run()
        again = RunManifest.from_dict(result.manifest.to_dict())
        assert again.to_dict() == result.manifest.to_dict()


class TestSchemas:
    def test_metrics_document_validates(self):
        registry = MetricsRegistry()
        result, _ = _run(metrics=registry)
        document = metrics_document(registry, result.manifest)
        assert validate_metrics_document(document) == []

    def test_trace_validates(self, tmp_path):
        tracer = Tracer(tool="badabing", seed=3)
        _run(metrics=MetricsRegistry(), tracer=tracer)
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path)
        with open(path, "r", encoding="utf-8") as handle:
            assert validate_trace_lines(handle) == []
        names = {span["name"] for span in tracer.spans}
        assert {"testbed.build", "sim.run", "probe.join", "tool.result"} <= names

    def test_validator_catches_corruption(self):
        registry = MetricsRegistry()
        result, _ = _run(metrics=registry)
        document = metrics_document(registry, result.manifest)
        document["metrics"]["counters"]["bad"] = "not-a-number"
        del document["manifest"]["seed"]
        problems = validate_metrics_document(document)
        assert any("bad" in p for p in problems)
        assert any("seed" in p for p in problems)


class TestBudgetExhaustion:
    def test_structured_error(self):
        with pytest.raises(BudgetExhaustedError) as excinfo:
            _run(max_events=500)
        exc = excinfo.value
        assert exc.events_processed == 500
        assert exc.budget == 500
        assert exc.sim_time is not None and exc.sim_time >= 0
        assert "budget exhausted" in str(exc)

    def test_run_protected_flags_budget(self):
        outcome = run_protected(
            run_badabing, label="tiny", **dict(RUN_KWARGS, max_events=500)
        )
        assert not outcome.ok
        assert outcome.budget_exhausted
        assert outcome.error_type == "BudgetExhaustedError"


class TestDropAttribution:
    def test_fault_drops_and_tail_drops_are_distinguished(self):
        registry = MetricsRegistry()
        profile = FaultProfile(drop_probability=0.05)
        keep = {}
        _run(metrics=registry, faults=profile, keep=keep)
        counters = registry.snapshot()["counters"]
        fault_drops = {
            key: value
            for key, value in counters.items()
            if key.startswith("faults.drops{")
        }
        tail_drops = {
            key: value
            for key, value in counters.items()
            if key.startswith("queue.drops{") and "cause=tail" in key
        }
        assert sum(fault_drops.values()) == keep["fault_injector"].stats.dropped
        assert all("cause=random" in key for key in fault_drops)
        # Congested bottleneck still tail-drops independently of the faults.
        assert sum(tail_drops.values()) > 0
        bottleneck_tail = sum(
            value
            for key, value in tail_drops.items()
            if "queue=bottleneck" in key
        )
        assert bottleneck_tail == keep["testbed"].monitor.total_drops

    def test_queue_drop_counter_matches_stats(self):
        registry = MetricsRegistry()
        keep = {}
        _run(metrics=registry, keep=keep)
        counters = registry.snapshot()["counters"]
        assert (
            counters["queue.dropped_packets{queue=bottleneck}"]
            == keep["testbed"].monitor.total_drops
        )


class TestSweepTelemetry:
    def test_shared_registry_across_cells(self):
        registry = MetricsRegistry()
        tracer = Tracer(kind="sweep")
        outcomes = sweep_badabing(
            [
                {"seed": 3},
                {"seed": 4},
                {"seed": 5, "max_events": 500, "label": "doomed"},
            ],
            metrics=registry,
            tracer=tracer,
            **{k: v for k, v in RUN_KWARGS.items() if k != "seed"},
        )
        assert [o.ok for o in outcomes] == [True, True, False]
        counters = registry.snapshot()["counters"]
        assert counters["sweep.cells{status=ok}"] == 2
        assert counters["sweep.cells{status=budget_exhausted}"] == 1
        assert counters["sweep.degraded_cells"] == 1
        cell_spans = [s for s in tracer.spans if s["name"] == "sweep.cell"]
        assert len(cell_spans) == 3
        # Each successful cell's manifest reports only its own events.
        manifests = [o.result.manifest for o in outcomes if o.ok]
        total = counters["sim.events_processed"]
        assert all(0 < m.events_processed < total for m in manifests)


class TestCli:
    def test_measure_exports_and_obs_roundtrip(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.jsonl"
        code = main(
            [
                "measure", "episodic_cbr", "--slots", "1500", "--seed", "3",
                "--profile", "smoke",
                "--metrics-out", str(metrics_path),
                "--trace-out", str(trace_path),
            ]
        )
        assert code == 0
        assert metrics_path.exists() and trace_path.exists()
        capsys.readouterr()

        assert main(["obs", "validate", str(metrics_path), "--trace", str(trace_path)]) == 0
        assert "validation OK" in capsys.readouterr().out

        assert main(["obs", "summary", str(metrics_path), "--trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "manifest:" in out
        assert "probe.packets_sent" in out
        assert "sim.run" in out

    def test_obs_validate_fails_on_corrupt_document(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "wrong", "metrics": {}}))
        assert main(["obs", "validate", str(path)]) == 1
        assert "FAILED" in capsys.readouterr().err

    def test_zing_exports(self, tmp_path, capsys):
        metrics_path = tmp_path / "zing.json"
        code = main(
            [
                "zing", "episodic_cbr", "--rate", "20", "--duration", "10",
                "--profile", "smoke", "--metrics-out", str(metrics_path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        document = json.loads(metrics_path.read_text())
        assert validate_metrics_document(document) == []
        assert document["manifest"]["tool"] == "zing"
