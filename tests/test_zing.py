"""Tests for the ZING Poisson baseline."""

import pytest

from repro.core.zing import ZingResult, ZingTool
from repro.errors import ConfigurationError
from repro.experiments.runner import DRAIN_TIME, apply_scenario, build_testbed


def deploy(seed=1, scenario=None, scenario_kwargs=None, **tool_kwargs):
    sim, testbed = build_testbed(seed=seed)
    if scenario:
        apply_scenario(sim, testbed, scenario, **(scenario_kwargs or {}))
    defaults = dict(mean_interval=0.05, packet_size=256, duration=30.0, start=1.0)
    defaults.update(tool_kwargs)
    tool = ZingTool(sim, testbed.probe_sender, testbed.probe_receiver, **defaults)
    return sim, testbed, tool


def test_mean_rate_matches_configuration():
    sim, _testbed, tool = deploy(duration=60.0, mean_interval=0.05)
    sim.run(until=61.0 + DRAIN_TIME)
    result = tool.result()
    # 20 Hz over 60 s: ~1200 probes.
    assert result.n_sent == pytest.approx(1200, rel=0.1)


def test_intervals_are_exponential():
    sim, _testbed, tool = deploy(duration=120.0, mean_interval=0.1)
    sim.run(until=121.0 + DRAIN_TIME)
    times = sorted(tool.sender.sent.values())
    gaps = [b - a for a, b in zip(times, times[1:])]
    mean_gap = sum(gaps) / len(gaps)
    assert mean_gap == pytest.approx(0.1, rel=0.1)
    # Coefficient of variation ~1 for exponential (vs 0 for periodic).
    variance = sum((g - mean_gap) ** 2 for g in gaps) / len(gaps)
    assert (variance ** 0.5) / mean_gap == pytest.approx(1.0, abs=0.2)


def test_no_loss_on_idle_network():
    sim, _testbed, tool = deploy()
    sim.run(until=31.0 + DRAIN_TIME)
    result = tool.result()
    assert result.n_lost == 0
    assert result.frequency == 0.0
    assert result.loss_runs == []
    assert result.duration_mean == 0.0
    assert result.mean_owd > 0.05  # propagation floor


def test_reports_loss_under_congestion():
    sim, _testbed, tool = deploy(
        seed=3,
        scenario="episodic_cbr",
        scenario_kwargs={"episode_durations": (0.068,), "mean_spacing": 3.0},
        duration=60.0,
    )
    sim.run(until=61.0 + DRAIN_TIME)
    result = tool.result()
    assert result.n_lost > 0
    assert 0.0 < result.frequency < 0.05


def test_consecutive_loss_runs_grouped():
    result = ZingResult(
        n_sent=10, n_lost=3,
        loss_runs=[(1.0, 1.2, 2), (5.0, 5.0, 1)],
        duration_mean=0.1, duration_std=0.1, mean_owd=0.05,
    )
    assert result.n_episodes == 2
    assert result.frequency == pytest.approx(0.3)


def test_run_grouping_from_logs():
    sim, _testbed, tool = deploy(duration=5.0)
    sim.run(until=6.0 + DRAIN_TIME)
    # Forge losses: remove seqs 3,4 and 8 from the receiver log.
    for seq in (3, 4, 8):
        tool.receiver.received.pop(seq, None)
    result = tool.result()
    assert result.n_lost == 3
    assert len(result.loss_runs) == 2
    first, second = result.loss_runs
    assert first[2] == 2
    assert second[2] == 1
    assert result.duration_mean > 0.0  # the 2-run has positive span


def test_flight_mode_sends_bunches():
    sim, _testbed, tool = deploy(duration=5.0, flight=3)
    sim.run(until=6.0 + DRAIN_TIME)
    assert all(len(flight) == 3 for flight in tool.sender.flights if flight)
    assert tool.result().n_sent == 3 * len(tool.sender.flights)


def test_zero_frequency_when_nothing_sent():
    result = ZingResult(0, 0, [], 0.0, 0.0, 0.0)
    assert result.frequency == 0.0


def test_parameter_validation():
    sim, testbed = build_testbed()
    with pytest.raises(ConfigurationError):
        ZingTool(sim, testbed.probe_sender, testbed.probe_receiver, mean_interval=0)
    with pytest.raises(ConfigurationError):
        ZingTool(
            sim, testbed.probe_sender, testbed.probe_receiver,
            mean_interval=0.1, packet_size=0,
        )
    with pytest.raises(ConfigurationError):
        ZingTool(
            sim, testbed.probe_sender, testbed.probe_receiver,
            mean_interval=0.1, duration=0.0,
        )
