"""Tests for slot discretization helpers."""

import pytest

from repro.analysis.episodes import LossEpisode
from repro.analysis.slots import (
    congested_slot_count,
    congested_slot_set,
    make_in_episode,
    slot_of,
    true_frequency,
)
from repro.errors import ConfigurationError


def test_slot_of():
    assert slot_of(0.0, 0.005) == 0
    assert slot_of(0.0049, 0.005) == 0
    assert slot_of(0.005, 0.005) == 1
    assert slot_of(1.0, 0.005) == 200


def test_slot_of_rejects_bad_width():
    with pytest.raises(ConfigurationError):
        slot_of(1.0, 0.0)


def test_congested_slots_span_episode():
    episode = LossEpisode(0.012, 0.024, 3)
    slots = congested_slot_set([episode], 0.005, 100)
    # Covers slots 2 (0.010-0.015) through 4 (0.020-0.025).
    assert slots == {2, 3, 4}


def test_zero_length_episode_occupies_one_slot():
    episode = LossEpisode(0.013, 0.013, 1)
    assert congested_slot_set([episode], 0.005, 100) == {2}


def test_overlapping_episodes_counted_once():
    episodes = [LossEpisode(0.010, 0.020, 2), LossEpisode(0.020, 0.030, 2)]
    assert congested_slot_count(episodes, 0.005, 100) == 5  # slots 2..6


def test_episodes_clipped_to_measurement_window():
    episode = LossEpisode(0.490, 0.600, 5)
    # Only 100 slots (0..0.5 s): slots 98, 99 qualify.
    assert congested_slot_set([episode], 0.005, 100) == {98, 99}


def test_true_frequency():
    episodes = [LossEpisode(0.0, 0.0049, 1)]  # slot 0 only
    assert true_frequency(episodes, 0.005, 200) == pytest.approx(1 / 200)


def test_true_frequency_rejects_empty_window():
    with pytest.raises(ConfigurationError):
        true_frequency([], 0.005, 0)


def test_in_episode_predicate():
    episodes = [LossEpisode(1.0, 2.0, 3), LossEpisode(5.0, 5.5, 2)]
    in_episode = make_in_episode(episodes)
    assert not in_episode(0.5)
    assert in_episode(1.0)
    assert in_episode(1.7)
    assert in_episode(2.0)
    assert not in_episode(3.0)
    assert in_episode(5.25)
    assert not in_episode(6.0)


def test_in_episode_rejects_overlapping_input():
    episodes = [LossEpisode(1.0, 3.0, 2), LossEpisode(2.0, 4.0, 2)]
    with pytest.raises(ConfigurationError):
        make_in_episode(episodes)


def test_in_episode_empty():
    in_episode = make_in_episode([])
    assert not in_episode(1.0)
