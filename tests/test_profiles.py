"""Tests for run-length profiles."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.profiles import (
    FAST,
    FULL,
    PROFILES,
    SLOT,
    SMOKE,
    Profile,
    active_profile,
)


def test_full_profile_matches_paper():
    assert FULL.tool_duration == 900.0
    assert FULL.n_slots == 180_000
    assert FULL.n_slots_large == 720_000
    assert FULL.badabing_duration == pytest.approx(900.0)


def test_fast_profile_is_shorter_but_proportional():
    assert FAST.n_slots < FULL.n_slots
    assert FAST.badabing_duration == pytest.approx(FAST.n_slots * SLOT)


def test_registry_contains_all():
    assert PROFILES == {"fast": FAST, "full": FULL, "smoke": SMOKE}


def test_active_profile_env(monkeypatch):
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    assert active_profile() is FAST
    monkeypatch.setenv("REPRO_PROFILE", "full")
    assert active_profile() is FULL
    monkeypatch.setenv("REPRO_PROFILE", "SMOKE")
    assert active_profile() is SMOKE
    monkeypatch.setenv("REPRO_PROFILE", "nope")
    with pytest.raises(ConfigurationError):
        active_profile()


def test_profile_validation():
    with pytest.raises(ConfigurationError):
        Profile("bad", tool_duration=0, n_slots=10, n_slots_large=20, train_duration=1)
    with pytest.raises(ConfigurationError):
        Profile("bad", tool_duration=1, n_slots=100, n_slots_large=50, train_duration=1)
