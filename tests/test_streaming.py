"""Tests for windowed (streaming) estimation and level-shift detection."""

import random

import pytest

from repro.core.records import ExperimentOutcome
from repro.core.schedule import GeometricSchedule, outcomes_from_true_states
from repro.core.streaming import WindowedEstimator, WindowPoint, detect_level_shift
from repro.errors import ConfigurationError
from repro.synthetic.renewal import AlternatingRenewalProcess, GeometricSlots


def synthetic_outcomes(n_slots, on_mean, off_mean, seed):
    rng = random.Random(seed)
    process = AlternatingRenewalProcess(
        GeometricSlots(on_mean), GeometricSlots(off_mean), rng
    )
    states = process.generate(n_slots)
    schedule = GeometricSchedule(0.5, n_slots, random.Random(seed + 1))
    return outcomes_from_true_states(schedule.experiments, states)


def test_windows_partition_by_start_slot():
    outcomes = [ExperimentOutcome(i, (0, 0)) for i in range(0, 100, 2)]
    estimator = WindowedEstimator(window_slots=25, min_experiments=1)
    points = estimator.windows(outcomes)
    assert [p.window_index for p in points] == [0, 1, 2, 3]
    assert points[0].start_slot == 0
    assert points[0].end_slot == 24
    assert sum(p.n_experiments for p in points) == 50


def test_sparse_windows_skipped():
    outcomes = [ExperimentOutcome(0, (0, 0))] * 3 + [
        ExperimentOutcome(100, (0, 0)) for _ in range(20)
    ]
    estimator = WindowedEstimator(window_slots=50, min_experiments=10)
    points = estimator.windows(outcomes)
    assert [p.window_index for p in points] == [2]


def test_window_estimates_track_local_truth():
    outcomes = synthetic_outcomes(200_000, on_mean=4, off_mean=36, seed=5)
    estimator = WindowedEstimator(window_slots=40_000)
    points = estimator.windows(outcomes)
    assert len(points) == 5
    for point in points:
        assert point.frequency == pytest.approx(0.1, abs=0.03)
        assert point.transitions > 0
        assert point.duration_slots == pytest.approx(4.0, rel=0.5)
        assert point.duration_seconds(0.005) == pytest.approx(
            point.duration_slots * 0.005
        )


def test_duration_none_when_window_has_no_transitions():
    outcomes = [ExperimentOutcome(i, (0, 0)) for i in range(0, 100, 2)]
    points = WindowedEstimator(25, min_experiments=5).windows(outcomes)
    assert all(point.duration_slots is None for point in points)
    assert all(point.duration_seconds(0.005) is None for point in points)


def test_level_shift_detected_on_regime_change():
    # Quiet first half, 5x busier second half.
    quiet = synthetic_outcomes(100_000, 4, 196, seed=7)
    busy = [
        ExperimentOutcome(o.start_slot + 100_000, o.bits)
        for o in synthetic_outcomes(100_000, 4, 36, seed=8)
    ]
    points = WindowedEstimator(20_000).windows(quiet + busy)
    shift = detect_level_shift(points, factor=2.0)
    assert shift is not None
    assert points[shift].start_slot >= 100_000


def test_no_shift_on_stationary_process():
    outcomes = synthetic_outcomes(200_000, 4, 36, seed=9)
    points = WindowedEstimator(20_000).windows(outcomes)
    assert detect_level_shift(points, factor=2.5) is None


def test_shift_from_zero_baseline():
    flat = [ExperimentOutcome(i, (0, 0)) for i in range(0, 60_000, 3)]
    burst = [ExperimentOutcome(i, (1, 1)) for i in range(60_000, 70_000, 3)]
    points = WindowedEstimator(10_000, min_experiments=5).windows(flat + burst)
    shift = detect_level_shift(points, factor=2.0)
    assert shift is not None
    assert points[shift].frequency > 0


def test_parameter_validation():
    with pytest.raises(ConfigurationError):
        WindowedEstimator(1)
    with pytest.raises(ConfigurationError):
        WindowedEstimator(100, min_experiments=0)
    with pytest.raises(ConfigurationError):
        detect_level_shift([], factor=1.0)


def test_window_point_is_frozen():
    point = WindowPoint(0, 0, 9, 5, 0.1, None, 0, True)
    with pytest.raises(AttributeError):
        point.frequency = 0.5


def test_detect_level_shift_empty_and_short_histories():
    # No points at all: nothing to detect.
    assert detect_level_shift([], factor=2.0) is None
    # Fewer points than min_windows: never enough history to judge.
    few = [
        WindowPoint(i, i * 10, i * 10 + 9, 5, 0.5 * (i + 1), None, 0, True)
        for i in range(3)
    ]
    assert detect_level_shift(few, factor=2.0, min_windows=3) is None


def test_detect_level_shift_all_zero_history_stays_quiet():
    # An all-zero frequency history must not fire (or divide by zero)
    # while the process stays at zero.
    flat = [WindowPoint(i, i * 10, i * 10 + 9, 5, 0.0, None, 0, True) for i in range(8)]
    assert detect_level_shift(flat, factor=2.0) is None


def test_windows_below_min_experiments_yield_no_points():
    outcomes = [ExperimentOutcome(i, (0, 1)) for i in range(0, 12, 3)]
    estimator = WindowedEstimator(window_slots=100, min_experiments=10)
    assert estimator.windows(outcomes) == []
    assert estimator.windows([]) == []
    # Exactly at the threshold the window is estimated.
    at_threshold = [ExperimentOutcome(i, (0, 1)) for i in range(10)]
    points = WindowedEstimator(100, min_experiments=10).windows(at_threshold)
    assert len(points) == 1 and points[0].n_experiments == 10
