"""Tests for the command-line front end."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "episodic_cbr" in out
    assert "table8" in out
    assert "fig9b" in out


def test_measure_command_smoke(capsys):
    code = main([
        "measure", "episodic_cbr", "--p", "0.5", "--slots", "4000",
        "--seed", "3", "--profile", "smoke",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "loss frequency" in out
    assert "validation" in out


def test_zing_command_smoke(capsys):
    code = main([
        "zing", "episodic_cbr", "--rate", "20", "--size", "64",
        "--duration", "20", "--profile", "smoke",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "probes sent" in out
    assert "reported" in out


def test_table_command_rejects_unknown(capsys):
    assert main(["table", "9"]) == 2
    assert "unknown table" in capsys.readouterr().err


def test_figure_command_rejects_unknown(capsys):
    assert main(["figure", "99"]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_figure_name_normalization(capsys):
    # "5" and "fig5" both resolve.
    parser = build_parser()
    args = parser.parse_args(["figure", "5", "--profile", "smoke"])
    assert args.handler(args) == 0
    assert "fig5" in capsys.readouterr().out


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_measure_improved_flag_parses():
    parser = build_parser()
    args = parser.parse_args(["measure", "harpoon_web", "--improved"])
    assert args.improved is True
    assert args.scenario == "harpoon_web"


def test_measure_save_and_analyze_round_trip(tmp_path, capsys):
    trace = tmp_path / "m.jsonl"
    code = main([
        "measure", "episodic_cbr", "--p", "0.5", "--slots", "4000",
        "--seed", "5", "--profile", "smoke", "--save", str(trace),
    ])
    assert code == 0
    assert trace.exists()
    capsys.readouterr()
    code = main(["analyze", str(trace), "--alpha", "0.1", "--tau", "0.04"])
    assert code == 0
    out = capsys.readouterr().out
    assert "estimated loss frequency" in out
    assert "N=4000" in out


def test_analyze_rejects_garbage(tmp_path, capsys):
    bogus = tmp_path / "bogus.jsonl"
    bogus.write_text('{"type": "nope"}\n')
    # Structured errors exit with a clean diagnostic, not a traceback.
    assert main(["analyze", str(bogus)]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "badabing-trace" in err or "nope" in err
