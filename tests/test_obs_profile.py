"""Stage profiler unit tests: timing semantics, edge cases, publication.

Covers the DESIGN.md §14 contracts: self/cumulative attribution with
reentrancy, zero-duration spans, exception unwinding, leaf records and
accumulators, idempotent assignment-based publication into a registry,
digest non-perturbation, and the sampling-mode start/stop races.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry, NullRegistry, snapshot_digest
from repro.obs.profile import (
    PIPELINE_STAGES,
    PROFILE_SCHEMA,
    STAGE_BUCKETS,
    NullProfiler,
    StackSampler,
    StageProfiler,
    active_profiler,
    merge_stage_maps,
    profile_stage,
    profiling,
    set_active_profiler,
    stages_from_registry,
)


class FakeClock:
    """Deterministic clock: returns scripted times, or advances by step."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        current = self.now
        self.now += self.step
        return current


class TestStageProfilerBasics:
    def test_single_stage_self_equals_cum(self):
        clock = FakeClock(step=1.0)
        prof = StageProfiler(clock=clock)
        with prof.stage("sim.run"):
            pass
        stat = prof.stages()["sim.run"]
        assert stat["calls"] == 1
        assert stat["self_seconds"] == stat["cum_seconds"] == 1.0
        assert stat["max_seconds"] == 1.0
        assert sum(stat["counts"]) == stat["calls"]

    def test_child_time_subtracted_from_parent_self(self):
        clock = FakeClock(step=1.0)
        prof = StageProfiler(clock=clock)
        # parent: t0..t3 (3s), child inside: t1..t2 (1s).
        with prof.stage("parent"):
            with prof.stage("child"):
                pass
        stages = prof.stages()
        assert stages["child"]["cum_seconds"] == 1.0
        assert stages["parent"]["cum_seconds"] == 3.0
        assert stages["parent"]["self_seconds"] == 2.0
        edges = {(e["parent"], e["stage"]): e for e in prof.edges()}
        assert edges[("parent", "child")]["calls"] == 1
        assert edges[("", "parent")]["calls"] == 1

    def test_zero_duration_span(self):
        clock = FakeClock(step=0.0)  # clock never advances
        prof = StageProfiler(clock=clock)
        with prof.stage("instant"):
            pass
        stat = prof.stages()["instant"]
        assert stat["calls"] == 1
        assert stat["self_seconds"] == 0.0
        assert stat["cum_seconds"] == 0.0
        assert stat["max_seconds"] == 0.0
        # A zero-duration call lands in the first bucket and never makes
        # a negative self time.
        assert stat["counts"][0] == 1

    def test_backwards_clock_clamps_to_zero(self):
        times = iter([10.0, 5.0])
        prof = StageProfiler(clock=lambda: next(times))
        frame = prof.start("weird")
        prof.stop(frame)
        stat = prof.stages()["weird"]
        assert stat["self_seconds"] == 0.0
        assert stat["cum_seconds"] == 0.0

    def test_reentrant_same_name_counts_cum_once(self):
        clock = FakeClock(step=1.0)
        prof = StageProfiler(clock=clock)
        # outer: t0..t3 (3s); inner same-name: t1..t2 (1s). Cumulative
        # must count wall time once (3s), not 4s; calls and sum count both.
        with prof.stage("recurse"):
            with prof.stage("recurse"):
                pass
        stat = prof.stages()["recurse"]
        assert stat["calls"] == 2
        assert stat["cum_seconds"] == 3.0
        assert stat["sum_seconds"] == 4.0
        assert stat["self_seconds"] == 3.0  # 1 (inner) + 2 (outer minus inner)

    def test_exception_unwinding_closes_abandoned_frames(self):
        clock = FakeClock(step=1.0)
        prof = StageProfiler(clock=clock)
        outer = prof.start("outer")
        prof.start("abandoned")  # never stopped explicitly
        prof.stop(outer)  # unwinding: stops outer, discards abandoned
        stages = prof.stages()
        assert "abandoned" not in stages
        assert stages["outer"]["calls"] == 1
        # The stack is clean: new frames nest at the root again.
        with prof.stage("after"):
            pass
        assert prof.stages()["after"]["calls"] == 1
        # Depth bookkeeping recovered too: reentrancy still sane.
        with prof.stage("abandoned"):
            pass
        assert prof.stages()["abandoned"]["cum_seconds"] > 0.0

    def test_double_stop_is_ignored(self):
        prof = StageProfiler(clock=FakeClock())
        frame = prof.start("once")
        prof.stop(frame)
        assert prof.stop(frame) == 0.0
        assert prof.stages()["once"]["calls"] == 1

    def test_profile_stage_context_with_exception(self):
        prof = StageProfiler(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with profiling(prof):
                with profile_stage("outer"):
                    with profile_stage("inner"):
                        raise RuntimeError("boom")
        stages = prof.stages()
        # Both context managers stopped their frames in finally blocks.
        assert stages["outer"]["calls"] == 1
        assert stages["inner"]["calls"] == 1


class TestLeafRecords:
    def test_record_charges_parent_and_edge(self):
        clock = FakeClock(step=1.0)
        prof = StageProfiler(clock=clock)
        with prof.stage("parent"):
            prof.record("leaf", 0.25)
        stages = prof.stages()
        assert stages["leaf"]["calls"] == 1
        assert stages["leaf"]["self_seconds"] == 0.25
        assert stages["leaf"]["cum_seconds"] == 0.25
        # parent wall is 1s; the leaf's 0.25s is child time.
        assert stages["parent"]["self_seconds"] == 0.75
        edges = {(e["parent"], e["stage"]) for e in prof.edges()}
        assert ("parent", "leaf") in edges

    def test_record_inside_same_name_frame_does_not_double_cum(self):
        clock = FakeClock(step=1.0)
        prof = StageProfiler(clock=clock)
        # trace.io scoped frame containing trace.io leaf records (the
        # save_measurement shape): cum counts wall time once.
        with prof.stage("trace.io"):
            prof.record("trace.io", 0.5)
        stat = prof.stages()["trace.io"]
        assert stat["calls"] == 2
        assert stat["cum_seconds"] == 1.0  # the frame's wall time only
        assert stat["sum_seconds"] == 1.5

    def test_negative_record_clamps(self):
        prof = StageProfiler(clock=FakeClock())
        prof.record("leaf", -1.0)
        assert prof.stages()["leaf"]["self_seconds"] == 0.0

    def test_leaf_accumulator_folds_on_frame_stop(self):
        clock = FakeClock(step=1.0)
        prof = StageProfiler(clock=clock)
        frame = prof.start("sim.run")
        acc = prof.leaf("queue.service")
        acc[0] += 4
        acc[1] += 0.5
        acc[2] = 0.2
        acc[3][1] += 4
        prof.stop(frame)
        assert acc[4] is True  # closed at fold
        stages = prof.stages()
        assert stages["queue.service"]["calls"] == 4
        assert stages["queue.service"]["self_seconds"] == 0.5
        assert stages["queue.service"]["max_seconds"] == 0.2
        assert sum(stages["queue.service"]["counts"]) == 4
        # sim.run wall is 1s; 0.5s of it is queue.service child time.
        assert stages["sim.run"]["self_seconds"] == 0.5
        edges = {(e["parent"], e["stage"]): e for e in prof.edges()}
        assert edges[("sim.run", "queue.service")]["calls"] == 4

    def test_leaf_accumulator_root_folds_at_snapshot(self):
        prof = StageProfiler(clock=FakeClock())
        acc = prof.leaf("wire.encode")
        acc[0] += 2
        acc[1] += 0.1
        stages = prof.stages()
        assert stages["wire.encode"]["calls"] == 2
        assert acc[4] is True
        # Folding is once-only: another stages() call does not re-add.
        assert prof.stages()["wire.encode"]["calls"] == 2

    def test_empty_leaf_accumulator_records_nothing(self):
        prof = StageProfiler(clock=FakeClock())
        prof.leaf("queue.service")
        assert "queue.service" not in prof.stages()


class TestActivation:
    def test_set_active_normalizes_disabled_profiler(self):
        previous = set_active_profiler(NullProfiler())
        try:
            assert active_profiler() is None
        finally:
            set_active_profiler(previous)

    def test_profiling_scope_restores_previous(self):
        outer = StageProfiler()
        inner = StageProfiler()
        with profiling(outer):
            assert active_profiler() is outer
            with profiling(inner):
                assert active_profiler() is inner
            assert active_profiler() is outer
        assert active_profiler() is None

    def test_profile_stage_noop_without_active_profiler(self):
        assert active_profiler() is None
        with profile_stage("anything") as frame:
            assert frame is None


class TestPublication:
    def _profiler_with_data(self):
        clock = FakeClock(step=1.0)
        prof = StageProfiler(clock=clock)
        with prof.stage("sim.run"):
            prof.record("queue.service", 0.5)
        return prof

    def test_publish_assigns_profile_instruments(self):
        prof = self._profiler_with_data()
        registry = MetricsRegistry()
        prof.publish(registry)
        snapshot = registry.snapshot()
        calls = {
            key: value
            for key, value in snapshot["counters"].items()
            if key.startswith("profile.stage_calls")
        }
        assert calls == {
            "profile.stage_calls{stage=queue.service}": 1,
            "profile.stage_calls{stage=sim.run}": 1,
        }
        hists = [
            key
            for key in snapshot["histograms"]
            if key.startswith("profile.stage_seconds")
        ]
        assert len(hists) == 2

    def test_repeated_snapshots_do_not_double_count(self):
        # The satellite fix: publication is assignment-based, so exporter
        # scrapes (collect/snapshot cycles) can never inflate the totals.
        prof = self._profiler_with_data()
        registry = MetricsRegistry()
        prof.publish(registry)
        first = registry.snapshot()
        for _ in range(3):
            registry.collect()
        again = registry.snapshot()
        assert first == again

    def test_published_histograms_survive_merge_without_double_count(self):
        prof = self._profiler_with_data()
        shard = MetricsRegistry()
        prof.publish(shard)
        parent = MetricsRegistry()
        parent.merge(shard.detach_collectors(), series_labels={"cell": "c0"})
        merged = parent.snapshot()
        hist = merged["histograms"]["profile.stage_seconds{stage=queue.service}"]
        assert hist["count"] == 1
        assert sum(hist["counts"]) == 1
        # Snapshotting the parent again is stable too.
        assert parent.snapshot() == merged

    def test_publish_into_null_registry_is_noop(self):
        prof = self._profiler_with_data()
        registry = NullRegistry()
        prof.publish(registry)
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}, "series": {},
        }

    def test_active_profiler_never_perturbs_registry_digest(self):
        def run(profiler):
            registry = MetricsRegistry()
            scope = profiling(profiler) if profiler else profiling(None)
            with scope:
                registry.counter("sim.events_processed").value += 10
                shard = MetricsRegistry()
                shard.counter("sim.events_processed").value += 5
                registry.merge(shard, series_labels={"cell": "c"})
            return snapshot_digest(registry.snapshot())

        assert run(None) == run(StageProfiler())

    def test_instrumented_merge_records_stage(self):
        prof = StageProfiler()
        with profiling(prof):
            parent = MetricsRegistry()
            shard = MetricsRegistry()
            shard.counter("x").value += 1
            parent.merge(shard)
        assert prof.stages()["registry.merge"]["calls"] == 1
        assert "registry.merge" in PIPELINE_STAGES


class TestDocuments:
    def test_snapshot_schema_and_absorb_roundtrip(self):
        prof = StageProfiler(clock=FakeClock())
        with prof.stage("sim.run"):
            prof.record("queue.service", 0.25)
        doc = prof.snapshot()
        assert doc["schema"] == PROFILE_SCHEMA
        assert doc["enabled"] is True
        other = StageProfiler()
        other.absorb(doc)
        other.absorb(doc)
        stages = other.stages()
        assert stages["sim.run"]["calls"] == 2  # absorbed twice: adds
        assert stages["queue.service"]["calls"] == 2

    def test_absorb_rejects_bucket_shape_mismatch(self):
        prof = StageProfiler()
        bad = {
            "stages": {
                "x": {
                    "calls": 1,
                    "self_seconds": 0.0,
                    "cum_seconds": 0.0,
                    "max_seconds": 0.0,
                    "sum_seconds": 0.0,
                    "buckets": [1.0],
                    "counts": [0, 0],
                }
            },
            "edges": [],
        }
        # counts length 2 matches buckets [1.0], but bucket bounds differ
        # from STAGE_BUCKETS.
        with pytest.raises(ObservabilityError):
            prof.absorb(bad)

    def test_merge_stage_maps_adds_and_maxes(self):
        a = StageProfiler(clock=FakeClock())
        with a.stage("s"):
            pass
        b = StageProfiler(clock=FakeClock(step=2.0))
        with b.stage("s"):
            pass
        merged = merge_stage_maps(a.stages(), b.stages())
        assert merged["s"]["calls"] == 2
        assert merged["s"]["max_seconds"] == 2.0

    def test_stages_from_registry_roundtrip(self):
        prof = StageProfiler(clock=FakeClock())
        with prof.stage("sim.run"):
            prof.record("queue.service", 0.5)
        registry = MetricsRegistry()
        prof.publish(registry)
        recovered = stages_from_registry(registry.snapshot())
        original = prof.stages()
        for name in ("sim.run", "queue.service"):
            assert recovered[name]["calls"] == original[name]["calls"]
            assert recovered[name]["self_seconds"] == pytest.approx(
                original[name]["self_seconds"]
            )
            assert recovered[name]["counts"] == original[name]["counts"]

    def test_null_profiler_snapshot_disabled(self):
        doc = NullProfiler().snapshot()
        assert doc["enabled"] is False
        assert doc["stages"] == {}


class TestStackSampler:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ObservabilityError):
            StackSampler(interval=0.0)

    def test_samples_current_thread(self):
        sampler = StackSampler(interval=0.001)
        with sampler:
            deadline = time.monotonic() + 1.0
            while sampler.snapshot()["samples"] == 0:
                if time.monotonic() > deadline:
                    break
                sum(range(1000))
        doc = sampler.snapshot()
        assert doc["mode"] == "sampling"
        assert doc["samples"] >= 1
        assert doc["functions"]
        for stats in doc["functions"].values():
            assert stats["cum"] >= stats["self"] >= 0

    def test_start_is_idempotent_and_stop_joins(self):
        sampler = StackSampler(interval=0.001)
        sampler.start()
        first_thread = sampler._thread
        sampler.start()  # second start: no new thread
        assert sampler._thread is first_thread
        assert sampler.running
        sampler.stop()
        assert not sampler.running
        sampler.stop()  # idempotent
        assert not sampler.running

    def test_concurrent_start_stop_races_do_not_wedge(self):
        sampler = StackSampler(interval=0.0005)

        def churn():
            for _ in range(25):
                sampler.start()
                sampler.stop()

        threads = [threading.Thread(target=churn) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads)
        sampler.stop()
        assert not sampler.running

    def test_restart_accumulates(self):
        sampler = StackSampler(interval=0.001)
        sampler.start()
        time.sleep(0.02)
        sampler.stop()
        first = sampler.snapshot()["samples"]
        sampler.start()
        time.sleep(0.02)
        sampler.stop()
        assert sampler.snapshot()["samples"] >= first


class TestBucketContract:
    def test_stage_buckets_strictly_increasing(self):
        assert list(STAGE_BUCKETS) == sorted(STAGE_BUCKETS)
        assert len(set(STAGE_BUCKETS)) == len(STAGE_BUCKETS)

    def test_pipeline_stage_names_unique(self):
        assert len(set(PIPELINE_STAGES)) == len(PIPELINE_STAGES) >= 8
