"""Tests for drop-tail and RED queues."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue, REDQueue


def make_packet(size=1500):
    return Packet("a", "b", size)


class RecordingObserver:
    def __init__(self):
        self.events = []

    def on_enqueue(self, time, packet, qlen):
        self.events.append(("enq", time, packet.pid, qlen))

    def on_drop(self, time, packet, qlen):
        self.events.append(("drop", time, packet.pid, qlen))

    def on_dequeue(self, time, packet, qlen):
        self.events.append(("deq", time, packet.pid, qlen))


def test_fifo_order():
    queue = DropTailQueue(10_000)
    packets = [make_packet() for _ in range(3)]
    for packet in packets:
        assert queue.offer(0.0, packet)
    taken = [queue.take(1.0) for _ in range(3)]
    assert [p.pid for p in taken] == [p.pid for p in packets]


def test_byte_accounting():
    queue = DropTailQueue(10_000)
    queue.offer(0.0, make_packet(1500))
    queue.offer(0.0, make_packet(500))
    assert queue.bytes_queued == 2000
    assert len(queue) == 2
    queue.take(0.0)
    assert queue.bytes_queued == 500


def test_drop_tail_rejects_when_full():
    queue = DropTailQueue(3000)
    assert queue.offer(0.0, make_packet(1500))
    assert queue.offer(0.0, make_packet(1500))
    assert not queue.offer(0.0, make_packet(1500))
    assert queue.stats.dropped_packets == 1
    assert queue.stats.enqueued_packets == 2


def test_partial_space_drops_whole_packet():
    # 1000 bytes free but the packet is 1500: IP drops the whole datagram.
    queue = DropTailQueue(2500)
    queue.offer(0.0, make_packet(1500))
    assert not queue.offer(0.0, make_packet(1500))
    assert queue.offer(0.0, make_packet(1000))


def test_take_from_empty_returns_none():
    queue = DropTailQueue(1000)
    assert queue.take(0.0) is None
    assert queue.is_empty


def test_peak_bytes_tracked():
    queue = DropTailQueue(10_000)
    for _ in range(4):
        queue.offer(0.0, make_packet(1500))
    queue.take(0.0)
    assert queue.stats.peak_bytes == 6000


def test_loss_rate_is_router_centric():
    queue = DropTailQueue(1500)
    queue.offer(0.0, make_packet(1500))
    queue.offer(0.0, make_packet(1500))  # dropped
    # L/(S+L) with L=1 drop and S=1 accepted.
    assert queue.stats.loss_rate == pytest.approx(0.5)


def test_observer_sees_all_events():
    queue = DropTailQueue(1500)
    observer = RecordingObserver()
    queue.attach(observer)
    kept = make_packet(1500)
    queue.offer(1.0, kept)
    dropped = make_packet(1500)
    queue.offer(2.0, dropped)
    queue.take(3.0)
    kinds = [event[0] for event in observer.events]
    assert kinds == ["enq", "drop", "deq"]
    assert observer.events[0][3] == 1500  # qlen includes the packet
    assert observer.events[2][3] == 0  # qlen after dequeue


def test_enqueued_at_stamped():
    queue = DropTailQueue(5000)
    packet = make_packet()
    queue.offer(7.5, packet)
    assert packet.enqueued_at == 7.5


def test_capacity_must_be_positive():
    with pytest.raises(ConfigurationError):
        DropTailQueue(0)


def test_red_accepts_below_min_threshold():
    queue = REDQueue(100_000, rng=random.Random(1))
    for _ in range(5):
        assert queue.offer(0.0, make_packet(1500))
    assert queue.stats.dropped_packets == 0


def test_red_never_exceeds_hard_capacity():
    queue = REDQueue(4500, rng=random.Random(1))
    for _ in range(10):
        queue.offer(0.0, make_packet(1500))
    assert queue.bytes_queued <= 4500


def test_red_drops_probabilistically_between_thresholds():
    rng = random.Random(7)
    queue = REDQueue(150_000, min_thresh_frac=0.1, max_thresh_frac=0.9,
                     max_drop_prob=0.5, weight=0.5, rng=rng)
    # Push the average queue into the ramp, then count early drops.
    dropped = 0
    for _ in range(400):
        if not queue.offer(0.0, make_packet(1500)):
            dropped += 1
        if queue.bytes_queued > 120_000:
            queue.take(0.0)
    assert dropped > 0
    assert queue.stats.dropped_packets == dropped


def test_red_parameter_validation():
    with pytest.raises(ConfigurationError):
        REDQueue(1000, min_thresh_frac=0.8, max_thresh_frac=0.5)
    with pytest.raises(ConfigurationError):
        REDQueue(1000, max_drop_prob=0.0)
