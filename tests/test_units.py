"""Tests for repro.units."""

import pytest

from repro import units


def test_rate_conversions():
    assert units.kbps(1) == 1_000
    assert units.mbps(1) == 1_000_000
    assert units.gbps(1) == 1_000_000_000
    assert units.mbps(155) == 155e6


def test_time_conversions():
    assert units.ms(5) == pytest.approx(0.005)
    assert units.us(30) == pytest.approx(30e-6)
    assert units.seconds_to_ms(0.068) == pytest.approx(68.0)


def test_size_conversions():
    assert units.kib(1) == 1024
    assert units.mib(2) == 2 * 1024 * 1024


def test_transmission_time_1500B_at_12mbps():
    # 1500 bytes = 12000 bits at 12 Mb/s -> exactly 1 ms.
    assert units.transmission_time(1500, units.mbps(12)) == pytest.approx(0.001)


def test_transmission_time_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        units.transmission_time(1500, 0)
    with pytest.raises(ValueError):
        units.transmission_time(1500, -1)


def test_bytes_for_duration_sizes_the_paper_buffer():
    # 100 ms of OC3 (155 Mb/s) is ~1.94 MB.
    buffer_bytes = units.bytes_for_duration(0.100, units.mbps(155))
    assert buffer_bytes == int(0.100 * 155e6 / 8)


def test_bytes_for_duration_rejects_negative():
    with pytest.raises(ValueError):
        units.bytes_for_duration(-0.1, units.mbps(10))


def test_bits_per_byte_constant():
    assert units.BITS_PER_BYTE == 8
