"""Tests for probe launch jitter models."""

import random

import pytest

from repro.core.jitter import GaussianJitter, NoJitter, SpikeJitter, UniformJitter
from repro.errors import ConfigurationError


def samples(model, n=5000, seed=1):
    rng = random.Random(seed)
    return [model.sample(rng) for _ in range(n)]


def test_no_jitter_is_zero():
    assert all(value == 0.0 for value in samples(NoJitter(), 10))


def test_uniform_jitter_bounds_and_mean():
    values = samples(UniformJitter(0.004))
    assert all(0.0 <= value <= 0.004 for value in values)
    assert sum(values) / len(values) == pytest.approx(0.002, rel=0.1)


def test_gaussian_jitter_nonnegative():
    values = samples(GaussianJitter(0.001))
    assert all(value >= 0.0 for value in values)
    assert max(values) > 0.0


def test_gaussian_sigma_zero_is_degenerate():
    assert all(value == 0.0 for value in samples(GaussianJitter(0.0), 10))


def test_spike_jitter_mixes_base_and_spikes():
    model = SpikeJitter(base_sigma=0.0001, spike_prob=0.1, spike_delay=0.05)
    values = samples(model, n=10_000)
    spikes = sum(1 for value in values if value == 0.05)
    assert spikes / len(values) == pytest.approx(0.1, abs=0.02)
    assert all(value >= 0.0 for value in values)


def test_spike_prob_extremes():
    always = SpikeJitter(0.0, 1.0, 0.02)
    assert all(value == 0.02 for value in samples(always, 10))
    never = SpikeJitter(0.0, 0.0, 0.02)
    assert all(value == 0.0 for value in samples(never, 10))


def test_parameter_validation():
    with pytest.raises(ConfigurationError):
        UniformJitter(-0.001)
    with pytest.raises(ConfigurationError):
        GaussianJitter(-1.0)
    with pytest.raises(ConfigurationError):
        SpikeJitter(0.001, 1.5, 0.01)
    with pytest.raises(ConfigurationError):
        SpikeJitter(-0.001, 0.5, 0.01)
