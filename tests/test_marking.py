"""Tests for the §6.1 loss + delay congestion marking."""

import pytest

from repro.config import MarkingConfig
from repro.core.marking import CongestionMarker, MarkingResult, _nearest_distance
from repro.core.records import ProbeRecord
from repro.errors import ConfigurationError


def probe(slot, send_time, owds, n_packets=3, owd_before_loss=None):
    return ProbeRecord(
        slot=slot,
        send_time=send_time,
        n_packets=n_packets,
        owds=tuple(owds),
        owd_before_loss=owd_before_loss,
    )


BASE = 0.0503  # one-way propagation floor in the scaled testbed
FULL = BASE + 0.100  # propagation + full queue


def test_lost_probe_always_marked():
    marker = CongestionMarker(MarkingConfig(alpha=0.1, tau=0.05))
    probes = [probe(0, 0.000, [BASE, BASE], owd_before_loss=FULL)]
    result = marker.mark(probes)
    assert result.slot_states == {0: True}
    assert result.marked_by_loss == 1


def test_high_delay_near_loss_marked():
    marker = CongestionMarker(MarkingConfig(alpha=0.1, tau=0.05))
    probes = [
        probe(0, 0.000, [FULL, FULL], owd_before_loss=FULL),  # lost
        probe(2, 0.010, [FULL - 0.002] * 3),  # near loss, delay ~ max
    ]
    result = marker.mark(probes)
    assert result.slot_states[2] is True
    assert result.marked_by_delay == 1


def test_high_delay_far_from_loss_not_marked():
    marker = CongestionMarker(MarkingConfig(alpha=0.1, tau=0.05))
    probes = [
        probe(0, 0.000, [FULL, FULL], owd_before_loss=FULL),
        probe(40, 0.200, [FULL - 0.002] * 3),  # same delay but 200 ms away
    ]
    result = marker.mark(probes)
    assert result.slot_states[40] is False


def test_low_delay_near_loss_not_marked():
    marker = CongestionMarker(MarkingConfig(alpha=0.1, tau=0.05))
    probes = [
        probe(0, 0.000, [FULL, FULL], owd_before_loss=FULL),
        probe(2, 0.010, [BASE] * 3),  # near the loss but queue empty
    ]
    result = marker.mark(probes)
    assert result.slot_states[2] is False


def test_delay_rule_works_before_the_loss_too():
    # "delimited by probes within tau seconds of an indication of a lost
    # packet" is symmetric in time.
    marker = CongestionMarker(MarkingConfig(alpha=0.1, tau=0.05))
    probes = [
        probe(0, 0.000, [FULL - 0.001] * 3),  # high delay, loss comes later
        probe(2, 0.010, [FULL, FULL], owd_before_loss=FULL),
    ]
    result = marker.mark(probes)
    assert result.slot_states[0] is True


def test_threshold_uses_mean_owd_history():
    cfg = MarkingConfig(alpha=0.1, tau=0.05, owd_history=2)
    marker = CongestionMarker(cfg)
    probes = [
        probe(0, 0.000, [BASE], owd_before_loss=FULL),
        probe(10, 0.050, [BASE], owd_before_loss=FULL + 0.02),
        # Threshold now (1-0.1) * mean(FULL, FULL+0.02) = 0.9 * 0.1603.
        probe(12, 0.060, [0.9 * (FULL + 0.01) + 0.001] * 3),
    ]
    result = marker.mark(probes)
    assert result.slot_states[12] is True
    assert result.owd_max_estimates == [FULL, FULL + 0.02]


def test_no_loss_anywhere_means_nothing_marked():
    marker = CongestionMarker()
    probes = [probe(i, i * 0.01, [FULL - 0.001] * 3) for i in range(5)]
    result = marker.mark(probes)
    assert not any(result.slot_states.values())
    assert result.marked == 0


def test_fallback_to_last_success_across_probes():
    # A fully lost probe with no owd_before_loss uses the latest delivery
    # seen in earlier probes as the OWD_max estimate.
    marker = CongestionMarker(MarkingConfig(alpha=0.1, tau=0.05))
    probes = [
        probe(0, 0.000, [FULL - 0.001] * 3),
        probe(2, 0.010, [], owd_before_loss=None),  # all packets lost
        probe(4, 0.020, [FULL - 0.002] * 3),
    ]
    result = marker.mark(probes)
    assert result.owd_max_estimates == [FULL - 0.001]
    assert result.slot_states[4] is True  # near loss + above threshold


def test_unsorted_probes_rejected():
    marker = CongestionMarker()
    probes = [probe(2, 0.010, [BASE]), probe(0, 0.000, [BASE])]
    with pytest.raises(ConfigurationError):
        marker.mark(probes)


def test_empty_input_gives_empty_result():
    result = CongestionMarker().mark([])
    assert isinstance(result, MarkingResult)
    assert result.slot_states == {}


def test_nearest_distance():
    times = [1.0, 5.0, 9.0]
    assert _nearest_distance(times, 1.0) == 0.0
    assert _nearest_distance(times, 2.9) == pytest.approx(1.9)
    assert _nearest_distance(times, 7.5) == pytest.approx(1.5)
    assert _nearest_distance(times, 20.0) == pytest.approx(11.0)


def test_marking_config_validation():
    with pytest.raises(ConfigurationError):
        MarkingConfig(alpha=0.0)
    with pytest.raises(ConfigurationError):
        MarkingConfig(alpha=1.0)
    with pytest.raises(ConfigurationError):
        MarkingConfig(tau=-0.01)
    with pytest.raises(ConfigurationError):
        MarkingConfig(owd_history=0)


def test_alpha_controls_permissiveness():
    loose = CongestionMarker(MarkingConfig(alpha=0.3, tau=0.05))
    tight = CongestionMarker(MarkingConfig(alpha=0.02, tau=0.05))
    probes = [
        probe(0, 0.000, [FULL], owd_before_loss=FULL),
        probe(2, 0.010, [0.8 * FULL] * 3),  # 80% of max delay
    ]
    assert loose.mark(probes).slot_states[2] is True
    assert tight.mark(probes).slot_states[2] is False


def test_owd_statistic_variants():
    cfg_max = MarkingConfig(alpha=0.1, tau=0.05, owd_statistic="max", owd_history=4)
    marker = CongestionMarker(cfg_max)
    probes = [
        probe(0, 0.000, [BASE], owd_before_loss=FULL - 0.05),
        probe(2, 0.010, [BASE], owd_before_loss=FULL),
        # Max-of-history threshold = 0.9*FULL; mean would be lower.
        probe(4, 0.020, [0.9 * FULL - 0.001] * 3),
    ]
    assert marker.mark(probes).slot_states[4] is False
    cfg_mean = MarkingConfig(alpha=0.1, tau=0.05, owd_statistic="mean", owd_history=4)
    assert CongestionMarker(cfg_mean).mark(probes).slot_states[4] is True


def test_median_statistic_is_order_statistic():
    cfg = MarkingConfig(alpha=0.1, tau=0.05, owd_statistic="median", owd_history=8)
    marker = CongestionMarker(cfg)
    probes = [
        probe(0, 0.00, [BASE], owd_before_loss=0.10),
        probe(2, 0.01, [BASE], owd_before_loss=0.10),
        probe(4, 0.02, [BASE], owd_before_loss=0.30),  # outlier
        # Median of {0.10, 0.10, 0.30} = 0.10; threshold 0.09.
        probe(6, 0.03, [0.095] * 3),
    ]
    assert marker.mark(probes).slot_states[6] is True


def test_invalid_statistic_rejected():
    with pytest.raises(ConfigurationError):
        MarkingConfig(owd_statistic="p99")


def test_noise_loss_filter_reclassifies_floor_losses():
    cfg = MarkingConfig(alpha=0.1, tau=0.05, filter_uncorrelated_losses=True)
    marker = CongestionMarker(cfg)
    probes = [
        # Establish the congestion threshold with a real full-queue loss.
        probe(0, 0.000, [FULL, FULL], owd_before_loss=FULL),
        # A later loss at floor delay: end-host noise, not congestion.
        probe(40, 0.200, [BASE, BASE], owd_before_loss=BASE),
        # Its neighbour at floor delay must not be delay-marked either.
        probe(42, 0.210, [BASE] * 3),
    ]
    result = marker.mark(probes)
    assert result.slot_states[0] is True
    assert result.slot_states[40] is False
    assert result.slot_states[42] is False
    assert result.noise_losses == 1
    # The noise estimate never entered the OWD_max history.
    assert result.owd_max_estimates == [FULL]


def test_noise_filter_off_by_default():
    marker = CongestionMarker(MarkingConfig(alpha=0.1, tau=0.05))
    probes = [
        probe(0, 0.000, [FULL, FULL], owd_before_loss=FULL),
        probe(40, 0.200, [BASE, BASE], owd_before_loss=BASE),
    ]
    result = marker.mark(probes)
    assert result.slot_states[40] is True  # paper behaviour: loss marks
    assert result.noise_losses == 0


def test_noise_filter_keeps_real_losses():
    # A loss with full-queue delay evidence stays a congestion loss even
    # with the filter on.
    cfg = MarkingConfig(alpha=0.1, tau=0.05, filter_uncorrelated_losses=True)
    marker = CongestionMarker(cfg)
    probes = [
        probe(0, 0.000, [FULL - 0.002], owd_before_loss=FULL),
        probe(2, 0.010, [FULL, FULL], owd_before_loss=FULL),
    ]
    result = marker.mark(probes)
    assert result.slot_states[2] is True
    assert result.noise_losses == 0
