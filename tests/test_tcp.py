"""Tests for the TCP Reno/NewReno model."""

import pytest

from repro.config import TestbedConfig
from repro.errors import ConfigurationError
from repro.net.simulator import Simulator
from repro.net.topology import DumbbellTestbed
from repro.traffic.tcp import TcpReceiver, TcpSender, start_tcp_flow
from repro.units import mbps


def build_testbed(seed=1, **cfg):
    sim = Simulator(seed=seed)
    testbed = DumbbellTestbed(sim, TestbedConfig(**cfg))
    return sim, testbed


def test_finite_flow_completes_and_fires_callback():
    sim, testbed = build_testbed()
    done = []
    start_tcp_flow(
        sim,
        testbed.traffic_senders[0],
        testbed.traffic_receivers[0],
        total_segments=50,
        on_complete=done.append,
    )
    sim.run(until=30.0)
    assert len(done) == 1
    sender = done[0]
    assert sender.completed
    assert sender.snd_una == 50


def test_all_segments_delivered_in_order_without_loss():
    sim, testbed = build_testbed()
    port = 555
    receiver = TcpReceiver(sim, testbed.traffic_receivers[0], port)
    TcpSender(
        sim, testbed.traffic_senders[0], "trcv0", port, total_segments=30
    )
    sim.run(until=20.0)
    assert receiver.rcv_next == 30
    assert receiver.duplicate_segments == 0


def test_slow_start_doubles_window_per_rtt():
    sim, testbed = build_testbed()
    port = 556
    TcpReceiver(sim, testbed.traffic_receivers[0], port)
    sender = TcpSender(
        sim, testbed.traffic_senders[0], "trcv0", port, initial_cwnd=2.0
    )
    # After ~1 RTT (0.1 s) the two initial segments are acked: cwnd ~4.
    sim.run(until=0.16)
    assert 3.5 <= sender.cwnd <= 6.0
    sim.run(until=0.30)
    assert sender.cwnd >= 7.0


def test_completion_releases_port_bindings():
    sim, testbed = build_testbed()
    host_snd = testbed.traffic_senders[0]
    host_rcv = testbed.traffic_receivers[0]
    before_snd = len(host_snd._apps)
    before_rcv = len(host_rcv._apps)
    start_tcp_flow(sim, host_snd, host_rcv, total_segments=5)
    sim.run(until=10.0)
    assert len(host_snd._apps) == before_snd
    assert len(host_rcv._apps) == before_rcv


def test_congestion_produces_loss_and_retransmits_but_delivery_completes():
    # Two flows into a tiny bottleneck buffer force drops; both flows must
    # still deliver everything via retransmission.
    sim, testbed = build_testbed(buffer_time=0.01)  # 15 kB buffer
    done = []
    for i in range(2):
        start_tcp_flow(
            sim,
            testbed.traffic_senders[i],
            testbed.traffic_receivers[i],
            total_segments=400,
            on_complete=done.append,
        )
    sim.run(until=120.0)
    assert len(done) == 2
    assert testbed.monitor.total_drops > 0
    assert sum(sender.retransmits for sender in done) > 0


def test_fast_retransmit_preferred_over_timeout_under_mild_loss():
    sim, testbed = build_testbed(buffer_time=0.03, seed=4)
    done = []
    for i in range(2):
        start_tcp_flow(
            sim,
            testbed.traffic_senders[i],
            testbed.traffic_receivers[i],
            total_segments=600,
            on_complete=done.append,
        )
    sim.run(until=120.0)
    assert len(done) == 2
    fast = sum(sender.fast_retransmits for sender in done)
    timeouts = sum(sender.timeouts for sender in done)
    assert fast > 0
    assert fast >= timeouts


def test_rwnd_caps_window():
    sim, testbed = build_testbed()
    port = 557
    TcpReceiver(sim, testbed.traffic_receivers[0], port)
    sender = TcpSender(
        sim, testbed.traffic_senders[0], "trcv0", port, rwnd=8
    )
    sim.run(until=5.0)
    assert sender.cwnd <= 8.0
    assert sender.flight_size <= 8


def test_rtt_estimator_converges_to_path_rtt():
    sim, testbed = build_testbed()
    port = 558
    TcpReceiver(sim, testbed.traffic_receivers[0], port)
    sender = TcpSender(
        sim, testbed.traffic_senders[0], "trcv0", port, rwnd=4
    )
    sim.run(until=5.0)
    # Base RTT is ~100.4 ms plus one serialization; srtt should be close.
    assert sender.srtt == pytest.approx(0.102, abs=0.01)


def test_throughput_approaches_bottleneck_for_single_flow():
    # Measure steady state (after the initial slow-start overshoot and its
    # lengthy NewReno recovery): the congestion-avoidance sawtooth between
    # ~BDP and BDP+buffer should keep the bottleneck essentially full.
    sim, testbed = build_testbed()
    port = 559
    receiver = TcpReceiver(sim, testbed.traffic_receivers[0], port)
    TcpSender(sim, testbed.traffic_senders[0], "trcv0", port)
    sim.run(until=30.0)
    delivered_at_30 = receiver.rcv_next
    sim.run(until=60.0)
    goodput = (receiver.rcv_next - delivered_at_30) * 1500 * 8 / 30.0
    assert goodput > 0.9 * mbps(12)


def test_timeout_recovers_from_total_blackout():
    # Deliver nothing for a while by keeping the receiver unbound; the
    # sender must back off and eventually deliver once binding appears.
    sim, testbed = build_testbed()
    port = 560
    sender = TcpSender(
        sim, testbed.traffic_senders[0], "trcv0", port, total_segments=3
    )
    sim.run(until=2.0)
    assert sender.timeouts >= 1
    TcpReceiver(sim, testbed.traffic_receivers[0], port)
    sim.run(until=60.0)
    assert sender.completed


def test_parameter_validation():
    sim, testbed = build_testbed()
    with pytest.raises(ConfigurationError):
        TcpSender(sim, testbed.traffic_senders[0], "trcv0", 600, mss=10)
    with pytest.raises(ConfigurationError):
        TcpSender(sim, testbed.traffic_senders[0], "trcv0", 601, rwnd=1)
    with pytest.raises(ConfigurationError):
        TcpSender(
            sim, testbed.traffic_senders[0], "trcv0", 602, total_segments=0
        )


def test_receiver_buffers_out_of_order_segments():
    sim, testbed = build_testbed(buffer_time=0.02, seed=8)
    port = 561
    receiver = TcpReceiver(sim, testbed.traffic_receivers[0], port)
    start_a = TcpSender(
        sim, testbed.traffic_senders[0], "trcv0", port, total_segments=300
    )
    # A second flow to force drops (and thus reordering at the receiver).
    start_tcp_flow(
        sim,
        testbed.traffic_senders[1],
        testbed.traffic_receivers[1],
        total_segments=300,
    )
    sim.run(until=60.0)
    assert start_a.completed
    assert receiver.rcv_next == 300


def test_rto_backoff_doubles_on_repeated_timeouts():
    sim, testbed = build_testbed()
    port = 562
    sender = TcpSender(
        sim, testbed.traffic_senders[0], "trcv0", port, total_segments=2
    )
    # No receiver bound anywhere: every transmission times out.
    sim.run(until=20.0)
    assert sender.timeouts >= 3
    # Exponential backoff caps the rate of retransmissions: with doubling
    # from 1 s, at most ~5 timeouts fit in 20 s (1+2+4+8 = 15).
    assert sender.timeouts <= 6


def test_backoff_resets_after_progress():
    sim, testbed = build_testbed()
    port = 563
    sender = TcpSender(
        sim, testbed.traffic_senders[0], "trcv0", port, total_segments=4
    )
    sim.run(until=5.0)
    assert sender._backoff > 1
    TcpReceiver(sim, testbed.traffic_receivers[0], port)
    sim.run(until=60.0)
    assert sender.completed
    assert sender._backoff == 1
