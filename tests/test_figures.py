"""Tests for the figure-reproduction harness (smoke profile)."""

import pytest

from repro.experiments.figures import (
    ALL_FIGURES,
    figure_5,
    figure_8,
    figure_9a,
    probe_train_miss_probability,
)
from repro.experiments.profiles import SMOKE


def test_registry_has_all_figures():
    assert sorted(ALL_FIGURES) == [
        "fig4", "fig5", "fig6", "fig7", "fig8", "fig9a", "fig9b",
    ]


def test_figure5_series_shape():
    series = figure_5(profile=SMOKE)
    assert len(series.times) == len(series.delays)
    assert len(series.times) > 1000
    # Queue idles at zero between engineered episodes and peaks near the
    # 100 ms buffer during them.
    assert min(series.delays) == 0.0
    assert max(series.delays) == pytest.approx(0.1, abs=0.01)
    assert series.episodes


def test_fig7_single_point_cbr_misses_about_half():
    probability, hits = probe_train_miss_probability(
        "episodic_cbr",
        train_length=1,
        duration=60.0,
        seed=2,
        scenario_kwargs={"episode_durations": (0.068,), "mean_spacing": 3.0},
    )
    assert hits > 50
    # Single packets pass through a 2x-overloaded queue roughly half the
    # time (the paper's CBR curve starts near 0.5).
    assert 0.2 < probability < 0.8


def test_fig7_longer_trains_miss_less_cbr():
    kwargs = {"episode_durations": (0.068,), "mean_spacing": 3.0}
    short, hits_short = probe_train_miss_probability(
        "episodic_cbr", 1, duration=60.0, seed=2, scenario_kwargs=kwargs
    )
    long, hits_long = probe_train_miss_probability(
        "episodic_cbr", 4, duration=60.0, seed=2, scenario_kwargs=kwargs
    )
    assert hits_short > 0 and hits_long > 0
    assert long < short
    assert long < 0.25


def test_fig8_probe_impact_grows_with_train_length():
    results = figure_8(profile=SMOKE, train_lengths=(0, 3, 10))
    assert [item.train_length for item in results] == [0, 3, 10]
    assert results[0].probe_load_fraction == 0.0
    assert results[1].probe_load_fraction < results[2].probe_load_fraction
    # With probes in play, some probe packets die during episodes.
    assert len(results[2].probe_drop_times) >= len(results[1].probe_drop_times)
    assert results[0].probe_drop_times == []
    for item in results:
        assert item.series.episodes


def test_fig9a_frequency_rises_with_alpha():
    sweep = figure_9a(profile=SMOKE)
    assert sweep.parameter == "alpha"
    assert set(sweep.curves) == {0.05, 0.10, 0.20}
    # For each p, a more permissive alpha marks at least as many slots.
    for p_index in range(len(next(iter(sweep.curves.values())))):
        estimates = [sweep.curves[a][p_index][1] for a in (0.05, 0.10, 0.20)]
        assert estimates[0] <= estimates[1] + 1e-9
        assert estimates[1] <= estimates[2] + 1e-9
    assert sweep.true_frequency > 0


def test_probe_train_validation():
    import pytest as _pytest
    from repro.errors import ConfigurationError

    with _pytest.raises(ConfigurationError):
        probe_train_miss_probability("episodic_cbr", 0, duration=1.0, seed=1)
