"""Tests for measurement trace persistence and offline re-analysis."""

import json

import pytest

from repro.config import BadabingConfig, MarkingConfig
from repro.core.badabing import BadabingTool
from repro.errors import ConfigurationError
from repro.experiments.runner import DRAIN_TIME, apply_scenario, build_testbed
from repro.io import Measurement, load_measurement, reestimate, save_measurement
from repro.io.traces import measurement_from_tool


@pytest.fixture(scope="module")
def finished_tool():
    sim, testbed = build_testbed(seed=9)
    apply_scenario(
        sim, testbed, "episodic_cbr",
        episode_durations=(0.068,), mean_spacing=3.0,
    )
    config = BadabingConfig(p=0.5, n_slots=12_000)
    tool = BadabingTool(
        sim, testbed.probe_sender, testbed.probe_receiver, config, start=2.0
    )
    sim.run(until=tool.end_time + DRAIN_TIME)
    return tool


def test_round_trip_preserves_everything(finished_tool, tmp_path):
    path = tmp_path / "trace.jsonl"
    save_measurement(path, finished_tool, metadata={"scenario": "cbr"})
    loaded = load_measurement(path)
    original = measurement_from_tool(finished_tool)
    assert loaded.slot_width == original.slot_width
    assert loaded.n_slots == original.n_slots
    assert loaded.p == original.p
    assert loaded.experiments == original.experiments
    assert loaded.probes == original.probes
    assert loaded.metadata["scenario"] == "cbr"


def test_offline_reestimate_matches_live_result(finished_tool, tmp_path):
    path = tmp_path / "trace.jsonl"
    save_measurement(path, finished_tool)
    live = finished_tool.result()
    offline = reestimate(
        load_measurement(path), marking=finished_tool.config.marking
    )
    assert offline.frequency == live.frequency
    assert offline.outcomes == live.outcomes
    assert offline.estimate.counts == live.estimate.counts


def test_offline_remarking_changes_results(finished_tool, tmp_path):
    path = tmp_path / "trace.jsonl"
    save_measurement(path, finished_tool)
    measurement = load_measurement(path)
    strict = reestimate(measurement, marking=MarkingConfig(alpha=0.02, tau=0.005))
    loose = reestimate(measurement, marking=MarkingConfig(alpha=0.3, tau=0.120))
    assert loose.frequency >= strict.frequency


def test_header_is_first_line_json(finished_tool, tmp_path):
    path = tmp_path / "trace.jsonl"
    save_measurement(path, finished_tool)
    with open(path) as handle:
        header = json.loads(handle.readline())
    assert header["type"] == "badabing-trace"
    assert header["version"] == 1
    assert header["n_slots"] == 12_000


def test_load_rejects_wrong_type(tmp_path):
    path = tmp_path / "bogus.jsonl"
    path.write_text('{"type": "something-else"}\n')
    with pytest.raises(ConfigurationError):
        load_measurement(path)


def test_load_rejects_empty_file(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(ConfigurationError):
        load_measurement(path)


def test_load_rejects_future_version(tmp_path):
    path = tmp_path / "future.jsonl"
    path.write_text('{"type": "badabing-trace", "version": 99}\n')
    with pytest.raises(ConfigurationError):
        load_measurement(path)


def test_probe_size_metadata_drives_load_accounting(finished_tool, tmp_path):
    path = tmp_path / "trace.jsonl"
    save_measurement(path, finished_tool, metadata={"probe_size": 1200})
    doubled = reestimate(load_measurement(path))
    save_measurement(path, finished_tool, metadata={"probe_size": 600})
    nominal = reestimate(load_measurement(path))
    assert doubled.probe_load_bps == pytest.approx(2 * nominal.probe_load_bps)


def test_measurement_outcomes_skip_unmarked_slots(finished_tool):
    measurement = measurement_from_tool(finished_tool)
    # Provide states for nothing: no outcomes can be assembled.
    assert measurement.outcomes({}) == []


def test_save_measurement_object_directly(finished_tool, tmp_path):
    measurement = measurement_from_tool(finished_tool, metadata={"a": 1})
    path = tmp_path / "direct.jsonl"
    save_measurement(path, measurement, metadata={"b": 2})
    loaded = load_measurement(path)
    assert loaded.metadata == {"a": 1, "b": 2}


# ---------------------------------------------------------------------------
# Corrupt traces: TraceFormatError + recovery mode
# ---------------------------------------------------------------------------

def _corrupt_lines(path, line_numbers, replacement="{not json !!\n"):
    """Overwrite the given 1-based lines of a JSONL file."""
    lines = open(path).readlines()
    for number in line_numbers:
        lines[number - 1] = replacement
    with open(path, "w") as handle:
        handle.writelines(lines)


def test_corrupt_probe_line_raises_trace_format_error(finished_tool, tmp_path):
    from repro.errors import TraceFormatError

    path = tmp_path / "trace.jsonl"
    save_measurement(path, finished_tool)
    _corrupt_lines(path, [3])
    with pytest.raises(TraceFormatError) as excinfo:
        load_measurement(path)
    assert excinfo.value.line_number == 3
    assert "line 3" in str(excinfo.value)
    # and it is catchable as the legacy ConfigurationError
    with pytest.raises(ConfigurationError):
        load_measurement(path)


def test_missing_field_raises_trace_format_error_not_key_error(
    finished_tool, tmp_path
):
    from repro.errors import TraceFormatError

    path = tmp_path / "trace.jsonl"
    save_measurement(path, finished_tool)
    _corrupt_lines(path, [2], '{"slot": 1, "t": 0.5}\n')  # missing n/owds/obl
    with pytest.raises(TraceFormatError) as excinfo:
        load_measurement(path)
    assert excinfo.value.line_number == 2


def test_recovery_mode_skips_corrupt_lines_with_diagnostics(
    finished_tool, tmp_path
):
    path = tmp_path / "trace.jsonl"
    save_measurement(path, finished_tool)
    total_probes = len(measurement_from_tool(finished_tool).probes)
    assert total_probes > 4
    _corrupt_lines(path, [3])
    _corrupt_lines(path, [5], '{"slot": 2, "t": 1.0}\n')
    loaded = load_measurement(path, recover=True)
    assert len(loaded.probes) == total_probes - 2
    assert [diag.line_number for diag in loaded.diagnostics] == [3, 5]
    assert all(diag.reason for diag in loaded.diagnostics)
    assert all(diag.snippet for diag in loaded.diagnostics)


def test_recovered_trace_reestimates_with_degraded_coverage(
    finished_tool, tmp_path
):
    path = tmp_path / "trace.jsonl"
    save_measurement(path, finished_tool)
    _corrupt_lines(path, [2])
    loaded = load_measurement(path, recover=True)
    result = reestimate(loaded, marking=finished_tool.config.marking)
    assert result.coverage is not None
    assert result.coverage.usable_slots <= result.coverage.scheduled_slots
    full = reestimate(load_measurement_clean(finished_tool, tmp_path))
    assert result.coverage.usable_slots <= full.coverage.usable_slots


def load_measurement_clean(finished_tool, tmp_path):
    path = tmp_path / "clean.jsonl"
    save_measurement(path, finished_tool)
    return load_measurement(path)


def test_missing_trace_file_raises_trace_format_error(tmp_path):
    from repro.errors import TraceFormatError

    with pytest.raises(TraceFormatError) as excinfo:
        load_measurement(tmp_path / "no-such-trace.jsonl")
    assert "cannot read trace" in str(excinfo.value)


def test_recovery_does_not_hide_header_corruption(tmp_path):
    from repro.errors import TraceFormatError

    path = tmp_path / "bad-header.jsonl"
    path.write_text("not json at all\n")
    with pytest.raises(TraceFormatError) as excinfo:
        load_measurement(path, recover=True)
    assert excinfo.value.line_number == 1


def test_clean_trace_loads_identically_in_recovery_mode(finished_tool, tmp_path):
    path = tmp_path / "trace.jsonl"
    save_measurement(path, finished_tool)
    strict = load_measurement(path)
    recovered = load_measurement(path, recover=True)
    assert recovered.probes == strict.probes
    assert recovered.experiments == strict.experiments
    assert recovered.diagnostics == []


def test_reestimate_attaches_full_coverage_on_clean_trace(finished_tool, tmp_path):
    path = tmp_path / "trace.jsonl"
    save_measurement(path, finished_tool)
    result = reestimate(load_measurement(path), marking=finished_tool.config.marking)
    assert result.coverage is not None
    assert result.coverage.complete
    assert result.estimate.coverage is result.coverage
    assert result.validation.coverage is result.coverage
