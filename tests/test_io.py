"""Tests for measurement trace persistence and offline re-analysis."""

import json

import pytest

from repro.config import BadabingConfig, MarkingConfig
from repro.core.badabing import BadabingTool
from repro.errors import ConfigurationError
from repro.experiments.runner import DRAIN_TIME, apply_scenario, build_testbed
from repro.io import Measurement, load_measurement, reestimate, save_measurement
from repro.io.traces import measurement_from_tool


@pytest.fixture(scope="module")
def finished_tool():
    sim, testbed = build_testbed(seed=9)
    apply_scenario(
        sim, testbed, "episodic_cbr",
        episode_durations=(0.068,), mean_spacing=3.0,
    )
    config = BadabingConfig(p=0.5, n_slots=12_000)
    tool = BadabingTool(
        sim, testbed.probe_sender, testbed.probe_receiver, config, start=2.0
    )
    sim.run(until=tool.end_time + DRAIN_TIME)
    return tool


def test_round_trip_preserves_everything(finished_tool, tmp_path):
    path = tmp_path / "trace.jsonl"
    save_measurement(path, finished_tool, metadata={"scenario": "cbr"})
    loaded = load_measurement(path)
    original = measurement_from_tool(finished_tool)
    assert loaded.slot_width == original.slot_width
    assert loaded.n_slots == original.n_slots
    assert loaded.p == original.p
    assert loaded.experiments == original.experiments
    assert loaded.probes == original.probes
    assert loaded.metadata["scenario"] == "cbr"


def test_offline_reestimate_matches_live_result(finished_tool, tmp_path):
    path = tmp_path / "trace.jsonl"
    save_measurement(path, finished_tool)
    live = finished_tool.result()
    offline = reestimate(
        load_measurement(path), marking=finished_tool.config.marking
    )
    assert offline.frequency == live.frequency
    assert offline.outcomes == live.outcomes
    assert offline.estimate.counts == live.estimate.counts


def test_offline_remarking_changes_results(finished_tool, tmp_path):
    path = tmp_path / "trace.jsonl"
    save_measurement(path, finished_tool)
    measurement = load_measurement(path)
    strict = reestimate(measurement, marking=MarkingConfig(alpha=0.02, tau=0.005))
    loose = reestimate(measurement, marking=MarkingConfig(alpha=0.3, tau=0.120))
    assert loose.frequency >= strict.frequency


def test_header_is_first_line_json(finished_tool, tmp_path):
    path = tmp_path / "trace.jsonl"
    save_measurement(path, finished_tool)
    with open(path) as handle:
        header = json.loads(handle.readline())
    assert header["type"] == "badabing-trace"
    assert header["version"] == 1
    assert header["n_slots"] == 12_000


def test_load_rejects_wrong_type(tmp_path):
    path = tmp_path / "bogus.jsonl"
    path.write_text('{"type": "something-else"}\n')
    with pytest.raises(ConfigurationError):
        load_measurement(path)


def test_load_rejects_empty_file(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(ConfigurationError):
        load_measurement(path)


def test_load_rejects_future_version(tmp_path):
    path = tmp_path / "future.jsonl"
    path.write_text('{"type": "badabing-trace", "version": 99}\n')
    with pytest.raises(ConfigurationError):
        load_measurement(path)


def test_probe_size_metadata_drives_load_accounting(finished_tool, tmp_path):
    path = tmp_path / "trace.jsonl"
    save_measurement(path, finished_tool, metadata={"probe_size": 1200})
    doubled = reestimate(load_measurement(path))
    save_measurement(path, finished_tool, metadata={"probe_size": 600})
    nominal = reestimate(load_measurement(path))
    assert doubled.probe_load_bps == pytest.approx(2 * nominal.probe_load_bps)


def test_measurement_outcomes_skip_unmarked_slots(finished_tool):
    measurement = measurement_from_tool(finished_tool)
    # Provide states for nothing: no outcomes can be assembled.
    assert measurement.outcomes({}) == []


def test_save_measurement_object_directly(finished_tool, tmp_path):
    measurement = measurement_from_tool(finished_tool, metadata={"a": 1})
    path = tmp_path / "direct.jsonl"
    save_measurement(path, measurement, metadata={"b": 2})
    loaded = load_measurement(path)
    assert loaded.metadata == {"a": 1, "b": 2}
