"""Tests for one-way-delay analytics."""

import pytest

from repro.analysis.delays import (
    DelayDistribution,
    congestion_delay_ratio,
    delay_floor,
    owd_samples,
    queueing_delays,
    summarize_delays,
)
from repro.core.records import ProbeRecord
from repro.errors import EstimationError
from repro.experiments.runner import run_badabing


def probe(slot, send_time, owds, n_packets=3):
    return ProbeRecord(slot=slot, send_time=send_time, n_packets=n_packets,
                       owds=tuple(owds))


def test_owd_samples_flatten_in_order():
    probes = [probe(0, 0.0, [0.05, 0.051]), probe(2, 0.01, [0.06])]
    samples = owd_samples(probes)
    assert samples == [(0.0, 0.05), (0.0, 0.051), (0.01, 0.06)]


def test_delay_floor_and_queueing():
    samples = [(0.0, 0.05), (1.0, 0.09), (2.0, 0.15)]
    assert delay_floor(samples) == 0.05
    assert queueing_delays(samples) == pytest.approx([0.0, 0.04, 0.10])


def test_empty_samples_raise():
    with pytest.raises(EstimationError):
        delay_floor([])
    with pytest.raises(EstimationError):
        summarize_delays([])


def test_summary_quantiles():
    values = [float(i) for i in range(101)]  # 0..100
    summary = summarize_delays(values)
    assert summary.n == 101
    assert summary.minimum == 0.0
    assert summary.p50 == 50.0
    assert summary.p90 == 90.0
    assert summary.p99 == 99.0
    assert summary.maximum == 100.0
    assert summary.mean == 50.0
    assert summary.spread() == 100.0


def test_summary_single_value():
    summary = summarize_delays([0.05])
    assert summary.p50 == summary.p99 == 0.05
    assert isinstance(summary, DelayDistribution)


def test_congestion_delay_ratio_separates_classes():
    probes = [
        # A loss at t=1.0; nearby probes delayed, distant ones at floor.
        ProbeRecord(slot=200, send_time=1.0, n_packets=3, owds=(0.15, 0.15)),
        probe(202, 1.01, [0.145] * 3),
        probe(204, 1.02, [0.14] * 3),
        probe(400, 2.0, [0.05] * 3),
        probe(402, 2.01, [0.051] * 3),
    ]
    ratio = congestion_delay_ratio(probes, tau=0.05)
    assert ratio == pytest.approx(0.145 / 0.0505, rel=0.05)
    assert ratio > 2.0


def test_congestion_delay_ratio_requires_both_classes():
    with pytest.raises(EstimationError):
        congestion_delay_ratio([probe(0, 0.0, [0.05])], tau=0.05)  # no losses
    lossy = ProbeRecord(slot=0, send_time=0.0, n_packets=3, owds=(0.1,))
    with pytest.raises(EstimationError):
        congestion_delay_ratio([lossy], tau=10.0)  # nothing far from loss
    with pytest.raises(EstimationError):
        congestion_delay_ratio([lossy], tau=-1.0)


def test_delay_analytics_on_real_measurement():
    keep = {}
    result, _truth = run_badabing(
        "episodic_cbr", p=0.5, n_slots=12_000, seed=33,
        scenario_kwargs={"episode_durations": (0.068,), "mean_spacing": 3.0},
        warmup=5.0, keep=keep,
    )
    samples = owd_samples(result.probes)
    floor = delay_floor(samples)
    # Propagation floor ~50.3 ms plus serialization.
    assert floor == pytest.approx(0.0507, abs=0.002)
    summary = summarize_delays(queueing_delays(samples))
    assert summary.minimum == 0.0
    # Engineered episodes push queueing delay to ~100 ms at the top.
    assert summary.maximum == pytest.approx(0.1, abs=0.02)
    # Median sample sits at the empty-queue floor (link idle between bursts).
    assert summary.p50 < 0.01
    ratio = congestion_delay_ratio(result.probes, tau=0.02)
    assert ratio > 1.5
