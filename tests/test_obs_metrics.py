"""Unit tests for the repro.obs metrics registry primitives."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Series,
    merge_snapshots,
    render_key,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_registry_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("probe.sent", tool="badabing")
        b = reg.counter("probe.sent", tool="badabing")
        assert a is b
        a.inc()
        assert b.value == 1

    def test_different_labels_are_different_instruments(self):
        reg = MetricsRegistry()
        a = reg.counter("drops", queue="q1")
        b = reg.counter("drops", queue="q2")
        assert a is not b
        a.inc()
        assert b.value == 0

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("x", a="1", b="2")
        b = reg.counter("x", b="2", a="1")
        assert a is b


class TestGauge:
    def test_tracks_value_and_peak(self):
        g = Gauge("depth")
        g.set(10)
        g.set(3)
        assert g.value == 3
        assert g.peak == 10

    def test_sample_pins_peak_to_latest_reading(self):
        # Point-in-time collectors use sample() so an extra mid-run
        # scrape cannot leave a transient peak behind in the snapshot.
        g = Gauge("pending")
        g.sample(859)
        g.sample(1)
        assert g.value == 1
        assert g.peak == 1

    def test_registry_identity(self):
        reg = MetricsRegistry()
        assert reg.gauge("g", k="v") is reg.gauge("g", k="v")


class TestHistogram:
    def test_bucket_assignment(self):
        h = Histogram("h", buckets=(1.0, 2.0, 5.0))
        for v in (0.5, 1.0, 1.5, 4.0, 100.0):
            h.observe(v)
        # <=1: {0.5, 1.0}; <=2: {1.5}; <=5: {4.0}; overflow: {100.0}
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(107.0)
        assert h.mean == pytest.approx(107.0 / 5)

    def test_empty_mean_is_zero(self):
        assert Histogram("h").mean == 0.0

    def test_rejects_non_increasing_buckets(self):
        with pytest.raises(ObservabilityError):
            Histogram("h", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ObservabilityError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ObservabilityError):
            Histogram("h", buckets=())

    def test_accepts_default_buckets(self):
        h = Histogram("h")
        assert h.buckets == DEFAULT_BUCKETS
        assert len(h.counts) == len(DEFAULT_BUCKETS) + 1


class TestSeries:
    def test_keeps_everything_below_cap(self):
        s = Series("s", max_samples=16)
        for i in range(10):
            s.append(float(i), float(i * 2))
        assert s.times == [float(i) for i in range(10)]
        assert s.stride == 1

    def test_decimates_deterministically_at_cap(self):
        s = Series("s", max_samples=8)
        for i in range(100):
            s.append(float(i), float(i))
        assert len(s.times) < 8 + 8  # bounded
        assert s.stride > 1
        # Retained points are a subsequence of the appended sequence.
        assert s.times == sorted(s.times)
        assert s.times == s.values

    def test_same_appends_same_retention(self):
        def build():
            s = Series("s", max_samples=8)
            for i in range(1000):
                s.append(i * 0.1, i % 7)
            return s.times, s.values, s.stride

        assert build() == build()

    def test_rejects_tiny_cap(self):
        with pytest.raises(ObservabilityError):
            Series("s", max_samples=1)

    def test_points_include_latest_sample_mid_skip_phase(self):
        # Regression: once stride > 1, appends in the skip phase were lost
        # from snapshots — the reported last value could be up to
        # stride - 1 appends stale.
        s = Series("s", max_samples=8)
        for i in range(9):  # crosses the cap: stride becomes 2
            s.append(float(i), float(i))
        assert s.stride == 2
        s.append(9.0, 99.0)  # falls in the skip phase
        times, values = s.points()
        assert times[-1] == 9.0
        assert values[-1] == 99.0
        # The decimated backbone is untouched.
        assert times[:-1] == s.times
        assert s.times == sorted(s.times)

    def test_points_equal_samples_when_tail_retained(self):
        s = Series("s", max_samples=8)
        for i in range(5):
            s.append(float(i), float(i))
        assert s.points() == ([0.0, 1.0, 2.0, 3.0, 4.0], [0.0, 1.0, 2.0, 3.0, 4.0])
        assert Series("empty").points() == ([], [])

    def test_points_are_deterministic(self):
        def build():
            s = Series("s", max_samples=8)
            for i in range(1001):  # odd count: ends mid-skip-phase
                s.append(i * 0.1, i % 7)
            return s.points()

        assert build() == build()
        times, values = build()
        assert times[-1] == pytest.approx(1000 * 0.1)
        assert values[-1] == 1000 % 7

    def test_snapshot_reports_tail(self):
        reg = MetricsRegistry()
        s = reg.series("s")
        for i in range(9):
            s.append(float(i), float(i))
        s.append(9.0, 42.0)
        snap = reg.snapshot()["series"]["s"]
        assert snap["times"][-1] == 9.0
        assert snap["values"][-1] == 42.0
        assert len(snap["times"]) == len(snap["values"])

    def test_merge_carries_tail(self):
        src = MetricsRegistry()
        s = src.series("s")
        for i in range(9):
            s.append(float(i), float(i))
        s.append(9.0, 42.0)
        dst = MetricsRegistry()
        dst.merge(src)
        times, values = dst.series("s").points()
        assert times[-1] == 9.0
        assert values[-1] == 42.0


class TestRenderKey:
    def test_no_labels(self):
        assert render_key("a.b", ()) == "a.b"

    def test_labels_sorted(self):
        assert (
            render_key("a", (("q", "x"), ("z", "1"))) == "a{q=x,z=1}"
        )


class TestSnapshot:
    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c", k="v").inc(3)
        reg.gauge("g").set(2.5)
        reg.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        reg.series("s").append(0.0, 1.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"c{k=v}": 3}
        assert snap["gauges"] == {"g": {"value": 2.5, "peak": 2.5}}
        assert snap["histograms"]["h"]["counts"] == [0, 1, 0]
        assert snap["series"]["s"] == {
            "times": [0.0],
            "values": [1.0],
            "stride": 1,
        }

    def test_collectors_run_at_snapshot_time(self):
        reg = MetricsRegistry()
        external = {"total": 0}
        reg.add_collector(
            lambda r: setattr(r.counter("ext"), "value", external["total"])
        )
        external["total"] = 41
        assert reg.snapshot()["counters"]["ext"] == 41
        external["total"] = 42
        assert reg.snapshot()["counters"]["ext"] == 42

    def test_snapshot_is_json_serializable(self):
        import json

        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.histogram("h").observe(0.2)
        json.dumps(reg.snapshot())


class TestMerge:
    def test_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c", q="x").inc(2)
        b.counter("c", q="x").inc(3)
        b.counter("c", q="y").inc(1)
        a.merge(b)
        snap = a.snapshot()
        assert snap["counters"] == {"c{q=x}": 5, "c{q=y}": 1}

    def test_gauges_keep_later_value_and_max_peak(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(10)
        b.gauge("g").set(4)
        a.merge(b)
        g = a.snapshot()["gauges"]["g"]
        assert g["value"] == 4
        assert g["peak"] == 10

    def test_histograms_add_bucketwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        b.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        a.merge(b)
        h = a.snapshot()["histograms"]["h"]
        assert h["counts"] == [1, 1, 0]
        assert h["count"] == 2

    def test_histogram_bucket_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        b.histogram("h", buckets=(1.0, 3.0)).observe(0.5)
        with pytest.raises(ObservabilityError):
            a.merge(b)

    def test_merge_snapshots_matches_registry_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, n in ((a, 2), (b, 3)):
            reg.counter("c").inc(n)
            reg.gauge("g").set(n)
            reg.histogram("h", buckets=(1.0, 5.0)).observe(n)
        merged_doc = merge_snapshots(a.snapshot(), b.snapshot())
        a.merge(b)
        assert merged_doc == a.snapshot()


class TestNullRegistry:
    def test_api_parity_instruments_work_locally(self):
        reg = NullRegistry()
        c = reg.counter("c")
        c.inc(7)
        assert c.value == 7  # real instrument for local bookkeeping
        g = reg.gauge("g")
        g.set(3)
        assert g.peak == 3
        reg.histogram("h").observe(0.1)
        reg.series("s").append(0.0, 1.0)

    def test_nothing_is_retained(self):
        reg = NullRegistry()
        reg.counter("c").inc(7)
        reg.add_collector(lambda r: (_ for _ in ()).throw(AssertionError))
        snap = reg.snapshot()
        assert snap == {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "series": {},
        }

    def test_instruments_are_not_shared(self):
        reg = NullRegistry()
        assert reg.counter("c") is not reg.counter("c")

    def test_enabled_flag(self):
        assert MetricsRegistry().enabled is True
        assert NullRegistry().enabled is False

    def test_merge_is_noop(self):
        null = NullRegistry()
        other = MetricsRegistry()
        other.counter("c").inc()
        null.merge(other)
        assert null.snapshot()["counters"] == {}
