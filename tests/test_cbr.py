"""Tests for the episodic (modified-Iperf-like) CBR traffic."""

import pytest

from repro.analysis.episodes import episodes_from_monitor
from repro.errors import ConfigurationError
from repro.net.simulator import Simulator
from repro.net.topology import DumbbellTestbed
from repro.traffic.cbr import EpisodicCbrTraffic


def build(seed=1, **kwargs):
    sim = Simulator(seed=seed)
    testbed = DumbbellTestbed(sim)
    cfg = testbed.config
    traffic = EpisodicCbrTraffic(
        sim,
        testbed.traffic_senders[0],
        testbed.traffic_receivers[0],
        bottleneck_bps=cfg.bottleneck_bps,
        buffer_bytes=cfg.buffer_bytes,
        **kwargs,
    )
    return sim, testbed, traffic


def test_fill_time_arithmetic():
    _sim, testbed, traffic = build(overload_factor=2.0)
    cfg = testbed.config
    # At overload 2x, excess rate equals the bottleneck rate, so the fill
    # time equals the buffer's time depth (100 ms).
    assert traffic.fill_time == pytest.approx(cfg.buffer_time, rel=1e-6)


def test_bursts_create_loss_episodes_of_requested_duration():
    sim, testbed, traffic = build(
        episode_durations=(0.068,), mean_spacing=5.0, seed=3
    )
    sim.run(until=60.0)
    episodes = episodes_from_monitor(testbed.monitor)
    assert len(episodes) >= 4
    for episode in episodes:
        # First-to-last-drop span tracks the engineered overflow period.
        assert episode.duration == pytest.approx(0.068, abs=0.03)


def test_mixed_durations_drawn_from_choices():
    sim, testbed, traffic = build(
        episode_durations=(0.05, 0.15), mean_spacing=4.0, seed=5
    )
    sim.run(until=80.0)
    requested = {duration for _t, duration in traffic.scheduled_episodes}
    assert requested == {0.05, 0.15}
    episodes = episodes_from_monitor(testbed.monitor)
    durations = sorted(episode.duration for episode in episodes)
    assert durations[0] < 0.1 < durations[-1] + 0.06


def test_queue_drains_between_episodes():
    sim, testbed, traffic = build(mean_spacing=5.0, seed=7)
    sim.run(until=30.0)
    # After the run settles with no burst active, the queue must be empty.
    traffic.source.stop()
    sim.run(until=32.0)
    assert testbed.bottleneck_queue.is_empty


def test_episode_spacing_is_roughly_exponential_mean():
    sim, _testbed, traffic = build(mean_spacing=2.0, seed=11)
    sim.run(until=120.0)
    starts = [start for start, _duration in traffic.scheduled_episodes]
    gaps = [b - a for a, b in zip(starts, starts[1:])]
    assert len(gaps) > 20
    mean_gap = sum(gaps) / len(gaps)
    # Burst duration (~0.17 s) adds to the nominal 2 s exponential spacing.
    assert 1.5 < mean_gap < 3.5


def test_parameter_validation():
    with pytest.raises(ConfigurationError):
        build(overload_factor=1.0)
    with pytest.raises(ConfigurationError):
        build(episode_durations=())
    with pytest.raises(ConfigurationError):
        build(episode_durations=(0.05, -0.1))
    with pytest.raises(ConfigurationError):
        build(mean_spacing=0.0)


def test_deterministic_given_seed():
    sim_a, _tb_a, traffic_a = build(seed=9, mean_spacing=3.0)
    sim_a.run(until=30.0)
    sim_b, _tb_b, traffic_b = build(seed=9, mean_spacing=3.0)
    sim_b.run(until=30.0)
    assert traffic_a.scheduled_episodes == traffic_b.scheduled_episodes
