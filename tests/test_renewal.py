"""Tests for the alternating-renewal congestion substrate."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.synthetic.renewal import (
    AlternatingRenewalProcess,
    FixedSlots,
    GeometricSlots,
    UniformSlots,
)


def test_fixed_distribution():
    rng = random.Random(0)
    assert FixedSlots(4).sample(rng) == 4
    with pytest.raises(ConfigurationError):
        FixedSlots(0)


def test_geometric_distribution_mean():
    rng = random.Random(1)
    dist = GeometricSlots(5.0)
    samples = [dist.sample(rng) for _ in range(20_000)]
    assert min(samples) >= 1
    assert sum(samples) / len(samples) == pytest.approx(5.0, rel=0.05)


def test_geometric_mean_one_is_constant():
    rng = random.Random(2)
    dist = GeometricSlots(1.0)
    assert all(dist.sample(rng) == 1 for _ in range(100))


def test_geometric_rejects_mean_below_one():
    with pytest.raises(ConfigurationError):
        GeometricSlots(0.5)


def test_uniform_distribution_bounds():
    rng = random.Random(3)
    dist = UniformSlots(2, 6)
    samples = {dist.sample(rng) for _ in range(1000)}
    assert samples == {2, 3, 4, 5, 6}
    with pytest.raises(ConfigurationError):
        UniformSlots(3, 2)


def test_generate_respects_length_and_alternation():
    process = AlternatingRenewalProcess(
        FixedSlots(2), FixedSlots(3), random.Random(4)
    )
    states = process.generate(20)
    assert len(states) == 20
    # Starts uncongested: 3 off, 2 on, 3 off, ...
    assert states[:8] == [False] * 3 + [True] * 2 + [False] * 3


def test_start_congested():
    process = AlternatingRenewalProcess(
        FixedSlots(2), FixedSlots(3), random.Random(5), start_congested=True
    )
    assert process.generate(2) == [True, True]


def test_truth_frequency_and_duration():
    states = [False, True, True, False, True, False, False, True, True, True]
    frequency, duration = AlternatingRenewalProcess.truth(states)
    assert frequency == pytest.approx(0.6)
    # Episodes of length 2, 1, 3 -> A/B = 6/3.
    assert duration == pytest.approx(2.0)


def test_truth_empty_and_all_clear():
    assert AlternatingRenewalProcess.truth([]) == (0.0, 0.0)
    assert AlternatingRenewalProcess.truth([False] * 5) == (0.0, 0.0)


def test_truth_matches_generation_parameters():
    # Geometric on/off with means 3 and 27 -> F ≈ 0.1, D ≈ 3 slots.
    process = AlternatingRenewalProcess(
        GeometricSlots(3.0), GeometricSlots(27.0), random.Random(6)
    )
    states = process.generate(300_000)
    frequency, duration = AlternatingRenewalProcess.truth(states)
    assert frequency == pytest.approx(0.1, rel=0.1)
    assert duration == pytest.approx(3.0, rel=0.1)


def test_generate_rejects_empty():
    process = AlternatingRenewalProcess(FixedSlots(1), FixedSlots(1), random.Random(7))
    with pytest.raises(ConfigurationError):
        process.generate(0)
