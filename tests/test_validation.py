"""Tests for the §5.4 validation tests and stopping rules."""

from repro.core.records import ExperimentOutcome
from repro.core.validation import (
    SequentialValidator,
    ValidationReport,
    validate_outcomes,
)


def outcome(bits):
    return ExperimentOutcome(0, tuple(bits))


def report(**kwargs):
    defaults = dict(
        n_experiments=100, n01=0, n10=0, n001=0, n100=0, n011=0, n110=0,
        n010=0, n101=0,
    )
    defaults.update(kwargs)
    return ValidationReport(**defaults)


def test_validate_outcomes_counts_patterns():
    outcomes = (
        [outcome((0, 1))] * 3
        + [outcome((1, 0))] * 2
        + [outcome((0, 1, 0))] * 1
        + [outcome((1, 0, 0))] * 4
    )
    validation = validate_outcomes(outcomes)
    assert validation.n01 == 3
    assert validation.n10 == 2
    assert validation.n010 == 1
    assert validation.n100 == 4
    assert validation.n_experiments == 10


def test_symmetric_transitions_have_zero_asymmetry():
    validation = report(n01=20, n10=20)
    assert validation.transition_asymmetry == 0.0
    assert validation.is_acceptable()


def test_asymmetry_detected():
    validation = report(n01=30, n10=10)
    assert validation.transition_asymmetry == 0.5
    assert not validation.is_acceptable(max_asymmetry=0.3)


def test_asymmetry_ignored_below_min_transitions():
    # 3 vs 1 is asymmetric but far too small a sample to judge.
    validation = report(n01=3, n10=1)
    assert validation.is_acceptable(min_transitions=10)


def test_violations_fail_validation():
    validation = report(n010=4, n101=3)
    assert validation.violations == 7
    assert validation.violation_rate == 0.07
    assert not validation.is_acceptable(max_violation_rate=0.05)


def test_extended_asymmetries():
    validation = report(n011=10, n110=30, n001=5, n100=5)
    assert validation.extended_pair_asymmetry == 0.5
    assert validation.extended_gap_asymmetry == 0.0


def test_empty_report_is_acceptable():
    validation = report(n_experiments=0)
    assert validation.is_acceptable()
    assert validation.violation_rate == 0.0


def test_sequential_validator_stops_after_enough_transitions():
    validator = SequentialValidator(
        target_relative_error=0.2, min_transitions=10
    )
    # 1/sqrt(S) <= 0.2 requires S >= 25 transitions.
    for _ in range(12):
        validator.add(outcome((0, 1)))
        validator.add(outcome((1, 0)))
    assert not validator.should_stop()  # 24 transitions: error 0.204
    validator.add(outcome((0, 1)))
    validator.add(outcome((1, 0)))
    assert validator.should_stop()


def test_sequential_validator_does_not_stop_on_asymmetric_data():
    validator = SequentialValidator(target_relative_error=0.2, max_asymmetry=0.3)
    validator.extend([outcome((0, 1))] * 50)  # all beginnings, no endings
    assert not validator.should_stop()


def test_sequential_validator_aborts_on_persistent_asymmetry():
    validator = SequentialValidator(abort_after_transitions=100)
    validator.extend([outcome((0, 1))] * 120)
    assert validator.should_abort()


def test_sequential_validator_no_abort_when_symmetric():
    validator = SequentialValidator(abort_after_transitions=100)
    validator.extend([outcome((0, 1))] * 60 + [outcome((1, 0))] * 60)
    assert not validator.should_abort()


def test_estimated_relative_error():
    validator = SequentialValidator()
    assert validator.estimated_relative_error() is None
    validator.extend([outcome((0, 1))] * 4)
    assert validator.estimated_relative_error() == 0.5  # 1/sqrt(4)


def test_transition_count_property():
    assert report(n01=3, n10=4).transition_count == 7


def test_incremental_validator_matches_batch_report():
    outcomes = (
        [outcome((0, 1))] * 6
        + [outcome((1, 0))] * 5
        + [outcome((0, 0))] * 20
        + [outcome((0, 1, 0))] * 2
        + [outcome((1, 1, 0))] * 3
    )
    validator = SequentialValidator()
    for item in outcomes:
        validator.add(item)
    assert validator.report == validate_outcomes(outcomes)
    assert validator.n_experiments == len(outcomes)


def test_signals_snapshot_is_consistent():
    validator = SequentialValidator(min_transitions=4, target_relative_error=0.6)
    validator.extend([outcome((0, 1))] * 2 + [outcome((1, 0))] * 2)
    signals = validator.signals()
    assert signals.n_experiments == 4
    assert signals.transitions == 4
    assert signals.violation_rate == 0.0
    assert signals.transition_asymmetry == 0.0
    assert signals.estimated_relative_error == validator.estimated_relative_error()
    assert signals.should_stop == validator.should_stop()
    assert signals.should_abort == validator.should_abort()
    assert signals.should_stop  # 1/sqrt(4) = 0.5 <= 0.6, symmetric


def test_signals_track_convergence():
    validator = SequentialValidator(min_transitions=4, target_relative_error=0.6)
    early = validator.signals()
    assert early.n_experiments == 0
    assert early.estimated_relative_error is None
    assert not early.should_stop
    validator.extend([outcome((0, 1))] * 2 + [outcome((1, 0))] * 2)
    late = validator.signals()
    assert late.estimated_relative_error < 1.0
    assert late.should_stop
