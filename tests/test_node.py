"""Tests for hosts, routers, and static routing."""

import pytest

from repro.errors import RoutingError
from repro.net.link import Link
from repro.net.node import Host, Router
from repro.net.packet import Packet
from repro.net.simulator import Simulator
from repro.units import mbps


def wire(sim, a, b, bandwidth=mbps(100), delay=0.001):
    ab = Link(sim, bandwidth, delay, name=f"{a.name}->{b.name}")
    ba = Link(sim, bandwidth, delay, name=f"{b.name}->{a.name}")
    ab.connect(b.receive)
    ba.connect(a.receive)
    a.add_link(b.name, ab)
    b.add_link(a.name, ba)


def test_host_delivers_to_bound_application():
    sim = Simulator()
    alice, bob = Host(sim, "alice"), Host(sim, "bob")
    wire(sim, alice, bob)
    alice.add_route("bob", "bob")
    got = []
    bob.bind("udp", 9, got.append)
    alice.send(Packet("alice", "bob", 100, protocol="udp", port=9))
    sim.run()
    assert len(got) == 1
    assert got[0].src == "alice"


def test_router_forwards_between_hosts():
    sim = Simulator()
    alice, bob = Host(sim, "alice"), Host(sim, "bob")
    router = Router(sim, "r")
    wire(sim, alice, router)
    wire(sim, router, bob)
    alice.add_route("bob", "r")
    router.add_route("bob", "bob")
    got = []
    bob.bind("udp", 5, got.append)
    alice.send(Packet("alice", "bob", 100, port=5))
    sim.run()
    assert len(got) == 1


def test_unbound_delivery_counts_undeliverable():
    sim = Simulator()
    alice, bob = Host(sim, "alice"), Host(sim, "bob")
    wire(sim, alice, bob)
    alice.add_route("bob", "bob")
    alice.send(Packet("alice", "bob", 100, port=1234))
    sim.run()
    assert bob.undeliverable == 1


def test_no_route_raises():
    sim = Simulator()
    alice = Host(sim, "alice")
    with pytest.raises(RoutingError):
        alice.send(Packet("alice", "nowhere", 100))


def test_route_to_unattached_next_hop_rejected():
    sim = Simulator()
    alice = Host(sim, "alice")
    with pytest.raises(RoutingError):
        alice.add_route("bob", "missing")


def test_double_bind_rejected():
    sim = Simulator()
    host = Host(sim, "h")
    host.bind("udp", 1, lambda packet: None)
    with pytest.raises(RoutingError):
        host.bind("udp", 1, lambda packet: None)


def test_unbind_allows_rebinding():
    sim = Simulator()
    host = Host(sim, "h")
    host.bind("udp", 1, lambda packet: None)
    host.unbind("udp", 1)
    host.bind("udp", 1, lambda packet: None)


def test_unbind_missing_is_silent():
    sim = Simulator()
    Host(sim, "h").unbind("udp", 99)


def test_send_stamps_created_at():
    sim = Simulator()
    alice, bob = Host(sim, "alice"), Host(sim, "bob")
    wire(sim, alice, bob)
    alice.add_route("bob", "bob")
    bob.bind("udp", 2, lambda packet: None)
    sim.schedule(0.25, alice.send, Packet("alice", "bob", 100, port=2))
    packet = Packet("alice", "bob", 100, port=2)
    sim.schedule(0.5, alice.send, packet)
    sim.run()
    assert packet.created_at == 0.5


def test_loopback_delivery():
    sim = Simulator()
    host = Host(sim, "h")
    got = []
    host.bind("udp", 3, got.append)
    host.send(Packet("h", "h", 64, port=3))
    assert len(got) == 1


def test_protocol_demux_is_separate_per_protocol():
    sim = Simulator()
    alice, bob = Host(sim, "alice"), Host(sim, "bob")
    wire(sim, alice, bob)
    alice.add_route("bob", "bob")
    udp_got, tcp_got = [], []
    bob.bind("udp", 7, udp_got.append)
    bob.bind("tcp", 7, tcp_got.append)
    alice.send(Packet("alice", "bob", 100, protocol="tcp", port=7))
    sim.run()
    assert not udp_got
    assert len(tcp_got) == 1
