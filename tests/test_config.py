"""Tests for configuration dataclasses."""

import pytest

from repro.config import BadabingConfig, MarkingConfig, ProbeConfig, TestbedConfig
from repro.errors import ConfigurationError
from repro.units import mbps, ms


def test_testbed_defaults_keep_paper_time_scales():
    config = TestbedConfig()
    assert config.buffer_time == pytest.approx(ms(100))
    assert config.prop_delay == pytest.approx(ms(50))
    assert config.base_rtt == pytest.approx(0.1004)
    assert config.mtu == 1500


def test_buffer_bytes_scales_with_rate():
    slow = TestbedConfig(bottleneck_bps=mbps(12), access_bps=mbps(120))
    fast = TestbedConfig(bottleneck_bps=mbps(155), access_bps=mbps(1000))
    assert slow.buffer_bytes == 150_000
    assert fast.buffer_bytes == int(0.1 * 155e6 / 8)


def test_probe_config_defaults_match_paper():
    probe = ProbeConfig()
    assert probe.slot == pytest.approx(0.005)
    assert probe.probe_size == 600
    assert probe.packets_per_probe == 3
    assert probe.intra_probe_gap == pytest.approx(30e-6)


def test_probe_train_must_fit_in_slot():
    with pytest.raises(ConfigurationError):
        ProbeConfig(packets_per_probe=200, intra_probe_gap=0.0001)


def test_probe_config_validation():
    with pytest.raises(ConfigurationError):
        ProbeConfig(slot=0)
    with pytest.raises(ConfigurationError):
        ProbeConfig(probe_size=0)
    with pytest.raises(ConfigurationError):
        ProbeConfig(packets_per_probe=0)
    with pytest.raises(ConfigurationError):
        ProbeConfig(intra_probe_gap=-1e-6)


def test_badabing_duration():
    config = BadabingConfig(p=0.3, n_slots=180_000)
    assert config.duration == pytest.approx(900.0)


def test_badabing_validation():
    with pytest.raises(ConfigurationError):
        BadabingConfig(p=0.0)
    with pytest.raises(ConfigurationError):
        BadabingConfig(p=1.0001)
    with pytest.raises(ConfigurationError):
        BadabingConfig(n_slots=1)


def test_marking_defaults():
    marking = MarkingConfig()
    assert marking.alpha == 0.1
    assert marking.tau == pytest.approx(0.080)
    assert marking.owd_history == 16
