"""Tests for text rendering of tables and figures."""

from repro.experiments.figures import (
    ProbeImpactSeries,
    QueueSeries,
    SensitivitySweep,
    TrainSensitivity,
)
from repro.experiments.render import (
    render_probe_impact,
    render_queue_series,
    render_sensitivity,
    render_table,
    render_train_sensitivity,
    sparkline,
)
from repro.experiments.tables import TableResult, TableRow


def sample_table():
    rows = [
        TableRow("true values", 0.0069, None, 0.068, 0.0, None),
        TableRow("ZING (10Hz)", 0.0069, 0.0036, 0.068, 0.0, 0.043),
        TableRow("nan row", 0.0069, 0.001, 0.068, 0.0, float("nan")),
    ]
    return TableResult("table2", "Demo title", rows, "fast", notes="demo")


def test_render_table_contains_all_rows_and_values():
    text = render_table(sample_table())
    assert "TABLE2: Demo title" in text
    assert "true values" in text
    assert "0.0036" in text
    assert "0.068 (0.000)" in text
    assert "-" in text  # missing measured cells
    assert "nan" in text
    assert "note: demo" in text


def test_render_table_alignment():
    lines = render_table(sample_table()).splitlines()
    data_lines = [line for line in lines if line.startswith(("true", "ZING", "nan"))]
    # All data rows padded to the same grid.
    positions = {line.index("0.0069") for line in data_lines}
    assert len(positions) == 1


def test_sparkline_levels():
    line = sparkline([0.0, 0.5, 1.0], width=3)
    assert len(line) == 3
    assert line[0] == "▁"
    assert line[-1] == "█"


def test_sparkline_empty_and_flat():
    assert sparkline([]) == ""
    flat = sparkline([0.0, 0.0], width=10)
    assert set(flat) == {"▁"}


def test_sparkline_compresses_long_series():
    line = sparkline([float(i % 10) for i in range(10_000)], width=50)
    assert len(line) <= 51


def test_render_queue_series():
    series = QueueSeries("fig5", [0.0, 1.0], [0.0, 0.1], [(0.5, 0.6)])
    text = render_queue_series(series)
    assert "fig5" in text
    assert "100.0 ms" in text
    assert "1 loss episodes" in text


def test_render_train_sensitivity():
    curve = TrainSensitivity("episodic_cbr", [1, 2], [0.5, 0.1], [100, 90])
    text = render_train_sensitivity([curve])
    assert "episodic_cbr" in text
    assert "0.500" in text
    assert "( 100 probes)" in text.replace("  ", " ") or "100" in text


def test_render_probe_impact():
    item = ProbeImpactSeries(
        train_length=3,
        series=QueueSeries("fig8", [0.0], [0.0], [(1.0, 1.1)]),
        cross_drop_times=[1.0, 1.05],
        probe_drop_times=[1.02],
        probe_load_fraction=0.12,
    )
    text = render_probe_impact([item])
    assert "train= 3" in text
    assert "12.00%" in text


def test_render_sensitivity_orders_values():
    sweep = SensitivitySweep(
        "alpha",
        {0.2: [(0.1, 0.004)], 0.05: [(0.1, 0.001)]},
        true_frequency=0.0069,
    )
    text = render_sensitivity(sweep)
    assert text.index("alpha=0.05") < text.index("alpha=0.2")
    assert "0.0069" in text


def test_render_sensitivity_tau_in_ms():
    sweep = SensitivitySweep("tau", {0.08: [(0.1, 0.002)]}, true_frequency=0.005)
    assert "tau=80ms" in render_sensitivity(sweep)
