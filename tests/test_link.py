"""Tests for the link transmitter (serialization + propagation)."""

import pytest

from repro.errors import ConfigurationError
from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.net.simulator import Simulator
from repro.units import mbps


def make_link(sim, bandwidth=mbps(12), delay=0.05, queue=None):
    link = Link(sim, bandwidth, delay, queue=queue)
    arrivals = []
    link.connect(lambda packet: arrivals.append((sim.now, packet)))
    return link, arrivals


def test_single_packet_latency_is_serialization_plus_propagation():
    sim = Simulator()
    link, arrivals = make_link(sim)
    link.send(Packet("a", "b", 1500))
    sim.run()
    # 1500 B at 12 Mb/s = 1 ms, plus 50 ms propagation.
    assert arrivals[0][0] == pytest.approx(0.051)


def test_back_to_back_packets_are_serialized():
    sim = Simulator()
    link, arrivals = make_link(sim)
    link.send(Packet("a", "b", 1500))
    link.send(Packet("a", "b", 1500))
    sim.run()
    times = [t for t, _ in arrivals]
    assert times[0] == pytest.approx(0.051)
    assert times[1] == pytest.approx(0.052)  # one extra serialization time


def test_pipelining_on_the_wire():
    # Propagation >> serialization: the second packet starts transmitting
    # while the first is still propagating.
    sim = Simulator()
    link, arrivals = make_link(sim, delay=1.0)
    link.send(Packet("a", "b", 1500))
    link.send(Packet("a", "b", 1500))
    sim.run()
    assert arrivals[1][0] - arrivals[0][0] == pytest.approx(0.001)


def test_send_returns_false_when_queue_full():
    sim = Simulator()
    queue = DropTailQueue(1500)
    link, _ = make_link(sim, queue=queue)
    first = Packet("a", "b", 1500)
    assert link.send(first)
    # The first packet is immediately pulled into the transmitter, freeing
    # the queue, so fill it again before testing the drop.
    assert link.send(Packet("a", "b", 1500))
    assert not link.send(Packet("a", "b", 1500))


def test_delivery_order_preserved():
    sim = Simulator()
    link, arrivals = make_link(sim)
    packets = [Packet("a", "b", 500) for _ in range(5)]
    for packet in packets:
        link.send(packet)
    sim.run()
    assert [p.pid for _, p in arrivals] == [p.pid for p in packets]


def test_transmitted_counters():
    sim = Simulator()
    link, _ = make_link(sim)
    link.send(Packet("a", "b", 1000))
    link.send(Packet("a", "b", 500))
    sim.run()
    assert link.transmitted_packets == 2
    assert link.transmitted_bytes == 1500


def test_idle_then_busy_cycles():
    sim = Simulator()
    link, arrivals = make_link(sim, delay=0.0)
    link.send(Packet("a", "b", 1500))
    sim.run()
    link.send(Packet("a", "b", 1500))
    sim.run()
    assert len(arrivals) == 2
    assert arrivals[1][0] == pytest.approx(0.002)


def test_invalid_parameters_rejected():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        Link(sim, 0, 0.01)
    with pytest.raises(ConfigurationError):
        Link(sim, mbps(1), -0.01)


def test_utilization_hint():
    sim = Simulator()
    link, _ = make_link(sim, bandwidth=mbps(12), delay=0.0)
    for _ in range(10):
        link.send(Packet("a", "b", 1500))
    sim.run(until=0.02)
    # 10 packets = 10 ms of a 12 Mb/s link observed over 20 ms -> 50%.
    assert link.utilization_hint == pytest.approx(0.5)


def test_random_loss_drops_expected_fraction():
    sim = Simulator(seed=3)
    link = Link(sim, mbps(100), 0.0, name="lossy", random_loss=0.2)
    arrivals = []
    link.connect(lambda packet: arrivals.append(packet))
    for _ in range(5000):
        link.send(Packet("a", "b", 100))
    sim.run()
    assert link.randomly_lost == pytest.approx(1000, rel=0.15)
    assert len(arrivals) + link.randomly_lost == 5000


def test_random_loss_zero_is_lossless():
    sim = Simulator()
    link, arrivals = make_link(sim)
    assert link.randomly_lost == 0
    for _ in range(100):
        link.send(Packet("a", "b", 100))
    sim.run()
    assert len(arrivals) == 100


def test_random_loss_validation():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        Link(sim, mbps(1), 0.0, random_loss=1.0)
    with pytest.raises(ConfigurationError):
        Link(sim, mbps(1), 0.0, random_loss=-0.1)
