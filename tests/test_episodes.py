"""Tests for router-centric loss-episode extraction."""

import pytest

from repro.analysis.episodes import LossEpisode, episodes_from_monitor, extract_episodes
from repro.errors import ConfigurationError
from repro.net.monitor import QueueMonitor
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.net.simulator import Simulator


def test_empty_input():
    assert extract_episodes([]) == []


def test_single_drop_is_a_zero_length_episode():
    episodes = extract_episodes([5.0])
    assert episodes == [LossEpisode(5.0, 5.0, 1)]
    assert episodes[0].duration == 0.0


def test_consecutive_drops_merge_within_gap():
    episodes = extract_episodes([1.0, 1.1, 1.2, 5.0, 5.05])
    assert len(episodes) == 2
    assert episodes[0] == LossEpisode(1.0, 1.2, 3)
    assert episodes[1] == LossEpisode(5.0, 5.05, 2)


def test_max_gap_controls_merging():
    drops = [1.0, 1.4, 1.8]
    assert len(extract_episodes(drops, max_gap=0.5)) == 1
    assert len(extract_episodes(drops, max_gap=0.3)) == 3


def test_down_crossing_splits_even_close_drops():
    # Two drops 100 ms apart, but the queue drained below high water in
    # between: the paper's rule says these are different episodes.
    episodes = extract_episodes([1.0, 1.1], down_crossings=[1.05])
    assert len(episodes) == 2


def test_down_crossing_outside_interval_does_not_split():
    episodes = extract_episodes([1.0, 1.1], down_crossings=[0.9, 1.2])
    assert len(episodes) == 1


def test_crossing_at_exact_drop_time_does_not_split():
    # Crossings are strict: a crossing logged at the same timestamp as a
    # drop (event ordering artifact) must not split the episode.
    episodes = extract_episodes([1.0, 1.1], down_crossings=[1.0, 1.1])
    assert len(episodes) == 1


def test_unsorted_drops_rejected():
    with pytest.raises(ConfigurationError):
        extract_episodes([2.0, 1.0])


def test_invalid_max_gap_rejected():
    with pytest.raises(ConfigurationError):
        extract_episodes([1.0], max_gap=0.0)


def test_episode_invariants_enforced():
    with pytest.raises(ConfigurationError):
        LossEpisode(2.0, 1.0, 1)
    with pytest.raises(ConfigurationError):
        LossEpisode(1.0, 2.0, 0)


def test_episodes_from_monitor_uses_crossings():
    sim = Simulator()
    queue = DropTailQueue(1500)
    monitor = QueueMonitor(sim, high_water_bytes=1400)
    queue.attach(monitor)
    # Fill, drop, drain (down-crossing), fill, drop again.
    queue.offer(0.0, Packet("a", "b", 1500, protocol="tcp"))
    queue.offer(0.1, Packet("a", "b", 1500, protocol="tcp"))  # drop
    queue.take(0.2)  # crossing
    queue.offer(0.3, Packet("a", "b", 1500, protocol="tcp"))
    queue.offer(0.35, Packet("a", "b", 1500, protocol="tcp"))  # drop
    episodes = episodes_from_monitor(monitor)
    assert len(episodes) == 2


def test_episodes_from_monitor_protocol_filter():
    sim = Simulator()
    queue = DropTailQueue(1500)
    monitor = QueueMonitor(sim)
    queue.attach(monitor)
    queue.offer(0.0, Packet("a", "b", 1500, protocol="tcp"))
    queue.offer(0.1, Packet("a", "b", 1500, protocol="probe"))  # drop
    assert episodes_from_monitor(monitor, protocol="tcp") == []
    assert len(episodes_from_monitor(monitor, protocol="probe")) == 1
