"""Wire-format tests: round-trip properties, golden bytes, fuzz resistance."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WireFormatError
from repro.live import wire


# --------------------------------------------------------------- round trips
kinds = st.sampled_from(
    [
        wire.HELLO,
        wire.HELLO_ACK,
        wire.PROBE,
        wire.ECHO,
        wire.FIN,
        wire.FIN_ACK,
        wire.BUSY,
        wire.NAK,
    ]
)
u64 = st.integers(min_value=0, max_value=2**64 - 1)
u32 = st.integers(min_value=0, max_value=2**32 - 1)


@settings(max_examples=200, deadline=None)
@given(
    kind=kinds,
    session=u64,
    sequence=u32,
    slot=u32,
    packets=st.integers(min_value=1, max_value=255),
    send_ns=u64,
    data=st.data(),
)
def test_header_round_trip(kind, session, sequence, slot, packets, send_ns, data):
    index = data.draw(st.integers(min_value=0, max_value=packets - 1))
    header = wire.ProbeHeader(
        kind=kind,
        session=session,
        sequence=sequence,
        slot=slot,
        index=index,
        packets_per_probe=packets,
        send_ns=send_ns,
    )
    assert wire.decode_header(wire.encode_header(header)) == header


@settings(max_examples=100, deadline=None)
@given(
    schedule_seed=u64,
    n_slots=st.integers(min_value=2, max_value=2**32 - 1),
    slot_ns=st.integers(min_value=1, max_value=2**64 - 1),
    p_ppm=st.integers(min_value=1, max_value=wire.PPM),
    packets=st.integers(min_value=1, max_value=255),
    improved=st.booleans(),
    probe_size=st.integers(min_value=wire.HEADER_SIZE, max_value=65535),
    session=u64,
    send_ns=u64,
)
def test_hello_round_trip(
    schedule_seed, n_slots, slot_ns, p_ppm, packets, improved, probe_size, session, send_ns
):
    spec = wire.SessionSpec(
        schedule_seed=schedule_seed,
        n_slots=n_slots,
        slot_ns=slot_ns,
        p_ppm=p_ppm,
        packets_per_probe=packets,
        improved=improved,
        probe_size=probe_size,
    )
    header, decoded = wire.decode_hello(wire.encode_hello(session, spec, send_ns))
    assert decoded == spec
    assert header.kind == wire.HELLO
    assert header.session == session
    assert header.send_ns == send_ns


def test_echo_round_trip():
    probe = wire.decode_header(
        wire.encode_probe(session=7, sequence=42, slot=99, index=1,
                          packets_per_probe=3, send_ns=123456789)
    )
    payload = wire.encode_echo(probe, recv_ns=987654321)
    header, recv_ns = wire.decode_echo(payload)
    assert header.kind == wire.ECHO
    assert (header.slot, header.index) == (99, 1)
    assert header.send_ns == 123456789
    assert recv_ns == 987654321


@settings(max_examples=100, deadline=None)
@given(
    session=u64,
    retry_ms=st.integers(min_value=0, max_value=2**32 - 1),
    reason=st.sampled_from(sorted(wire.BUSY_REASONS)),
    send_ns=u64,
)
def test_busy_round_trip(session, retry_ms, reason, send_ns):
    payload = wire.encode_busy(session, retry_ms / 1000.0, reason, send_ns)
    header, retry_after, decoded_reason = wire.decode_busy(payload)
    assert header.kind == wire.BUSY
    assert header.session == session
    assert header.send_ns == send_ns
    assert decoded_reason == reason
    assert retry_after == pytest.approx(retry_ms / 1000.0, abs=1e-9)


def test_nak_is_a_bare_control_datagram():
    payload = wire.encode_control(wire.NAK, session=42, send_ns=7)
    assert len(payload) == wire.HEADER_SIZE
    header = wire.decode_header(payload)
    assert header.kind == wire.NAK
    assert header.session == 42


def test_probe_padding_to_probe_size():
    payload = wire.encode_probe(
        session=1, sequence=0, slot=0, index=0, packets_per_probe=1,
        send_ns=0, probe_size=600,
    )
    assert len(payload) == 600
    assert payload[wire.HEADER_SIZE:] == b"\x00" * (600 - wire.HEADER_SIZE)
    wire.decode_header(payload)  # padding must not confuse the decoder


# ------------------------------------------------------- endianness stability
def test_golden_header_bytes():
    """The wire layout is frozen: network byte order, 30-byte header."""
    header = wire.ProbeHeader(
        kind=wire.PROBE,
        session=0x0102030405060708,
        sequence=0x0A0B0C0D,
        slot=0x00000010,
        index=1,
        packets_per_probe=3,
        send_ns=0x1122334455667788,
    )
    expected = (
        b"\xba\xda"              # magic
        b"\x01"                  # version
        b"\x03"                  # kind = PROBE
        b"\x01\x02\x03\x04\x05\x06\x07\x08"  # session (big-endian)
        b"\x0a\x0b\x0c\x0d"      # sequence
        b"\x00\x00\x00\x10"      # slot
        b"\x01"                  # index
        b"\x03"                  # packets per probe
        b"\x11\x22\x33\x44\x55\x66\x77\x88"  # send_ns
    )
    assert wire.encode_header(header) == expected
    assert wire.HEADER_SIZE == 30


# ------------------------------------------------------------- malformed input
def test_rejects_short_datagram():
    with pytest.raises(WireFormatError):
        wire.decode_header(b"\xba\xda\x01")


def test_rejects_empty_datagram():
    with pytest.raises(WireFormatError):
        wire.decode_header(b"")


def test_rejects_bad_magic():
    good = wire.encode_probe(
        session=1, sequence=0, slot=0, index=0, packets_per_probe=1, send_ns=0
    )
    with pytest.raises(WireFormatError):
        wire.decode_header(b"\x00\x00" + good[2:])


def test_rejects_version_skew():
    good = bytearray(
        wire.encode_probe(
            session=1, sequence=0, slot=0, index=0, packets_per_probe=1, send_ns=0
        )
    )
    good[2] = wire.VERSION + 1
    with pytest.raises(WireFormatError):
        wire.decode_header(bytes(good))


def test_rejects_unknown_kind():
    good = bytearray(
        wire.encode_probe(
            session=1, sequence=0, slot=0, index=0, packets_per_probe=1, send_ns=0
        )
    )
    good[3] = 200
    with pytest.raises(WireFormatError):
        wire.decode_header(bytes(good))


def test_rejects_index_past_train():
    packed = struct.pack(
        "!HBBQIIBBQ", wire.MAGIC, wire.VERSION, wire.PROBE, 1, 0, 0, 3, 3, 0
    )
    with pytest.raises(WireFormatError):
        wire.decode_header(packed)


def test_rejects_zero_packets_per_probe():
    packed = struct.pack(
        "!HBBQIIBBQ", wire.MAGIC, wire.VERSION, wire.PROBE, 1, 0, 0, 0, 0, 0
    )
    with pytest.raises(WireFormatError):
        wire.decode_header(packed)


def test_echo_requires_trailer():
    probe = wire.decode_header(
        wire.encode_probe(
            session=1, sequence=0, slot=0, index=0, packets_per_probe=1, send_ns=0
        )
    )
    echo = wire.encode_echo(probe, recv_ns=5)
    with pytest.raises(WireFormatError):
        wire.decode_echo(echo[:-1])


def test_hello_requires_spec_trailer():
    spec = wire.SessionSpec(
        schedule_seed=1, n_slots=10, slot_ns=5_000_000, p_ppm=300_000,
        packets_per_probe=3, improved=False, probe_size=wire.HEADER_SIZE,
    )
    hello = wire.encode_hello(1, spec, 0)
    with pytest.raises(WireFormatError):
        wire.decode_hello(hello[: wire.HEADER_SIZE + 3])


def test_spec_validate_rejects_bad_fields():
    base = dict(
        schedule_seed=1, n_slots=10, slot_ns=5_000_000, p_ppm=300_000,
        packets_per_probe=3, improved=False, probe_size=wire.HEADER_SIZE,
    )
    for bad in (
        {"p_ppm": 0},
        {"p_ppm": wire.PPM + 1},
        {"n_slots": 1},
        {"slot_ns": 0},
        {"packets_per_probe": 0},
        {"probe_size": wire.HEADER_SIZE - 1},
    ):
        spec = wire.SessionSpec(**{**base, **bad})
        with pytest.raises(WireFormatError):
            spec.validate()


def test_busy_requires_trailer():
    busy = wire.encode_busy(1, 0.5, wire.BUSY_SESSIONS, 0)
    with pytest.raises(WireFormatError):
        wire.decode_busy(busy[:-1])


def test_busy_rejects_unknown_reason():
    busy = bytearray(wire.encode_busy(1, 0.5, wire.BUSY_SESSIONS, 0))
    busy[-1] = 99
    with pytest.raises(WireFormatError):
        wire.decode_busy(bytes(busy))
    with pytest.raises(WireFormatError):
        wire.encode_busy(1, 0.5, 99, 0)


def test_golden_busy_bytes():
    """The BUSY trailer layout is frozen: retry_after u32 ms + reason u8."""
    payload = wire.encode_busy(1, 1.5, wire.BUSY_RATE, 0)
    assert len(payload) == wire.BUSY_SIZE == wire.HEADER_SIZE + 5
    assert payload[wire.HEADER_SIZE:] == b"\x00\x00\x05\xdc\x02"  # 1500ms, rate


# ------------------------------------------------------------------- fuzzing
@settings(max_examples=300, deadline=None)
@given(st.binary(max_size=100))
def test_fuzz_decode_header_never_raises_other_errors(data):
    try:
        wire.decode_header(data)
    except WireFormatError:
        pass


@settings(max_examples=200, deadline=None)
@given(st.binary(max_size=100))
def test_fuzz_decode_hello_and_echo(data):
    for decoder in (wire.decode_hello, wire.decode_echo, wire.decode_busy):
        try:
            decoder(data)
        except WireFormatError:
            pass


@settings(max_examples=100, deadline=None)
@given(st.binary(min_size=wire.HEADER_SIZE, max_size=wire.HEADER_SIZE))
def test_fuzz_valid_length_random_bytes(data):
    """Exactly-header-sized garbage must decode or raise WireFormatError."""
    try:
        header = wire.decode_header(data)
    except WireFormatError:
        return
    # If it decoded, it must re-encode to the same bytes (no silent loss).
    assert wire.encode_header(header) == data
