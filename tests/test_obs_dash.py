"""Tests for the terminal fleet dashboard and its CLI surfaces.

The renderer is a pure function over ``repro.obs.sessions/1`` documents,
so most tests drive it with synthetic dicts. The CLI tests cover
``repro dash --replay`` (offline frames from a recorded export stream),
``obs summary --by-label`` (per-shard grouping), ``obs validate
--export``, and the hardened artifact-path behavior (missing parent
directories are created; impossible paths become structured exit-2
errors, not tracebacks).
"""

import json

import pytest

from repro.cli import main
from repro.errors import ObservabilityError
from repro.obs import write_metrics_document
from repro.obs.dash import (
    dashboard_lines,
    document_from_export_record,
    render_frame,
    replay_documents,
)
from repro.obs.export import TelemetryExporter
from repro.obs.metrics import MetricsRegistry


def synthetic_document(**overrides):
    document = {
        "schema": "repro.obs.sessions/1",
        "seq": 7,
        "uptime": 12.5,
        "wall": 1000.0,
        "meta": {"tool": "badabing-fleet"},
        "sessions": [
            {
                "label": "session[0]",
                "f_hat": 0.301,
                "f_delta": 0.0,
                "d_hat_seconds": 0.052,
                "violation_rate": 0.01,
                "samples": 12,
                "last_t": 3.0,
            },
            {
                "label": "session[1]",
                "f_hat": 0.292,
                "f_delta": 0.004,
                "d_hat_seconds": None,
                "violation_rate": None,
                "samples": 8,
                "last_t": 2.5,
            },
            {
                "label": "session[2]",
                "f_hat": None,
                "f_delta": None,
                "d_hat_seconds": None,
                "violation_rate": None,
                "samples": 0,
                "last_t": None,
            },
        ],
        "drops": {"overflow": 14, "impair": 3},
        "counters": {"live.sessions": 3, "live.admission_rejected": 1},
        "gauges": {"live.sessions_active": 2},
        "alerts": [],
    }
    document.update(overrides)
    return document


class TestDashboardRenderer:
    def test_header_table_and_fleet_lines(self):
        lines = dashboard_lines(synthetic_document())
        assert lines[0] == "badabing-fleet dashboard · seq 7 · up 12.5s · 3 sessions"
        assert "alerts: none firing" in lines
        joined = "\n".join(lines)
        assert "session[0]" in joined and "steady" in joined
        assert "converging" in joined  # session[1] has a nonzero drift
        assert "waiting" in joined  # session[2] has no estimate yet
        assert "drops: overflow=14  impair=3" in joined
        assert (
            "fleet: active=2  admitted=3  rejected=1" in joined
        )

    def test_firing_alerts_banner_and_row_column(self):
        document = synthetic_document(
            alerts=[
                {
                    "rule": "stalled",
                    "metric": "audit.f_hat{session=session[1]}",
                    "firing": True,
                    "since": 990.0,
                    "severity": "warning",
                },
                {
                    "rule": "quiet",
                    "metric": "live.wire_errors",
                    "firing": False,
                    "since": None,
                    "severity": "critical",
                },
            ]
        )
        lines = dashboard_lines(document)
        assert any(line.startswith("ALERT [warning] stalled since 990") for line in lines)
        assert not any("quiet" in line for line in lines if line.startswith("ALERT"))
        row = next(line for line in lines if line.startswith("session[1]"))
        assert "stalled" in row  # rule scoped to this session lands in its row
        row = next(line for line in lines if line.startswith("session[0]"))
        assert "stalled" not in row

    def test_empty_document_renders_placeholder(self):
        lines = dashboard_lines({"sessions": [], "meta": {}})
        assert "(no session telemetry yet)" in lines

    def test_render_frame_is_newline_terminated(self):
        assert render_frame(synthetic_document()).endswith("\n")

    def test_document_from_export_record(self):
        reg = MetricsRegistry()
        series = reg.series("audit.f_hat", session="session[0]")
        series.append(1.0, 0.3)
        exporter = TelemetryExporter(reg, meta={"tool": "unit"})
        record = exporter.export_now()
        document = document_from_export_record(record)
        assert document["seq"] == record["seq"]
        assert document["meta"] == {"tool": "unit"}
        assert document["sessions"][0]["label"] == "session[0]"

    def test_document_from_record_without_metrics_raises(self):
        with pytest.raises(ObservabilityError):
            document_from_export_record({"seq": 1})

    def test_replay_of_empty_stream_raises(self, tmp_path):
        path = tmp_path / "empty.ndjson"
        path.write_text("")
        with pytest.raises(ObservabilityError):
            list(replay_documents(path))


def recorded_stream(tmp_path, frames=3):
    """A small recorded export stream with per-session series."""
    reg = MetricsRegistry()
    path = tmp_path / "soak.ndjson"
    exporter = TelemetryExporter(reg, path=path, meta={"tool": "badabing-fleet"})
    for frame in range(frames):
        for session in range(2):
            series = reg.series("audit.f_hat", session=f"session[{session}]")
            series.append(float(frame), 0.3 + 0.01 * session)
        reg.counter("live.sessions").inc(0 if frame else 2)
        exporter.export_now(kind="progress")
    exporter.close()
    return path


class TestDashCli:
    def test_replay_once_renders_last_frame(self, tmp_path, capsys):
        path = recorded_stream(tmp_path)
        assert main(["dash", "--replay", str(path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "badabing-fleet dashboard" in out
        assert "session[0]" in out and "session[1]" in out
        assert "\x1b[2J" not in out  # --once never clears the screen

    def test_replay_no_clear_renders_every_frame(self, tmp_path, capsys):
        path = recorded_stream(tmp_path, frames=2)
        code = main(
            ["dash", "--replay", str(path), "--no-clear", "--interval", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        # 2 progress frames + 1 final record.
        assert out.count("badabing-fleet dashboard") == 3

    def test_requires_exactly_one_feed(self, tmp_path, capsys):
        assert main(["dash"]) == 2
        assert "exactly one of" in capsys.readouterr().err
        assert (
            main(["dash", "--url", "http://x", "--replay", str(tmp_path / "f")]) == 2
        )

    def test_unreachable_url_is_structured_error(self, capsys):
        code = main(["dash", "--url", "http://127.0.0.1:9", "--once"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestByLabelSummaryCli:
    def test_groups_merged_shards(self, tmp_path, capsys):
        merged = MetricsRegistry()
        for index in range(2):
            shard = MetricsRegistry()
            shard.counter("live.packets_sent", role="sender").inc(10 + index)
            shard.series("audit.f_hat").append(1.0, 0.3)
            merged.merge(shard, series_labels={"session": f"session[{index}]"})
        path = tmp_path / "metrics.json"
        write_metrics_document(path, merged)
        assert main(["obs", "summary", str(path), "--by-label"]) == 0
        out = capsys.readouterr().out
        assert "shards: 2 (grouped by session/cell)" in out
        assert "── session[0]" in out and "── session[1]" in out
        assert "shared (aggregated across shards)" in out

    def test_falls_back_flat_without_shard_labels(self, tmp_path, capsys):
        reg = MetricsRegistry()
        reg.counter("live.packets_sent").inc(4)
        path = tmp_path / "metrics.json"
        write_metrics_document(path, reg)
        assert main(["obs", "summary", str(path), "--by-label"]) == 0
        out = capsys.readouterr().out
        assert "no shard labels found" in out


class TestValidateExportCli:
    def test_validate_export_stream(self, tmp_path, capsys):
        path = recorded_stream(tmp_path)
        assert main(["obs", "validate", "--export", str(path)]) == 0
        assert "validation OK" in capsys.readouterr().out

    def test_validate_rejects_corrupt_stream(self, tmp_path, capsys):
        path = tmp_path / "bad.ndjson"
        path.write_text(json.dumps({"schema": "nope", "seq": 1}) + "\n")
        assert main(["obs", "validate", "--export", str(path)]) == 1
        assert "schema" in capsys.readouterr().err

    def test_validate_with_no_inputs_is_an_error(self, capsys):
        assert main(["obs", "validate"]) == 2
        assert "nothing to validate" in capsys.readouterr().err


class TestArtifactPathHardening:
    MEASURE = [
        "measure", "episodic_cbr", "--p", "0.5", "--slots", "2000",
        "--seed", "3", "--profile", "smoke",
    ]

    def test_metrics_out_creates_missing_parent_dirs(self, tmp_path, capsys):
        target = tmp_path / "deep" / "nested" / "metrics.json"
        code = main(self.MEASURE + ["--metrics-out", str(target)])
        assert code == 0
        assert target.exists()
        document = json.loads(target.read_text())
        assert "metrics" in document

    def test_trace_out_creates_missing_parent_dirs(self, tmp_path, capsys):
        target = tmp_path / "a" / "b" / "trace.jsonl"
        code = main(self.MEASURE + ["--trace-out", str(target)])
        assert code == 0
        assert target.exists()

    def test_impossible_path_is_structured_exit_2(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory")
        code = main(
            self.MEASURE + ["--metrics-out", str(blocker / "metrics.json")]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_export_out_creates_missing_parent_dirs(self, tmp_path, capsys):
        target = tmp_path / "x" / "y" / "soak.ndjson"
        code = main(
            [
                "live", "fleet", "--sessions", "1", "--slots", "60",
                "--export-out", str(target), "--export-interval", "5",
            ]
        )
        assert code == 0
        assert target.exists()
