"""Tests for topology building and the dumbbell testbed replica."""

import pytest

from repro.config import TestbedConfig
from repro.errors import ConfigurationError, RoutingError
from repro.net.packet import Packet
from repro.net.simulator import Simulator
from repro.net.topology import DumbbellTestbed, Topology
from repro.units import mbps, ms


def test_routes_follow_shortest_paths():
    sim = Simulator()
    topo = Topology(sim)
    for name in ("a", "b", "c"):
        topo.add_host(name)
    topo.add_router("r1")
    topo.add_router("r2")
    topo.connect("a", "r1", mbps(100), 0.001)
    topo.connect("b", "r2", mbps(100), 0.001)
    topo.connect("r1", "r2", mbps(100), 0.001)
    topo.connect("c", "r1", mbps(100), 0.001)
    topo.build_routes()
    assert topo.nodes["a"].routes["b"] == "r1"
    assert topo.nodes["r1"].routes["b"] == "r2"
    assert topo.nodes["a"].routes["c"] == "r1"


def test_disconnected_topology_rejected():
    sim = Simulator()
    topo = Topology(sim)
    topo.add_host("a")
    topo.add_host("b")
    with pytest.raises(RoutingError):
        topo.build_routes()


def test_duplicate_node_rejected():
    sim = Simulator()
    topo = Topology(sim)
    topo.add_host("a")
    with pytest.raises(ConfigurationError):
        topo.add_router("a")


def test_end_to_end_delivery_through_dumbbell():
    sim = Simulator()
    testbed = DumbbellTestbed(sim)
    got = []
    testbed.traffic_receivers[0].bind("udp", 9, got.append)
    testbed.traffic_senders[0].send(
        Packet("tsnd0", "trcv0", 1500, port=9)
    )
    sim.run()
    assert len(got) == 1


def test_probe_hosts_exist_and_are_routable():
    sim = Simulator()
    testbed = DumbbellTestbed(sim)
    got = []
    testbed.probe_receiver.bind("probe", 1, got.append)
    testbed.probe_sender.send(
        Packet("probesnd", "probercv", 600, protocol="probe", port=1)
    )
    sim.run()
    assert len(got) == 1


def test_bottleneck_buffer_sized_in_time():
    config = TestbedConfig(bottleneck_bps=mbps(12), buffer_time=ms(100))
    sim = Simulator()
    testbed = DumbbellTestbed(sim, config)
    # 100 ms at 12 Mb/s = 150,000 bytes.
    assert testbed.bottleneck_queue.capacity_bytes == 150_000


def test_one_way_propagation_matches_config():
    config = TestbedConfig(prop_delay=ms(50), access_delay=ms(0.1))
    sim = Simulator()
    testbed = DumbbellTestbed(sim, config)
    assert testbed.one_way_propagation == pytest.approx(0.0502)
    assert config.base_rtt == pytest.approx(0.1004)


def test_loss_happens_only_at_bottleneck():
    sim = Simulator()
    config = TestbedConfig(n_traffic_pairs=1)
    testbed = DumbbellTestbed(sim, config)
    testbed.traffic_receivers[0].bind("udp", 9, lambda packet: None)
    # Blast 1 MB instantly: far more than the 150 kB bottleneck buffer.
    for _ in range(700):
        testbed.traffic_senders[0].send(Packet("tsnd0", "trcv0", 1500, port=9))
    sim.run()
    assert testbed.monitor.total_drops > 0
    # Access links had room (their queues are effectively unlimited).
    assert testbed.bottleneck_queue.stats.dropped_packets == testbed.monitor.total_drops


def test_red_variant_constructs():
    sim = Simulator()
    testbed = DumbbellTestbed(sim, TestbedConfig(red=True))
    assert type(testbed.bottleneck_queue).__name__ == "REDQueue"


def test_host_accessor_rejects_routers():
    sim = Simulator()
    testbed = DumbbellTestbed(sim)
    assert testbed.host("tsnd0").name == "tsnd0"
    with pytest.raises(ConfigurationError):
        testbed.host("routerL")


def test_config_validation():
    with pytest.raises(ConfigurationError):
        TestbedConfig(access_bps=mbps(1), bottleneck_bps=mbps(12))
    with pytest.raises(ConfigurationError):
        TestbedConfig(n_traffic_pairs=0)
    with pytest.raises(ConfigurationError):
        TestbedConfig(buffer_time=0)
    with pytest.raises(ConfigurationError):
        TestbedConfig(mtu=10)
