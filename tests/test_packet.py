"""Tests for the Packet type."""

import pytest

from repro.net.packet import Packet


def test_pids_are_unique_and_increasing():
    a, b = Packet("x", "y", 100), Packet("x", "y", 100)
    assert b.pid > a.pid


def test_default_flow_label():
    packet = Packet("alice", "bob", 100)
    assert packet.flow == "alice->bob"
    labelled = Packet("alice", "bob", 100, flow="flow-7")
    assert labelled.flow == "flow-7"


def test_size_must_be_positive():
    with pytest.raises(ValueError):
        Packet("a", "b", 0)


def test_metadata_is_lazy():
    packet = Packet("a", "b", 100)
    assert packet.metadata is None
    packet.note("k", 1)
    assert packet.metadata == {"k": 1}
    packet.note("j", 2)
    assert packet.metadata == {"k": 1, "j": 2}


def test_timestamps_default_unset():
    packet = Packet("a", "b", 100)
    assert packet.created_at == -1.0
    assert packet.enqueued_at == -1.0


def test_slots_prevent_arbitrary_attributes():
    packet = Packet("a", "b", 100)
    with pytest.raises(AttributeError):
        packet.bogus = 1
