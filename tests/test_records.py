"""Tests for probe records and experiment outcomes."""

import pytest

from repro.core.records import ExperimentOutcome, MeasurementLog, ProbeRecord
from repro.errors import ConfigurationError


def test_probe_record_loss_accounting():
    probe = ProbeRecord(slot=10, send_time=0.05, n_packets=3, owds=(0.1, 0.11))
    assert probe.lost_packets == 1
    assert probe.lost
    assert probe.max_owd == pytest.approx(0.11)


def test_probe_record_all_received():
    probe = ProbeRecord(slot=0, send_time=0.0, n_packets=3, owds=(0.1, 0.1, 0.1))
    assert not probe.lost
    assert probe.lost_packets == 0


def test_probe_record_all_lost():
    probe = ProbeRecord(slot=0, send_time=0.0, n_packets=3, owds=())
    assert probe.lost_packets == 3
    assert probe.max_owd is None


def test_probe_record_validation():
    with pytest.raises(ConfigurationError):
        ProbeRecord(slot=0, send_time=0.0, n_packets=0, owds=())
    with pytest.raises(ConfigurationError):
        ProbeRecord(slot=0, send_time=0.0, n_packets=1, owds=(0.1, 0.2))


def test_outcome_string_and_bits():
    outcome = ExperimentOutcome(7, (0, 1))
    assert outcome.as_string == "01"
    assert outcome.first_bit == 0
    assert outcome.is_basic
    assert not outcome.is_extended
    extended = ExperimentOutcome(9, (1, 1, 0))
    assert extended.as_string == "110"
    assert extended.is_extended
    assert extended.first_bit == 1


def test_outcome_validation():
    with pytest.raises(ConfigurationError):
        ExperimentOutcome(0, (1,))
    with pytest.raises(ConfigurationError):
        ExperimentOutcome(0, (1, 0, 1, 0))
    with pytest.raises(ConfigurationError):
        ExperimentOutcome(0, (0, 2))


def test_outcomes_are_hashable_value_objects():
    assert ExperimentOutcome(1, (0, 1)) == ExperimentOutcome(1, (0, 1))
    assert len({ExperimentOutcome(1, (0, 1)), ExperimentOutcome(1, (0, 1))}) == 1


def test_measurement_log_defaults():
    log = MeasurementLog(slot_width=0.005, n_slots=100)
    assert log.probes == []
    assert log.outcomes == []
    assert log.blind_slots == 0
