"""Property-based tests (hypothesis) on core data structures and invariants."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.episodes import extract_episodes
from repro.analysis.slots import congested_slot_set, true_frequency
from repro.analysis.stats import mean_std
from repro.core.estimators import estimate_from_outcomes
from repro.core.records import ExperimentOutcome
from repro.core.schedule import GeometricSchedule, outcomes_from_true_states
from repro.core.validation import validate_outcomes
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.synthetic.renewal import AlternatingRenewalProcess, GeometricSlots

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

bits2 = st.tuples(st.integers(0, 1), st.integers(0, 1))
bits3 = st.tuples(st.integers(0, 1), st.integers(0, 1), st.integers(0, 1))
outcome_strategy = st.builds(
    ExperimentOutcome, st.integers(0, 10_000), st.one_of(bits2, bits3)
)

sorted_times = st.lists(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False), min_size=1, max_size=60
).map(sorted)


# ---------------------------------------------------------------------------
# Episode extraction invariants
# ---------------------------------------------------------------------------

@given(drops=sorted_times, max_gap=st.floats(min_value=0.01, max_value=10.0))
def test_episodes_partition_drops(drops, max_gap):
    episodes = extract_episodes(drops, max_gap=max_gap)
    # Every drop belongs to exactly one episode.
    assert sum(episode.drops for episode in episodes) == len(drops)
    # Episodes are chronological and disjoint.
    for earlier, later in zip(episodes, episodes[1:]):
        assert earlier.end < later.start
    # Each episode's span is covered by drops no farther than max_gap apart.
    for episode in episodes:
        assert episode.start <= episode.end


@given(drops=sorted_times)
def test_episode_durations_bounded_by_span(drops):
    episodes = extract_episodes(drops, max_gap=1.0)
    for episode in episodes:
        assert 0.0 <= episode.duration <= drops[-1] - drops[0] + 1e-9


@given(
    drops=sorted_times,
    crossings=st.lists(
        st.floats(min_value=0.0, max_value=1000.0, allow_nan=False), max_size=30
    ).map(sorted),
)
def test_crossings_only_increase_episode_count(drops, crossings):
    without = extract_episodes(drops, max_gap=5.0)
    with_crossings = extract_episodes(drops, crossings, max_gap=5.0)
    assert len(with_crossings) >= len(without)


# ---------------------------------------------------------------------------
# Slot discretization invariants
# ---------------------------------------------------------------------------

@given(drops=sorted_times, n_slots=st.integers(10, 5000))
def test_frequency_bounded(drops, n_slots):
    episodes = extract_episodes(drops, max_gap=0.5)
    frequency = true_frequency(episodes, 0.005, n_slots)
    assert 0.0 <= frequency <= 1.0


@given(drops=sorted_times)
def test_congested_slots_within_window(drops):
    episodes = extract_episodes(drops, max_gap=0.5)
    slots = congested_slot_set(episodes, 0.005, 100)
    assert all(0 <= slot < 100 for slot in slots)


# ---------------------------------------------------------------------------
# Estimator invariants
# ---------------------------------------------------------------------------

@given(outcomes=st.lists(outcome_strategy, min_size=1, max_size=300))
def test_frequency_always_in_unit_interval(outcomes):
    estimate = estimate_from_outcomes(outcomes)
    assert 0.0 <= estimate.frequency <= 1.0
    assert estimate.n_experiments == len(outcomes)


@given(outcomes=st.lists(outcome_strategy, min_size=1, max_size=300))
def test_duration_at_least_one_slot_when_valid_basic(outcomes):
    estimate = estimate_from_outcomes(outcomes, improved=False)
    if estimate.duration_valid:
        # R >= S always, so D = 2(R/S - 1) + 1 >= 1 slot.
        assert estimate.duration_slots >= 1.0


@given(outcomes=st.lists(outcome_strategy, min_size=1, max_size=300))
def test_counts_are_consistent(outcomes):
    estimate = estimate_from_outcomes(outcomes)
    counts = estimate.counts
    assert counts["S"] <= counts["R"]
    assert counts["S"] == counts["01"] + counts["10"]
    assert counts["R"] == counts["S"] + counts["11"]
    assert counts["U"] == counts["011"] + counts["110"]
    assert counts["V"] == counts["001"] + counts["100"]


@given(outcomes=st.lists(outcome_strategy, min_size=1, max_size=300))
def test_validation_counts_match_estimator_counts(outcomes):
    estimate = estimate_from_outcomes(outcomes)
    validation = validate_outcomes(outcomes)
    assert validation.n01 == estimate.counts["01"]
    assert validation.n10 == estimate.counts["10"]
    assert 0.0 <= validation.transition_asymmetry <= 1.0
    assert validation.violations == estimate.counts["010"] + estimate.counts["101"]


@given(
    p=st.floats(min_value=0.05, max_value=1.0),
    n_slots=st.integers(10, 3000),
    seed=st.integers(0, 2**30),
)
def test_schedule_invariants(p, n_slots, seed):
    schedule = GeometricSchedule(p, n_slots, random.Random(seed))
    assert schedule.n_probes <= n_slots
    assert schedule.n_experiments <= n_slots
    covered = set()
    for experiment in schedule.experiments:
        assert 0 <= experiment.start_slot
        assert experiment.start_slot + experiment.length <= n_slots
        covered.update(experiment.slots)
    assert covered == set(schedule.probe_slots)


@given(
    seed=st.integers(0, 2**30),
    mean_on=st.floats(min_value=1.0, max_value=10.0),
    mean_off=st.floats(min_value=1.0, max_value=50.0),
)
@settings(max_examples=25, deadline=None)
def test_perfect_observation_frequency_matches_truth(seed, mean_on, mean_off):
    rng = random.Random(seed)
    process = AlternatingRenewalProcess(
        GeometricSlots(mean_on), GeometricSlots(mean_off), rng
    )
    states = process.generate(30_000)
    true_f, _d = AlternatingRenewalProcess.truth(states)
    schedule = GeometricSchedule(0.5, len(states), random.Random(seed + 1))
    outcomes = outcomes_from_true_states(schedule.experiments, states)
    if not outcomes:
        return
    estimate = estimate_from_outcomes(outcomes)
    # Unbiasedness within sampling noise: generous 5-sigma-ish band.
    sigma = math.sqrt(max(true_f * (1 - true_f), 1e-9) / len(outcomes))
    assert abs(estimate.frequency - true_f) < max(5 * sigma, 0.02)


# ---------------------------------------------------------------------------
# Queue invariants
# ---------------------------------------------------------------------------

@given(
    sizes=st.lists(st.integers(40, 9000), min_size=1, max_size=200),
    capacity=st.integers(1500, 64_000),
)
def test_queue_never_exceeds_capacity_and_conserves_packets(sizes, capacity):
    queue = DropTailQueue(capacity)
    accepted = 0
    for size in sizes:
        if queue.offer(0.0, Packet("a", "b", size)):
            accepted += 1
        assert queue.bytes_queued <= capacity
    drained = 0
    while queue.take(1.0) is not None:
        drained += 1
    assert drained == accepted
    assert queue.stats.dropped_packets == len(sizes) - accepted
    assert queue.bytes_queued == 0


@given(values=st.lists(st.floats(-1e6, 1e6, allow_nan=False), max_size=100))
def test_mean_std_invariants(values):
    mean, std = mean_std(values)
    assert std >= 0.0
    if values:
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9


# ---------------------------------------------------------------------------
# Marking invariants
# ---------------------------------------------------------------------------

from repro.config import MarkingConfig
from repro.core.marking import CongestionMarker
from repro.core.records import ProbeRecord

probe_strategy = st.builds(
    lambda slot, lost_mask, base_owd: ProbeRecord(
        slot=slot,
        send_time=slot * 0.005,
        n_packets=3,
        owds=tuple(
            base_owd + 0.001 * i for i in range(3) if not (lost_mask >> i) & 1
        ),
        owd_before_loss=base_owd if lost_mask else None,
    ),
    st.integers(0, 5000),
    st.integers(0, 7),
    st.floats(min_value=0.05, max_value=0.16, allow_nan=False),
)


@given(probes=st.lists(probe_strategy, max_size=80, unique_by=lambda p: p.slot))
@settings(max_examples=50, deadline=None)
def test_marking_state_exists_for_every_probe(probes):
    probes = sorted(probes, key=lambda p: p.send_time)
    result = CongestionMarker(MarkingConfig(alpha=0.1, tau=0.05)).mark(probes)
    assert set(result.slot_states) == {probe.slot for probe in probes}
    # Every lost probe is marked congested (default, unfiltered marking).
    for probe in probes:
        if probe.lost:
            assert result.slot_states[probe.slot] is True
    assert result.marked_by_loss == sum(1 for probe in probes if probe.lost)


@given(probes=st.lists(probe_strategy, max_size=80, unique_by=lambda p: p.slot))
@settings(max_examples=50, deadline=None)
def test_larger_alpha_marks_superset(probes):
    probes = sorted(probes, key=lambda p: p.send_time)
    tight = CongestionMarker(MarkingConfig(alpha=0.05, tau=0.05)).mark(probes)
    loose = CongestionMarker(MarkingConfig(alpha=0.30, tau=0.05)).mark(probes)
    for slot, state in tight.slot_states.items():
        if state:
            assert loose.slot_states[slot] is True


@given(probes=st.lists(probe_strategy, max_size=80, unique_by=lambda p: p.slot))
@settings(max_examples=50, deadline=None)
def test_larger_tau_marks_superset(probes):
    probes = sorted(probes, key=lambda p: p.send_time)
    near = CongestionMarker(MarkingConfig(alpha=0.1, tau=0.01)).mark(probes)
    far = CongestionMarker(MarkingConfig(alpha=0.1, tau=0.50)).mark(probes)
    for slot, state in near.slot_states.items():
        if state:
            assert far.slot_states[slot] is True


@given(probes=st.lists(probe_strategy, max_size=60, unique_by=lambda p: p.slot))
@settings(max_examples=30, deadline=None)
def test_noise_filter_never_adds_marks(probes):
    probes = sorted(probes, key=lambda p: p.send_time)
    plain = CongestionMarker(MarkingConfig(alpha=0.1, tau=0.05)).mark(probes)
    filtered = CongestionMarker(
        MarkingConfig(alpha=0.1, tau=0.05, filter_uncorrelated_losses=True)
    ).mark(probes)
    for slot, state in filtered.slot_states.items():
        if state:
            assert plain.slot_states[slot] is True


# ---------------------------------------------------------------------------
# ZING loss-run grouping invariants
# ---------------------------------------------------------------------------

@given(
    lost=st.sets(st.integers(1, 200)),
    seed=st.integers(0, 1000),
)
@settings(max_examples=50, deadline=None)
def test_zing_run_grouping_partitions_losses(lost, seed):
    from repro.core.zing import ZingTool
    from repro.experiments.runner import DRAIN_TIME, build_testbed

    sim, testbed = build_testbed(seed=seed % 7 + 1)
    tool = ZingTool(
        sim, testbed.probe_sender, testbed.probe_receiver,
        mean_interval=0.01, duration=2.5, start=0.5,
    )
    sim.run(until=3.0 + DRAIN_TIME)
    for seq in lost:
        tool.receiver.received.pop(seq, None)
    result = tool.result()
    realized_losses = {seq for seq in lost if seq in tool.sender.sent}
    assert result.n_lost == len(realized_losses)
    assert sum(count for _a, _b, count in result.loss_runs) == result.n_lost
    # Runs are maximal: consecutive runs are separated by >= 1 received seq.
    sent_times = tool.sender.sent
    for _start, end, _count in result.loss_runs:
        assert end <= max(sent_times.values())
