"""Property-based tests (hypothesis) on core data structures and invariants."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.episodes import extract_episodes
from repro.analysis.slots import congested_slot_set, true_frequency
from repro.analysis.stats import mean_std
from repro.core.estimators import estimate_from_outcomes
from repro.core.records import ExperimentOutcome
from repro.core.schedule import GeometricSchedule, outcomes_from_true_states
from repro.core.validation import validate_outcomes
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.synthetic.renewal import AlternatingRenewalProcess, GeometricSlots

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

bits2 = st.tuples(st.integers(0, 1), st.integers(0, 1))
bits3 = st.tuples(st.integers(0, 1), st.integers(0, 1), st.integers(0, 1))
outcome_strategy = st.builds(
    ExperimentOutcome, st.integers(0, 10_000), st.one_of(bits2, bits3)
)

sorted_times = st.lists(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False), min_size=1, max_size=60
).map(sorted)


# ---------------------------------------------------------------------------
# Episode extraction invariants
# ---------------------------------------------------------------------------

@given(drops=sorted_times, max_gap=st.floats(min_value=0.01, max_value=10.0))
def test_episodes_partition_drops(drops, max_gap):
    episodes = extract_episodes(drops, max_gap=max_gap)
    # Every drop belongs to exactly one episode.
    assert sum(episode.drops for episode in episodes) == len(drops)
    # Episodes are chronological and disjoint.
    for earlier, later in zip(episodes, episodes[1:]):
        assert earlier.end < later.start
    # Each episode's span is covered by drops no farther than max_gap apart.
    for episode in episodes:
        assert episode.start <= episode.end


@given(drops=sorted_times)
def test_episode_durations_bounded_by_span(drops):
    episodes = extract_episodes(drops, max_gap=1.0)
    for episode in episodes:
        assert 0.0 <= episode.duration <= drops[-1] - drops[0] + 1e-9


@given(
    drops=sorted_times,
    crossings=st.lists(
        st.floats(min_value=0.0, max_value=1000.0, allow_nan=False), max_size=30
    ).map(sorted),
)
def test_crossings_only_increase_episode_count(drops, crossings):
    without = extract_episodes(drops, max_gap=5.0)
    with_crossings = extract_episodes(drops, crossings, max_gap=5.0)
    assert len(with_crossings) >= len(without)


# ---------------------------------------------------------------------------
# Slot discretization invariants
# ---------------------------------------------------------------------------

@given(drops=sorted_times, n_slots=st.integers(10, 5000))
def test_frequency_bounded(drops, n_slots):
    episodes = extract_episodes(drops, max_gap=0.5)
    frequency = true_frequency(episodes, 0.005, n_slots)
    assert 0.0 <= frequency <= 1.0


@given(drops=sorted_times)
def test_congested_slots_within_window(drops):
    episodes = extract_episodes(drops, max_gap=0.5)
    slots = congested_slot_set(episodes, 0.005, 100)
    assert all(0 <= slot < 100 for slot in slots)


# ---------------------------------------------------------------------------
# Estimator invariants
# ---------------------------------------------------------------------------

@given(outcomes=st.lists(outcome_strategy, min_size=1, max_size=300))
def test_frequency_always_in_unit_interval(outcomes):
    estimate = estimate_from_outcomes(outcomes)
    assert 0.0 <= estimate.frequency <= 1.0
    assert estimate.n_experiments == len(outcomes)


@given(outcomes=st.lists(outcome_strategy, min_size=1, max_size=300))
def test_duration_at_least_one_slot_when_valid_basic(outcomes):
    estimate = estimate_from_outcomes(outcomes, improved=False)
    if estimate.duration_valid:
        # R >= S always, so D = 2(R/S - 1) + 1 >= 1 slot.
        assert estimate.duration_slots >= 1.0


@given(outcomes=st.lists(outcome_strategy, min_size=1, max_size=300))
def test_counts_are_consistent(outcomes):
    estimate = estimate_from_outcomes(outcomes)
    counts = estimate.counts
    assert counts["S"] <= counts["R"]
    assert counts["S"] == counts["01"] + counts["10"]
    assert counts["R"] == counts["S"] + counts["11"]
    assert counts["U"] == counts["011"] + counts["110"]
    assert counts["V"] == counts["001"] + counts["100"]


@given(outcomes=st.lists(outcome_strategy, min_size=1, max_size=300))
def test_validation_counts_match_estimator_counts(outcomes):
    estimate = estimate_from_outcomes(outcomes)
    validation = validate_outcomes(outcomes)
    assert validation.n01 == estimate.counts["01"]
    assert validation.n10 == estimate.counts["10"]
    assert 0.0 <= validation.transition_asymmetry <= 1.0
    assert validation.violations == estimate.counts["010"] + estimate.counts["101"]


@given(
    p=st.floats(min_value=0.05, max_value=1.0),
    n_slots=st.integers(10, 3000),
    seed=st.integers(0, 2**30),
)
def test_schedule_invariants(p, n_slots, seed):
    schedule = GeometricSchedule(p, n_slots, random.Random(seed))
    assert schedule.n_probes <= n_slots
    assert schedule.n_experiments <= n_slots
    covered = set()
    for experiment in schedule.experiments:
        assert 0 <= experiment.start_slot
        assert experiment.start_slot + experiment.length <= n_slots
        covered.update(experiment.slots)
    assert covered == set(schedule.probe_slots)


@given(
    seed=st.integers(0, 2**30),
    mean_on=st.floats(min_value=1.0, max_value=10.0),
    mean_off=st.floats(min_value=1.0, max_value=50.0),
)
@settings(max_examples=25, deadline=None)
def test_perfect_observation_frequency_matches_truth(seed, mean_on, mean_off):
    rng = random.Random(seed)
    process = AlternatingRenewalProcess(
        GeometricSlots(mean_on), GeometricSlots(mean_off), rng
    )
    states = process.generate(30_000)
    true_f, _d = AlternatingRenewalProcess.truth(states)
    schedule = GeometricSchedule(0.5, len(states), random.Random(seed + 1))
    outcomes = outcomes_from_true_states(schedule.experiments, states)
    if not outcomes:
        return
    estimate = estimate_from_outcomes(outcomes)
    # Unbiasedness within sampling noise: generous 5-sigma-ish band.
    sigma = math.sqrt(max(true_f * (1 - true_f), 1e-9) / len(outcomes))
    assert abs(estimate.frequency - true_f) < max(5 * sigma, 0.02)


# ---------------------------------------------------------------------------
# Queue invariants
# ---------------------------------------------------------------------------

@given(
    sizes=st.lists(st.integers(40, 9000), min_size=1, max_size=200),
    capacity=st.integers(1500, 64_000),
)
def test_queue_never_exceeds_capacity_and_conserves_packets(sizes, capacity):
    queue = DropTailQueue(capacity)
    accepted = 0
    for size in sizes:
        if queue.offer(0.0, Packet("a", "b", size)):
            accepted += 1
        assert queue.bytes_queued <= capacity
    drained = 0
    while queue.take(1.0) is not None:
        drained += 1
    assert drained == accepted
    assert queue.stats.dropped_packets == len(sizes) - accepted
    assert queue.bytes_queued == 0


@given(values=st.lists(st.floats(-1e6, 1e6, allow_nan=False), max_size=100))
def test_mean_std_invariants(values):
    mean, std = mean_std(values)
    assert std >= 0.0
    if values:
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9


# ---------------------------------------------------------------------------
# Marking invariants
# ---------------------------------------------------------------------------

from repro.config import MarkingConfig
from repro.core.marking import CongestionMarker
from repro.core.records import ProbeRecord

probe_strategy = st.builds(
    lambda slot, lost_mask, base_owd: ProbeRecord(
        slot=slot,
        send_time=slot * 0.005,
        n_packets=3,
        owds=tuple(
            base_owd + 0.001 * i for i in range(3) if not (lost_mask >> i) & 1
        ),
        owd_before_loss=base_owd if lost_mask else None,
    ),
    st.integers(0, 5000),
    st.integers(0, 7),
    st.floats(min_value=0.05, max_value=0.16, allow_nan=False),
)


@given(probes=st.lists(probe_strategy, max_size=80, unique_by=lambda p: p.slot))
@settings(max_examples=50, deadline=None)
def test_marking_state_exists_for_every_probe(probes):
    probes = sorted(probes, key=lambda p: p.send_time)
    result = CongestionMarker(MarkingConfig(alpha=0.1, tau=0.05)).mark(probes)
    assert set(result.slot_states) == {probe.slot for probe in probes}
    # Every lost probe is marked congested (default, unfiltered marking).
    for probe in probes:
        if probe.lost:
            assert result.slot_states[probe.slot] is True
    assert result.marked_by_loss == sum(1 for probe in probes if probe.lost)


@given(probes=st.lists(probe_strategy, max_size=80, unique_by=lambda p: p.slot))
@settings(max_examples=50, deadline=None)
def test_larger_alpha_marks_superset(probes):
    probes = sorted(probes, key=lambda p: p.send_time)
    tight = CongestionMarker(MarkingConfig(alpha=0.05, tau=0.05)).mark(probes)
    loose = CongestionMarker(MarkingConfig(alpha=0.30, tau=0.05)).mark(probes)
    for slot, state in tight.slot_states.items():
        if state:
            assert loose.slot_states[slot] is True


@given(probes=st.lists(probe_strategy, max_size=80, unique_by=lambda p: p.slot))
@settings(max_examples=50, deadline=None)
def test_larger_tau_marks_superset(probes):
    probes = sorted(probes, key=lambda p: p.send_time)
    near = CongestionMarker(MarkingConfig(alpha=0.1, tau=0.01)).mark(probes)
    far = CongestionMarker(MarkingConfig(alpha=0.1, tau=0.50)).mark(probes)
    for slot, state in near.slot_states.items():
        if state:
            assert far.slot_states[slot] is True


@given(probes=st.lists(probe_strategy, max_size=60, unique_by=lambda p: p.slot))
@settings(max_examples=30, deadline=None)
def test_noise_filter_never_adds_marks(probes):
    probes = sorted(probes, key=lambda p: p.send_time)
    plain = CongestionMarker(MarkingConfig(alpha=0.1, tau=0.05)).mark(probes)
    filtered = CongestionMarker(
        MarkingConfig(alpha=0.1, tau=0.05, filter_uncorrelated_losses=True)
    ).mark(probes)
    for slot, state in filtered.slot_states.items():
        if state:
            assert plain.slot_states[slot] is True


# ---------------------------------------------------------------------------
# ZING loss-run grouping invariants
# ---------------------------------------------------------------------------

@given(
    lost=st.sets(st.integers(1, 200)),
    seed=st.integers(0, 1000),
)
@settings(max_examples=50, deadline=None)
def test_zing_run_grouping_partitions_losses(lost, seed):
    from repro.core.zing import ZingTool
    from repro.experiments.runner import DRAIN_TIME, build_testbed

    sim, testbed = build_testbed(seed=seed % 7 + 1)
    tool = ZingTool(
        sim, testbed.probe_sender, testbed.probe_receiver,
        mean_interval=0.01, duration=2.5, start=0.5,
    )
    sim.run(until=3.0 + DRAIN_TIME)
    for seq in lost:
        tool.receiver.received.pop(seq, None)
    result = tool.result()
    realized_losses = {seq for seq in lost if seq in tool.sender.sent}
    assert result.n_lost == len(realized_losses)
    assert sum(count for _a, _b, count in result.loss_runs) == result.n_lost
    # Runs are maximal: consecutive runs are separated by >= 1 received seq.
    sent_times = tool.sender.sent
    for _start, end, _count in result.loss_runs:
        assert end <= max(sent_times.values())


# ---------------------------------------------------------------------------
# Graceful degradation invariants (fault-injection PR)
# ---------------------------------------------------------------------------

from types import SimpleNamespace

import pytest

from repro.core.records import CoverageReport
from repro.errors import EstimationError
from repro.net.faults import FaultProfile
from repro.net.node import Host
from repro.net.simulator import Simulator

_REPLAY_CACHE = {}


def _finished_badabing_tool():
    """One small finished measurement, shared across examples (read-only)."""
    if not _REPLAY_CACHE:
        from repro.config import BadabingConfig
        from repro.core.badabing import BadabingTool
        from repro.experiments.runner import DRAIN_TIME, apply_scenario, build_testbed

        sim, testbed = build_testbed(seed=21)
        apply_scenario(
            sim, testbed, "episodic_cbr",
            episode_durations=(0.068,), mean_spacing=2.0,
        )
        config = BadabingConfig(p=0.4, n_slots=2000)
        tool = BadabingTool(
            sim, testbed.probe_sender, testbed.probe_receiver, config, start=2.0
        )
        sim.run(until=tool.end_time + DRAIN_TIME)
        _REPLAY_CACHE["tool"] = tool
        _REPLAY_CACHE["baseline"] = tool.result()
    return _REPLAY_CACHE["tool"], _REPLAY_CACHE["baseline"]


class _ReplayClock:
    """Clock (protocol) whose reading is set explicitly by the replay loop."""

    def __init__(self):
        self.value = 0.0

    def now(self):
        return self.value

    def now_ns(self):
        return int(round(self.value * 1e9))


def _replay_receiver():
    from repro.core.badabing import _ProbeReceiver

    sim = Simulator(seed=1)
    host = Host(sim, "replay")
    return _ProbeReceiver(sim, host, _ReplayClock())


@given(shuffle_seed=st.integers(0, 2**32), n_dups=st.integers(0, 15))
@settings(max_examples=15, deadline=None)
def test_estimate_invariant_under_log_shuffle_and_duplication(shuffle_seed, n_dups):
    """Replaying the receiver log in any order, with duplicate copies
    injected anywhere after their originals, rebuilds the same log and
    yields a bit-identical estimate."""
    tool, baseline = _finished_badabing_tool()
    original = dict(tool.receiver.received)
    entries = list(original.items())
    rng = random.Random(shuffle_seed)
    order = list(entries)
    rng.shuffle(order)
    n_dups = min(n_dups, len(entries))
    dup_entries = [rng.choice(entries) for _ in range(n_dups)] if entries else []

    events = [(key, stamp, False) for key, stamp in order]
    for key, stamp in dup_entries:
        # A duplicate copy always trails its original in delivery order
        # (the copy is scheduled with extra lag), but may interleave with
        # anything else.
        origin = next(
            i for i, (k, _s, is_dup) in enumerate(events) if k == key and not is_dup
        )
        events.insert(rng.randint(origin + 1, len(events)), (key, stamp + 5e-4, True))

    replay = _replay_receiver()
    for key, stamp, _is_dup in events:
        replay.clock.value = stamp
        replay.on_packet(SimpleNamespace(payload=(key[0], key[1], 0.0)))

    assert replay.received == original
    assert replay.duplicate_arrivals == len(dup_entries)

    tool.receiver.received = replay.received
    try:
        shuffled = tool.result()
    finally:
        tool.receiver.received = original
    assert shuffled.frequency == baseline.frequency
    assert shuffled.estimate.counts == baseline.estimate.counts
    assert shuffled.outcomes == baseline.outcomes
    assert shuffled.probes == baseline.probes


@given(outcomes=st.lists(outcome_strategy, max_size=60))
def test_estimation_raises_estimation_error_never_arithmetic(outcomes):
    """Arbitrary (possibly empty) outcome lists either estimate cleanly or
    raise EstimationError — never ZeroDivisionError/KeyError."""
    try:
        estimate = estimate_from_outcomes(outcomes)
    except EstimationError:
        assert outcomes == []
    else:
        assert math.isfinite(estimate.frequency)
        assert 0.0 <= estimate.frequency <= 1.0


@given(outcomes=st.lists(outcome_strategy, max_size=30))
def test_validation_tolerates_empty_and_partial_outcomes(outcomes):
    report = validate_outcomes(outcomes)
    assert 0.0 <= report.transition_asymmetry <= 1.0
    assert report.violation_rate >= 0.0
    assert report.is_acceptable() in (True, False)


@given(
    scheduled_slots=st.integers(1, 2000),
    scheduled_experiments=st.integers(0, 1000),
)
def test_zero_coverage_estimation_error_reports_coverage(
    scheduled_slots, scheduled_experiments
):
    coverage = CoverageReport(scheduled_slots, 0, scheduled_experiments, 0)
    with pytest.raises(EstimationError) as excinfo:
        estimate_from_outcomes([], coverage=coverage)
    message = str(excinfo.value)
    assert "coverage" in message
    assert "0.0%" in message


@given(
    offset=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    drop=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
def test_fault_profile_shift_preserves_semantics(offset, drop):
    profile = FaultProfile(
        drop_probability=drop,
        flap_down=1.0,
        flap_up=2.0,
        flap_start=5.0,
        outage_windows=((1.0, 2.0), (4.0, 6.0)),
    )
    shifted = profile.shifted(offset)
    assert shifted.is_noop == profile.is_noop
    assert shifted.needs_rng == profile.needs_rng
    assert shifted.flap_start == pytest.approx(5.0 + offset)
    for (start, end), (orig_start, orig_end) in zip(
        shifted.outage_windows, profile.outage_windows
    ):
        assert start == pytest.approx(orig_start + offset)
        assert end == pytest.approx(orig_end + offset)
