"""Bench document tests: schema, comparison gate, recorder, CLI, suite.

The perf-trajectory machinery must be trustworthy end to end: documents
validate against the ``repro.obs.bench/1`` schema, ``--compare`` flags an
injected slowdown (and exits 1 through the CLI), the shared pytest
recorder merges across invocations, and the pinned smoke suite covers
the required pipeline stages.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import ObservabilityError
from repro.obs.bench import (
    BENCH_SCHEMA,
    BenchRecorder,
    compare_bench_documents,
    environment_fingerprint,
    load_bench_document,
    make_bench_document,
    render_bench_document,
    render_profile_document,
    stage_names,
    validate_bench_document,
    write_bench_document,
)
from repro.obs.profile import PIPELINE_STAGES, StageProfiler


def _document(wall=1.0, stage_self=0.5):
    prof = StageProfiler(clock=_ticker(stage_self))
    with prof.stage("sim.run"):
        pass
    return make_bench_document(
        "test",
        {
            "scenario_a": {
                "wall_seconds": wall,
                "events_processed": 100,
                "events_per_second": 100 / wall,
                "stages": prof.stages(),
                "edges": prof.edges(),
            }
        },
    )


def _ticker(step):
    state = {"now": 0.0}

    def clock():
        current = state["now"]
        state["now"] += step
        return current

    return clock


class TestSchema:
    def test_valid_document_passes(self):
        assert validate_bench_document(_document()) == []

    def test_env_fingerprint_fields(self):
        env = environment_fingerprint()
        for field in ("python", "platform", "cpu_count"):
            assert field in env

    def test_missing_wall_seconds_flagged(self):
        doc = _document()
        del doc["scenarios"]["scenario_a"]["wall_seconds"]
        assert any("wall_seconds" in p for p in validate_bench_document(doc))

    def test_wrong_schema_flagged(self):
        doc = _document()
        doc["schema"] = "bogus/9"
        assert validate_bench_document(doc)

    def test_stage_counts_must_sum_to_calls(self):
        doc = _document()
        stage = doc["scenarios"]["scenario_a"]["stages"]["sim.run"]
        stage["counts"][0] += 5
        assert any("counts" in p for p in validate_bench_document(doc))

    def test_stage_names_union(self):
        doc = _document()
        doc["scenarios"]["b"] = {
            "wall_seconds": 0.1,
            "stages": {"wire.encode": doc["scenarios"]["scenario_a"]["stages"]["sim.run"]},
        }
        assert stage_names(doc) == ["sim.run", "wire.encode"]

    def test_write_load_roundtrip(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        doc = _document()
        write_bench_document(path, doc)
        assert load_bench_document(path) == doc

    def test_write_rejects_invalid(self, tmp_path):
        doc = _document()
        doc["scenarios"] = {}
        with pytest.raises(ObservabilityError):
            write_bench_document(tmp_path / "bad.json", doc)

    def test_load_rejects_junk(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ObservabilityError):
            load_bench_document(path)


class TestCompare:
    def test_no_regression_on_identical_documents(self):
        doc = _document(wall=1.0)
        lines, regressions = compare_bench_documents(doc, doc)
        assert regressions == []
        assert lines

    def test_injected_slowdown_is_flagged(self):
        old = _document(wall=1.0, stage_self=0.5)
        new = _document(wall=3.0, stage_self=2.0)
        lines, regressions = compare_bench_documents(old, new, threshold=2.0)
        assert regressions
        measurements = {r["measurement"] for r in regressions}
        assert "wall" in measurements
        assert any("sim.run" in m for m in measurements)
        assert any("REGRESSION" in line for line in lines)

    def test_speedup_is_not_a_regression(self):
        old = _document(wall=3.0, stage_self=2.0)
        new = _document(wall=1.0, stage_self=0.5)
        _lines, regressions = compare_bench_documents(old, new)
        assert regressions == []

    def test_noise_floor_suppresses_tiny_measurements(self):
        old = _document(wall=0.001)
        new = _document(wall=0.004)  # 4x but under min_seconds
        _lines, regressions = compare_bench_documents(
            old, new, min_seconds=0.005
        )
        assert all(r["measurement"] != "wall" for r in regressions)

    def test_threshold_must_exceed_one(self):
        doc = _document()
        with pytest.raises(ObservabilityError):
            compare_bench_documents(doc, doc, threshold=1.0)

    def test_new_scenario_is_not_compared(self):
        old = _document()
        new = _document()
        new["scenarios"]["fresh"] = {"wall_seconds": 99.0}
        _lines, regressions = compare_bench_documents(old, new)
        assert regressions == []


class TestRenderers:
    def test_render_bench_document_mentions_scenarios(self):
        lines = render_bench_document(_document())
        text = "\n".join(lines)
        assert "scenario_a" in text
        assert "test" in text

    def test_render_profile_document_has_table_and_tree(self):
        lines = render_profile_document(_document())
        text = "\n".join(lines)
        assert "sim.run" in text
        assert "call tree" in text

    def test_render_profile_document_unknown_scenario(self):
        with pytest.raises(ObservabilityError):
            render_profile_document(_document(), scenario="nope")


class TestBenchRecorder:
    def test_record_and_flush(self, tmp_path):
        path = tmp_path / "BENCH_pytest.json"
        recorder = BenchRecorder(path, suite="pytest-test")
        recorder.record("guard_a", 0.25, overhead_ratio=1.02)
        doc = recorder.flush()
        assert doc["schema"] == BENCH_SCHEMA
        assert validate_bench_document(doc) == []
        on_disk = load_bench_document(path)
        assert on_disk["scenarios"]["guard_a"]["overhead_ratio"] == 1.02

    def test_flush_merges_with_existing_file(self, tmp_path):
        path = tmp_path / "BENCH_pytest.json"
        first = BenchRecorder(path, suite="pytest-test")
        first.record("guard_a", 0.25)
        first.flush()
        second = BenchRecorder(path, suite="pytest-test")
        second.record("guard_b", 0.5)
        second.flush()
        doc = load_bench_document(path)
        assert set(doc["scenarios"]) == {"guard_a", "guard_b"}

    def test_flush_without_entries_is_noop(self, tmp_path):
        path = tmp_path / "BENCH_pytest.json"
        assert BenchRecorder(path, suite="s").flush() is None
        assert not path.exists()

    def test_flush_overwrites_corrupt_file(self, tmp_path):
        path = tmp_path / "BENCH_pytest.json"
        path.write_text("garbage", encoding="utf-8")
        recorder = BenchRecorder(path, suite="pytest-test")
        recorder.record("guard_a", 0.25)
        recorder.flush()
        assert load_bench_document(path)["scenarios"]["guard_a"]


class TestSmokeSuite:
    @pytest.fixture(scope="class")
    def smoke_document(self):
        from repro.experiments.bench import run_bench_suite

        return run_bench_suite("smoke")

    def test_document_validates(self, smoke_document):
        assert validate_bench_document(smoke_document) == []

    def test_covers_required_pipeline_stages(self, smoke_document):
        covered = set(stage_names(smoke_document))
        required = set(PIPELINE_STAGES) - {"multihop"}
        # The acceptance bar: at least 8 named pipeline stages across
        # sim, sweep, and live scenarios.
        assert len(covered & set(PIPELINE_STAGES)) >= 8, sorted(covered)
        missing = required - covered
        assert not missing, f"stages never profiled: {sorted(missing)}"

    def test_scenarios_have_throughput(self, smoke_document):
        for name, scenario in smoke_document["scenarios"].items():
            assert scenario["wall_seconds"] > 0, name
            assert scenario["events_per_second"] > 0, name
            assert scenario["config_digest"], name

    def test_unknown_suite_raises(self):
        from repro.errors import ConfigurationError
        from repro.experiments.bench import run_bench_suite

        with pytest.raises(ConfigurationError):
            run_bench_suite("nope")


class TestCli:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc), encoding="utf-8")
        return path

    def test_compare_exit_codes(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", _document(wall=1.0))
        same = self._write(tmp_path, "same.json", _document(wall=1.1))
        slow = self._write(
            tmp_path, "slow.json", _document(wall=5.0, stage_self=3.0)
        )
        assert main(["bench", "--compare", str(old), str(same)]) == 0
        assert main(["bench", "--compare", str(old), str(slow)]) == 1
        out = capsys.readouterr()
        assert "REGRESSION" in out.out

    def test_obs_validate_bench(self, tmp_path, capsys):
        good = self._write(tmp_path, "good.json", _document())
        assert main(["obs", "validate", "--bench", str(good)]) == 0
        bad_doc = _document()
        bad_doc["schema"] = "nope"
        bad = self._write(tmp_path, "bad.json", bad_doc)
        assert main(["obs", "validate", "--bench", str(bad)]) == 1

    def test_obs_profile_renders(self, tmp_path, capsys):
        path = self._write(tmp_path, "BENCH_x.json", _document())
        assert main(["obs", "profile", str(path)]) == 0
        out = capsys.readouterr().out
        assert "sim.run" in out

    def test_obs_summary_slow_spans(self, tmp_path, capsys):
        metrics = self._write(
            tmp_path,
            "metrics.json",
            {"schema": "repro.obs.metrics/1", "manifest": None,
             "metrics": {"counters": {}, "gauges": {}, "histograms": {},
                         "series": {}}},
        )
        trace = tmp_path / "trace.jsonl"
        spans = [
            {"type": "span", "name": f"span-{i}", "t0": float(i),
             "dur": float(i), "attrs": {"cell": f"c{i}"}}
            for i in range(5)
        ]
        trace.write_text(
            "\n".join(json.dumps(s) for s in spans) + "\n", encoding="utf-8"
        )
        assert main([
            "obs", "summary", str(metrics), "--trace", str(trace),
            "--slow", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "span-4" in out          # slowest first
        assert "span-1" not in out      # beyond top-3
        assert "cell=c4" in out

    def test_bench_smoke_writes_validated_document(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--suite", "smoke"]) == 0
        doc = load_bench_document(tmp_path / "BENCH_smoke.json")
        assert validate_bench_document(doc) == []
        assert main(
            ["obs", "validate", "--bench", str(tmp_path / "BENCH_smoke.json")]
        ) == 0
