"""Tests for the collated reproduction report."""

import pathlib

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.experiments.report import build_report, discover_results, write_report


@pytest.fixture
def results_dir(tmp_path):
    directory = tmp_path / "results"
    directory.mkdir()
    (directory / "table1.fast.txt").write_text("TABLE1 CONTENT\n")
    (directory / "fig7.fast.txt").write_text("FIG7 CONTENT\n")
    (directory / "ablation_jitter.fast.txt").write_text("JITTER CONTENT\n")
    (directory / "custom_extra.fast.txt").write_text("EXTRA CONTENT\n")
    (directory / "table1.full.txt").write_text("FULL TABLE1\n")
    return directory


def test_discover_filters_by_profile(results_dir):
    fast = discover_results(results_dir, "fast")
    assert set(fast) == {"table1", "fig7", "ablation_jitter", "custom_extra"}
    full = discover_results(results_dir, "full")
    assert set(full) == {"table1"}
    assert full["table1"] == "FULL TABLE1"


def test_report_orders_sections(results_dir):
    text = build_report(results_dir, "fast")
    assert text.index("## Tables") < text.index("## Figures")
    assert text.index("## Figures") < text.index("## Ablations")
    assert text.index("## Ablations") < text.index("## Other archived results")
    assert "TABLE1 CONTENT" in text
    assert "EXTRA CONTENT" in text


def test_report_skips_empty_sections(tmp_path):
    directory = tmp_path / "results"
    directory.mkdir()
    (directory / "fig4.fast.txt").write_text("ONLY FIGURE\n")
    text = build_report(directory, "fast")
    assert "## Figures" in text
    assert "## Tables" not in text
    assert "## Ablations" not in text


def test_write_report_default_location(results_dir):
    path = write_report(results_dir, "fast")
    assert path == results_dir / "REPORT.fast.md"
    assert "TABLE1 CONTENT" in path.read_text()


def test_write_report_custom_output(results_dir, tmp_path):
    target = tmp_path / "custom.md"
    path = write_report(results_dir, "fast", output=target)
    assert path == target
    assert target.exists()


def test_missing_directory_rejected(tmp_path):
    with pytest.raises(ConfigurationError):
        build_report(tmp_path / "nope", "fast")


def test_no_results_for_profile_rejected(results_dir):
    with pytest.raises(ConfigurationError):
        build_report(results_dir, "smoke")


def test_cli_report_command(results_dir, capsys):
    code = main([
        "report", "--results-dir", str(results_dir), "--profile", "fast",
        "--out", str(results_dir / "out.md"),
    ])
    assert code == 0
    assert "report written" in capsys.readouterr().out
    assert (results_dir / "out.md").exists()


def test_real_archived_results_build_a_report():
    # The repository ships with fast-profile archives from the benchmark
    # suite; the report over them must include every table.
    results = pathlib.Path(__file__).parent.parent / "benchmarks" / "results"
    if not any(results.glob("*.fast.txt")):
        pytest.skip("benchmark archives not present")
    text = build_report(results, "fast")
    for i in range(1, 9):
        assert f"### table{i}" in text
