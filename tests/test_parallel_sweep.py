"""Parallel sweep engine: equivalence, crash isolation, deadlines.

The determinism contract under test: ``sweep_badabing(cells, workers=N)``
must produce the same ordered outcome list, the same merged metrics
snapshot, and the same scorecard digest as the serial sweep on the same
cells and seeds — and a worker that dies hard must surface as a
structured failed ``RunOutcome`` instead of killing the sweep.

The crash runners live at module top level so the ``spawn`` start method
can import them in worker processes.
"""

import os

import pytest

from repro.errors import ConfigurationError
from repro.experiments.parallel import (
    CellPayload,
    deadline_outcome,
    execute_parallel_sweep,
)
from repro.experiments.runner import (
    RunBudget,
    scorecard_from_outcomes,
    sweep_badabing,
)
from repro.obs.audit import scorecard_digest
from repro.obs.metrics import MetricsRegistry, snapshot_digest
from repro.obs.tracing import Tracer

CELL = dict(
    scenario="episodic_cbr",
    n_slots=1500,
    warmup=2.0,
    scenario_kwargs={"mean_spacing": 2.0},
)

#: Seed that makes the crash runners die hard (see below).
KILL_SEED = 666


def exit_hard_runner(seed, **kwargs):
    """A runner that takes its whole worker process down for KILL_SEED."""
    if seed == KILL_SEED:
        os._exit(1)
    return f"ok-{seed}", None


def unpicklable_result_runner(seed, **kwargs):
    """A runner whose successful result cannot cross the process boundary."""
    if seed == KILL_SEED:
        return (lambda: None), None
    return f"ok-{seed}", None


def _noop_runner(seed, **kwargs):
    return f"ok-{seed}", None


def _slow_runner(seed, **kwargs):
    import time

    time.sleep(0.25)
    return f"ok-{seed}", None


def _payloads(seeds, runner):
    return [
        CellPayload(index=i, label=f"cell-{i}", seed=seed, kwargs={}, runner=runner)
        for i, seed in enumerate(seeds)
    ]


class TestSerialParallelEquivalence:
    def test_outcomes_metrics_and_scorecard_are_byte_identical(self):
        cells = [{"p": p, "seed": seed} for p in (0.3, 0.5) for seed in (1, 2)]
        serial_registry = MetricsRegistry()
        serial = sweep_badabing(cells, metrics=serial_registry, **CELL)
        parallel_registry = MetricsRegistry()
        parallel = sweep_badabing(
            cells, metrics=parallel_registry, workers=2, **CELL
        )
        assert [o.label for o in serial] == [o.label for o in parallel]
        assert [o.seeds for o in serial] == [o.seeds for o in parallel]
        assert all(o.ok for o in parallel)
        serial_snapshot = serial_registry.snapshot()
        parallel_snapshot = parallel_registry.snapshot()
        assert serial_snapshot == parallel_snapshot
        assert snapshot_digest(serial_snapshot) == snapshot_digest(parallel_snapshot)
        assert scorecard_digest(scorecard_from_outcomes(serial)) == scorecard_digest(
            scorecard_from_outcomes(parallel)
        )

    def test_merged_series_are_labeled_per_cell_and_monotonic(self):
        from repro.obs.schema import validate_metrics_document
        from repro.obs import metrics_document

        registry = MetricsRegistry()
        outcomes = sweep_badabing(
            [{"p": 0.3, "seed": 1}, {"p": 0.3, "seed": 2}],
            metrics=registry,
            workers=2,
            **CELL,
        )
        assert all(o.ok for o in outcomes)
        snapshot = registry.snapshot()
        audit_series = [k for k in snapshot["series"] if k.startswith("audit.f_hat")]
        assert len(audit_series) == 2  # one per cell, not one interleaved stream
        assert all("cell=" in key for key in audit_series)
        assert validate_metrics_document(metrics_document(registry)) == []

    def test_parallel_tracer_absorbs_one_cell_span_per_cell(self):
        tracer = Tracer(kind="sweep")
        outcomes = sweep_badabing(
            [{"p": 0.3, "seed": 1}, {"p": 0.3, "seed": 2}],
            tracer=tracer,
            workers=2,
            **CELL,
        )
        assert all(o.ok for o in outcomes)
        cell_spans = [s for s in tracer.spans if s["name"] == "sweep.cell"]
        assert len(cell_spans) == 2
        assert {s["attrs"]["label"] for s in cell_spans} == {
            o.label for o in outcomes
        }

    def test_parallel_rejects_live_per_cell_objects(self):
        with pytest.raises(ConfigurationError):
            sweep_badabing(
                [{"p": 0.3, "metrics": MetricsRegistry()}], workers=2, **CELL
            )


class TestWorkerCrashIsolation:
    def test_worker_death_becomes_failed_outcome_and_sweep_completes(self):
        outcomes = execute_parallel_sweep(
            _payloads([1, KILL_SEED, 2], exit_hard_runner), workers=1
        )
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[0].result == "ok-1"
        assert outcomes[2].result == "ok-2"
        dead = outcomes[1]
        assert dead.error_type == "BrokenProcessPool"
        assert dead.seeds == (KILL_SEED,)
        assert dead.error_traceback

    def test_unpicklable_result_becomes_failed_outcome(self):
        outcomes = execute_parallel_sweep(
            _payloads([1, KILL_SEED, 2], unpicklable_result_runner), workers=1
        )
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[1].error  # a pickling-layer error, exact type varies

    def test_every_cell_crashing_still_returns_full_shape(self):
        outcomes = execute_parallel_sweep(
            _payloads([KILL_SEED, KILL_SEED], exit_hard_runner), workers=1
        )
        assert [o.ok for o in outcomes] == [False, False]
        assert all(o.error_type == "BrokenProcessPool" for o in outcomes)


class TestSweepDeadline:
    def test_serial_deadline_skips_unstarted_cells_as_budget_exhausted(self):
        outcomes = sweep_badabing(
            [{"p": 0.3, "seed": 1}, {"p": 0.3, "seed": 2}, {"p": 0.5, "seed": 1}],
            max_wall_seconds=0.0,
            **CELL,
        )
        assert len(outcomes) == 3
        assert all(o.failed and o.budget_exhausted for o in outcomes)
        assert all(o.attempts == 0 and o.seeds == () for o in outcomes)
        assert all("deadline" in o.error for o in outcomes)

    def test_parallel_deadline_cancels_pending_cells_only(self):
        # workers=1 keeps the executor's call queue short (at most
        # workers + 1 cells get fed before the deadline sweep cancels the
        # rest), and the slow runner keeps the fed cells in flight long
        # enough that the sweep deterministically beats the feeder.
        seeds = list(range(1, 7))
        outcomes = execute_parallel_sweep(
            _payloads(seeds, _slow_runner),
            workers=1,
            max_wall_seconds=0.0,
        )
        assert len(outcomes) == len(seeds)
        # In-flight cells finish; cells never started are budget-exhausted.
        assert all(o.ok or o.budget_exhausted for o in outcomes)
        assert any(o.budget_exhausted for o in outcomes)
        assert outcomes[0].ok  # the first cell was already in flight

    def test_no_deadline_means_no_budget_exhaustion(self):
        outcomes = execute_parallel_sweep(
            _payloads([1, 2], _noop_runner), workers=2
        )
        assert all(o.ok for o in outcomes)

    def test_deadline_outcome_shape(self):
        outcome = deadline_outcome("late-cell", 12.5)
        assert outcome.failed and outcome.budget_exhausted
        assert outcome.error_type == "BudgetExhaustedError"
        assert outcome.label == "late-cell"
        assert "12.5" in outcome.error


class TestSweepMetricsTelemetry:
    def test_parallel_sweep_records_cell_status_counters(self):
        registry = MetricsRegistry()
        outcomes = sweep_badabing(
            [
                {"p": 0.3, "seed": 1},
                {"p": 0.5, "seed": 1, "max_events": 300, "label": "doomed"},
            ],
            budget=RunBudget(max_attempts=1),
            metrics=registry,
            workers=2,
            **CELL,
        )
        assert [o.ok for o in outcomes] == [True, False]
        counters = registry.snapshot()["counters"]
        assert counters["sweep.cells{status=ok}"] == 1
        assert counters["sweep.cells{status=budget_exhausted}"] == 1
        assert counters["sweep.degraded_cells"] == 1


class TestProfiledSweep:
    """Satellite regression: published profile.* instruments must survive
    merge(series_labels=) across shards deterministically and without
    double-counting."""

    CELLS = [{"p": 0.3, "seed": 1}, {"p": 0.5, "seed": 2}]

    def _profiled_sweep(self, workers):
        registry = MetricsRegistry()
        outcomes = sweep_badabing(
            self.CELLS, metrics=registry, workers=workers, profiled=True, **CELL
        )
        assert all(o.ok for o in outcomes)
        return registry

    def test_profiled_stage_calls_identical_serial_vs_parallel(self):
        serial = self._profiled_sweep(None).snapshot()["counters"]
        parallel = self._profiled_sweep(2).snapshot()["counters"]
        serial_calls = {
            key: value
            for key, value in serial.items()
            if key.startswith("profile.stage_calls")
        }
        assert serial_calls, "profiled sweep published no stage stats"
        parallel_calls = {
            key: value
            for key, value in parallel.items()
            if key.startswith("profile.stage_calls")
        }
        # Stage call counts are a pure function of the cell seeds (the
        # stride-sampled queue.service counter included), so the merged
        # totals must be byte-identical serial vs parallel.
        assert serial_calls == parallel_calls

    def test_profiled_histograms_survive_merge_without_double_count(self):
        registry = self._profiled_sweep(2)
        first = registry.snapshot()
        hists = {
            key: value
            for key, value in first["histograms"].items()
            if key.startswith("profile.stage_seconds")
        }
        assert hists
        calls = first["counters"]
        for key, hist in hists.items():
            stage_label = key.split("{", 1)[1]
            assert sum(hist["counts"]) == hist["count"]
            # Histogram count equals the published call counter for the
            # same stage: one observation per call, not N per scrape.
            assert hist["count"] == calls[f"profile.stage_calls{{{stage_label}"]
        # Repeated snapshots (exporter scrapes) stay byte-identical.
        assert registry.snapshot() == first

    def test_unprofiled_sweep_publishes_no_profile_instruments(self):
        registry = MetricsRegistry()
        outcomes = sweep_badabing(
            self.CELLS, metrics=registry, workers=2, **CELL
        )
        assert all(o.ok for o in outcomes)
        counters = registry.snapshot()["counters"]
        assert not any(key.startswith("profile.") for key in counters)
