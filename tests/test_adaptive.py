"""Tests for the adaptive (open-ended) measurement mode."""

import pytest

from repro.core.adaptive import AdaptiveMeasurement, AdaptiveOutcome
from repro.core.validation import SequentialValidator
from repro.errors import ConfigurationError
from repro.experiments.runner import apply_scenario, build_testbed


def build(seed=1, scenario=True, **kwargs):
    sim, testbed = build_testbed(seed=seed)
    if scenario:
        apply_scenario(
            sim, testbed, "episodic_cbr",
            episode_durations=(0.068,), mean_spacing=2.0,
        )
    defaults = dict(p=0.3, chunk_seconds=20.0, max_seconds=300.0, start=2.0)
    defaults.update(kwargs)
    measurement = AdaptiveMeasurement(
        sim, testbed.probe_sender, testbed.probe_receiver, **defaults
    )
    return sim, testbed, measurement


def test_converges_on_busy_path():
    _sim, _testbed, measurement = build(
        validator=SequentialValidator(target_relative_error=0.35,
                                      min_transitions=8),
    )
    outcome = measurement.run()
    assert outcome.reason == "converged"
    assert outcome.trustworthy
    assert outcome.elapsed < measurement.max_seconds
    assert outcome.result.frequency > 0


def test_exhausts_on_idle_path():
    _sim, _testbed, measurement = build(
        scenario=False, chunk_seconds=10.0, max_seconds=40.0
    )
    outcome = measurement.run()
    assert outcome.reason == "exhausted"
    assert not outcome.trustworthy
    assert outcome.elapsed == pytest.approx(40.0)
    assert outcome.result.frequency == 0.0


def test_progress_is_recorded_per_chunk():
    _sim, _testbed, measurement = build(
        scenario=False, chunk_seconds=10.0, max_seconds=30.0
    )
    outcome = measurement.run()
    assert outcome.chunks == 3
    assert len(measurement.progress) == 3
    elapsed_values = [entry[0] for entry in measurement.progress]
    assert elapsed_values == [10.0, 20.0, 30.0]


def test_lower_p_needs_more_time():
    _sim, _tb, fast = build(
        seed=7, p=0.7,
        validator=SequentialValidator(target_relative_error=0.3,
                                      min_transitions=8),
    )
    fast_outcome = fast.run()
    _sim2, _tb2, slow = build(
        seed=7, p=0.05,
        validator=SequentialValidator(target_relative_error=0.3,
                                      min_transitions=8),
    )
    slow_outcome = slow.run()
    assert fast_outcome.reason == "converged"
    assert slow_outcome.elapsed >= fast_outcome.elapsed


def test_parameter_validation():
    with pytest.raises(ConfigurationError):
        build(chunk_seconds=0.0)
    with pytest.raises(ConfigurationError):
        build(chunk_seconds=60.0, max_seconds=30.0)


def test_outcome_dataclass_shape():
    outcome = AdaptiveOutcome(result=None, elapsed=1.0, chunks=1, reason="aborted")
    assert not outcome.trustworthy
