"""Tests for UDP sources and sinks."""

import pytest

from repro.errors import ConfigurationError
from repro.net.simulator import Simulator
from repro.net.topology import DumbbellTestbed
from repro.traffic.udp import UdpSink, UdpSource
from repro.units import mbps


def make_pair(seed=1):
    sim = Simulator(seed=seed)
    testbed = DumbbellTestbed(sim)
    return sim, testbed


def test_source_rate_produces_expected_packet_count():
    sim, testbed = make_pair()
    sink = UdpSink(sim, testbed.traffic_receivers[0])
    source = UdpSource(
        sim,
        testbed.traffic_senders[0],
        "trcv0",
        rate_bps=mbps(1.2),
        packet_size=1500,
        dst_port=sink.port,
    )
    sim.run(until=1.0)
    # 1.2 Mb/s / (1500 B) = 100 packets/s; first at t=0. Floating-point
    # accumulation may push the tick at t=1.0 just past the boundary.
    assert source.sent_packets in (100, 101)
    sim.run(until=1.5)
    assert sink.received_packets >= 100


def test_sink_records_sequence_and_timestamps():
    sim, testbed = make_pair()
    sink = UdpSink(sim, testbed.traffic_receivers[0], record=True)
    UdpSource(
        sim,
        testbed.traffic_senders[0],
        "trcv0",
        rate_bps=mbps(12),
        packet_size=1500,
        dst_port=sink.port,
    )
    sim.run(until=0.2)
    assert sink.records
    seqs = [seq for seq, _, _ in sink.records]
    assert seqs == sorted(seqs)
    for _seq, sent, received in sink.records:
        assert received > sent


def test_set_rate_zero_pauses_and_resumes():
    sim, testbed = make_pair()
    sink = UdpSink(sim, testbed.traffic_receivers[0])
    source = UdpSource(
        sim,
        testbed.traffic_senders[0],
        "trcv0",
        rate_bps=mbps(12),
        packet_size=1500,
        dst_port=sink.port,
    )
    sim.run(until=0.1)
    sent_at_pause = source.sent_packets
    source.set_rate(0.0)
    sim.run(until=0.5)
    assert source.sent_packets == sent_at_pause
    source.set_rate(mbps(12))
    sim.run(until=0.6)
    assert source.sent_packets > sent_at_pause


def test_source_starting_paused_sends_nothing():
    sim, testbed = make_pair()
    source = UdpSource(
        sim,
        testbed.traffic_senders[0],
        "trcv0",
        rate_bps=0.0,
        packet_size=1500,
        dst_port=1,
    )
    sim.run(until=0.5)
    assert source.sent_packets == 0


def test_stop_is_permanent_pause():
    sim, testbed = make_pair()
    sink = UdpSink(sim, testbed.traffic_receivers[0])
    source = UdpSource(
        sim,
        testbed.traffic_senders[0],
        "trcv0",
        rate_bps=mbps(6),
        packet_size=1500,
        dst_port=sink.port,
    )
    sim.run(until=0.05)
    source.stop()
    before = source.sent_packets
    sim.run(until=0.3)
    assert source.sent_packets == before


def test_gap_matches_rate():
    sim, testbed = make_pair()
    source = UdpSource(
        sim,
        testbed.traffic_senders[0],
        "trcv0",
        rate_bps=mbps(12),
        packet_size=1500,
        dst_port=1,
    )
    assert source.gap == pytest.approx(0.001)
    source.stop()


def test_invalid_parameters():
    sim, testbed = make_pair()
    with pytest.raises(ConfigurationError):
        UdpSource(sim, testbed.traffic_senders[0], "trcv0", rate_bps=-1,
                  packet_size=1500, dst_port=1)
    with pytest.raises(ConfigurationError):
        UdpSource(sim, testbed.traffic_senders[0], "trcv0", rate_bps=1e6,
                  packet_size=0, dst_port=1)
    source = UdpSource(sim, testbed.traffic_senders[1], "trcv1", rate_bps=0,
                       packet_size=100, dst_port=1)
    with pytest.raises(ConfigurationError):
        source.set_rate(-5)
