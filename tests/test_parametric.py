"""Tests for the parametric (Gilbert/Markov) estimator."""

import random

import pytest

from repro.core.parametric import estimate_gilbert, pair_counts
from repro.core.records import ExperimentOutcome
from repro.core.schedule import GeometricSchedule, outcomes_from_true_states
from repro.errors import EstimationError
from repro.synthetic.renewal import AlternatingRenewalProcess, GeometricSlots


def outcome(bits):
    return ExperimentOutcome(0, tuple(bits))


def test_pair_counts_uses_both_pairs_of_triples():
    counts = pair_counts([outcome((0, 1)), outcome((0, 1, 1))])
    assert counts == {"00": 0, "01": 2, "10": 0, "11": 1}


def test_mle_formulas():
    outcomes = (
        [outcome((1, 0))] * 10      # n10 = 10
        + [outcome((1, 1))] * 30    # n11 = 30
        + [outcome((0, 1))] * 10    # n01 = 10
        + [outcome((0, 0))] * 90    # n00 = 90
    )
    fit = estimate_gilbert(outcomes)
    assert fit.g == pytest.approx(10 / 40)
    assert fit.b == pytest.approx(10 / 100)
    assert fit.duration_slots == pytest.approx(4.0)
    assert fit.frequency == pytest.approx(0.1 / (0.1 + 0.25))


def test_recovers_truth_on_markov_process():
    # Geometric(5) episodes, geometric(45) gaps: a true Gilbert process
    # with g = 0.2, b = 1/45, F = 0.1, D = 5.
    rng = random.Random(3)
    process = AlternatingRenewalProcess(GeometricSlots(5), GeometricSlots(45), rng)
    states = process.generate(400_000)
    schedule = GeometricSchedule(0.3, len(states), random.Random(5))
    outcomes = outcomes_from_true_states(schedule.experiments, states)
    fit = estimate_gilbert(outcomes)
    assert fit.g == pytest.approx(0.2, rel=0.05)
    assert fit.duration_slots == pytest.approx(5.0, rel=0.05)
    assert fit.frequency == pytest.approx(0.1, rel=0.05)


def test_confidence_interval_covers_truth_on_markov_process():
    rng = random.Random(7)
    process = AlternatingRenewalProcess(GeometricSlots(4), GeometricSlots(36), rng)
    states = process.generate(150_000)
    schedule = GeometricSchedule(0.3, len(states), random.Random(9))
    outcomes = outcomes_from_true_states(schedule.experiments, states)
    fit = estimate_gilbert(outcomes, confidence=0.99)
    low_d, high_d = fit.duration_interval()
    assert low_d <= 4.0 <= high_d
    low_f, high_f = fit.frequency_interval()
    assert low_f <= 0.1 <= high_f


def test_interval_shrinks_with_more_data():
    rng = random.Random(11)
    process = AlternatingRenewalProcess(GeometricSlots(4), GeometricSlots(36), rng)
    states = process.generate(400_000)
    small_schedule = GeometricSchedule(0.3, 40_000, random.Random(13))
    large_schedule = GeometricSchedule(0.3, 400_000, random.Random(13))
    small_fit = estimate_gilbert(
        outcomes_from_true_states(small_schedule.experiments, states[:40_000])
    )
    large_fit = estimate_gilbert(
        outcomes_from_true_states(large_schedule.experiments, states)
    )
    assert large_fit.duration_halfwidth < small_fit.duration_halfwidth
    assert large_fit.frequency_halfwidth < small_fit.frequency_halfwidth


def test_agrees_with_basic_estimator_under_symmetry():
    # When n01 == n10 the basic D-hat equals (n10 + n11)/n10 == 1/g-hat.
    from repro.core.estimators import estimate_from_outcomes

    outcomes = (
        [outcome((0, 1))] * 20
        + [outcome((1, 0))] * 20
        + [outcome((1, 1))] * 60
        + [outcome((0, 0))] * 300
    )
    basic = estimate_from_outcomes(outcomes)
    fit = estimate_gilbert(outcomes)
    assert fit.duration_slots == pytest.approx(basic.duration_slots)


def test_degenerate_inputs_raise():
    with pytest.raises(EstimationError):
        estimate_gilbert([outcome((0, 0))] * 10)  # g unidentifiable
    with pytest.raises(EstimationError):
        estimate_gilbert([outcome((1, 1))] * 10)  # never ends
    with pytest.raises(EstimationError):
        estimate_gilbert(
            [outcome((1, 0))] * 5 + [outcome((0, 1))] * 5, confidence=0.7
        )


def test_duration_seconds_scaling():
    outcomes = [outcome((1, 0))] * 5 + [outcome((0, 1))] * 5 + [outcome((0, 0))] * 5
    fit = estimate_gilbert(outcomes)
    assert fit.duration_seconds(0.005) == pytest.approx(fit.duration_slots * 0.005)
