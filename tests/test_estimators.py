"""Tests for the §5 frequency and duration estimators."""

import math
import random

import pytest

from repro.core.estimators import (
    LossEstimate,
    count_patterns,
    estimate_from_outcomes,
    predicted_duration_stddev,
)
from repro.core.records import ExperimentOutcome
from repro.core.schedule import GeometricSchedule, outcomes_from_true_states
from repro.errors import EstimationError
from repro.synthetic.renewal import (
    AlternatingRenewalProcess,
    FixedSlots,
    GeometricSlots,
    UniformSlots,
)
from repro.synthetic.observer import VirtualObserver


def outcome(start, bits):
    return ExperimentOutcome(start, tuple(bits))


def test_no_outcomes_raises():
    with pytest.raises(EstimationError):
        estimate_from_outcomes([])


def test_frequency_is_mean_of_first_bits():
    outcomes = [
        outcome(0, (0, 1)),
        outcome(2, (1, 0)),
        outcome(4, (1, 1)),
        outcome(6, (0, 0)),
    ]
    estimate = estimate_from_outcomes(outcomes)
    assert estimate.frequency == pytest.approx(0.5)  # first bits 0,1,1,0


def test_duration_formula_matches_paper():
    # R = #{01,10,11}, S = #{01,10}; D = 2(R/S - 1) + 1.
    outcomes = (
        [outcome(0, (0, 1))] * 10
        + [outcome(0, (1, 0))] * 10
        + [outcome(0, (1, 1))] * 30
        + [outcome(0, (0, 0))] * 50
    )
    estimate = estimate_from_outcomes(outcomes)
    # R = 50, S = 20 -> D = 2(2.5 - 1) + 1 = 4 slots.
    assert estimate.duration_slots == pytest.approx(4.0)
    assert estimate.counts["R"] == 50
    assert estimate.counts["S"] == 20
    assert estimate.duration_valid
    assert estimate.duration_seconds(0.005) == pytest.approx(0.02)


def test_duration_invalid_when_no_transitions():
    outcomes = [outcome(0, (1, 1))] * 5 + [outcome(0, (0, 0))] * 5
    estimate = estimate_from_outcomes(outcomes)
    assert math.isnan(estimate.duration_slots)
    assert not estimate.duration_valid
    assert math.isnan(estimate.duration_seconds(0.005))


def test_improved_estimator_uses_r_hat():
    outcomes = (
        [outcome(0, (0, 1))] * 10
        + [outcome(0, (1, 0))] * 10
        + [outcome(0, (1, 1))] * 30
        + [outcome(0, (0, 1, 1))] * 5
        + [outcome(0, (1, 1, 0))] * 5
        + [outcome(0, (0, 0, 1))] * 20
        + [outcome(0, (1, 0, 0))] * 20
    )
    estimate = estimate_from_outcomes(outcomes)
    assert estimate.improved
    # U = 10, V = 40 -> r_hat = 0.25; D = (2V/U)(R/S - 1) + 1.
    assert estimate.r_hat == pytest.approx(0.25)
    assert estimate.duration_slots == pytest.approx((2 * 40 / 10) * (50 / 20 - 1) + 1)


def test_improved_invalid_when_u_zero():
    outcomes = [outcome(0, (0, 1))] * 5 + [outcome(0, (0, 0, 1))] * 5
    estimate = estimate_from_outcomes(outcomes, improved=True)
    assert not estimate.duration_valid


def test_force_basic_on_mixed_outcomes():
    outcomes = [outcome(0, (0, 1))] * 4 + [outcome(0, (1, 1))] * 4 + [outcome(0, (0, 1, 1))] * 4
    estimate = estimate_from_outcomes(outcomes, improved=False)
    assert not estimate.improved
    assert estimate.duration_valid


def test_extended_prefix_folding():
    outcomes = [outcome(0, (0, 1))] * 2 + [outcome(0, (0, 1, 1))] * 3
    base = estimate_from_outcomes(outcomes, improved=False)
    folded = estimate_from_outcomes(
        outcomes, improved=False, include_extended_prefixes=True
    )
    assert base.counts["S"] == 2
    assert folded.counts["S"] == 5  # prefixes "01" of the triples fold in


def test_count_patterns_separates_basic_and_extended():
    outcomes = [outcome(0, (0, 1)), outcome(0, (0, 1, 1)), outcome(0, (0, 0, 1))]
    counter = count_patterns(outcomes)
    assert counter["S"] == 1  # only the basic 01
    assert counter["U"] == 1
    assert counter["V"] == 1
    assert counter["M"] == 3


def test_frequency_unbiased_on_renewal_process():
    rng = random.Random(11)
    process = AlternatingRenewalProcess(GeometricSlots(4), GeometricSlots(36), rng)
    states = process.generate(200_000)
    true_f, _true_d = AlternatingRenewalProcess.truth(states)
    schedule = GeometricSchedule(0.2, len(states), random.Random(7))
    outcomes = outcomes_from_true_states(schedule.experiments, states)
    estimate = estimate_from_outcomes(outcomes)
    assert estimate.frequency == pytest.approx(true_f, rel=0.05)


def test_duration_consistent_on_renewal_process():
    # §5.2.2: with perfect observation, D-hat converges to A/B.
    rng = random.Random(13)
    process = AlternatingRenewalProcess(GeometricSlots(5), GeometricSlots(45), rng)
    states = process.generate(400_000)
    _true_f, true_d = AlternatingRenewalProcess.truth(states)
    schedule = GeometricSchedule(0.3, len(states), random.Random(5))
    outcomes = outcomes_from_true_states(schedule.experiments, states)
    estimate = estimate_from_outcomes(outcomes)
    assert estimate.duration_slots == pytest.approx(true_d, rel=0.1)


def test_duration_exact_for_deterministic_process():
    # Fixed 3-slot episodes, fixed 7-slot gaps, p=1 (every pair observed):
    # R/S is exactly (A+B)/(2B) over interior windows.
    process = AlternatingRenewalProcess(
        FixedSlots(3), FixedSlots(7), random.Random(17)
    )
    states = process.generate(100_000)
    schedule = GeometricSchedule(1.0, len(states), random.Random(3))
    outcomes = outcomes_from_true_states(schedule.experiments, states)
    estimate = estimate_from_outcomes(outcomes)
    assert estimate.duration_slots == pytest.approx(3.0, rel=0.01)


def test_basic_estimator_biased_when_p1_neq_p2_and_improved_corrects():
    # The paper's motivation for the improved algorithm: with p1 != p2 the
    # basic D-hat is systematically off; the r correction fixes it.
    #
    # The §5.3 identity #{011,110} = 2B requires every episode and every
    # congestion-free gap to span at least 2 slots (the §7 requirement that
    # discretization be finer than the episode time scales), so draw both
    # phase lengths from distributions bounded away from 1.
    rng = random.Random(23)
    process = AlternatingRenewalProcess(UniformSlots(2, 6), UniformSlots(20, 52), rng)
    states = process.generate(600_000)
    _f, true_d = AlternatingRenewalProcess.truth(states)
    schedule = GeometricSchedule(0.5, len(states), random.Random(29), improved=True)
    observer = VirtualObserver(p1=0.9, p2=0.45, rng=random.Random(31))
    outcomes = observer.observe(schedule.experiments, states)
    biased = estimate_from_outcomes(outcomes, improved=False)
    corrected = estimate_from_outcomes(outcomes, improved=True)
    assert corrected.duration_slots == pytest.approx(true_d, rel=0.15)
    # The uncorrected estimate is visibly worse (underestimates: 11s are
    # reported less often than transitions, shrinking R/S).
    assert abs(biased.duration_slots - true_d) > 2 * abs(
        corrected.duration_slots - true_d
    )


def test_predicted_duration_stddev():
    assert predicted_duration_stddev(0.1, 180_000, 0.001) == pytest.approx(
        1.0 / math.sqrt(18.0)
    )
    with pytest.raises(EstimationError):
        predicted_duration_stddev(0.0, 100, 0.1)


def test_ratio_rs_property():
    estimate = LossEstimate(
        frequency=0.1, duration_slots=2.0, n_experiments=10, counts={"R": 6, "S": 3}
    )
    assert estimate.ratio_rs == pytest.approx(2.0)
    empty = LossEstimate(
        frequency=0.0, duration_slots=float("nan"), n_experiments=1, counts={"S": 0}
    )
    assert math.isnan(empty.ratio_rs)


def test_improved_duration_undefined_when_v_zero():
    """Regression: U > 0 with V = 0 must invalidate the improved D̂.

    The correction factor 2V/U collapses to zero, so the formula would
    return exactly 1.0 (one slot) regardless of R/S — a silently "valid"
    duration in precisely the regimes (short measurements, rare long
    episodes) where it misleads most. It must be nan, like U = 0.
    """
    from collections import Counter

    from repro.core.estimators import duration_from_counter, estimate_from_counter

    # Transitions observed (S > 0), adjacent pairs observed (U > 0), but no
    # gap patterns (V = 0).
    counter = Counter({"M": 6, "Z": 4, "R": 4, "S": 2, "E": 3, "U": 2, "V": 0})
    assert math.isnan(duration_from_counter(counter, improved=True))
    # The symmetric degenerate case stays nan too.
    counter_u0 = Counter({"M": 6, "Z": 4, "R": 4, "S": 2, "E": 3, "U": 0, "V": 2})
    assert math.isnan(duration_from_counter(counter_u0, improved=True))
    # The basic estimator is untouched by the families.
    assert not math.isnan(duration_from_counter(counter, improved=False))

    estimate = estimate_from_counter(counter, improved=True)
    assert not estimate.duration_valid
    assert estimate.r_hat is None
    assert math.isnan(estimate.episode_rate_per_slot)


def test_improved_duration_v_zero_from_outcomes():
    """The same degeneracy via the outcome-list entry point."""
    outcomes = [
        outcome(0, (0, 1)),
        outcome(2, (1, 0)),
        outcome(4, (1, 1)),
        outcome(6, (0, 1, 1)),
        outcome(9, (1, 1, 0)),
    ]
    estimate = estimate_from_outcomes(outcomes, improved=True)
    assert estimate.counts["U"] == 2
    assert estimate.counts["V"] == 0
    assert not estimate.duration_valid
    assert estimate.r_hat is None
    # frequency is unaffected by the duration degeneracy.
    assert estimate.frequency == pytest.approx(3 / 5)


def test_convergence_points_report_v_zero_duration_as_none():
    """The nan propagates to streaming consumers as duration None."""
    from repro.core.streaming import convergence_points

    outcomes = [
        outcome(0, (0, 1)),
        outcome(2, (0, 1, 1)),
        outcome(6, (1, 1, 0)),
    ]
    points = convergence_points(outcomes, improved=True)
    assert points[-1].duration_slots is None
