"""Tests for bootstrap uncertainty quantification."""

import random

import pytest

from repro.core.records import ExperimentOutcome
from repro.core.schedule import GeometricSchedule, outcomes_from_true_states
from repro.core.uncertainty import BootstrapResult, bootstrap_estimates
from repro.errors import EstimationError
from repro.synthetic.renewal import AlternatingRenewalProcess, GeometricSlots


def outcome(bits):
    return ExperimentOutcome(0, tuple(bits))


def synthetic_outcomes(n_slots=120_000, p=0.3, seed=1):
    rng = random.Random(seed)
    process = AlternatingRenewalProcess(GeometricSlots(4), GeometricSlots(36), rng)
    states = process.generate(n_slots)
    schedule = GeometricSchedule(p, n_slots, random.Random(seed + 1))
    return outcomes_from_true_states(schedule.experiments, states)


def test_point_estimates_match_estimator():
    outcomes = synthetic_outcomes()
    from repro.core.estimators import estimate_from_outcomes

    point = estimate_from_outcomes(outcomes)
    boot = bootstrap_estimates(outcomes, n_resamples=50, rng=random.Random(2))
    assert boot.frequency == point.frequency
    assert boot.duration_slots == point.duration_slots


def test_intervals_cover_truth_on_synthetic_process():
    outcomes = synthetic_outcomes()
    boot = bootstrap_estimates(outcomes, n_resamples=200, rng=random.Random(3))
    low_f, high_f = boot.frequency_interval
    assert low_f <= 0.1 <= high_f or abs(boot.frequency - 0.1) < 0.02
    low_d, high_d = boot.duration_interval
    assert low_d <= 4.0 <= high_d or abs(boot.duration_slots - 4.0) < 0.8
    assert boot.duration_support == 1.0


def test_interval_contains_point_estimate():
    outcomes = synthetic_outcomes(n_slots=60_000)
    boot = bootstrap_estimates(outcomes, n_resamples=100, rng=random.Random(5))
    assert boot.frequency_interval[0] <= boot.frequency <= boot.frequency_interval[1]


def test_more_data_narrows_interval():
    small = bootstrap_estimates(
        synthetic_outcomes(n_slots=20_000), n_resamples=100, rng=random.Random(7)
    )
    large = bootstrap_estimates(
        synthetic_outcomes(n_slots=200_000), n_resamples=100, rng=random.Random(7)
    )
    small_width = small.frequency_interval[1] - small.frequency_interval[0]
    large_width = large.frequency_interval[1] - large.frequency_interval[0]
    assert large_width < small_width


def test_block_bootstrap_runs():
    outcomes = synthetic_outcomes(n_slots=30_000)
    boot = bootstrap_estimates(
        outcomes, n_resamples=50, block=10, rng=random.Random(9)
    )
    assert boot.n_resamples == 50
    assert boot.frequency_interval[0] <= boot.frequency_interval[1]


def test_duration_support_below_one_when_transitions_rare():
    # Mostly 00 with a single 01: many resamples miss the transition.
    outcomes = [outcome((0, 0))] * 200 + [outcome((0, 1))]
    boot = bootstrap_estimates(outcomes, n_resamples=100, rng=random.Random(11))
    assert boot.duration_support < 1.0


def test_seconds_scaling():
    outcomes = synthetic_outcomes(n_slots=30_000)
    boot = bootstrap_estimates(outcomes, n_resamples=50, rng=random.Random(13))
    low_s, high_s = boot.duration_interval_seconds(0.005)
    assert low_s == pytest.approx(boot.duration_interval[0] * 0.005)
    assert high_s == pytest.approx(boot.duration_interval[1] * 0.005)


def test_parameter_validation():
    outcomes = [outcome((0, 1))] * 10
    with pytest.raises(EstimationError):
        bootstrap_estimates([], n_resamples=50)
    with pytest.raises(EstimationError):
        bootstrap_estimates(outcomes, n_resamples=5)
    with pytest.raises(EstimationError):
        bootstrap_estimates(outcomes, confidence=0.4)
    with pytest.raises(EstimationError):
        bootstrap_estimates(outcomes, block=0)


def test_deterministic_given_rng():
    outcomes = synthetic_outcomes(n_slots=30_000)
    a = bootstrap_estimates(outcomes, n_resamples=50, rng=random.Random(42))
    b = bootstrap_estimates(outcomes, n_resamples=50, rng=random.Random(42))
    assert a == b
    assert isinstance(a, BootstrapResult)
