"""Tests for the multi-hop testbed and path-level episode union."""

import pytest

from repro.analysis.episodes import LossEpisode, merge_episode_lists
from repro.errors import ConfigurationError
from repro.experiments.runner import run_badabing_multihop
from repro.net.multihop import MultiHopTestbed
from repro.net.packet import Packet
from repro.net.simulator import Simulator


# ---------------------------------------------------------------------------
# merge_episode_lists
# ---------------------------------------------------------------------------

def ep(start, end, drops=1):
    return LossEpisode(start, end, drops)


def test_merge_empty():
    assert merge_episode_lists([]) == []
    assert merge_episode_lists([[], []]) == []


def test_merge_disjoint_lists_interleave():
    merged = merge_episode_lists([[ep(1, 2)], [ep(5, 6)], [ep(3, 4)]])
    assert [(e.start, e.end) for e in merged] == [(1, 2), (3, 4), (5, 6)]


def test_merge_overlapping_intervals_union():
    merged = merge_episode_lists([[ep(1, 3, 2)], [ep(2, 5, 4)]])
    assert merged == [LossEpisode(1, 5, 6)]


def test_merge_contained_interval():
    merged = merge_episode_lists([[ep(1, 10, 3)], [ep(4, 5, 1)]])
    assert merged == [LossEpisode(1, 10, 4)]


def test_merge_join_gap():
    apart = merge_episode_lists([[ep(1, 2)], [ep(2.4, 3)]])
    assert len(apart) == 2
    joined = merge_episode_lists([[ep(1, 2)], [ep(2.4, 3)]], join_gap=0.5)
    assert len(joined) == 1


def test_merge_rejects_negative_gap():
    with pytest.raises(ConfigurationError):
        merge_episode_lists([], join_gap=-1.0)


# ---------------------------------------------------------------------------
# MultiHopTestbed
# ---------------------------------------------------------------------------

def test_end_to_end_delivery_across_hops():
    sim = Simulator()
    testbed = MultiHopTestbed(sim, n_hops=4)
    got = []
    testbed.probe_receiver.bind("probe", 1, got.append)
    testbed.probe_sender.send(
        Packet("probesnd", "probercv", 600, protocol="probe", port=1)
    )
    sim.run()
    assert len(got) == 1


def test_propagation_split_across_hops():
    sim = Simulator()
    testbed = MultiHopTestbed(sim, n_hops=5)
    arrival = []
    testbed.probe_receiver.bind("probe", 1, lambda p: arrival.append(sim.now))
    testbed.probe_sender.send(
        Packet("probesnd", "probercv", 600, protocol="probe", port=1)
    )
    sim.run()
    # Total propagation stays at the single-hop testbed's budget; only
    # serialization repeats per hop (6 store-and-forward stages here).
    floor = testbed.one_way_propagation
    assert arrival[0] > floor
    assert arrival[0] < floor + 0.01


def test_each_hop_has_independent_queue_and_monitor():
    sim = Simulator()
    testbed = MultiHopTestbed(sim, n_hops=3)
    assert len(testbed.hop_queues) == 3
    assert len({id(q) for q in testbed.hop_queues}) == 3
    # Overload only hop 1 via its cross hosts; only its monitor sees drops.
    receiver = testbed.cross_receivers[1]
    receiver.bind("udp", 9, lambda p: None)
    for _ in range(300):
        testbed.cross_senders[1].send(
            Packet("xsnd1", "xrcv1", 1500, port=9)
        )
    sim.run()
    assert testbed.hop_monitors[1].total_drops > 0
    assert testbed.hop_monitors[0].total_drops == 0
    assert testbed.hop_monitors[2].total_drops == 0
    assert testbed.total_drops == testbed.hop_monitors[1].total_drops


def test_hop_count_validation():
    with pytest.raises(ConfigurationError):
        MultiHopTestbed(Simulator(), n_hops=0)


# ---------------------------------------------------------------------------
# Multi-hop BADABING experiment
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def multihop_run():
    return run_badabing_multihop(
        3,
        p=0.5,
        n_slots=24_000,
        seed=3,
        mean_spacings=[6.0, 9.0, 12.0],
        warmup=5.0,
    )


def test_multihop_truth_is_union_of_hops(multihop_run):
    _result, truth = multihop_run
    # Three independent episode processes: more episodes than any single
    # hop scenario with 10 s spacing would produce over 120 s.
    assert truth.n_episodes >= 20


def test_multihop_estimates_track_path_truth(multihop_run):
    result, truth = multihop_run
    assert result.frequency == pytest.approx(truth.frequency, rel=0.5)
    assert result.duration_seconds == pytest.approx(truth.duration_mean, rel=0.6)


def test_multihop_spacing_list_validated():
    with pytest.raises(ConfigurationError):
        run_badabing_multihop(
            2, p=0.3, n_slots=2000, mean_spacings=[5.0], warmup=1.0
        )
