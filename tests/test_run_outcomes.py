"""Tests for protected runs: budgets, retries, structured sweep outcomes."""

import pytest

from repro.errors import ConfigurationError, EstimationError, ReproError, SimulationError
from repro.experiments.runner import (
    RunBudget,
    RunOutcome,
    accepts_kwarg,
    derive_retry_seed,
    run_badabing,
    run_badabing_multihop,
    run_protected,
    run_zing,
    sweep_badabing,
)

CELL = dict(
    scenario="episodic_cbr",
    p=0.3,
    n_slots=1500,
    warmup=2.0,
    scenario_kwargs={"mean_spacing": 2.0},
)


def test_budget_validation():
    with pytest.raises(ConfigurationError):
        RunBudget(max_attempts=0)
    with pytest.raises(ConfigurationError):
        RunBudget(max_events=0)


def test_derived_retry_seeds_are_deterministic_and_fresh():
    first = derive_retry_seed(42, 1)
    assert first == derive_retry_seed(42, 1)
    assert first != 42
    assert derive_retry_seed(42, 1) != derive_retry_seed(42, 2)
    assert derive_retry_seed(42, 1) != derive_retry_seed(43, 1)


def test_successful_run_returns_ok_outcome():
    outcome = run_protected(run_badabing, label="ok-cell", seed=3, **CELL)
    assert outcome.ok and not outcome.failed
    assert outcome.attempts == 1
    assert outcome.seeds == (3,)
    assert outcome.result is not None and outcome.truth is not None
    result, truth = outcome.unwrap()
    assert 0.0 <= result.frequency <= 1.0
    assert "ok" in outcome.describe()


def test_budget_exhaustion_is_captured_and_retried():
    budget = RunBudget(max_events=300, max_attempts=3)
    outcome = run_protected(
        run_badabing, label="starved", seed=3, budget=budget, **CELL
    )
    assert outcome.failed
    assert outcome.error_type == "BudgetExhaustedError"
    assert outcome.budget_exhausted
    assert outcome.attempts == 3
    assert len(set(outcome.seeds)) == 3  # fresh derived seed per retry
    assert "BudgetExhaustedError" in outcome.describe()
    with pytest.raises(ReproError):
        outcome.unwrap()


def test_non_retryable_error_is_captured_without_retry():
    def crashes(seed):
        raise EstimationError("nothing to estimate")

    outcome = run_protected(crashes, label="dead", seed=1, budget=RunBudget(max_attempts=5))
    assert outcome.failed
    assert outcome.error_type == "EstimationError"
    assert outcome.attempts == 1  # EstimationError is not in retry_on
    assert outcome.error_traceback and "EstimationError" in outcome.error_traceback


def test_retry_recovers_from_transient_simulation_error():
    calls = []

    def flaky(seed):
        calls.append(seed)
        if len(calls) == 1:
            raise SimulationError("transient")
        return "result", None

    outcome = run_protected(flaky, label="flaky", seed=9, budget=RunBudget(max_attempts=2))
    assert outcome.ok
    assert outcome.attempts == 2
    assert calls[0] == 9 and calls[1] == derive_retry_seed(9, 1)


def test_wall_budget_stops_retries():
    def always_fails(seed):
        raise SimulationError("boom")

    outcome = run_protected(
        always_fails,
        label="slow",
        seed=1,
        budget=RunBudget(max_attempts=50, max_wall_seconds=0.0),
    )
    assert outcome.failed
    assert outcome.attempts == 1  # wall budget exhausted after first try


def test_sweep_completes_despite_crashing_cell():
    cells = [
        {"p": 0.3, "label": "healthy"},
        {"p": 0.5, "label": "starved", "max_events": 300},
        {"p": 0.7, "label": "healthy-2"},
    ]
    common = dict(CELL)
    common.pop("p")
    outcomes = sweep_badabing(cells, budget=RunBudget(max_attempts=1), **common)
    assert [outcome.label for outcome in outcomes] == [
        "healthy", "starved", "healthy-2",
    ]
    assert outcomes[0].ok
    assert outcomes[1].failed and outcomes[1].budget_exhausted
    assert outcomes[2].ok


def test_sweep_generates_labels_and_merges_common_kwargs():
    common = dict(CELL)
    common.pop("p")
    outcomes = sweep_badabing([{"p": 0.3, "seed": 5}], **common)
    assert len(outcomes) == 1
    assert "p=0.3" in outcomes[0].label
    assert outcomes[0].seeds == (5,)
    assert outcomes[0].ok


def test_outcome_defaults_represent_unrun_cell():
    outcome = RunOutcome(label="x", ok=False)
    assert outcome.failed
    assert outcome.attempts == 0
    assert outcome.seeds == ()


class TestCommonLabelSuffixing:
    """A label passed via **common must not stamp every cell identically."""

    def test_common_label_gets_cell_index_suffix(self):
        common = dict(CELL)
        common.pop("p")
        outcomes = sweep_badabing(
            [{"p": 0.3}, {"p": 0.5}], label="grid", **common
        )
        assert [o.label for o in outcomes] == ["grid[0]", "grid[1]"]

    def test_per_cell_label_still_wins_verbatim(self):
        common = dict(CELL)
        common.pop("p")
        outcomes = sweep_badabing(
            [{"p": 0.3, "label": "mine"}, {"p": 0.5}], label="grid", **common
        )
        assert [o.label for o in outcomes] == ["mine", "grid[1]"]


class TestAcceptsKwarg:
    def test_named_and_var_keyword_parameters(self):
        def named(seed, max_events=None):
            return seed

        def keyword_only(seed, *, max_events):
            return seed

        def catch_all(seed, **kwargs):
            return seed

        def without(seed):
            return seed

        assert accepts_kwarg(named, "max_events")
        assert accepts_kwarg(keyword_only, "max_events")
        assert accepts_kwarg(catch_all, "max_events")
        assert not accepts_kwarg(without, "max_events")

    def test_uninspectable_callable_defaults_to_true(self):
        assert accepts_kwarg(min, "max_events")  # C builtin without a signature

    def test_inspectable_builtin_without_the_kwarg(self):
        assert not accepts_kwarg(len, "max_events")


class TestProtectedBudgetForwarding:
    """run_protected must never crash a runner with an unexpected kwarg.

    Regression for the bug where ``budget=RunBudget(max_events=...)``
    injected ``max_events=`` into every runner, crashing run_zing and
    run_badabing_multihop with TypeError before a single event ran.
    """

    def test_protected_zing_exhausts_budget_structurally(self):
        outcome = run_protected(
            run_zing,
            budget=RunBudget(max_events=300, max_attempts=1),
            scenario="episodic_cbr",
            mean_interval=0.1,
            packet_size=256,
            duration=6.0,
            warmup=2.0,
            scenario_kwargs={"mean_spacing": 2.0},
        )
        assert outcome.failed
        assert outcome.error_type == "BudgetExhaustedError"
        assert outcome.budget_exhausted

    def test_protected_zing_completes_under_generous_budget(self):
        outcome = run_protected(
            run_zing,
            budget=RunBudget(max_events=2_000_000),
            scenario="episodic_cbr",
            mean_interval=0.1,
            packet_size=256,
            duration=6.0,
            warmup=2.0,
            scenario_kwargs={"mean_spacing": 2.0},
        )
        assert outcome.ok, outcome.error

    def test_protected_multihop_exhausts_budget_structurally(self):
        outcome = run_protected(
            run_badabing_multihop,
            budget=RunBudget(max_events=300, max_attempts=1),
            n_hops=2,
            p=0.3,
            n_slots=1500,
            warmup=2.0,
        )
        assert outcome.failed
        assert outcome.error_type == "BudgetExhaustedError"
        assert outcome.budget_exhausted

    def test_runner_without_max_events_is_not_crashed(self):
        # A runner with a strict signature must simply not receive the kwarg.
        def strict_runner(seed):
            return f"ran-{seed}", None

        outcome = run_protected(
            strict_runner, budget=RunBudget(max_events=10)
        )
        assert outcome.ok
        assert outcome.result == "ran-1"
