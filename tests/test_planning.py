"""Tests for §7 measurement planning."""

import math

import pytest

from repro.config import ProbeConfig
from repro.core.planning import (
    MeasurementPlan,
    plan_measurement,
    required_p,
    required_slots,
)
from repro.errors import ConfigurationError


def test_required_slots_formula():
    # N = 1/(p L target^2): p=0.1, L=0.001, target=0.25 -> 160,000.
    assert required_slots(0.1, 0.001, 0.25) == 160_000


def test_required_slots_paper_example():
    # §7's example: 12 loss events/minute at 5 ms slots -> L = 0.001.
    L = 12 / (60 * 200)
    assert L == pytest.approx(0.001)
    n = required_slots(0.3, L, 0.25)
    assert n == math.ceil(1 / (0.3 * 0.001 * 0.0625))


def test_required_p_inverts_required_slots():
    L, target = 0.002, 0.3
    n = required_slots(0.2, L, target)
    p = required_p(n, L, target)
    assert p == pytest.approx(0.2, rel=0.01)


def test_required_p_unreachable_target():
    with pytest.raises(ConfigurationError):
        required_p(1000, 0.0001, 0.1)  # would need p >> 1


def test_plan_with_fixed_p():
    plan = plan_measurement(0.001, 0.25, p=0.1)
    assert plan.n_slots == 160_000
    assert plan.predicted_duration_stddev <= 0.25 + 1e-9
    assert plan.duration_seconds == pytest.approx(800.0)


def test_plan_with_fixed_n():
    plan = plan_measurement(0.001, 0.25, n_slots=320_000)
    assert plan.p == pytest.approx(0.05)
    assert plan.predicted_duration_stddev == pytest.approx(0.25)


def test_plan_requires_exactly_one_free_parameter():
    with pytest.raises(ConfigurationError):
        plan_measurement(0.001, 0.25)
    with pytest.raises(ConfigurationError):
        plan_measurement(0.001, 0.25, p=0.1, n_slots=1000)


def test_probe_load_uses_coverage_model():
    plan = plan_measurement(0.001, 0.25, p=0.3, probe=ProbeConfig())
    coverage = 1 - 0.7 ** 2
    expected = coverage * 3 * 600 * 8 / 0.005
    assert plan.probe_load_bps == pytest.approx(expected)


def test_higher_p_means_shorter_measurement():
    low = plan_measurement(0.001, 0.25, p=0.1)
    high = plan_measurement(0.001, 0.25, p=0.9)
    assert high.n_slots < low.n_slots
    assert high.probe_load_bps > low.probe_load_bps


def test_describe_is_humane():
    plan = plan_measurement(0.001, 0.25, p=0.1)
    text = plan.describe()
    assert "p=0.1" in text
    assert "kb/s" in text


def test_validation_of_inputs():
    with pytest.raises(ConfigurationError):
        required_slots(0.0, 0.001, 0.25)
    with pytest.raises(ConfigurationError):
        required_slots(0.1, 0.0, 0.25)
    with pytest.raises(ConfigurationError):
        required_slots(0.1, 0.001, 0.0)
    with pytest.raises(ConfigurationError):
        required_p(1, 0.001, 0.25)


def test_plan_is_value_object():
    a = plan_measurement(0.001, 0.25, p=0.1)
    b = plan_measurement(0.001, 0.25, p=0.1)
    assert a == b
    assert isinstance(a, MeasurementPlan)
