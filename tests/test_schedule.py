"""Tests for the geometric experiment schedule."""

import random

import pytest

from repro.core.records import ExperimentOutcome
from repro.core.schedule import Experiment, GeometricSchedule, outcomes_from_true_states
from repro.errors import ConfigurationError


def make_schedule(p=0.3, n_slots=10_000, seed=1, improved=False):
    return GeometricSchedule(p, n_slots, random.Random(seed), improved=improved)


def test_experiment_slots():
    assert Experiment(5, 2).slots == (5, 6)
    assert Experiment(5, 3).slots == (5, 6, 7)


def test_experiment_validation():
    with pytest.raises(ConfigurationError):
        Experiment(0, 4)
    with pytest.raises(ConfigurationError):
        Experiment(-1, 2)


def test_start_rate_matches_p():
    schedule = make_schedule(p=0.3, n_slots=50_000)
    rate = schedule.n_experiments / schedule.n_slots
    assert rate == pytest.approx(0.3, rel=0.05)


def test_basic_schedule_has_only_pairs():
    schedule = make_schedule()
    assert all(e.length == 2 for e in schedule.experiments)


def test_improved_schedule_mixes_pairs_and_triples_evenly():
    schedule = make_schedule(improved=True, n_slots=50_000)
    lengths = [e.length for e in schedule.experiments]
    triples = sum(1 for length in lengths if length == 3)
    assert triples / len(lengths) == pytest.approx(0.5, abs=0.05)


def test_probe_slots_are_union_of_experiment_slots():
    schedule = make_schedule(p=0.5, n_slots=1000, seed=3)
    expected = set()
    for experiment in schedule.experiments:
        expected.update(experiment.slots)
    assert set(schedule.probe_slots) == expected
    assert schedule.probe_slots == sorted(expected)
    assert schedule.n_probes == len(expected)


def test_coverage_matches_shared_probe_model():
    # Each slot is covered iff an experiment started there or one slot
    # earlier: coverage = 1 - (1-p)^2 for the basic design.
    schedule = make_schedule(p=0.3, n_slots=100_000)
    coverage = schedule.n_probes / schedule.n_slots
    assert coverage == pytest.approx(1 - 0.7 ** 2, rel=0.03)


def test_experiments_fit_within_window():
    schedule = make_schedule(p=1.0, n_slots=10)
    for experiment in schedule.experiments:
        assert experiment.start_slot + experiment.length <= 10


def test_probe_load_accounting():
    schedule = make_schedule(p=0.3, n_slots=10_000)
    load = schedule.probe_load_bps(3, 600, 0.005)
    expected = schedule.n_probes * 3 * 600 * 8 / (10_000 * 0.005)
    assert load == pytest.approx(expected)


def test_deterministic_given_seed():
    a = make_schedule(seed=9)
    b = make_schedule(seed=9)
    assert a.experiments == b.experiments


def test_parameter_validation():
    with pytest.raises(ConfigurationError):
        make_schedule(p=0.0)
    with pytest.raises(ConfigurationError):
        make_schedule(p=1.5)
    with pytest.raises(ConfigurationError):
        make_schedule(n_slots=1)


def test_outcomes_from_states_assembles_bits():
    schedule = make_schedule(p=1.0, n_slots=6)
    states = {slot: slot in (2, 3) for slot in schedule.probe_slots}
    outcomes = schedule.outcomes_from_states(states)
    by_start = {o.start_slot: o.as_string for o in outcomes}
    assert by_start[1] == "01"
    assert by_start[2] == "11"
    assert by_start[3] == "10"
    assert by_start[0] == "00"


def test_outcomes_skip_missing_states_defensively():
    schedule = make_schedule(p=1.0, n_slots=6)
    states = {slot: False for slot in schedule.probe_slots}
    del states[3]
    outcomes = schedule.outcomes_from_states(states)
    starts = {o.start_slot for o in outcomes}
    assert 3 not in starts
    assert 2 not in starts  # experiment (2,3) also touched slot 3


def test_outcomes_from_true_states():
    experiments = [Experiment(0, 2), Experiment(2, 3)]
    states = [False, True, True, False, False]
    outcomes = outcomes_from_true_states(experiments, states)
    assert outcomes == [
        ExperimentOutcome(0, (0, 1)),
        ExperimentOutcome(2, (1, 0, 0)),
    ]


def test_tail_slot_start_rate_not_halved():
    """Regression: an extended draw overflowing the window degrades to a
    basic 2-slot experiment instead of being discarded.

    Discarding silently halved the effective start probability at slot
    N-2 under the improved design (a start there draws length 3 with
    probability 1/2, and 3 slots never fit). With the degrade rule the
    start frequency at N-2 stays p: over 400 seeds at p = 0.5 the count
    is Binomial(400, 0.5) — mean 200, sigma 10 — while the discarding
    behaviour would center on 100. Assert 5-sigma bounds around p.
    """
    n_slots = 6
    tail = n_slots - 2
    starts_at_tail = 0
    for seed in range(400):
        schedule = GeometricSchedule(
            0.5, n_slots, random.Random(seed), improved=True
        )
        if any(e.start_slot == tail for e in schedule.experiments):
            starts_at_tail += 1
            assert all(
                e.length == 2 for e in schedule.experiments if e.start_slot == tail
            )
    assert 150 <= starts_at_tail <= 250


def test_tail_degrade_preserves_draw_sequence():
    """The length coin is consumed even when the draw degrades, so the
    schedule equals a manual replay of the draw stream and the RNG ends
    in the same state as one that made every draw."""
    p, n_slots = 0.7, 12
    for seed in range(30):
        rng = random.Random(seed)
        schedule = GeometricSchedule(p, n_slots, rng, improved=True)

        replay = random.Random(seed)
        expected = []
        for slot in range(n_slots):
            if replay.random() >= p:
                continue
            length = 3 if replay.random() < 0.5 else 2
            if slot + length > n_slots:
                if slot + 2 > n_slots:
                    continue  # nothing fits in the final slot
                length = 2
            expected.append(Experiment(slot, length))
        assert schedule.experiments == expected
        assert rng.getstate() == replay.getstate()


def test_last_slot_start_is_dropped():
    """A start in the very last slot has no room even for a basic
    experiment; it is dropped (but its draws are still consumed)."""
    schedule = GeometricSchedule(1.0, 4, random.Random(3), improved=True)
    assert all(e.start_slot <= 2 for e in schedule.experiments)
    assert all(e.start_slot + e.length <= 4 for e in schedule.experiments)
    # p = 1: every slot that fits starts an experiment.
    assert sorted(e.start_slot for e in schedule.experiments) == [0, 1, 2]
