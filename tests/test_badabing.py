"""Tests for the BADABING tool end to end on the simulator."""

import math

import pytest

from repro.config import BadabingConfig, MarkingConfig, ProbeConfig
from repro.core.badabing import BadabingTool
from repro.core.clock import AffineClock
from repro.core.jitter import UniformJitter
from repro.experiments.runner import DRAIN_TIME, apply_scenario, build_testbed


def deploy(seed=1, scenario=None, scenario_kwargs=None, **config_kwargs):
    sim, testbed = build_testbed(seed=seed)
    if scenario:
        apply_scenario(sim, testbed, scenario, **(scenario_kwargs or {}))
    defaults = dict(p=0.3, n_slots=4000)
    defaults.update(config_kwargs)
    config = BadabingConfig(**defaults)
    tool = BadabingTool(
        sim, testbed.probe_sender, testbed.probe_receiver, config, start=1.0
    )
    return sim, testbed, tool


def test_probes_arrive_on_idle_network():
    sim, _testbed, tool = deploy()
    sim.run(until=tool.end_time + DRAIN_TIME)
    probes = tool.probe_records()
    assert len(probes) == tool.schedule.n_probes
    assert all(not probe.lost for probe in probes)
    # One-way delay = propagation + serialization. Later packets of a train
    # queue briefly behind the first at the bottleneck (sent 30 µs apart but
    # 0.4 ms to serialize), so the spread is bounded by two serializations.
    owds = {owd for probe in probes for owd in probe.owds}
    assert max(owds) - min(owds) < 2 * 1e-3


def test_no_congestion_estimates_zero_frequency():
    sim, _testbed, tool = deploy()
    sim.run(until=tool.end_time + DRAIN_TIME)
    result = tool.result()
    assert result.frequency == 0.0
    assert math.isnan(result.duration_seconds)
    assert result.validation.violations == 0


def test_probe_trains_spaced_within_slot():
    sim, _testbed, tool = deploy(n_slots=100, p=1.0)
    sim.run(until=tool.end_time + DRAIN_TIME)
    sent = tool.sender.sent
    slot0 = [sent[(0, i)][0] for i in range(3)]
    assert slot0[1] - slot0[0] == pytest.approx(30e-6)
    assert slot0[2] - slot0[1] == pytest.approx(30e-6)


def test_detects_engineered_episodes():
    sim, testbed, tool = deploy(
        seed=5,
        scenario="episodic_cbr",
        scenario_kwargs={"episode_durations": (0.068,), "mean_spacing": 3.0},
        n_slots=12_000,
        p=0.5,
    )
    sim.run(until=tool.end_time + DRAIN_TIME)
    result = tool.result()
    assert result.lost_probe_packets > 0
    assert result.frequency > 0.0
    assert result.marking.marked_by_delay > 0
    # Engineered truth: 68 ms episodes every ~3 s -> F ~ 0.02.
    assert 0.005 < result.frequency < 0.08


def test_remarking_without_resimulation():
    sim, _testbed, tool = deploy(
        seed=5,
        scenario="episodic_cbr",
        scenario_kwargs={"episode_durations": (0.068,), "mean_spacing": 3.0},
        n_slots=8_000,
        p=0.5,
    )
    sim.run(until=tool.end_time + DRAIN_TIME)
    strict = tool.result(marking=MarkingConfig(alpha=0.02, tau=0.010))
    loose = tool.result(marking=MarkingConfig(alpha=0.3, tau=0.120))
    assert loose.frequency >= strict.frequency
    # Loss-based markings are identical; only delay markings differ.
    assert loose.marking.marked_by_loss == strict.marking.marked_by_loss
    assert loose.marking.marked_by_delay >= strict.marking.marked_by_delay


def test_improved_mode_sends_triples():
    sim, _testbed, tool = deploy(improved=True, n_slots=4000)
    sim.run(until=tool.end_time + DRAIN_TIME)
    result = tool.result()
    assert any(outcome.is_extended for outcome in result.outcomes)
    assert result.estimate.improved


def test_jitter_displaces_send_times():
    sim, _testbed, tool = deploy(n_slots=500, p=0.5)
    sim_j, testbed_j = build_testbed(seed=1)
    config = BadabingConfig(p=0.5, n_slots=500)
    tool_j = BadabingTool(
        sim_j,
        testbed_j.probe_sender,
        testbed_j.probe_receiver,
        config,
        start=1.0,
        jitter=UniformJitter(0.004),
    )
    sim.run(until=tool.end_time + DRAIN_TIME)
    sim_j.run(until=tool_j.end_time + DRAIN_TIME)
    slot_width = config.probe.slot
    offsets = [
        record.send_time - (1.0 + record.slot * slot_width)
        for record in tool_j.probe_records()
    ]
    assert all(offset >= -1e-12 for offset in offsets)
    assert max(offsets) > 0.0005


def test_clock_offset_shifts_owds_but_not_loss():
    sim, _testbed, tool = deploy(
        n_slots=500,
        p=0.5,
    )
    sim_c, testbed_c = build_testbed(seed=1)
    config = BadabingConfig(p=0.5, n_slots=500)
    tool_c = BadabingTool(
        sim_c,
        testbed_c.probe_sender,
        testbed_c.probe_receiver,
        config,
        start=1.0,
        receiver_clock=AffineClock(offset=0.5),
    )
    sim.run(until=tool.end_time + DRAIN_TIME)
    sim_c.run(until=tool_c.end_time + DRAIN_TIME)
    plain = tool.probe_records()
    shifted = tool_c.probe_records()
    assert len(plain) == len(shifted)
    assert shifted[0].owds[0] - plain[0].owds[0] == pytest.approx(0.5)


def test_probe_load_matches_schedule_accounting():
    sim, _testbed, tool = deploy(n_slots=10_000, p=0.3)
    sim.run(until=tool.end_time + DRAIN_TIME)
    result = tool.result()
    expected = tool.schedule.probe_load_bps(3, 600, 0.005)
    assert result.probe_load_bps == pytest.approx(expected)
    # Coverage model sanity: load ~ (1-(1-p)^2) x 3 pkts x 600 B / 5 ms.
    nominal = (1 - 0.7 ** 2) * 3 * 600 * 8 / 0.005
    assert result.probe_load_bps == pytest.approx(nominal, rel=0.05)


def test_deterministic_given_seed():
    sim_a, _t, tool_a = deploy(
        seed=7, scenario="episodic_cbr", n_slots=6000, p=0.3
    )
    sim_a.run(until=tool_a.end_time + DRAIN_TIME)
    sim_b, _t, tool_b = deploy(
        seed=7, scenario="episodic_cbr", n_slots=6000, p=0.3
    )
    sim_b.run(until=tool_b.end_time + DRAIN_TIME)
    result_a, result_b = tool_a.result(), tool_b.result()
    assert result_a.frequency == result_b.frequency
    assert result_a.outcomes == result_b.outcomes
