"""Tests for the §4/§6 traffic scenario constructors."""

import pytest

from repro.analysis.episodes import episodes_from_monitor
from repro.experiments.runner import apply_scenario, build_testbed
from repro.experiments.scenarios import scaled_flow_count
from repro.errors import ConfigurationError
from repro.units import mbps


def test_scaled_flow_count():
    assert scaled_flow_count(mbps(155)) == 40  # the paper's own setup
    assert scaled_flow_count(mbps(12)) == 3
    assert scaled_flow_count(mbps(1)) == 2  # floor


def test_unknown_scenario_rejected():
    sim, testbed = build_testbed()
    with pytest.raises(ConfigurationError):
        apply_scenario(sim, testbed, "bogus")


def test_infinite_tcp_produces_sawtooth_loss():
    sim, testbed = build_testbed(seed=3)
    senders = apply_scenario(sim, testbed, "infinite_tcp")
    assert len(senders) == scaled_flow_count(testbed.config.bottleneck_bps)
    sim.run(until=40.0)
    episodes = episodes_from_monitor(testbed.monitor)
    assert len(episodes) >= 3
    durations = [e.duration for e in episodes if e.duration > 0]
    # TCP episodes last on the order of an RTT (~0.1 s), not seconds.
    assert durations
    assert max(durations) < 1.0


def test_infinite_tcp_flow_count_override():
    sim, testbed = build_testbed()
    senders = apply_scenario(sim, testbed, "infinite_tcp", n_flows=7)
    assert len(senders) == 7


def test_infinite_tcp_staggered_starts():
    sim, testbed = build_testbed()
    apply_scenario(sim, testbed, "infinite_tcp", n_flows=5, stagger=2.0)
    sim.run(until=0.01)
    # No flow may start before its stagger draw; with 5 draws over 2 s,
    # the odds all land in the first 10 ms are negligible.
    assert sim.pending() > 0


def test_episodic_cbr_uses_requested_durations():
    sim, testbed = build_testbed(seed=4)
    traffic = apply_scenario(
        sim, testbed, "episodic_cbr",
        episode_durations=(0.05,), mean_spacing=2.0,
    )
    sim.run(until=30.0)
    assert all(duration == 0.05 for _t, duration in traffic.scheduled_episodes)
    episodes = episodes_from_monitor(testbed.monitor)
    assert episodes
    for episode in episodes:
        assert episode.duration < 0.1


def test_harpoon_web_calibrated_load():
    sim, testbed = build_testbed(seed=5)
    traffic = apply_scenario(sim, testbed, "harpoon_web", load_factor=0.4)
    sim.run(until=60.0)
    offered = traffic.mean_offered_load_bps
    # Offered load should be in the ballpark of the 40% target (heavy
    # tails make this noisy; the point is calibration, not precision).
    assert 0.15 * testbed.config.bottleneck_bps < offered < 0.9 * testbed.config.bottleneck_bps


def test_harpoon_web_surges_produce_episodes():
    sim, testbed = build_testbed(seed=6)
    apply_scenario(sim, testbed, "harpoon_web", surge_interval_mean=8.0)
    sim.run(until=60.0)
    assert len(episodes_from_monitor(testbed.monitor)) >= 2
