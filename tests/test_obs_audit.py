"""Tests for the accuracy-audit layer (repro.obs.audit).

Covers the audit acceptance criteria:

* episode classification (detected / partially_sampled / missed) against
  synthetic ground truth,
* convergence telemetry folding (monotone counts, decimation, final point),
* scorecard aggregation including failed sweep cells,
* same-seed runs export byte-identical audit documents,
* audit documents validate against the schema and round-trip the CLI,
* NullRegistry runs build no audit at all.
"""

import json

import pytest

from repro.analysis.episodes import LossEpisode, episode_slot_range
from repro.cli import main
from repro.core.records import ExperimentOutcome
from repro.core.streaming import convergence_points
from repro.errors import ConfigurationError, ObservabilityError
from repro.experiments.runner import (
    run_badabing,
    scorecard_from_outcomes,
    sweep_badabing,
)
from repro.obs import (
    AUDIT_SCHEMA,
    AccuracyScorecard,
    MetricsRegistry,
    NullRegistry,
    audit_document,
    render_audit,
    render_scorecard,
    scorecard_from_runs,
    validate_audit_document,
    write_audit_document,
)
from repro.obs.audit import (
    EPISODE_DETECTED,
    EPISODE_MISSED,
    EPISODE_PARTIAL,
    MAX_CONVERGENCE_POINTS,
    audit_episodes,
    relative_error,
)
from repro.obs.schema import load_audit_document

RUN_KWARGS = dict(
    scenario="episodic_cbr",
    p=0.3,
    n_slots=1500,
    seed=3,
    warmup=2.0,
    scenario_kwargs={"mean_spacing": 2.0},
)


def _run(**overrides):
    return run_badabing(**dict(RUN_KWARGS, **overrides))


# ---------------------------------------------------------------------------
# Episode classification
# ---------------------------------------------------------------------------

class TestEpisodeSlotRange:
    def test_maps_times_to_slots(self):
        episode = LossEpisode(1.2, 3.5, drops=4)
        assert episode_slot_range(episode, origin=0.0, slot_width=1.0) == (1, 3)

    def test_origin_shift(self):
        episode = LossEpisode(12.001, 12.009, drops=1)
        assert episode_slot_range(episode, origin=10.0, slot_width=0.005) == (400, 401)

    def test_point_episode_occupies_one_slot(self):
        episode = LossEpisode(2.5, 2.5, drops=1)
        assert episode_slot_range(episode, origin=0.0, slot_width=1.0) == (2, 2)

    def test_rejects_bad_slot_width(self):
        with pytest.raises(ConfigurationError):
            episode_slot_range(LossEpisode(0.0, 1.0, 1), origin=0.0, slot_width=0.0)


class TestAuditEpisodes:
    def _audit(self, episodes, probe_slots, congested=()):
        slot_states = {slot: slot in congested for slot in probe_slots}
        return audit_episodes(
            episodes, probe_slots, slot_states, origin=0.0, slot_width=1.0, n_slots=10
        )

    def test_classification(self):
        episodes = [
            LossEpisode(1.2, 3.5, drops=4),  # slots 1-3, probed+marked
            LossEpisode(5.1, 5.2, drops=1),  # slot 5, probed but unmarked
            LossEpisode(6.0, 6.9, drops=2),  # slot 6, never probed
        ]
        audits = self._audit(episodes, [1, 2, 5, 8], congested={1})
        assert [a.status for a in audits] == [
            EPISODE_DETECTED,
            EPISODE_PARTIAL,
            EPISODE_MISSED,
        ]
        assert audits[0].probed_slots == 2
        assert audits[0].congested_slots == 1
        assert audits[0].sampling_coverage == pytest.approx(2 / 3)
        assert audits[2].probed_slots == 0
        assert audits[2].sampling_coverage == 0.0

    def test_slots_clamped_to_window(self):
        episodes = [LossEpisode(-0.5, 0.2, drops=1), LossEpisode(9.5, 12.0, drops=1)]
        audits = self._audit(episodes, [0, 9], congested={0, 9})
        assert (audits[0].first_slot, audits[0].last_slot) == (0, 0)
        assert (audits[1].first_slot, audits[1].last_slot) == (9, 9)
        assert all(a.status == EPISODE_DETECTED for a in audits)

    def test_preserves_episode_metadata(self):
        audits = self._audit([LossEpisode(4.0, 4.5, drops=7)], [4])
        assert audits[0].drops == 7
        assert audits[0].duration == pytest.approx(0.5)


class TestRelativeError:
    def test_basic(self):
        assert relative_error(1.2, 1.0) == pytest.approx(0.2)

    def test_undefined_cases(self):
        assert relative_error(1.0, 0.0) is None
        assert relative_error(float("nan"), 1.0) is None
        assert relative_error(float("inf"), 1.0) is None


# ---------------------------------------------------------------------------
# Convergence telemetry
# ---------------------------------------------------------------------------

class TestConvergence:
    def test_points_fold_in_slot_order(self):
        outcomes = [
            ExperimentOutcome(4, (1, 0)),
            ExperimentOutcome(0, (0, 0)),
            ExperimentOutcome(2, (0, 1)),
        ]
        points = convergence_points(outcomes)
        assert [p.n_experiments for p in points] == [1, 2, 3]
        assert [p.end_slot for p in points] == [1, 3, 5]
        assert points[-1].frequency == pytest.approx(1 / 3)
        assert points[-1].transitions == 2

    def test_every_decimates_but_keeps_last(self):
        outcomes = [ExperimentOutcome(i, (0, 0)) for i in range(0, 20, 2)]
        points = convergence_points(outcomes, every=4)
        assert [p.n_experiments for p in points] == [4, 8, 10]

    def test_every_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            convergence_points([], every=0)

    def test_duration_none_without_transitions(self):
        points = convergence_points([ExperimentOutcome(0, (1, 1))])
        assert points[0].duration_slots is None


# ---------------------------------------------------------------------------
# Scorecard
# ---------------------------------------------------------------------------

class TestScorecard:
    def test_aggregates_and_failed_rows(self):
        result, _ = _run()
        audit = result.audit
        scorecard = scorecard_from_runs(
            [
                ("good", audit, None, 3),
                ("crashed", None, "SimulationError: boom", 4),
            ]
        )
        assert scorecard.n_runs == 2
        assert scorecard.n_ok == 1
        assert scorecard.mean_frequency_rel_error == audit.frequency_rel_error
        row = scorecard.rows[1]
        assert not row.ok and "boom" in row.error
        rendered = "\n".join(render_scorecard(scorecard.to_dict()))
        assert "good" in rendered and "FAILED" in rendered

    def test_empty_scorecard(self):
        scorecard = AccuracyScorecard()
        assert scorecard.n_runs == 0
        assert scorecard.mean_frequency_rel_error is None
        assert validate_audit_document(audit_document(scorecard)) == []

    def test_scorecard_from_sweep_outcomes(self):
        registry = MetricsRegistry()
        outcomes = sweep_badabing(
            [
                {"seed": 3, "label": "ok-cell"},
                {"seed": 4, "label": "doomed", "max_events": 500},
            ],
            metrics=registry,
            **{k: v for k, v in RUN_KWARGS.items() if k != "seed"},
        )
        scorecard = scorecard_from_outcomes(outcomes)
        assert [row.label for row in scorecard.rows] == ["ok-cell", "doomed"]
        assert [row.ok for row in scorecard.rows] == [True, False]
        assert scorecard.rows[0].acceptable is not None


# ---------------------------------------------------------------------------
# Run integration
# ---------------------------------------------------------------------------

class TestAuditRun:
    def test_audit_attached_and_consistent(self):
        registry = MetricsRegistry()
        result, truth = _run(metrics=registry)
        audit = result.audit
        assert audit is not None
        assert audit.tool == "badabing"
        assert audit.true_frequency == truth.frequency
        assert audit.est_frequency == result.frequency
        assert audit.n_episodes == truth.n_episodes
        counts = audit.episode_counts
        assert sum(counts.values()) == audit.n_episodes
        # Convergence folds every outcome exactly once.
        assert audit.convergence[-1].n_experiments == len(result.outcomes)
        assert len(audit.convergence) <= MAX_CONVERGENCE_POINTS + 1
        assert audit.validation["n_experiments"] == len(result.outcomes)

    def test_null_registry_skips_audit(self):
        result, _ = _run(metrics=NullRegistry())
        assert result.audit is None

    def test_publish_audit_metrics(self):
        registry = MetricsRegistry()
        result, _ = _run(metrics=registry)
        snapshot = registry.snapshot()
        counts = result.audit.episode_counts
        for status, count in counts.items():
            key = f"audit.episodes{{status={status},tool=badabing}}"
            assert snapshot["counters"].get(key, 0) == count
        assert "audit.f_hat{tool=badabing}" in snapshot["series"]
        assert "audit.violation_rate{tool=badabing}" in snapshot["series"]
        coverage_hist = snapshot["histograms"][
            "audit.episode_sampling_coverage{tool=badabing}"
        ]
        assert coverage_hist["count"] == result.audit.n_episodes

    def test_same_seed_byte_identical_documents(self):
        payloads = []
        for _ in range(2):
            result, _ = _run(metrics=MetricsRegistry())
            scorecard = scorecard_from_runs([("run", result.audit, None, 3)])
            document = audit_document(scorecard, runs=[result.audit])
            payloads.append(
                json.dumps(document, sort_keys=True, allow_nan=False)
            )
        assert payloads[0] == payloads[1]

    def test_document_validates_and_renders(self):
        result, _ = _run(metrics=MetricsRegistry())
        scorecard = scorecard_from_runs([("run", result.audit, None, 3)])
        document = audit_document(scorecard, runs=[result.audit])
        assert document["schema"] == AUDIT_SCHEMA
        assert validate_audit_document(document) == []
        rendered = render_audit(document)
        assert "accuracy scorecard" in rendered
        assert "validation" in rendered

    def test_validator_catches_corruption(self):
        result, _ = _run(metrics=MetricsRegistry())
        scorecard = scorecard_from_runs([("run", result.audit, None, 3)])
        document = audit_document(scorecard, runs=[result.audit])
        document["runs"][0]["episode_audit"]["counts"]["detected"] += 1
        document["runs"][0]["convergence"]["f_hat"].append(0.5)
        document["scorecard"]["n_runs"] = 99
        problems = validate_audit_document(document)
        assert any("counts do not add up" in p for p in problems)
        assert any("mismatched lengths" in p for p in problems)
        assert any("n_runs" in p for p in problems)

    def test_write_rejects_non_finite_values(self, tmp_path):
        document = audit_document(AccuracyScorecard())
        document["bad"] = float("nan")
        with pytest.raises(ObservabilityError):
            write_audit_document(tmp_path / "bad.json", document)


class TestCliAudit:
    def test_measure_audit_roundtrip(self, tmp_path, capsys):
        audit_path = tmp_path / "audit.json"
        code = main(
            [
                "measure", "episodic_cbr", "--slots", "1500", "--seed", "3",
                "--profile", "smoke", "--audit-out", str(audit_path),
            ]
        )
        assert code == 0
        assert audit_path.exists()
        capsys.readouterr()

        document = load_audit_document(audit_path)
        assert document["schema"] == AUDIT_SCHEMA

        assert main(["obs", "audit", str(audit_path)]) == 0
        assert "accuracy scorecard" in capsys.readouterr().out

        assert main(["obs", "audit", str(audit_path), "--json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["scorecard"]["n_runs"] == 1

        metrics_path = tmp_path / "metrics.json"
        code = main(
            [
                "measure", "episodic_cbr", "--slots", "1500", "--seed", "3",
                "--profile", "smoke", "--metrics-out", str(metrics_path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert (
            main(
                [
                    "obs", "validate", str(metrics_path),
                    "--audit", str(audit_path),
                ]
            )
            == 0
        )
        assert "validation OK" in capsys.readouterr().out

    def test_obs_validate_fails_on_corrupt_audit(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        main(
            [
                "measure", "episodic_cbr", "--slots", "1500", "--seed", "3",
                "--profile", "smoke", "--metrics-out", str(metrics_path),
            ]
        )
        capsys.readouterr()
        audit_path = tmp_path / "bad.json"
        audit_path.write_text(json.dumps({"schema": "wrong"}))
        assert (
            main(["obs", "validate", str(metrics_path), "--audit", str(audit_path)])
            == 1
        )
        assert "FAILED" in capsys.readouterr().err

    def test_obs_summary_json(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.jsonl"
        main(
            [
                "measure", "episodic_cbr", "--slots", "1500", "--seed", "3",
                "--profile", "smoke",
                "--metrics-out", str(metrics_path),
                "--trace-out", str(trace_path),
            ]
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "obs", "summary", str(metrics_path),
                    "--trace", str(trace_path), "--json",
                ]
            )
            == 0
        )
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["manifest"]["tool"] == "badabing"
        assert parsed["counters"]["probe.trains_sent{tool=badabing}"] > 0
        assert "sim.run" in parsed["spans"]
        # Heartbeat events mark simulated-time progress in the trace.
        heartbeats = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
            if '"sim.heartbeat"' in line
        ]
        assert heartbeats
        assert all(h["type"] == "event" for h in heartbeats)
