"""Tests for the ground-truth monitors (DAG-card equivalents)."""

import pytest

from repro.errors import ConfigurationError
from repro.net.monitor import QueueMonitor, QueueSampler
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.net.simulator import Simulator
from repro.units import mbps


def test_monitor_records_drops_with_protocol():
    sim = Simulator()
    queue = DropTailQueue(1500)
    monitor = QueueMonitor(sim)
    queue.attach(monitor)
    queue.offer(1.0, Packet("a", "b", 1500, protocol="tcp"))
    queue.offer(2.0, Packet("a", "b", 1500, protocol="probe"))
    assert monitor.total_drops == 1
    assert monitor.drops == [(2.0, "probe")]
    assert monitor.drop_times("probe") == [2.0]
    assert monitor.drop_times("tcp") == []
    assert monitor.drop_times() == [2.0]


def test_monitor_counters_and_loss_rate():
    sim = Simulator()
    queue = DropTailQueue(3000)
    monitor = QueueMonitor(sim)
    queue.attach(monitor)
    for _ in range(3):
        queue.offer(0.0, Packet("a", "b", 1500))
    queue.take(0.5)
    assert monitor.arrivals == 2
    assert monitor.departures == 1
    assert monitor.loss_rate == pytest.approx(1 / 3)


def test_down_crossings_detected():
    sim = Simulator()
    queue = DropTailQueue(3000)
    monitor = QueueMonitor(sim, high_water_bytes=2500)
    queue.attach(monitor)
    queue.offer(0.0, Packet("a", "b", 1500))
    queue.offer(0.1, Packet("a", "b", 1500))  # 3000 bytes: above high water
    queue.take(0.2)  # back to 1500: down-crossing at 0.2
    queue.offer(0.3, Packet("a", "b", 1500))  # up again
    queue.take(0.4)  # down again
    assert monitor.down_crossings == [0.2, 0.4]


def test_drop_forces_above_state():
    # A drop at a full queue implies high occupancy even if the threshold
    # was never crossed by an enqueue event.
    sim = Simulator()
    queue = DropTailQueue(1500)
    monitor = QueueMonitor(sim, high_water_bytes=1400)
    queue.attach(monitor)
    queue.offer(0.0, Packet("a", "b", 1400))  # 1400 >= 1400: above
    queue.offer(0.1, Packet("a", "b", 1500))  # dropped
    queue.take(0.2)
    assert monitor.down_crossings == [0.2]


def test_monitor_without_threshold_tracks_no_crossings():
    sim = Simulator()
    queue = DropTailQueue(3000)
    monitor = QueueMonitor(sim)
    queue.attach(monitor)
    queue.offer(0.0, Packet("a", "b", 1500))
    queue.take(0.1)
    assert monitor.down_crossings == []


def test_sampler_series_converts_to_seconds():
    sim = Simulator()
    queue = DropTailQueue(150_000)
    sampler = QueueSampler(sim, queue, mbps(12), interval=0.01)
    queue.offer(0.0, Packet("a", "b", 15_000))
    sim.run(until=0.05)
    times, delays = sampler.series()
    assert times == pytest.approx([0.0, 0.01, 0.02, 0.03, 0.04, 0.05])
    # 15,000 bytes at 12 Mb/s = 10 ms of queue.
    assert all(delay == pytest.approx(0.01) for delay in delays)


def test_sampler_validates_parameters():
    sim = Simulator()
    queue = DropTailQueue(1000)
    with pytest.raises(ConfigurationError):
        QueueSampler(sim, queue, mbps(12), interval=0)
    with pytest.raises(ConfigurationError):
        QueueSampler(sim, queue, 0, interval=0.01)
