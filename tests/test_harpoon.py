"""Tests for the Harpoon-like web traffic generator."""

import pytest

from repro.analysis.episodes import episodes_from_monitor
from repro.errors import ConfigurationError
from repro.net.simulator import Simulator
from repro.net.topology import DumbbellTestbed
from repro.traffic.harpoon import HarpoonWebTraffic


def build(seed=1, **kwargs):
    sim = Simulator(seed=seed)
    testbed = DumbbellTestbed(sim)
    defaults = dict(session_rate=2.0, surge_interval_mean=10.0)
    defaults.update(kwargs)
    traffic = HarpoonWebTraffic(
        sim, testbed.traffic_senders, testbed.traffic_receivers, **defaults
    )
    return sim, testbed, traffic


def test_sessions_arrive_at_configured_rate():
    sim, _testbed, traffic = build(surge_interval_mean=0.0)
    sim.run(until=60.0)
    # Poisson(2/s) over 60 s: ~120 sessions, allow wide tolerance.
    assert 80 <= traffic.sessions_started <= 170


def test_transfers_complete():
    sim, _testbed, traffic = build()
    sim.run(until=60.0)
    assert traffic.transfers_started > 0
    # Some flows may still be in flight; most must have completed.
    assert traffic.transfers_completed >= 0.8 * traffic.transfers_started


def test_file_sizes_are_heavy_tailed():
    sim, _testbed, traffic = build()
    sizes = [traffic._draw_file_size() for _ in range(4000)]
    assert min(sizes) >= traffic.min_file_bytes
    assert max(sizes) <= traffic.max_file_bytes
    mean = sum(sizes) / len(sizes)
    # Pareto(1.2) mean is ~6x the minimum even after truncation.
    assert mean > 3 * traffic.min_file_bytes
    # The tail matters: the top percentile dominates the median.
    sizes.sort()
    assert sizes[-40] > 5 * sizes[len(sizes) // 2]


def test_surges_occur_and_create_loss():
    sim, testbed, traffic = build(seed=5, surge_interval_mean=5.0)
    sim.run(until=60.0)
    assert traffic.surges >= 5
    assert len(episodes_from_monitor(testbed.monitor)) >= 2


def test_no_surges_when_disabled():
    sim, _testbed, traffic = build(surge_interval_mean=0.0)
    sim.run(until=30.0)
    assert traffic.surges == 0


def test_stop_halts_new_work():
    sim, _testbed, traffic = build()
    sim.run(until=10.0)
    traffic.stop()
    sessions = traffic.sessions_started
    transfers = traffic.transfers_started
    sim.run(until=30.0)
    assert traffic.sessions_started == sessions
    assert traffic.transfers_started == transfers


def test_mean_offered_load_reported():
    sim, _testbed, traffic = build()
    sim.run(until=30.0)
    assert traffic.mean_offered_load_bps > 0


def test_active_flow_accounting_balances():
    sim, _testbed, traffic = build()
    sim.run(until=20.0)
    traffic.stop()
    sim.run(until=120.0)  # let everything drain
    assert traffic.active_flows == traffic.transfers_started - traffic.transfers_completed
    assert traffic.active_flows == 0


def test_parameter_validation():
    sim = Simulator()
    testbed = DumbbellTestbed(sim)
    with pytest.raises(ConfigurationError):
        HarpoonWebTraffic(sim, [], testbed.traffic_receivers)
    with pytest.raises(ConfigurationError):
        HarpoonWebTraffic(
            sim, testbed.traffic_senders, testbed.traffic_receivers, session_rate=0
        )
    with pytest.raises(ConfigurationError):
        HarpoonWebTraffic(
            sim, testbed.traffic_senders, testbed.traffic_receivers, pareto_shape=1.0
        )


def test_deterministic_given_seed():
    sim_a, _t, traffic_a = build(seed=42)
    sim_a.run(until=20.0)
    sim_b, _t, traffic_b = build(seed=42)
    sim_b.run(until=20.0)
    assert traffic_a.transfers_started == traffic_b.transfers_started
    assert traffic_a.bytes_offered == traffic_b.bytes_offered
