"""Tests for the fault-injection subsystem and graceful degradation."""

import pytest

from repro.core.records import CoverageReport
from repro.errors import EstimationError, FaultInjectionError, SimulationError
from repro.experiments.runner import install_faults, run_badabing
from repro.net.faults import (
    FAULT_PROFILES,
    FaultInjector,
    FaultProfile,
    resolve_fault_profile,
)
from repro.net.link import Link
from repro.net.node import Host
from repro.net.packet import Packet
from repro.net.simulator import Simulator

RUN_KWARGS = dict(
    scenario="episodic_cbr",
    p=0.3,
    n_slots=1500,
    seed=3,
    warmup=2.0,
    scenario_kwargs={"mean_spacing": 2.0},
)


def _packet(n=0):
    return Packet(src="a", dst="b", size=100, protocol="t", port=n)


# ---------------------------------------------------------------------------
# FaultProfile validation and composition
# ---------------------------------------------------------------------------

def test_profile_rejects_bad_probabilities():
    with pytest.raises(FaultInjectionError):
        FaultProfile(drop_probability=1.5)
    with pytest.raises(FaultInjectionError):
        FaultProfile(duplicate_probability=-0.1)


def test_profile_rejects_half_configured_gilbert_and_flap():
    with pytest.raises(FaultInjectionError):
        FaultProfile(gilbert_b=0.1)
    with pytest.raises(FaultInjectionError):
        FaultProfile(flap_down=1.0)


def test_profile_rejects_inverted_outage_window():
    with pytest.raises(FaultInjectionError):
        FaultProfile(outage_windows=((5.0, 3.0),))


def test_noop_detection_and_resolution():
    assert FaultProfile().is_noop
    assert not FaultProfile(drop_probability=0.1).is_noop
    assert resolve_fault_profile(None) is None
    assert resolve_fault_profile("none") is None
    assert resolve_fault_profile(FaultProfile()) is None
    assert resolve_fault_profile("chaos") is FAULT_PROFILES["chaos"]
    with pytest.raises(FaultInjectionError):
        resolve_fault_profile("not-a-profile")


def test_named_profiles_all_valid():
    for name, profile in FAULT_PROFILES.items():
        assert isinstance(profile, FaultProfile), name
        assert profile.is_noop == (name == "none")


def test_shifted_moves_absolute_times():
    profile = FaultProfile(
        flap_down=1.0, flap_up=2.0, flap_start=3.0, outage_windows=((1.0, 2.0),)
    )
    shifted = profile.shifted(10.0)
    assert shifted.flap_start == 13.0
    assert shifted.outage_windows == ((11.0, 12.0),)
    # non-time fields untouched
    assert shifted.flap_down == 1.0 and shifted.flap_up == 2.0


# ---------------------------------------------------------------------------
# Impairments on a bare link
# ---------------------------------------------------------------------------

def _link_with_injector(profile, bandwidth=8e6, delay=0.01):
    sim = Simulator(seed=7)
    link = Link(sim, bandwidth, delay, name="test")
    got = []
    link.connect(lambda packet: got.append((sim.now, packet)))
    injector = FaultInjector(sim, profile, label="test").attach_to_link(link)
    return sim, link, injector, got


def test_noop_profile_draws_no_rng_and_delivers_everything():
    sim, link, injector, got = _link_with_injector(FaultProfile())
    assert injector._rng is None
    for i in range(20):
        link.send(_packet(i))
    sim.run()
    assert len(got) == 20
    assert injector.stats.delivered == 20
    assert injector.stats.dropped == 0


def test_random_drop_loses_packets():
    sim, link, injector, got = _link_with_injector(FaultProfile(drop_probability=0.5))
    for i in range(400):
        link.send(_packet(i))
    sim.run()
    assert injector.stats.dropped_random > 0
    assert len(got) == 400 - injector.stats.dropped_random


def test_gilbert_burst_drop_is_bursty():
    profile = FaultProfile(gilbert_b=0.05, gilbert_g=0.2, gilbert_drop=1.0)
    sim, link, injector, got = _link_with_injector(profile)
    for i in range(2000):
        link.send(_packet(i))
    sim.run()
    assert injector.stats.dropped_burst > 0
    # losses with drop=1.0 in-state come in runs: fewer distinct loss runs
    # than lost packets.
    delivered_ports = [packet.port for _, packet in got]
    lost = sorted(set(range(2000)) - set(delivered_ports))
    runs = 1 + sum(1 for a, b in zip(lost, lost[1:]) if b != a + 1)
    assert runs < len(lost)


def test_duplication_delivers_extra_copies():
    sim, link, injector, got = _link_with_injector(
        FaultProfile(duplicate_probability=0.5)
    )
    for i in range(100):
        link.send(_packet(i))
    sim.run()
    assert injector.stats.duplicated > 0
    assert len(got) == 100 + injector.stats.duplicated


def test_reordering_swaps_arrival_order():
    profile = FaultProfile(reorder_probability=0.3, reorder_delay=0.05)
    sim, link, injector, got = _link_with_injector(profile, bandwidth=80e6)
    for i in range(200):
        link.send(_packet(i))
    sim.run()
    assert injector.stats.reordered > 0
    assert len(got) == 200  # reordering never loses packets
    arrival_ports = [packet.port for _, packet in got]
    assert arrival_ports != sorted(arrival_ports)


def test_flap_schedule_is_arithmetic_and_deterministic():
    profile = FaultProfile(flap_down=1.0, flap_up=3.0, flap_start=10.0)
    sim = Simulator(seed=1)
    injector = FaultInjector(sim, profile)
    assert injector._rng is None  # flap needs no randomness
    assert not injector.link_down(9.99)
    assert injector.link_down(10.0)
    assert injector.link_down(10.999)
    assert not injector.link_down(11.0)
    assert not injector.link_down(13.999)
    assert injector.link_down(14.0)  # next cycle


def test_flap_drops_in_flight_packets():
    profile = FaultProfile(flap_down=100.0, flap_up=1.0, flap_start=0.0)
    sim, link, injector, got = _link_with_injector(profile)
    for i in range(10):
        link.send(_packet(i))
    sim.run()
    assert got == []
    assert injector.stats.dropped_flap == 10


def test_same_seed_same_profile_is_bit_identical():
    results = []
    for _ in range(2):
        sim, link, injector, got = _link_with_injector(FAULT_PROFILES["chaos"])
        for i in range(500):
            link.send(_packet(i))
        sim.run()
        results.append(
            (injector.stats.as_dict(), [(t, p.port) for t, p in got])
        )
    assert results[0] == results[1]


# ---------------------------------------------------------------------------
# Host-side collector outages
# ---------------------------------------------------------------------------

def test_host_inbound_filter_counts_outage_drops():
    sim = Simulator(seed=1)
    host = Host(sim, "h")
    seen = []
    host.bind("t", 1, seen.append)
    injector = FaultInjector(
        sim, FaultProfile(outage_windows=((1.0, 2.0),))
    ).attach_to_host(host)
    packet = Packet(src="x", dst="h", size=10, protocol="t", port=1)
    sim.schedule_at(0.5, host.receive, packet)
    sim.schedule_at(1.5, host.receive, packet)
    sim.schedule_at(2.5, host.receive, packet)
    sim.run()
    assert len(seen) == 2
    assert host.filtered_inbound == 1
    assert injector.stats.dropped_outage == 1


# ---------------------------------------------------------------------------
# End-to-end degradation through the runner
# ---------------------------------------------------------------------------

def test_faults_none_is_bit_identical_to_clean_run():
    clean, truth_clean = run_badabing(**RUN_KWARGS)
    nofault, truth_nofault = run_badabing(faults="none", **RUN_KWARGS)
    assert clean.frequency == nofault.frequency
    assert clean.estimate.counts == nofault.estimate.counts
    assert clean.probes == nofault.probes
    assert truth_clean.frequency == truth_nofault.frequency


def test_chaos_profile_runs_and_reports_injections():
    keep = {}
    result, _truth = run_badabing(faults="chaos", keep=keep, **RUN_KWARGS)
    injector = keep["fault_injector"]
    assert injector.stats.total_injected > 0
    assert result.coverage is not None
    assert 0.0 <= result.coverage.slot_fraction <= 1.0
    # The estimate survived duplicated/reordered/partial logs.
    assert 0.0 <= result.frequency <= 1.0


def test_duplicates_are_discarded_keeping_first_arrival():
    keep = {}
    result, _ = run_badabing(faults="duplicate", keep=keep, **RUN_KWARGS)
    assert keep["fault_injector"].stats.duplicated > 0
    assert result.duplicate_arrivals > 0
    # each probe record still has at most n_packets deliveries
    for probe in result.probes:
        assert len(probe.owds) <= probe.n_packets


def test_outage_degrades_coverage_not_estimate():
    profile = FaultProfile(outage_windows=((3.0, 5.0),))
    keep = {}
    result, _ = run_badabing(faults=profile, keep=keep, **RUN_KWARGS)
    assert keep["fault_injector"].stats.dropped_outage > 0
    assert result.coverage.slot_fraction < 1.0
    assert not result.coverage.complete
    assert result.validation.coverage is result.coverage


def test_total_outage_raises_estimation_error_with_coverage():
    profile = FaultProfile(outage_windows=((0.0, 1e6),))
    with pytest.raises(EstimationError) as excinfo:
        run_badabing(faults=profile, **RUN_KWARGS)
    assert "coverage" in str(excinfo.value)


def test_event_budget_exhaustion_raises_simulation_error():
    with pytest.raises(SimulationError) as excinfo:
        run_badabing(max_events=200, **RUN_KWARGS)
    assert "budget exhausted" in str(excinfo.value)


def test_install_faults_returns_none_for_noop():
    from repro.experiments.runner import build_testbed

    sim, testbed = build_testbed(seed=1)
    assert install_faults(sim, testbed, None) is None
    assert install_faults(sim, testbed, "none") is None
    assert install_faults(sim, testbed, "mild") is not None


# ---------------------------------------------------------------------------
# CoverageReport semantics
# ---------------------------------------------------------------------------

def test_coverage_report_fractions():
    report = CoverageReport(
        scheduled_slots=10, usable_slots=5,
        scheduled_experiments=4, usable_experiments=1,
    )
    assert report.slot_fraction == 0.5
    assert report.experiment_fraction == 0.25
    assert not report.complete
    assert "50.0%" in report.describe()


def test_coverage_report_empty_plan_is_complete():
    report = CoverageReport(0, 0, 0, 0)
    assert report.slot_fraction == 1.0
    assert report.experiment_fraction == 1.0
    assert report.complete


def test_coverage_report_rejects_inconsistent_counts():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        CoverageReport(5, 6, 2, 2)
    with pytest.raises(ConfigurationError):
        CoverageReport(5, 5, 2, 3)
