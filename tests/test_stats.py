"""Tests for the statistics helpers."""

import math

import pytest

from repro.analysis.stats import SummaryStats, mean_std, summarize


def test_mean_std_basic():
    mean, std = mean_std([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
    assert mean == pytest.approx(5.0)
    assert std == pytest.approx(2.0)


def test_mean_std_empty_matches_paper_zero_reporting():
    assert mean_std([]) == (0.0, 0.0)


def test_mean_std_single_value():
    assert mean_std([3.5]) == (3.5, 0.0)


def test_summarize():
    summary = summarize([1.0, 2.0, 3.0])
    assert summary.n == 3
    assert summary.mean == pytest.approx(2.0)
    assert summary.minimum == 1.0
    assert summary.maximum == 3.0


def test_summarize_empty():
    summary = summarize([])
    assert summary == SummaryStats(0, 0.0, 0.0, 0.0, 0.0)
    assert summary.stderr() == 0.0


def test_stderr_and_ci():
    values = [1.0] * 100
    summary = summarize(values)
    assert summary.stderr() == 0.0
    low, high = summary.ci95()
    assert low == high == 1.0


def test_ci_width_shrinks_with_n():
    wide = summarize([0.0, 1.0] * 5)
    narrow = summarize([0.0, 1.0] * 500)
    assert (wide.ci95()[1] - wide.ci95()[0]) > (narrow.ci95()[1] - narrow.ci95()[0])


def test_stderr_formula():
    summary = summarize([0.0, 2.0])
    assert summary.std == pytest.approx(1.0)
    assert summary.stderr() == pytest.approx(1.0 / math.sqrt(2))
