"""Tests for the streaming telemetry exporter and alert-rule engine.

Covers the NDJSON snapshot writer (rotation, truncation tolerance),
export-record/file validation, the Prometheus-style exposition renderer,
the asyncio HTTP endpoint, the NullRegistry zero-cost gate, the alert
engine's four rule kinds with debounce and transitions, the determinism
contract (monitored-registry digests are byte-identical with and without
export), and flush-on-degradation (a budget-exhausted fleet soak still
leaves a schema-valid stream ending in a ``final`` record).
"""

import asyncio
import json
import threading

import pytest

from repro.config import BadabingConfig, MarkingConfig, ProbeConfig
from repro.errors import ObservabilityError
from repro.experiments.runner import RunBudget
from repro.live.fleet import run_fleet_loopback
from repro.obs.alerts import (
    ALERT_RULES_SCHEMA,
    AlertRule,
    AlertRules,
    default_fleet_rules,
    load_alert_rules,
    lookup_metric,
    validate_rules_document,
    write_alert_rules,
)
from repro.obs.export import (
    EXPORT_SCHEMA,
    SESSIONS_SCHEMA,
    SnapshotWriter,
    TelemetryExporter,
    parse_key,
    read_export_records,
    render_exposition,
    rollup_sessions,
    sessions_document,
    validate_export_file,
    validate_export_record,
)
from repro.obs.metrics import (
    MetricsRegistry,
    NullRegistry,
    render_key,
    snapshot_digest,
)
from repro.obs.schema import validate_snapshot
from repro.obs.tracing import Tracer


def populated_registry():
    reg = MetricsRegistry()
    reg.counter("live.probes_received", role="reflector").inc(7)
    reg.counter("queue.drops", queue="q1", cause="overflow").inc(3)
    reg.gauge("live.sessions_active").set(2)
    hist = reg.histogram("live.timing_error_seconds", buckets=(0.001, 0.01, 0.1))
    hist.observe(0.0005)
    hist.observe(0.05)
    series = reg.series("audit.f_hat", session="session[0]")
    series.append(0.0, 0.30)
    series.append(1.0, 0.31)
    return reg


# ------------------------------------------------------------ SnapshotWriter
class TestSnapshotWriter:
    def test_appends_one_flushed_line_per_record(self, tmp_path):
        path = tmp_path / "out.ndjson"
        writer = SnapshotWriter(path)
        writer.write({"seq": 1})
        writer.write({"seq": 2})
        lines = path.read_text().splitlines()
        assert [json.loads(line)["seq"] for line in lines] == [1, 2]
        assert writer.records_written == 2
        writer.close()
        assert writer.closed

    def test_creates_missing_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "out.ndjson"
        writer = SnapshotWriter(path)
        writer.write({"seq": 1})
        writer.close()
        assert path.exists()

    def test_rotation_bounds_the_live_file(self, tmp_path):
        path = tmp_path / "out.ndjson"
        writer = SnapshotWriter(path, max_bytes=4096)
        payload = "x" * 1000
        for seq in range(1, 11):
            writer.write({"seq": seq, "pad": payload})
        writer.close()
        assert writer.rotations >= 1
        assert path.stat().st_size <= 4096
        # The previous generation holds the records rotated out.
        spill = tmp_path / "out.ndjson.1"
        assert spill.exists()
        total = len(path.read_text().splitlines()) + len(
            spill.read_text().splitlines()
        )
        assert total >= 4  # both generations together keep the recent window

    def test_close_is_idempotent_and_write_after_close_is_noop(self, tmp_path):
        path = tmp_path / "out.ndjson"
        writer = SnapshotWriter(path)
        writer.write({"seq": 1})
        writer.close()
        writer.close()
        writer.write({"seq": 2})  # silently dropped
        assert len(path.read_text().splitlines()) == 1

    def test_tiny_max_bytes_rejected(self, tmp_path):
        with pytest.raises(ObservabilityError):
            SnapshotWriter(tmp_path / "out.ndjson", max_bytes=100)

    def test_unwritable_parent_is_structured_error(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        with pytest.raises(ObservabilityError):
            SnapshotWriter(blocker / "out.ndjson")


# ------------------------------------------------------------ export records
class TestExportRecords:
    def test_export_now_builds_a_valid_record(self, tmp_path):
        reg = populated_registry()
        path = tmp_path / "soak.ndjson"
        exporter = TelemetryExporter(reg, path=path, meta={"tool": "test"})
        record = exporter.export_now(kind="manual", cell="grid[0]")
        assert record["schema"] == EXPORT_SCHEMA
        assert record["seq"] == 1
        assert record["kind"] == "manual"
        assert record["context"] == {"cell": "grid[0]"}
        assert record["meta"] == {"tool": "test"}
        assert record["digest"] == snapshot_digest(reg.snapshot())
        assert validate_export_record(record) == []
        second = exporter.export_now()
        assert second["seq"] == 2
        exporter.close()
        records = read_export_records(path)
        assert [r["seq"] for r in records] == [1, 2, 3]
        assert records[-1]["kind"] == "final"
        assert validate_export_file(path) == []

    def test_unknown_kind_rejected(self):
        exporter = TelemetryExporter(MetricsRegistry())
        with pytest.raises(ObservabilityError):
            exporter.export_now(kind="surprise")

    def test_bad_interval_rejected(self):
        with pytest.raises(ObservabilityError):
            TelemetryExporter(MetricsRegistry(), interval=0.0)

    def test_export_bookkeeping_stays_off_the_monitored_registry(self):
        reg = populated_registry()
        exporter = TelemetryExporter(reg)
        exporter.export_now()
        monitored = reg.snapshot()
        assert not any(k.startswith("export.") for k in monitored["counters"])
        own = exporter.own.snapshot()
        assert own["counters"]["export.records{kind=manual}"] == 1

    def test_validate_export_record_flags_tampering(self):
        exporter = TelemetryExporter(populated_registry())
        record = exporter.export_now()
        assert validate_export_record(record) == []
        tampered = dict(record)
        tampered["digest"] = "0" * 64
        assert any("digest" in p for p in validate_export_record(tampered))
        assert any(
            "seq" in p for p in validate_export_record({**record, "seq": 0})
        )
        assert any(
            "kind" in p for p in validate_export_record({**record, "kind": "x"})
        )
        missing = {k: v for k, v in record.items() if k != "metrics"}
        assert any("metrics" in p for p in validate_export_record(missing))

    def test_validate_export_file_flags_seq_regression(self, tmp_path):
        exporter = TelemetryExporter(populated_registry())
        record = exporter.export_now()
        path = tmp_path / "soak.ndjson"
        with open(path, "w") as handle:
            for seq in (1, 1):
                handle.write(json.dumps({**record, "seq": seq}) + "\n")
        assert any("not greater" in p for p in validate_export_file(path))

    def test_truncated_final_line_is_tolerated(self, tmp_path):
        reg = populated_registry()
        path = tmp_path / "soak.ndjson"
        exporter = TelemetryExporter(reg, path=path)
        exporter.export_now()
        exporter.export_now()
        exporter.close()
        with open(path, "a") as handle:
            handle.write('{"schema": "repro.obs.exp')  # killed mid-write
        records = read_export_records(path)
        assert [r["seq"] for r in records] == [1, 2, 3]
        assert validate_export_file(path) == []

    def test_truncation_mid_file_is_an_error(self, tmp_path):
        path = tmp_path / "soak.ndjson"
        path.write_text('{"broken\n{"seq": 1}\n')
        with pytest.raises(ObservabilityError):
            read_export_records(path)

    def test_empty_file_fails_validation(self, tmp_path):
        path = tmp_path / "soak.ndjson"
        path.write_text("")
        assert any("no export records" in p for p in validate_export_file(path))


# ----------------------------------------------------------- NullRegistry gate
class TestNullRegistryGate:
    def test_everything_is_a_noop(self, tmp_path):
        path = tmp_path / "soak.ndjson"
        exporter = TelemetryExporter(
            NullRegistry(), path=path, http_port=0, rules=default_fleet_rules()
        )
        assert not exporter.enabled
        assert exporter.export_now() is None
        assert exporter.start_thread() is exporter
        assert exporter._thread is None
        exporter.close()
        assert not path.exists()
        assert exporter.seq == 0
        assert isinstance(exporter.own, NullRegistry)

    def test_async_start_stop_are_noops(self):
        async def scenario():
            exporter = TelemetryExporter(NullRegistry(), http_port=0)
            await exporter.start()
            assert exporter._server is None and exporter._task is None
            await exporter.stop()

        asyncio.run(scenario())


# ----------------------------------------------------------------- exposition
class TestExposition:
    def test_renders_all_instrument_kinds(self):
        reg = populated_registry()
        text = render_exposition(reg)
        assert text.endswith("\n")
        assert "# TYPE repro_live_probes_received counter" in text
        assert 'repro_live_probes_received{role="reflector"} 7' in text
        assert "# TYPE repro_live_sessions_active gauge" in text
        assert "repro_live_sessions_active 2" in text
        assert "repro_live_sessions_active_peak 2" in text
        # Histogram buckets are cumulative and close with +Inf/_sum/_count.
        assert 'repro_live_timing_error_seconds_bucket{le="0.001"} 1' in text
        assert 'repro_live_timing_error_seconds_bucket{le="0.1"} 2' in text
        assert 'repro_live_timing_error_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_live_timing_error_seconds_count 2" in text
        # Series render as last-value gauges plus a sample count.
        assert 'repro_audit_f_hat{session="session[0]"} 0.31' in text
        assert 'repro_audit_f_hat_samples{session="session[0]"} 2' in text

    def test_type_lines_not_repeated_per_label_set(self):
        reg = MetricsRegistry()
        reg.counter("drops", queue="a").inc()
        reg.counter("drops", queue="b").inc()
        text = render_exposition(reg)
        assert text.count("# TYPE repro_drops counter") == 1

    def test_own_registry_appended(self):
        reg = populated_registry()
        exporter = TelemetryExporter(reg)
        exporter.export_now()
        text = render_exposition(reg, exporter.own)
        assert 'repro_export_records{kind="manual"} 1' in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("odd", note='say "hi"\\now').inc()
        text = render_exposition(reg)
        assert 'note="say \\"hi\\"\\\\now"' in text


# -------------------------------------------------------------------- rollups
class TestRollups:
    def test_parse_key_inverts_render_key(self):
        key = render_key(
            "audit.f_hat", (("role", "sender"), ("session", "session[3]"))
        )
        name, labels = parse_key(key)
        assert name == "audit.f_hat"
        assert labels == {"session": "session[3]", "role": "sender"}
        assert parse_key("bare") == ("bare", {})

    def test_rollup_groups_by_session_label(self):
        reg = MetricsRegistry()
        for index, f in ((0, 0.30), (1, 0.35)):
            series = reg.series("audit.f_hat", session=f"session[{index}]")
            series.append(1.0, f)
            series.append(2.0, f)  # steady: delta 0
            d = reg.series("audit.d_hat_seconds", session=f"session[{index}]")
            d.append(2.0, 0.05)
        rows = rollup_sessions(reg.snapshot())
        assert [row["label"] for row in rows] == ["session[0]", "session[1]"]
        assert rows[0]["f_hat"] == 0.30
        assert rows[0]["f_delta"] == 0.0
        assert rows[0]["d_hat_seconds"] == 0.05
        assert rows[0]["samples"] == 2
        assert rows[0]["last_t"] == 2.0

    def test_ungrouped_frequency_folds_into_run_row(self):
        reg = MetricsRegistry()
        reg.series("live.frequency", role="sender").append(1.0, 0.25)
        rows = rollup_sessions(reg.snapshot())
        assert len(rows) == 1
        assert rows[0]["label"] == "run"
        assert rows[0]["f_hat"] == 0.25

    def test_sessions_document_shape(self):
        reg = populated_registry()
        document = sessions_document(reg.snapshot(), seq=4, uptime=2.0, wall=9.0)
        assert document["schema"] == SESSIONS_SCHEMA
        assert document["drops"] == {"overflow": 3}
        assert document["counters"]["live.probes_received"] == 7
        assert document["gauges"]["live.sessions_active"] == 2
        assert document["sessions"][0]["label"] == "session[0]"


# ----------------------------------------------------------------- HTTP serve
async def _http(port, target, method="GET"):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"{method} {target} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
    await writer.drain()
    data = await asyncio.wait_for(reader.read(), timeout=5.0)
    writer.close()
    await writer.wait_closed()
    head, _, body = data.partition(b"\r\n\r\n")
    return head.split(b"\r\n")[0].decode(), body.decode()


class TestHttpEndpoint:
    def test_metrics_healthz_sessions_routes(self):
        async def scenario():
            reg = populated_registry()
            exporter = TelemetryExporter(
                reg, http_port=0, meta={"tool": "unit"}, interval=30.0
            )
            await exporter.start()
            try:
                assert exporter.http_port != 0  # ephemeral port resolved
                status, body = await _http(exporter.http_port, "/metrics")
                assert status.startswith("HTTP/1.1 200")
                assert "repro_live_probes_received" in body
                assert "repro_export_scrapes" in body  # own registry appended
                status, body = await _http(exporter.http_port, "/healthz")
                health = json.loads(body)
                assert health["status"] == "ok"
                assert health["meta"] == {"tool": "unit"}
                status, body = await _http(exporter.http_port, "/sessions")
                document = json.loads(body)
                assert document["schema"] == SESSIONS_SCHEMA
                assert document["sessions"][0]["label"] == "session[0]"
                status, body = await _http(exporter.http_port, "/nope")
                assert status.startswith("HTTP/1.1 404")
                assert "/metrics" in body
                status, _ = await _http(exporter.http_port, "/metrics", "POST")
                assert status.startswith("HTTP/1.1 405")
            finally:
                await exporter.stop()
            assert exporter.closed

        asyncio.run(scenario())

    def test_periodic_task_emits_records(self, tmp_path):
        async def scenario():
            reg = populated_registry()
            path = tmp_path / "soak.ndjson"
            exporter = TelemetryExporter(reg, interval=0.02, path=path)
            await exporter.start()
            await asyncio.sleep(0.15)
            await exporter.stop()
            return path

        path = asyncio.run(scenario())
        records = read_export_records(path)
        kinds = [r["kind"] for r in records]
        assert kinds.count("periodic") >= 2
        assert kinds[-1] == "final"
        assert validate_export_file(path) == []


# ------------------------------------------------------------------- alerting
def snap(counters=None, gauges=None, series=None, histograms=None):
    return {
        "counters": counters or {},
        "gauges": {k: {"value": v, "peak": v} for k, v in (gauges or {}).items()},
        "series": series or {},
        "histograms": histograms or {},
    }


class TestLookupMetric:
    def test_exact_labeled_key(self):
        s = snap(counters={"drops{cause=overflow}": 3})
        assert lookup_metric(s, "drops{cause=overflow}") == 3

    def test_bare_name_sums_variants(self):
        s = snap(counters={"drops{cause=a}": 3, "drops{cause=b}": 4, "other": 9})
        assert lookup_metric(s, "drops") == 7

    def test_gauge_series_histogram_resolution(self):
        s = snap(
            gauges={"depth": 5},
            series={"f": {"times": [1.0], "values": [0.25]}},
            histograms={"h": {"count": 11, "sum": 1.0, "buckets": [], "counts": []}},
        )
        assert lookup_metric(s, "depth") == 5
        assert lookup_metric(s, "f") == 0.25
        assert lookup_metric(s, "h") == 11

    def test_missing_metric_is_none(self):
        assert lookup_metric(snap(), "ghost") is None


class TestAlertRules:
    def test_value_rule_fires_and_resolves_with_transitions(self):
        own = MetricsRegistry()
        tracer = Tracer(shard="test")
        engine = AlertRules(
            [AlertRule(name="deep", metric="depth", op=">", threshold=10.0)],
            registry=own,
            tracer=tracer,
        )
        assert engine.evaluate(snap(gauges={"depth": 5}), wall=1.0) == []
        events = engine.evaluate(snap(gauges={"depth": 20}), wall=2.0)
        assert [(e.rule, e.state) for e in events] == [("deep", "firing")]
        assert engine.active == ["deep"]
        assert own.gauge("live.alerts_active").value == 1.0
        events = engine.evaluate(snap(gauges={"depth": 3}), wall=3.0)
        assert [(e.rule, e.state) for e in events] == [("deep", "resolved")]
        assert engine.active == []
        assert own.gauge("live.alerts_active").value == 0.0
        own_snapshot = own.snapshot()
        assert own_snapshot["counters"]["alerts.events{rule=deep,state=firing}"] == 1
        assert own_snapshot["counters"]["alerts.events{rule=deep,state=resolved}"] == 1
        names = [span["name"] for span in tracer.spans]
        assert "alert.fired" in names and "alert.resolved" in names

    def test_for_intervals_debounces(self):
        engine = AlertRules(
            [AlertRule(name="d", metric="g", threshold=1.0, for_intervals=3)]
        )
        breach = snap(gauges={"g": 5})
        assert engine.evaluate(breach, 1.0) == []
        assert engine.evaluate(breach, 2.0) == []
        assert [e.state for e in engine.evaluate(breach, 3.0)] == ["firing"]
        # A single recovery resets the debounce counter.
        engine.evaluate(snap(gauges={"g": 0}), 4.0)
        assert engine.evaluate(breach, 5.0) == []

    def test_rate_rule_uses_delta_per_second(self):
        engine = AlertRules(
            [AlertRule(name="errs", metric="wire", kind="rate", threshold=0.0)]
        )
        assert engine.evaluate(snap(counters={"wire": 0}), 0.0) == []  # no baseline
        assert engine.evaluate(snap(counters={"wire": 0}), 1.0) == []  # rate 0
        events = engine.evaluate(snap(counters={"wire": 5}), 2.0)
        assert [e.state for e in events] == ["firing"]
        assert events[0].value == 5.0

    def test_ratio_rule_division_edges(self):
        engine = AlertRules(
            [
                AlertRule(
                    name="rej",
                    metric="rejected",
                    kind="ratio",
                    denominator="admitted",
                    threshold=0.5,
                )
            ]
        )
        # 0/0 counts as 0: no breach.
        assert engine.evaluate(snap(counters={"rejected": 0, "admitted": 0}), 1.0) == []
        # x/0 is infinite: fires.
        events = engine.evaluate(snap(counters={"rejected": 3, "admitted": 0}), 2.0)
        assert [e.state for e in events] == ["firing"]
        # Below the ratio: resolves.
        events = engine.evaluate(
            snap(counters={"rejected": 3, "admitted": 10}), 3.0
        )
        assert [e.state for e in events] == ["resolved"]

    def test_stale_rule_fires_when_metric_stops_advancing(self):
        engine = AlertRules(
            [AlertRule(name="stall", metric="f", kind="stale", threshold=5.0)]
        )
        moving = lambda v: snap(series={"f": {"times": [1.0], "values": [v]}})
        assert engine.evaluate(moving(0.1), 0.0) == []
        assert engine.evaluate(moving(0.2), 4.0) == []
        assert engine.evaluate(moving(0.2), 8.0) == []  # stale 4s < 5s
        events = engine.evaluate(moving(0.2), 10.0)  # stale 6s
        assert [e.state for e in events] == ["firing"]
        events = engine.evaluate(moving(0.3), 11.0)  # advanced again
        assert [e.state for e in events] == ["resolved"]

    def test_missing_metric_never_breaches(self):
        engine = AlertRules([AlertRule(name="g", metric="ghost", threshold=-1.0)])
        assert engine.evaluate(snap(), 1.0) == []
        assert engine.active == []

    def test_state_document_carries_metric_for_row_matching(self):
        engine = AlertRules(
            [AlertRule(name="a", metric="f{session=session[1]}", threshold=0.0)]
        )
        engine.evaluate(
            snap(series={"f{session=session[1]}": {"times": [1.0], "values": [1.0]}}),
            2.0,
        )
        (state,) = engine.state_document()
        assert state["firing"] is True
        assert state["metric"] == "f{session=session[1]}"
        assert state["since"] == 2.0

    def test_duplicate_names_rejected(self):
        rule = AlertRule(name="x", metric="m")
        with pytest.raises(ObservabilityError):
            AlertRules([rule, rule])

    def test_rule_validation(self):
        with pytest.raises(ObservabilityError):
            AlertRule(name="", metric="m")
        with pytest.raises(ObservabilityError):
            AlertRule(name="x", metric="m", kind="median")
        with pytest.raises(ObservabilityError):
            AlertRule(name="x", metric="m", op="~")
        with pytest.raises(ObservabilityError):
            AlertRule(name="x", metric="m", kind="ratio")  # no denominator
        with pytest.raises(ObservabilityError):
            AlertRule(name="x", metric="m", for_intervals=0)
        with pytest.raises(ObservabilityError):
            AlertRule.from_dict({"name": "x", "metric": "m", "colour": "red"})

    def test_rules_file_round_trip(self, tmp_path):
        path = tmp_path / "rules" / "fleet.json"
        rules = default_fleet_rules(convergence_deadline=9.0)
        write_alert_rules(path, rules)
        loaded = load_alert_rules(path)
        assert loaded == rules
        document = json.loads(path.read_text())
        assert document["schema"] == ALERT_RULES_SCHEMA
        assert validate_rules_document(document) == []

    def test_load_rejects_bad_documents(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "nope", "rules": []}))
        with pytest.raises(ObservabilityError):
            load_alert_rules(path)
        path.write_text("{not json")
        with pytest.raises(ObservabilityError):
            load_alert_rules(path)


# ------------------------------------------------------- determinism contract
class TestDeterminismContract:
    def test_digest_identical_with_and_without_exporter(self):
        def drive(reg, exporter=None):
            for step in range(50):
                reg.counter("live.probes_received", role="sender").inc()
                reg.series("audit.f_hat").append(float(step), 0.3)
                if exporter is not None and step % 10 == 0:
                    exporter.export_now(kind="progress", step=step)
            return snapshot_digest(reg.snapshot())

        bare = MetricsRegistry()
        watched = MetricsRegistry()
        exporter = TelemetryExporter(
            watched, rules=default_fleet_rules(), meta={"tool": "t"}
        )
        digest_bare = drive(bare)
        digest_watched = drive(watched, exporter)
        exporter.close()
        assert digest_bare == digest_watched
        assert snapshot_digest(watched.snapshot()) == digest_bare

    def test_quiescent_registry_digests_are_stable(self):
        reg = populated_registry()
        digests = {snapshot_digest(reg.snapshot()) for _ in range(5)}
        assert len(digests) == 1


# ------------------------------------------------- concurrency + degradation
class TestExporterConcurrency:
    def test_thread_mode_snapshots_stay_consistent_under_load(self, tmp_path):
        """Exporter thread snapshots while the run mutates and merges."""
        reg = MetricsRegistry()
        path = tmp_path / "soak.ndjson"
        exporter = TelemetryExporter(reg, interval=0.01, path=path)
        exporter.start_thread()
        for round_number in range(40):
            shard = MetricsRegistry()
            shard.counter("live.probes_received", role="sender").inc(3)
            shard.gauge("live.sessions_active").set(round_number)
            hist = shard.histogram("live.timing_error_seconds")
            hist.observe(0.001 * round_number)
            series = shard.series("audit.f_hat", session=f"session[{round_number % 4}]")
            series.append(float(round_number), 0.3)
            reg.merge(shard, series_labels={"session": f"session[{round_number % 4}]"})
        exporter.close()
        assert validate_export_file(path) == []
        records = read_export_records(path)
        assert records[-1]["kind"] == "final"
        # Every mid-run snapshot must be self-consistent, not just the final.
        for record in records:
            assert validate_snapshot(record["metrics"]) == []

    def test_hot_path_writes_race_snapshots_cleanly(self):
        reg = MetricsRegistry()
        stop = threading.Event()

        def hammer():
            step = 0
            while not stop.is_set():
                reg.counter("live.probes_received", role="sender").inc()
                reg.histogram("live.timing_error_seconds").observe(0.001)
                reg.series("audit.f_hat").append(float(step), 0.3)
                reg.gauge("live.sessions_active").set(step)
                step += 1

        worker = threading.Thread(target=hammer, daemon=True)
        worker.start()
        try:
            exporter = TelemetryExporter(reg)
            for _ in range(50):
                record = exporter.export_now()
                assert validate_export_record(record) == []
        finally:
            stop.set()
            worker.join(timeout=5.0)

    def test_budget_exhausted_fleet_soak_still_flushes_final_record(self, tmp_path):
        """Flush-on-degradation: a soak whose sessions all blow their
        event budget must still leave a schema-valid stream ending in a
        ``final`` record (no truncation, no missing close)."""
        config = BadabingConfig(
            probe=ProbeConfig(slot=0.005, probe_size=64, packets_per_probe=3),
            marking=MarkingConfig(tau=0.0),
            p=0.4,
            n_slots=60,
        )
        registry = MetricsRegistry()
        path = tmp_path / "degraded.ndjson"
        exporter = TelemetryExporter(
            registry, interval=0.05, path=path, rules=default_fleet_rules()
        )

        async def scenario():
            return await run_fleet_loopback(
                config,
                n_sessions=2,
                base_seed=5,
                registry=registry,
                budget=RunBudget(max_events=5, max_attempts=1),
                exporter=exporter,
            )

        soak = asyncio.run(scenario())
        exporter.close()  # the CLI's finally; idempotent after stop()
        assert any(
            outcome.budget_exhausted or not outcome.ok for outcome in soak.outcomes
        )
        assert exporter.closed
        assert validate_export_file(path) == []
        records = read_export_records(path)
        assert records[-1]["kind"] == "final"
