"""Tests for the virtual observation channel (§5 assumptions)."""

import random

import pytest

from repro.core.records import ExperimentOutcome
from repro.core.schedule import Experiment
from repro.errors import ConfigurationError
from repro.synthetic.observer import VirtualObserver


def test_clear_windows_always_reported_faithfully():
    observer = VirtualObserver(p1=0.01, p2=0.01, rng=random.Random(1))
    truth = ExperimentOutcome(0, (0, 0))
    assert all(observer.observe_outcome(truth) == truth for _ in range(100))


def test_miss_collapses_to_zeros_never_flips():
    observer = VirtualObserver(p1=0.5, p2=0.5, rng=random.Random(2))
    truth = ExperimentOutcome(0, (0, 1, 1))
    seen = {observer.observe_outcome(truth).as_string for _ in range(500)}
    assert seen == {"011", "000"}


def test_p1_governs_single_one_states():
    observer = VirtualObserver(p1=0.7, p2=0.1, rng=random.Random(3))
    truth = ExperimentOutcome(0, (0, 1))
    kept = sum(
        observer.observe_outcome(truth).as_string == "01" for _ in range(10_000)
    )
    assert kept / 10_000 == pytest.approx(0.7, abs=0.02)


def test_p2_governs_double_one_states():
    observer = VirtualObserver(p1=0.1, p2=0.6, rng=random.Random(4))
    truth = ExperimentOutcome(0, (1, 1))
    kept = sum(
        observer.observe_outcome(truth).as_string == "11" for _ in range(10_000)
    )
    assert kept / 10_000 == pytest.approx(0.6, abs=0.02)


def test_observe_full_sequence():
    observer = VirtualObserver(p1=1.0, p2=1.0, rng=random.Random(5))
    experiments = [Experiment(0, 2), Experiment(3, 3)]
    states = [True, False, False, True, True, False]
    outcomes = observer.observe(experiments, states)
    assert [o.as_string for o in outcomes] == ["10", "110"]


def test_parameter_validation():
    with pytest.raises(ConfigurationError):
        VirtualObserver(p1=0.0, p2=0.5, rng=random.Random(6))
    with pytest.raises(ConfigurationError):
        VirtualObserver(p1=0.5, p2=1.5, rng=random.Random(6))
