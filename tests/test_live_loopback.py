"""Live loopback integration: real UDP over 127.0.0.1, deterministic loss."""

import socket
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.config import BadabingConfig, MarkingConfig, ProbeConfig
from repro.experiments.runner import RunBudget
from repro.io import load_measurement, reestimate
from repro.live import (
    ReflectorProtocol,
    bernoulli_drop,
    live_loopback,
    schedule_from_spec,
    spec_for,
)
from repro.net.faults import FaultProfile
from repro.net.simulator import _stable_seed
from repro.obs import MetricsRegistry


def _config(n_slots=200, p=0.5, tau=0.0, slot=0.005, packets=3):
    """Short loss-only-marking config: loopback jitter cannot mark probes."""
    return BadabingConfig(
        probe=ProbeConfig(slot=slot, probe_size=64, packets_per_probe=packets),
        marking=MarkingConfig(tau=tau),
        p=p,
        n_slots=n_slots,
        improved=False,
    )


def _expected_lossy_slots(config, seed, probability):
    """Replay the impairment shim's drop decisions slot by slot."""
    spec = spec_for(config, seed)
    schedule = schedule_from_spec(spec)
    impair_seed = _stable_seed(seed, "live-impair")
    lossy = set()
    for slot in schedule.probe_slots:
        for index in range(spec.packets_per_probe):
            if bernoulli_drop(impair_seed, slot, index, probability):
                lossy.add(slot)
    return lossy


def test_loopback_clean_run_estimates_zero_loss():
    run = live_loopback(config=_config(), seed=3)
    assert run.stats.completed
    assert run.stats.packets_sent > 0
    assert run.stats.echoes_received == run.stats.packets_sent
    assert run.result.frequency == 0.0
    assert run.reflector is not None
    assert run.reflector.wire_errors == 0
    assert run.receiver_result is not None
    assert run.receiver_result.frequency == 0.0
    manifest = run.manifest
    assert manifest is not None
    assert manifest.tool == "badabing-live"
    assert manifest.events_processed == run.stats.packets_sent


def test_loopback_impaired_run_recovers_loss_frequency():
    q = 0.05
    config = _config(n_slots=600)
    faults = FaultProfile(drop_probability=q)
    run = live_loopback(config=config, seed=7, faults=faults)
    expected = _expected_lossy_slots(config, 7, q)
    marked = {record.slot for record in run.result.probes if record.lost > 0}
    # The shim is a pure function of (seed, slot, index): the sender must
    # see exactly the replayed drop pattern, not a statistical neighbour.
    assert marked == expected
    assert run.reflector.impaired_drops > 0
    # F-hat is the experiment-bit estimator; compare against the realized
    # lossy-slot fraction with slack for probe-vs-slot granularity.
    realized = len(expected) / len(run.schedule.probe_slots)
    assert run.result.frequency == pytest.approx(realized, abs=0.05)
    # Receiver-side one-way estimate must agree with the sender's (same
    # records modulo clock rebase; identical marking config).
    assert run.receiver_result is not None
    assert run.receiver_result.frequency == pytest.approx(
        run.result.frequency, abs=1e-12
    )


def test_loopback_packet_budget_degrades_gracefully():
    run = live_loopback(
        config=_config(n_slots=400),
        seed=5,
        budget=RunBudget(max_events=30),
    )
    assert run.stats.stopped == "packet-budget"
    assert not run.stats.completed
    assert run.stats.packets_sent <= 30
    assert run.result.coverage is not None
    assert not run.result.coverage.complete


def test_reflector_counts_malformed_datagrams():
    registry = MetricsRegistry()
    protocol = ReflectorProtocol(registry=registry)
    for garbage in (b"", b"nonsense", b"\xba\xda\x01", b"\x00" * 64):
        protocol.datagram_received(garbage, ("127.0.0.1", 9999))
    assert protocol.wire_errors == 4
    snapshot = registry.snapshot()
    assert snapshot["counters"]["live.wire_errors{role=reflector}"] == 4


def test_reflector_drops_probes_from_unknown_sessions():
    from repro.live import wire

    protocol = ReflectorProtocol()
    probe = wire.encode_probe(
        session=12345, sequence=0, slot=0, index=0, packets_per_probe=1, send_ns=0
    )
    protocol.datagram_received(probe, ("127.0.0.1", 9999))
    assert protocol.unknown_session == 1
    assert protocol.wire_errors == 0


def test_loopback_trace_round_trip_and_truncation_recovery(tmp_path):
    trace_path = tmp_path / "live.jsonl"
    config = _config(n_slots=400)
    run = live_loopback(
        config=config,
        seed=7,
        faults=FaultProfile(drop_probability=0.05),
        trace_path=str(trace_path),
    )
    measurement = load_measurement(str(trace_path))
    assert measurement.metadata["tool"] == "badabing-live"
    assert measurement.metadata["clock_domain"] == "monotonic"
    assert measurement.n_slots == config.n_slots
    assert len(measurement.probes) == len(run.result.probes)
    # Offline re-analysis walks the identical estimator path.
    offline = reestimate(measurement, marking=config.marking)
    assert offline.frequency == pytest.approx(run.result.frequency, abs=1e-12)

    # Truncate mid-line (a crashed writer) and recover with diagnostics.
    text = trace_path.read_text(encoding="utf-8")
    lines = text.splitlines(keepends=True)
    assert len(lines) > 3
    truncated = tmp_path / "truncated.jsonl"
    truncated.write_text("".join(lines[:-1]) + lines[-1][:10], encoding="utf-8")
    recovered = load_measurement(str(truncated), recover=True)
    assert recovered.diagnostics
    assert len(recovered.probes) == len(measurement.probes) - 1


def test_cli_live_loopback(capsys):
    status = main(
        [
            "live",
            "loopback",
            "--seed",
            "1",
            "--duration",
            "2",
            "--p",
            "0.5",
            "--tau",
            "0.0",
            "--size",
            "64",
        ]
    )
    captured = capsys.readouterr()
    assert status == 0
    assert "estimated loss frequency" in captured.out
    assert "receiver cross-check" in captured.out


def _free_udp_port():
    with socket.socket(socket.AF_INET, socket.SOCK_DGRAM) as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def test_send_and_reflect_interoperate_across_processes(tmp_path):
    port = _free_udp_port()
    reflector = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "live",
            "reflect",
            "--host",
            "127.0.0.1",
            "--port",
            str(port),
            "--serve-sessions",
            "1",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        # Let the reflector bind before probing it; the HELLO retry loop
        # tolerates a slow start but not an unbound port's ICMP error.
        time.sleep(1.0)
        status = main(
            [
                "live",
                "send",
                "127.0.0.1",
                str(port),
                "--seed",
                "2",
                "--duration",
                "2",
                "--p",
                "0.5",
                "--tau",
                "0.0",
                "--size",
                "64",
            ]
        )
        assert status == 0
        stdout, stderr = reflector.communicate(timeout=30)
    finally:
        if reflector.poll() is None:
            reflector.kill()
            reflector.communicate()
    assert reflector.returncode == 0, stderr
    assert "served 1 session(s)" in stdout
