"""Shim for environments without the `wheel` package.

`pip install -e . --no-use-pep517` needs a setup.py; all real metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()
