"""Sweep engine benchmark: serial vs process-parallel wall time.

Runs the same 8-cell BADABING grid through ``sweep_badabing`` serially
and with ``workers=4``, records both wall times under
``benchmarks/results/``, and always cross-checks that the two modes are
byte-identical (same scorecard digest, same merged metrics snapshot
digest) — the determinism contract matters on every machine.

The >= 1.5x speedup guard from the issue's acceptance criteria is only
asserted when the machine actually exposes enough CPU cores to the
process (4+). On a single-core container the ``spawn`` startup cost
makes parallel *slower*, which says nothing about the engine — the
numbers are still archived so the tradeoff is visible.
"""

from __future__ import annotations

import os
import time

from repro.experiments.runner import scorecard_from_outcomes, sweep_badabing
from repro.obs.audit import scorecard_digest
from repro.obs.metrics import MetricsRegistry, snapshot_digest

GRID_KWARGS = dict(
    scenario="episodic_cbr",
    n_slots=6000,
    warmup=2.0,
    scenario_kwargs={"mean_spacing": 2.0},
)
CELLS = [{"p": p, "seed": seed} for p in (0.1, 0.3, 0.5, 0.7) for seed in (1, 2)]
WORKERS = 4
MIN_SPEEDUP = 1.5


def _effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux fallback
        return os.cpu_count() or 1


def _timed_sweep(workers):
    registry = MetricsRegistry()
    started = time.perf_counter()
    outcomes = sweep_badabing(
        CELLS, metrics=registry, workers=workers, **GRID_KWARGS
    )
    elapsed = time.perf_counter() - started
    return elapsed, outcomes, registry


def test_parallel_sweep_matches_serial_and_records_speedup(archive, bench_record):
    cores = _effective_cores()
    serial_s, serial_outcomes, serial_registry = _timed_sweep(None)
    parallel_s, parallel_outcomes, parallel_registry = _timed_sweep(WORKERS)

    assert all(o.ok for o in serial_outcomes)
    assert all(o.ok for o in parallel_outcomes)
    serial_card = scorecard_digest(scorecard_from_outcomes(serial_outcomes))
    parallel_card = scorecard_digest(scorecard_from_outcomes(parallel_outcomes))
    assert serial_card == parallel_card
    serial_snap = snapshot_digest(serial_registry.snapshot())
    parallel_snap = snapshot_digest(parallel_registry.snapshot())
    assert serial_snap == parallel_snap

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    archive(
        "bench_sweep",
        "\n".join(
            [
                f"cells={len(CELLS)} workers={WORKERS} cores={cores}",
                f"serial_s={serial_s:.3f}",
                f"parallel_s={parallel_s:.3f}",
                f"speedup={speedup:.2f}x",
                f"scorecard_digest={serial_card}",
                f"metrics_digest={serial_snap}",
            ]
        ),
    )
    bench_record(
        "sweep_parallel",
        parallel_s,
        serial_seconds=serial_s,
        speedup=speedup,
        workers=WORKERS,
        cores=cores,
    )

    if cores >= WORKERS:
        assert speedup >= MIN_SPEEDUP, (
            f"expected >= {MIN_SPEEDUP}x speedup with {WORKERS} workers on "
            f"{cores} cores, got {speedup:.2f}x "
            f"(serial {serial_s:.3f}s vs parallel {parallel_s:.3f}s)"
        )
