"""Sweep engine benchmarks: parallelism and the vectorized slot pipeline.

Three guards share this module:

* serial vs process-parallel ``sweep_badabing`` (same 8-cell grid both
  ways) — byte-identical digests always, >= 1.5x speedup when the
  machine exposes 4+ cores;
* scalar vs vectorized *slot-pipeline kernel* (marking → y_i assembly →
  pattern fold over a large synthesized measurement, each mode timed
  from its native representation: the scalar reference from
  ``ProbeRecord`` objects, the batch pipeline from ``ProbeArrays``) —
  identical counters/estimates always, >= 5x faster when 4+ cores are
  exposed (the gate is really about not asserting wall-clock on starved
  CI containers; the kernel itself is single-threaded);
* scalar vs vectorized *end-to-end sweep* digests — the full
  ``run_badabing`` path is event-simulator-dominated, so no speedup is
  asserted there; what must hold everywhere is that ``vectorized=True``
  leaves the scorecard and merged metrics snapshot digests byte-identical.

All wall times land in ``benchmarks/results/`` (text archives) and the
machine-readable BENCH trajectory via ``bench_record``, so the step
change from the vectorized kernel is visible in ``badabing-sim bench
--compare``.
"""

from __future__ import annotations

import os
import random
import time

from repro.config import MarkingConfig
from repro.core import batch
from repro.core.estimators import count_patterns, estimate_from_counter
from repro.core.marking import CongestionMarker
from repro.core.records import ProbeRecord
from repro.core.schedule import GeometricSchedule
from repro.core.validation import report_from_counter
from repro.experiments.runner import scorecard_from_outcomes, sweep_badabing
from repro.obs.audit import scorecard_digest
from repro.obs.metrics import MetricsRegistry, snapshot_digest

GRID_KWARGS = dict(
    scenario="episodic_cbr",
    n_slots=6000,
    warmup=2.0,
    scenario_kwargs={"mean_spacing": 2.0},
)
CELLS = [{"p": p, "seed": seed} for p in (0.1, 0.3, 0.5, 0.7) for seed in (1, 2)]
WORKERS = 4
MIN_SPEEDUP = 1.5


def _effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux fallback
        return os.cpu_count() or 1


def _timed_sweep(workers):
    registry = MetricsRegistry()
    started = time.perf_counter()
    outcomes = sweep_badabing(
        CELLS, metrics=registry, workers=workers, **GRID_KWARGS
    )
    elapsed = time.perf_counter() - started
    return elapsed, outcomes, registry


def test_parallel_sweep_matches_serial_and_records_speedup(archive, bench_record):
    cores = _effective_cores()
    serial_s, serial_outcomes, serial_registry = _timed_sweep(None)
    parallel_s, parallel_outcomes, parallel_registry = _timed_sweep(WORKERS)

    assert all(o.ok for o in serial_outcomes)
    assert all(o.ok for o in parallel_outcomes)
    serial_card = scorecard_digest(scorecard_from_outcomes(serial_outcomes))
    parallel_card = scorecard_digest(scorecard_from_outcomes(parallel_outcomes))
    assert serial_card == parallel_card
    serial_snap = snapshot_digest(serial_registry.snapshot())
    parallel_snap = snapshot_digest(parallel_registry.snapshot())
    assert serial_snap == parallel_snap

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    archive(
        "bench_sweep",
        "\n".join(
            [
                f"cells={len(CELLS)} workers={WORKERS} cores={cores}",
                f"serial_s={serial_s:.3f}",
                f"parallel_s={parallel_s:.3f}",
                f"speedup={speedup:.2f}x",
                f"scorecard_digest={serial_card}",
                f"metrics_digest={serial_snap}",
            ]
        ),
    )
    bench_record(
        "sweep_parallel",
        parallel_s,
        serial_seconds=serial_s,
        speedup=speedup,
        workers=WORKERS,
        cores=cores,
    )

    if cores >= WORKERS:
        assert speedup >= MIN_SPEEDUP, (
            f"expected >= {MIN_SPEEDUP}x speedup with {WORKERS} workers on "
            f"{cores} cores, got {speedup:.2f}x "
            f"(serial {serial_s:.3f}s vs parallel {parallel_s:.3f}s)"
        )


# ---------------------------------------------------------------------------
# Vectorized slot-pipeline kernel
# ---------------------------------------------------------------------------

KERNEL_N_SLOTS = 120_000
KERNEL_P = 0.3
KERNEL_SEED = 101
MIN_KERNEL_SPEEDUP = 5.0


def _synthesize_measurement():
    """A large, deterministic measurement for the kernel benchmark.

    The schedule is a real improved-design draw; the probe stream mixes
    clean deliveries, congestion-delayed probes near losses, and sparse
    losses — enough structure that every marking rule (loss, tau
    proximity, threshold history) does real work.
    """
    schedule = GeometricSchedule(
        KERNEL_P,
        KERNEL_N_SLOTS,
        random.Random(KERNEL_SEED),
        improved=True,
        vectorized=True,
    )
    rng = random.Random(KERNEL_SEED + 1)
    records = []
    base = 0.020
    for slot in schedule.probe_slots:
        send_time = slot * 0.005
        congested = rng.random() < 0.02
        delay = base + (0.030 * rng.random() if congested else 0.002 * rng.random())
        if rng.random() < 0.008:
            records.append(
                ProbeRecord(
                    slot=slot,
                    send_time=send_time,
                    n_packets=3,
                    owds=(delay, delay),
                    owd_before_loss=delay,
                )
            )
        else:
            records.append(
                ProbeRecord(
                    slot=slot,
                    send_time=send_time,
                    n_packets=3,
                    owds=(delay, delay, delay),
                )
            )
    return schedule, records


def test_vectorized_kernel_speedup(archive, bench_record):
    cores = _effective_cores()
    schedule, records = _synthesize_measurement()
    config = MarkingConfig()
    marker = CongestionMarker(config)
    arrays = batch.ProbeArrays.from_records(records)  # untimed: native input

    started = time.perf_counter()
    marked = marker.mark(records)
    outcomes = schedule.outcomes_from_states(marked.slot_states)
    scalar_counter = count_patterns(outcomes)
    scalar_s = time.perf_counter() - started

    started = time.perf_counter()
    pipeline = batch.run_slot_pipeline(
        schedule.start_array,
        schedule.length_array,
        arrays,
        marking=config,
        n_slots=schedule.n_slots,
    )
    vectorized_s = time.perf_counter() - started

    # Equivalence is asserted on every machine, regardless of speed.
    assert pipeline.counter == scalar_counter
    assert (
        batch.materialize_outcomes(pipeline.starts, pipeline.keys, pipeline.valid)
        == outcomes
    )
    assert pipeline.marking.slot_states_dict() == marked.slot_states
    assert estimate_from_counter(pipeline.counter, improved=True) == (
        estimate_from_counter(scalar_counter, improved=True)
    )
    assert report_from_counter(pipeline.counter) == report_from_counter(
        scalar_counter
    )

    speedup = scalar_s / vectorized_s if vectorized_s > 0 else float("inf")
    archive(
        "bench_vectorized_kernel",
        "\n".join(
            [
                f"n_slots={KERNEL_N_SLOTS} probes={len(records)} "
                f"experiments={schedule.n_experiments} cores={cores}",
                f"scalar_s={scalar_s:.3f}",
                f"vectorized_s={vectorized_s:.3f}",
                f"speedup={speedup:.2f}x",
            ]
        ),
    )
    bench_record(
        "vectorized_kernel",
        vectorized_s,
        scalar_seconds=scalar_s,
        speedup=speedup,
        n_slots=KERNEL_N_SLOTS,
        probes=len(records),
        cores=cores,
    )

    if cores >= 4:
        assert speedup >= MIN_KERNEL_SPEEDUP, (
            f"expected >= {MIN_KERNEL_SPEEDUP}x kernel speedup, got "
            f"{speedup:.2f}x (scalar {scalar_s:.3f}s vs vectorized "
            f"{vectorized_s:.3f}s)"
        )


def test_vectorized_sweep_digests_match_scalar(archive, bench_record):
    """End-to-end: vectorized cells leave sweep digests byte-identical."""
    cells = [{"p": 0.3, "seed": 1}, {"p": 0.5, "seed": 2}]

    def timed(vectorized):
        registry = MetricsRegistry()
        started = time.perf_counter()
        outcomes = sweep_badabing(
            cells, metrics=registry, vectorized=vectorized, **GRID_KWARGS
        )
        elapsed = time.perf_counter() - started
        assert all(o.ok for o in outcomes)
        return (
            elapsed,
            scorecard_digest(scorecard_from_outcomes(outcomes)),
            snapshot_digest(registry.snapshot()),
        )

    scalar_s, scalar_card, scalar_snap = timed(False)
    vectorized_s, vectorized_card, vectorized_snap = timed(True)
    assert vectorized_card == scalar_card
    assert vectorized_snap == scalar_snap

    archive(
        "bench_vectorized_sweep",
        "\n".join(
            [
                f"cells={len(cells)}",
                f"scalar_s={scalar_s:.3f}",
                f"vectorized_s={vectorized_s:.3f}",
                f"scorecard_digest={scalar_card}",
                f"metrics_digest={scalar_snap}",
            ]
        ),
    )
    bench_record(
        "vectorized_sweep",
        vectorized_s,
        scalar_seconds=scalar_s,
        cells=len(cells),
    )
