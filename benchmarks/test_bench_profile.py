"""Stage-profiler overhead guard: active profiler vs none.

The DESIGN.md §14 contract has two halves. First, an *active*
:class:`~repro.obs.profile.StageProfiler` must cost at most 10% extra
wall time over the uninstrumented run — the hot sites pay one ``None``
check when profiling is off and a couple of clock reads when it is on.
Second, profiling must never perturb the simulation: the monitored
registry's snapshot digest is byte-identical with and without an active
profiler, and the estimates match exactly.
"""

from __future__ import annotations

import time

from repro.experiments.runner import run_badabing
from repro.obs.metrics import MetricsRegistry, snapshot_digest
from repro.obs.profile import PIPELINE_STAGES, StageProfiler, profiling

RUN_KWARGS = dict(
    scenario="episodic_cbr",
    p=0.3,
    n_slots=2000,
    seed=3,
    warmup=2.0,
    scenario_kwargs={"mean_spacing": 2.0},
)

REPEATS = 5
MAX_OVERHEAD = 1.10


def _timed(profiler):
    registry = MetricsRegistry()
    started = time.perf_counter()
    if profiler is None:
        result, _truth = run_badabing(metrics=registry, **RUN_KWARGS)
    else:
        with profiling(profiler):
            result, _truth = run_badabing(metrics=registry, **RUN_KWARGS)
    return time.perf_counter() - started, result, registry


def test_stage_profiler_overhead_within_budget(archive, bench_record):
    # Warm caches/allocator once untimed, then interleave the two modes so
    # machine-load drift lands on both rather than biasing one phase.
    _timed(None)
    bare_s = profiled_s = float("inf")
    bare_result = profiled_result = None
    bare_registry = profiled_registry = None
    profiler = None
    for _ in range(REPEATS):
        elapsed, bare_result, bare_registry = _timed(None)
        bare_s = min(bare_s, elapsed)
        profiler = StageProfiler()
        elapsed, profiled_result, profiled_registry = _timed(profiler)
        profiled_s = min(profiled_s, elapsed)
    ratio = profiled_s / bare_s
    report = (
        f"stage-profiler overhead ({RUN_KWARGS['n_slots']} slots, "
        f"min of {REPEATS}):\n"
        f"  no profiler:     {bare_s * 1e3:8.1f} ms\n"
        f"  StageProfiler:   {profiled_s * 1e3:8.1f} ms\n"
        f"  ratio:           {ratio:8.3f}x (budget {MAX_OVERHEAD:.2f}x)"
    )
    archive("bench_profile_overhead", report)
    bench_record(
        "profile_overhead",
        profiled_s,
        bare_seconds=bare_s,
        overhead_ratio=ratio,
    )
    # The profiler saw the run: the last profiled repetition covered the
    # simulation-side stages.
    stages = profiler.stages()
    for stage in ("schedule.generate", "sim.run", "marking.apply",
                  "estimator.fold", "validator.fold"):
        assert stage in stages, f"missing stage {stage} in {sorted(stages)}"
        assert stage in PIPELINE_STAGES
    # Determinism contract: profiling never perturbs the measurement or
    # the monitored registry — digests are byte-identical either way.
    assert profiled_result.frequency == bare_result.frequency
    assert profiled_result.n_probes_sent == bare_result.n_probes_sent
    assert snapshot_digest(profiled_registry.snapshot()) == snapshot_digest(
        bare_registry.snapshot()
    )
    assert ratio <= MAX_OVERHEAD, report
