"""Benchmarks regenerating every data-bearing figure (Figures 4-9).

Figures 1-3 of the paper are diagrams with no measured series. Rendered
text versions of each figure are archived under ``benchmarks/results/``.
"""

import pytest

from repro.experiments import figures as F
from repro.experiments.render import (
    render_probe_impact,
    render_queue_series,
    render_sensitivity,
    render_train_sensitivity,
)


def _run(benchmark, builder, profile):
    return benchmark.pedantic(
        lambda: builder(profile=profile), rounds=1, iterations=1
    )


def test_fig4_queue_series_tcp(benchmark, profile, archive):
    """Fig. 4: synchronized TCP sawtooth at the bottleneck queue."""
    series = _run(benchmark, F.figure_4, profile)
    archive("fig4", render_queue_series(series))
    # The buffer (100 ms) is reached (loss episodes) and the queue swings
    # over a wide range (sawtooth), unlike CBR's idle-then-spike shape.
    assert max(series.delays) == pytest.approx(0.1, abs=0.01)
    assert series.episodes
    mean_delay = sum(series.delays) / len(series.delays)
    assert 0.01 < mean_delay < 0.09


def test_fig5_queue_series_cbr(benchmark, profile, archive):
    """Fig. 5: idle queue with engineered full-buffer spikes."""
    series = _run(benchmark, F.figure_5, profile)
    archive("fig5", render_queue_series(series))
    assert max(series.delays) == pytest.approx(0.1, abs=0.01)
    # Mostly idle: the median sample is zero.
    idle = sum(1 for delay in series.delays if delay == 0.0)
    assert idle > 0.5 * len(series.delays)
    assert series.episodes


def test_fig6_queue_series_harpoon(benchmark, profile, archive):
    """Fig. 6: bursty web-like occupancy with irregular loss episodes."""
    series = _run(benchmark, F.figure_6, profile)
    archive("fig6", render_queue_series(series))
    assert series.episodes
    # Variable episodes: spacing is irregular (unlike Fig. 5's Poisson-only
    # process the queue also hovers at intermediate levels).
    intermediate = sum(1 for d in series.delays if 0.005 < d < 0.09)
    assert intermediate > 0.02 * len(series.delays)


def test_fig7_probe_train_sensitivity(benchmark, profile, archive):
    """Fig. 7: P(no loss seen | inside episode) vs probe train length."""
    curves = _run(benchmark, F.figure_7, profile)
    archive("fig7", render_train_sensitivity(curves))
    by_name = {curve.scenario: curve for curve in curves}
    tcp = by_name["infinite_tcp"]
    cbr = by_name["episodic_cbr"]
    # CBR: single packets miss roughly half the time; 3+ packet trains
    # almost never miss (the paper's sharp drop).
    assert 0.2 < cbr.miss_probabilities[0] < 0.8
    assert cbr.miss_probabilities[2] < 0.5 * cbr.miss_probabilities[0]
    assert cbr.miss_probabilities[-1] < 0.2
    # TCP: improvement exists but is much shallower.
    assert tcp.miss_probabilities[0] > 0.25
    tcp_drop = tcp.miss_probabilities[0] - tcp.miss_probabilities[-1]
    cbr_drop = cbr.miss_probabilities[0] - cbr.miss_probabilities[-1]
    assert cbr_drop > tcp_drop


def test_fig8_probe_impact(benchmark, profile, archive):
    """Fig. 8: probe trains begin to perturb queue dynamics as they grow."""
    results = _run(benchmark, F.figure_8, profile)
    archive("fig8", render_probe_impact(results))
    by_train = {item.train_length: item for item in results}
    assert by_train[0].probe_drop_times == []
    # 10-packet trains at 10 ms inject 4x the load of 3-packet trains and
    # lose more probe packets in episodes.
    assert by_train[10].probe_load_fraction == pytest.approx(
        by_train[3].probe_load_fraction * 10 / 3
    )
    assert len(by_train[10].probe_drop_times) >= len(by_train[3].probe_drop_times)


def test_fig9a_alpha_sensitivity(benchmark, profile, archive):
    """Fig. 9(a): estimated frequency rises with alpha at every p."""
    sweep = _run(benchmark, F.figure_9a, profile)
    archive("fig9a", render_sensitivity(sweep))
    points_per_curve = len(next(iter(sweep.curves.values())))
    for index in range(points_per_curve):
        estimates = [sweep.curves[a][index][1] for a in sorted(sweep.curves)]
        assert all(b >= a - 1e-9 for a, b in zip(estimates, estimates[1:]))
    assert sweep.true_frequency > 0


def test_fig9b_tau_sensitivity(benchmark, profile, archive):
    """Fig. 9(b): estimated frequency rises with tau at every p."""
    sweep = _run(benchmark, F.figure_9b, profile)
    archive("fig9b", render_sensitivity(sweep))
    points_per_curve = len(next(iter(sweep.curves.values())))
    for index in range(points_per_curve):
        estimates = [sweep.curves[t][index][1] for t in sorted(sweep.curves)]
        assert all(b >= a - 1e-9 for a, b in zip(estimates, estimates[1:]))
