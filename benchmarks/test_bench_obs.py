"""Observability overhead guard: enabled registry vs NullRegistry.

The instrumentation layer promises to be cheap enough to leave on by
default. This benchmark runs the same short BADABING experiment under a
:class:`~repro.obs.metrics.NullRegistry` (hot paths skip all
instrumentation) and a live :class:`~repro.obs.metrics.MetricsRegistry`,
takes the min of several timed repetitions each (min-of-N is robust to
scheduler noise), and fails if the enabled registry costs more than 10%
extra wall time. It also cross-checks that both modes produce identical
estimates — instrumentation must never perturb the simulation.
"""

from __future__ import annotations

import time

from repro.experiments.runner import run_badabing
from repro.obs.metrics import MetricsRegistry, NullRegistry

RUN_KWARGS = dict(
    scenario="episodic_cbr",
    p=0.3,
    n_slots=2000,
    seed=3,
    warmup=2.0,
    scenario_kwargs={"mean_spacing": 2.0},
)

REPEATS = 3
MAX_OVERHEAD = 1.10


def _time_run(registry_factory):
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        registry = registry_factory()
        started = time.perf_counter()
        result, truth = run_badabing(metrics=registry, **RUN_KWARGS)
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return best, result


def test_enabled_registry_overhead_within_budget(archive):
    null_s, null_result = _time_run(NullRegistry)
    live_s, live_result = _time_run(MetricsRegistry)
    ratio = live_s / null_s
    report = (
        f"observability overhead ({RUN_KWARGS['n_slots']} slots, "
        f"min of {REPEATS}):\n"
        f"  NullRegistry:    {null_s * 1e3:8.1f} ms\n"
        f"  MetricsRegistry: {live_s * 1e3:8.1f} ms\n"
        f"  ratio:           {ratio:8.3f}x (budget {MAX_OVERHEAD:.2f}x)"
    )
    archive("bench_obs_overhead", report)
    # Instrumentation must not perturb the measurement itself.
    assert live_result.frequency == null_result.frequency
    assert live_result.n_probes_sent == null_result.n_probes_sent
    assert ratio <= MAX_OVERHEAD, report
