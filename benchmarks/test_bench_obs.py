"""Observability overhead guard: enabled registry vs NullRegistry.

The instrumentation layer promises to be cheap enough to leave on by
default. This benchmark runs the same short BADABING experiment under a
:class:`~repro.obs.metrics.NullRegistry` (hot paths skip all
instrumentation) and a live :class:`~repro.obs.metrics.MetricsRegistry`,
takes the min of several timed repetitions each (min-of-N is robust to
scheduler noise), and fails if the enabled registry costs more than 10%
extra wall time. It also cross-checks that both modes produce identical
estimates — instrumentation must never perturb the simulation.

The enabled path now includes the full accuracy audit (episode join,
convergence telemetry, registry publication), so the same 10% budget
also guards the audit layer; under ``NullRegistry`` the audit must not
be built at all.
"""

from __future__ import annotations

import time

from repro.experiments.runner import run_badabing
from repro.obs.metrics import MetricsRegistry, NullRegistry
from repro.obs.summary import render_scorecard

RUN_KWARGS = dict(
    scenario="episodic_cbr",
    p=0.3,
    n_slots=2000,
    seed=3,
    warmup=2.0,
    scenario_kwargs={"mean_spacing": 2.0},
)

REPEATS = 5
MAX_OVERHEAD = 1.10


def _timed(registry_factory):
    registry = registry_factory()
    started = time.perf_counter()
    result, _truth = run_badabing(metrics=registry, **RUN_KWARGS)
    return time.perf_counter() - started, result


def test_enabled_registry_overhead_within_budget(archive, bench_record):
    # Warm caches/allocator once untimed, then interleave the two modes so
    # machine-load drift lands on both rather than biasing one phase.
    _timed(NullRegistry)
    null_s = live_s = float("inf")
    null_result = live_result = None
    for _ in range(REPEATS):
        elapsed, null_result = _timed(NullRegistry)
        null_s = min(null_s, elapsed)
        elapsed, live_result = _timed(MetricsRegistry)
        live_s = min(live_s, elapsed)
    ratio = live_s / null_s
    report = (
        f"observability overhead ({RUN_KWARGS['n_slots']} slots, "
        f"min of {REPEATS}):\n"
        f"  NullRegistry:    {null_s * 1e3:8.1f} ms\n"
        f"  MetricsRegistry: {live_s * 1e3:8.1f} ms\n"
        f"  ratio:           {ratio:8.3f}x (budget {MAX_OVERHEAD:.2f}x)"
    )
    archive("bench_obs_overhead", report)
    bench_record(
        "obs_overhead",
        live_s,
        null_seconds=null_s,
        overhead_ratio=ratio,
    )
    # Instrumentation must not perturb the measurement itself.
    assert live_result.frequency == null_result.frequency
    assert live_result.n_probes_sent == null_result.n_probes_sent
    # The audit layer rides inside the same overhead budget: built on the
    # live path, skipped entirely under NullRegistry.
    assert live_result.audit is not None
    assert null_result.audit is None
    assert ratio <= MAX_OVERHEAD, report


def _timed_with_exporter(registry_factory, tmp_path, tag):
    registry = registry_factory()
    from repro.obs.export import TelemetryExporter

    exporter = TelemetryExporter(
        registry, interval=1.0, path=tmp_path / f"bench-{tag}.ndjson"
    )
    exporter.start_thread()
    try:
        started = time.perf_counter()
        result, _truth = run_badabing(metrics=registry, **RUN_KWARGS)
        return time.perf_counter() - started, result, exporter
    finally:
        exporter.close()


def test_exporter_overhead_within_budget(archive, bench_record, tmp_path):
    """Tentpole budget: attaching a live exporter at a 1s interval must
    add at most 10% over the already-instrumented run, and under
    ``NullRegistry`` the exporter is a strict no-op (no file, no thread,
    no records)."""
    _timed(MetricsRegistry)
    bare_s = exported_s = float("inf")
    bare_result = exported_result = None
    for repeat in range(REPEATS):
        elapsed, bare_result = _timed(MetricsRegistry)
        bare_s = min(bare_s, elapsed)
        elapsed, exported_result, _ = _timed_with_exporter(
            MetricsRegistry, tmp_path, f"live-{repeat}"
        )
        exported_s = min(exported_s, elapsed)
    ratio = exported_s / bare_s
    report = (
        f"telemetry-export overhead ({RUN_KWARGS['n_slots']} slots, "
        f"1s interval, min of {REPEATS}):\n"
        f"  registry only:       {bare_s * 1e3:8.1f} ms\n"
        f"  registry + exporter: {exported_s * 1e3:8.1f} ms\n"
        f"  ratio:               {ratio:8.3f}x (budget {MAX_OVERHEAD:.2f}x)"
    )
    archive("bench_export_overhead", report)
    bench_record(
        "export_overhead",
        exported_s,
        bare_seconds=bare_s,
        overhead_ratio=ratio,
    )
    # The exporter must never perturb the simulation it watches.
    assert exported_result.frequency == bare_result.frequency
    assert exported_result.n_probes_sent == bare_result.n_probes_sent
    # NullRegistry gate: zero work — no records, no snapshot file.
    _, null_result, null_exporter = _timed_with_exporter(
        NullRegistry, tmp_path, "null"
    )
    assert null_result.frequency == bare_result.frequency
    assert null_exporter.seq == 0
    assert not (tmp_path / "bench-null.ndjson").exists()
    assert ratio <= MAX_OVERHEAD, report


def test_exporter_does_not_change_registry_digest(tmp_path):
    """Same seed, with and without export: the monitored registry's
    snapshot digest must be byte-identical (seq/wall live only in the
    record envelope, alert state only on the exporter's side registry)."""
    from repro.obs.export import TelemetryExporter
    from repro.obs.metrics import snapshot_digest

    bare = MetricsRegistry()
    run_badabing(metrics=bare, **RUN_KWARGS)

    watched = MetricsRegistry()
    exporter = TelemetryExporter(
        watched, interval=0.01, path=tmp_path / "digest.ndjson"
    )
    exporter.start_thread()
    try:
        run_badabing(metrics=watched, **RUN_KWARGS)
    finally:
        exporter.close()
    assert snapshot_digest(watched.snapshot()) == snapshot_digest(bare.snapshot())


def test_audit_scorecard_archived(archive):
    """Archive the accuracy scorecard of the benchmark run for the report."""
    from repro.obs import scorecard_from_runs

    result, truth = run_badabing(metrics=MetricsRegistry(), **RUN_KWARGS)
    audit = result.audit
    assert audit is not None
    label = (
        f"{RUN_KWARGS['scenario']} p={RUN_KWARGS['p']} "
        f"N={RUN_KWARGS['n_slots']}"
    )
    scorecard = scorecard_from_runs([(label, audit, None, RUN_KWARGS["seed"])])
    lines = render_scorecard(scorecard.to_dict())
    counts = audit.episode_counts
    lines.append(
        f"  episodes: {audit.n_episodes} true — "
        f"{counts['detected']} detected, "
        f"{counts['partially_sampled']} partially sampled, "
        f"{counts['missed']} missed"
    )
    archive("audit_scorecard", "\n".join(lines))
