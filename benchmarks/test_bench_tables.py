"""Benchmarks regenerating every table of the paper (Tables 1-8).

Run with::

    pytest benchmarks/ --benchmark-only                 # fast profile
    REPRO_PROFILE=full pytest benchmarks/ --benchmark-only   # paper-length

Each benchmark executes the full experiment pipeline exactly once
(``pedantic(rounds=1)``) — the interesting output is the reproduced table
(archived under ``benchmarks/results/``) and the shape assertions, not the
wall-clock statistics.
"""

import math

import pytest

from repro.experiments import tables as T
from repro.experiments.render import render_table


def _run(benchmark, builder, profile):
    return benchmark.pedantic(
        lambda: builder(profile=profile), rounds=1, iterations=1
    )


def _assert_badabing_sweep_shape(table, strict, freq_rel=0.75, dur_rel=0.6):
    """Shared Table 4/5/6 shape checks.

    Paper shape: frequency close to truth for p >= 0.3, duration within
    ~25% over 900 s runs. Sub-paper-length profiles get wider bands, and
    the 60 s smoke profile only checks frequency (a few transitions cannot
    pin a duration).
    """
    valid_durations = 0
    for row in table.rows:
        if row.extra["p"] < 0.3:
            continue
        assert row.measured_frequency == pytest.approx(
            row.true_frequency, rel=freq_rel if strict else 1.5
        )
        if not math.isnan(row.measured_duration):
            valid_durations += 1
            # Judge D-hat only when the §5.4 validation had enough
            # transitions to be conclusive (self-calibration).
            if strict and row.extra["p"] >= 0.5 and row.extra["transitions"] >= 10:
                assert row.measured_duration == pytest.approx(
                    row.true_duration, rel=dur_rel
                )
    assert valid_durations >= (3 if strict else 1)


def test_table1_zing_tcp(benchmark, profile, archive):
    """Table 1: ZING vs truth under 40(-scaled) infinite TCP sources."""
    table = _run(benchmark, T.table_1, profile)
    archive("table1", render_table(table))
    truth, zing10, zing20 = table.rows
    # Paper shape: true freq ~2.65%, ZING reports ~50x less and zero-ish
    # durations (no or almost no consecutive losses).
    assert truth.true_frequency > 0.008
    for row in (zing10, zing20):
        assert row.measured_frequency < 0.25 * row.true_frequency
        # With a handful of loss runs the duration sample is pure noise;
        # judge it only once ZING has at least a few runs to average.
        if row.extra["loss_runs"] >= 3:
            assert row.measured_duration < 0.5 * row.true_duration


def test_table2_zing_cbr(benchmark, profile, archive):
    """Table 2: ZING vs truth under constant-duration loss episodes."""
    table = _run(benchmark, T.table_2, profile)
    archive("table2", render_table(table))
    truth = table.rows[0]
    assert truth.true_duration == pytest.approx(0.068, abs=0.035)
    for row in table.rows[1:]:
        # Closer than the TCP case but still below truth on both axes.
        assert 0.0 < row.measured_frequency < row.true_frequency
        assert row.measured_duration < row.true_duration


def test_table3_zing_harpoon(benchmark, profile, archive):
    """Table 3: ZING vs truth under Harpoon web-like traffic."""
    table = _run(benchmark, T.table_3, profile)
    archive("table3", render_table(table))
    for row in table.rows[1:]:
        assert row.measured_frequency < 0.5 * row.true_frequency
        assert row.measured_duration < 0.5 * row.true_duration


def test_table4_badabing_cbr_uniform(benchmark, profile, archive):
    """Table 4: BADABING p-sweep, uniform 68 ms episodes."""
    table = _run(benchmark, T.table_4, profile)
    archive("table4", render_table(table))
    _assert_badabing_sweep_shape(table, strict=profile.name != "smoke")


def test_table5_badabing_cbr_mixed(benchmark, profile, archive):
    """Table 5: BADABING p-sweep, 50/100/150 ms episodes."""
    table = _run(benchmark, T.table_5, profile)
    archive("table5", render_table(table))
    truth_duration = table.rows[0].true_duration
    assert 0.05 < truth_duration < 0.16
    _assert_badabing_sweep_shape(table, strict=profile.name != "smoke")


def test_table6_badabing_harpoon(benchmark, profile, archive):
    """Table 6: BADABING p-sweep under Harpoon web-like traffic."""
    table = _run(benchmark, T.table_6, profile)
    archive("table6", render_table(table))
    _assert_badabing_sweep_shape(
        table, strict=profile.name != "smoke", freq_rel=0.8, dur_rel=0.8
    )


def test_table7_n_tau_tradeoff(benchmark, profile, archive):
    """Table 7: p=0.1 with two N values and two tau values."""
    table = _run(benchmark, T.table_7, profile)
    archive("table7", render_table(table))
    by_key = {
        (row.extra["n_slots"], row.extra["tau"]): row for row in table.rows
    }
    small_n = profile.n_slots
    large_n = profile.n_slots_large
    # Paper shape: at p=0.1 a larger tau moves the estimate more than a
    # larger N does.
    for n in (small_n, large_n):
        assert (
            by_key[(n, 0.080)].measured_frequency
            >= by_key[(n, 0.040)].measured_frequency
        )
    for row in table.rows:
        # Same order of magnitude as truth at this very low probe rate.
        assert row.true_frequency / 4 < row.measured_frequency < row.true_frequency * 4


def test_table8_tool_comparison(benchmark, profile, archive):
    """Table 8: BADABING vs ZING at matched probe rates."""
    table = _run(benchmark, T.table_8, profile)
    archive("table8", render_table(table))
    by_label = {row.label: row for row in table.rows}
    strict = profile.name != "smoke"
    for scenario in ("CBR", "Harpoon web-like"):
        badabing = by_label[f"{scenario} / BADABING"]
        zing = by_label[f"{scenario} / ZING"]
        # Duration: ZING collapses toward zero; BADABING lands within 2x
        # whenever its own §5.4 validation is conclusive AND passes — the
        # tool is self-calibrating: with a handful of 01/10 events, or a
        # flagged 01/10 asymmetry, it *reports* that D-hat is untrusted.
        assert zing.measured_duration < 0.4 * zing.true_duration
        if (
            badabing.extra["transitions"] >= 10
            and badabing.extra.get("asymmetry", 0.0) <= 0.4
            and not math.isnan(badabing.measured_duration)
        ):
            assert badabing.measured_duration == pytest.approx(
                badabing.true_duration, rel=1.0
            )
        if strict or scenario == "Harpoon web-like":
            bb_freq_err = abs(
                badabing.measured_frequency - badabing.true_frequency
            )
            zing_freq_err = abs(zing.measured_frequency - zing.true_frequency)
            assert bb_freq_err <= zing_freq_err
