"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures on the
profile selected by ``REPRO_PROFILE`` (default ``fast``; set ``full`` for
paper-length runs) and archives the rendered text under
``benchmarks/results/`` so the numbers behind EXPERIMENTS.md can be
re-inspected without rerunning.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.profiles import active_profile

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def profile():
    return active_profile()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def archive(results_dir, profile):
    """Callable: archive(name, text) -> writes results/<name>.<profile>.txt."""

    def _archive(name: str, text: str) -> None:
        path = results_dir / f"{name}.{profile.name}.txt"
        path.write_text(text + "\n", encoding="utf-8")

    return _archive
