"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures on the
profile selected by ``REPRO_PROFILE`` (default ``fast``; set ``full`` for
paper-length runs) and archives the rendered text under
``benchmarks/results/`` so the numbers behind EXPERIMENTS.md can be
re-inspected without rerunning.

Alongside the text archives, one shared
:class:`~repro.obs.bench.BenchRecorder` collects a machine-readable
perf-trajectory point per session: an autouse fixture records every
benchmark test's wall time, and the overhead-guard tests append their
headline measurements (ratios, speedups, per-datagram costs) through the
``bench_record`` fixture. Everything lands in one schema-validated
``results/BENCH_pytest.<profile>.json``, merged across separate pytest
invocations, so ``badabing-sim bench --compare`` works on pytest-driven
numbers too.
"""

from __future__ import annotations

import pathlib
import time

import pytest

from repro.experiments.profiles import active_profile
from repro.obs.bench import BenchRecorder

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def profile():
    return active_profile()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def bench_writer(results_dir, profile):
    """The session's shared BENCH JSON writer (flushed once, at exit)."""
    recorder = BenchRecorder(
        results_dir / f"BENCH_pytest.{profile.name}.json",
        suite=f"pytest-{profile.name}",
    )
    yield recorder
    recorder.flush()


@pytest.fixture(autouse=True)
def _bench_walltime(request, bench_writer):
    """Record every benchmark test's wall time into the shared writer."""
    started = time.perf_counter()
    yield
    bench_writer.record(request.node.name, time.perf_counter() - started)


@pytest.fixture
def bench_record(bench_writer):
    """Callable: bench_record(name, wall_seconds, **extra) -> BENCH entry.

    For guards that measure something sharper than their own wall time —
    overhead ratios, speedups, per-datagram costs — so the regression
    gate can compare the measurement itself, not the test around it.
    """
    return bench_writer.record


@pytest.fixture
def archive(results_dir, profile):
    """Callable: archive(name, text) -> writes results/<name>.<profile>.txt."""

    def _archive(name: str, text: str) -> None:
        path = results_dir / f"{name}.{profile.name}.txt"
        path.write_text(text + "\n", encoding="utf-8")

    return _archive
