"""Fleet-controller overhead guards: decision latency and datagram tax.

Two promises ride on the adaptive controller. First, the rebalancing
``step()`` is a decision pass over every roster path (signals, shares,
allocations, one recorded event) that the fleet driver calls between
socket polls — at 50 paths it must stay under 5 ms per tick or it starts
eating into probe-schedule deadlines. Second, interleaving those
decision passes with a reflector's datagram hot path must not tax the
per-datagram cost by more than 1.10× versus the same flood with the
controller off. Both are measured min-of-several with interleaved modes
and recorded through the shared :class:`~repro.obs.bench.BenchRecorder`.
"""

from __future__ import annotations

import time
from collections import Counter

from repro.config import BadabingConfig, MarkingConfig, ProbeConfig
from repro.core.validation import report_from_counter
from repro.live import wire
from repro.live.controller import ControllerPolicy, FleetController, PathTarget
from repro.live.fleet import FleetPolicy, FleetReflectorProtocol
from repro.live.session import make_session_id, spec_for

N_PATHS = 50
N_TICKS = 40
REPEATS = 3
MAX_STEP_SECONDS = 0.005
MAX_DATAGRAM_RATIO = 1.10

FLOOD_PACKETS = 30_000
# One decision pass (plus a full 50-path completion round) per 2500
# datagrams when "on". Still far denser than production — at the default
# 0.25 s rebalance interval a 180 pps path sees one pass per ~45
# datagrams of *fleet-wide* traffic, and a pass completes a handful of
# sessions, not the whole roster.
STEP_EVERY = 2_500


class _SteppingClock:
    """Monotonic fake clock advancing a fixed step per reading."""

    def __init__(self, step_ns: int = 2_000):
        self.t = 1_000_000_000
        self.step_ns = step_ns

    def now_ns(self) -> int:
        self.t += self.step_ns
        return self.t


class _NullTransport:
    def sendto(self, payload, addr=None):
        pass


def _config() -> BadabingConfig:
    return BadabingConfig(
        probe=ProbeConfig(slot=0.005, probe_size=64, packets_per_probe=3),
        marking=MarkingConfig(tau=0.0),
        p=0.3,
        n_slots=200_000,
    )


def _roster(n_paths: int):
    config = _config()
    return [PathTarget(name=f"path-{i:03d}", config=config) for i in range(n_paths)]


def _make_controller(n_paths: int) -> FleetController:
    policy = ControllerPolicy(
        budget_slots=100_000_000, round_slots=200, min_session_slots=40
    )
    return FleetController(_roster(n_paths), policy=policy, clock=_SteppingClock())


def _report(n_slots: int, lossy: bool):
    if lossy:
        # Violations keep §5.4 unacceptable; the path stays unconverged.
        return report_from_counter(
            Counter({"M": n_slots, "01": 1, "10": 1, "010": 3, "101": 3})
        )
    return report_from_counter(Counter({"M": n_slots}))


def _timed_ticks(controller: FleetController) -> float:
    """Run N_TICKS step→complete rounds; time only the decision passes."""
    stepped = 0.0
    for tick in range(N_TICKS):
        started = time.perf_counter()
        launches = controller.step()
        stepped += time.perf_counter() - started
        for directive in launches:
            # Half the roster keeps swinging (stays hungry), half settles:
            # every step exercises both the converged-monitoring and the
            # rebalance-toward-unconverged branches.
            lossy = int(directive.path[-3:]) % 2 == 0
            frequency = (0.5 if directive.round_index % 2 else 0.1) if lossy else 0.0
            controller.on_session_complete(
                directive.path,
                directive.round_index,
                frequency,
                _report(directive.n_slots, lossy),
                duration_seconds=0.001,
            )
    return stepped / N_TICKS


def test_controller_step_latency_at_50_paths(archive, bench_record):
    _timed_ticks(_make_controller(N_PATHS))  # warm allocator/caches
    per_tick = float("inf")
    for _ in range(REPEATS):
        per_tick = min(per_tick, _timed_ticks(_make_controller(N_PATHS)))
    report = (
        f"controller rebalancing pass ({N_PATHS} paths, {N_TICKS} ticks, "
        f"min of {REPEATS}):\n"
        f"  step(): {per_tick * 1e3:7.3f} ms/tick "
        f"(budget {MAX_STEP_SECONDS * 1e3:.1f} ms)"
    )
    archive("bench_controller_step", report)
    bench_record(
        "controller_step_tick",
        per_tick,
        n_paths=N_PATHS,
        ms_per_tick=per_tick * 1e3,
    )
    assert per_tick <= MAX_STEP_SECONDS, report


# ------------------------------------------------- per-datagram overhead
def _session_datagrams(seed: int, config: BadabingConfig, n_packets: int):
    spec = spec_for(config, seed)
    session_id = make_session_id(seed)
    hello = wire.encode_hello(session_id, spec, 0)
    probes = [
        wire.encode_probe(session_id, i, i // 3, i % 3, 3, i * 1_000)
        for i in range(n_packets)
    ]
    return hello, probes


def _timed_flood(hello, probes, controller=None) -> float:
    """Per-datagram time for the reflector flood, ± interleaved step()s."""
    # One tenant absorbs the whole flood in compressed fake time: give
    # its token bucket enough headroom that rate policing (benchmarked
    # separately in test_bench_fleet) never clips either mode.
    policy = FleetPolicy(rate_cap_pps=1e12)
    protocol = FleetReflectorProtocol(policy=policy, clock=_SteppingClock())
    protocol.connection_made(_NullTransport())
    addr = ("127.0.0.1", 40000)
    protocol.datagram_received(hello, addr)
    received = protocol.datagram_received
    started = time.perf_counter()
    if controller is None:
        for datagram in probes:
            received(datagram, addr)
    else:
        for index, datagram in enumerate(probes):
            received(datagram, addr)
            if index % STEP_EVERY == 0:
                for directive in controller.step():
                    controller.on_session_complete(
                        directive.path,
                        directive.round_index,
                        0.1,
                        _report(directive.n_slots, lossy=True),
                    )
    elapsed = time.perf_counter() - started
    assert protocol.probes_received_total == FLOOD_PACKETS
    return elapsed


def test_controller_on_datagram_overhead_within_budget(archive, bench_record):
    hello, probes = _session_datagrams(1, _config(), FLOOD_PACKETS)
    _timed_flood(hello, probes)  # warm-up
    on_s = off_s = float("inf")
    for _ in range(REPEATS):
        off_s = min(off_s, _timed_flood(hello, probes))
        on_s = min(on_s, _timed_flood(hello, probes, _make_controller(N_PATHS)))
    ratio = on_s / off_s
    report = (
        f"controller-on vs controller-off reflector flood "
        f"({FLOOD_PACKETS} datagrams, one step() per {STEP_EVERY}, "
        f"min of {REPEATS}):\n"
        f"  controller off: {off_s * 1e9 / FLOOD_PACKETS:8.1f} ns/datagram\n"
        f"  controller on:  {on_s * 1e9 / FLOOD_PACKETS:8.1f} ns/datagram\n"
        f"  ratio: {ratio:.3f}x (budget {MAX_DATAGRAM_RATIO:.2f}x)"
    )
    archive("bench_controller_overhead", report)
    bench_record(
        "controller_on_per_datagram",
        on_s,
        off_seconds=off_s,
        overhead_ratio=ratio,
        ns_per_datagram=on_s * 1e9 / FLOOD_PACKETS,
    )
    assert ratio <= MAX_DATAGRAM_RATIO, report
