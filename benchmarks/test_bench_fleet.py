"""Fleet reflector overhead guard: 1000 tenants vs the single-session path.

The multi-tenant layer (admission bookkeeping, per-tenant token buckets,
watchdog-ready timestamps) sits on the reflector's per-datagram hot
path. This benchmark feeds the same number of probe datagrams through a
:class:`~repro.live.fleet.FleetReflectorProtocol` holding 1000 live
sessions and through a plain single-session
:class:`~repro.live.reflector.ReflectorProtocol`, takes the min of
several timed repetitions each, and fails if the fleet path costs more
than 2× per datagram — the ceiling the hardening work promised.
"""

from __future__ import annotations

import time

from repro.config import BadabingConfig, MarkingConfig, ProbeConfig
from repro.live import wire
from repro.live.fleet import FleetReflectorProtocol
from repro.live.reflector import ReflectorProtocol
from repro.live.session import make_session_id, spec_for

N_SESSIONS = 1000
PACKETS_PER_SESSION = 30
TOTAL_PACKETS = N_SESSIONS * PACKETS_PER_SESSION
REPEATS = 3
MAX_RATIO = 2.0


class _SteppingClock:
    """Monotonic fake clock advancing a fixed step per reading."""

    def __init__(self, step_ns: int = 2_000):
        self.t = 1_000_000_000
        self.step_ns = step_ns

    def now_ns(self) -> int:
        self.t += self.step_ns
        return self.t


class _NullTransport:
    def sendto(self, payload, addr=None):
        pass


def _config() -> BadabingConfig:
    return BadabingConfig(
        probe=ProbeConfig(slot=0.005, probe_size=64, packets_per_probe=3),
        marking=MarkingConfig(tau=0.0),
        p=0.3,
        n_slots=200_000,
    )


def _session_datagrams(seed: int, config: BadabingConfig, n_packets: int):
    """HELLO plus ``n_packets`` unique probe datagrams for one tenant."""
    spec = spec_for(config, seed)
    session_id = make_session_id(seed)
    hello = wire.encode_hello(session_id, spec, 0)
    probes = [
        wire.encode_probe(session_id, i, i // 3, i % 3, 3, i * 1_000)
        for i in range(n_packets)
    ]
    return hello, probes


def _deliver(protocol, hellos, flood):
    """Register every tenant untimed, then time the probe flood."""
    addr = ("127.0.0.1", 40000)
    for hello in hellos:
        protocol.datagram_received(hello, addr)
    received = protocol.datagram_received
    started = time.perf_counter()
    for datagram in flood:
        received(datagram, addr)
    return time.perf_counter() - started


def _timed_fleet(sessions):
    protocol = FleetReflectorProtocol(clock=_SteppingClock())
    protocol.connection_made(_NullTransport())
    # Interleave tenants round-robin: the worst realistic arrival order
    # for any per-session cache locality the protocol might rely on.
    flood = [
        probes[index]
        for index in range(PACKETS_PER_SESSION)
        for _hello, probes in sessions
    ]
    elapsed = _deliver(protocol, [h for h, _ in sessions], flood)
    assert len(protocol.sessions) == N_SESSIONS
    assert protocol.rate_limited_total == 0  # honest tenants pass untouched
    assert protocol.probes_received_total == TOTAL_PACKETS
    return elapsed


def _timed_single(session):
    protocol = ReflectorProtocol(clock=_SteppingClock())
    protocol.connection_made(_NullTransport())
    hello, probes = session
    # Same datagram count as the fleet side, through one session.
    elapsed = _deliver(protocol, [hello], probes)
    assert protocol.probes_received_total == TOTAL_PACKETS
    return elapsed


def test_fleet_per_datagram_overhead_within_budget(archive, bench_record):
    config = _config()
    sessions = [
        _session_datagrams(seed, config, PACKETS_PER_SESSION)
        for seed in range(1, N_SESSIONS + 1)
    ]
    single = _session_datagrams(N_SESSIONS + 1, config, TOTAL_PACKETS)
    # Warm allocator/caches once untimed, then interleave the two modes.
    _timed_single(single)
    fleet_s = single_s = float("inf")
    for _ in range(REPEATS):
        single_s = min(single_s, _timed_single(single))
        fleet_s = min(fleet_s, _timed_fleet(sessions))
    ratio = fleet_s / single_s
    report = (
        f"fleet reflector per-datagram overhead "
        f"({N_SESSIONS} sessions × {PACKETS_PER_SESSION} packets, "
        f"min of {REPEATS}):\n"
        f"  single-session path: {single_s * 1e9 / TOTAL_PACKETS:8.1f} ns/datagram\n"
        f"  fleet path:          {fleet_s * 1e9 / TOTAL_PACKETS:8.1f} ns/datagram\n"
        f"  ratio: {ratio:.3f}x (budget {MAX_RATIO:.1f}x)"
    )
    archive("bench_fleet", report)
    bench_record(
        "fleet_per_datagram",
        fleet_s,
        single_seconds=single_s,
        overhead_ratio=ratio,
        ns_per_datagram=fleet_s * 1e9 / TOTAL_PACKETS,
    )
    assert ratio <= MAX_RATIO, report
