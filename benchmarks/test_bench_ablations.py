"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's own evaluation:

* improved vs basic estimator under a p1 != p2 observation channel
  (the §5.3 motivation, validated on the synthetic substrate);
* probe launch-time jitter (the commodity-host / interpreter-timing gate);
* clock skew with and without convex-hull removal (§7);
* probe packet size (footnote 2's future work);
* RED instead of drop-tail at the bottleneck (robustness);
* probe modulation: geometric (BADABING) vs Poisson vs periodic
  self-loss reporting at matched rates.
"""

import math
import random

import pytest

from repro.config import TestbedConfig
from repro.core.clock import AffineClock, deskew_probe_records
from repro.core.estimators import estimate_from_outcomes
from repro.core.jitter import NoJitter, SpikeJitter, UniformJitter
from repro.core.pinglike import PingLikeTool
from repro.core.schedule import GeometricSchedule
from repro.core.zing import ZingTool
from repro.experiments.runner import (
    DRAIN_TIME,
    apply_scenario,
    build_testbed,
    compute_ground_truth,
    run_badabing,
)
from repro.synthetic.observer import VirtualObserver
from repro.synthetic.renewal import AlternatingRenewalProcess, UniformSlots

CBR_KWARGS = {"episode_durations": (0.068,), "mean_spacing": 5.0}


def _cbr_n_slots(profile):
    # Ablations use half the table budget; plenty for shape assertions.
    return max(12_000, profile.n_slots // 2)


def test_ablation_improved_vs_basic(benchmark, archive):
    """§5.3's r-correction rescues duration estimation when p1 != p2."""

    def run():
        rng = random.Random(101)
        process = AlternatingRenewalProcess(
            UniformSlots(2, 8), UniformSlots(30, 90), rng
        )
        states = process.generate(400_000)
        _f, true_d = AlternatingRenewalProcess.truth(states)
        schedule = GeometricSchedule(
            0.5, len(states), random.Random(103), improved=True
        )
        observer = VirtualObserver(p1=0.95, p2=0.5, rng=random.Random(107))
        outcomes = observer.observe(schedule.experiments, states)
        basic = estimate_from_outcomes(outcomes, improved=False)
        corrected = estimate_from_outcomes(outcomes, improved=True)
        return true_d, basic.duration_slots, corrected.duration_slots

    true_d, basic_d, corrected_d = benchmark.pedantic(run, rounds=1, iterations=1)
    archive(
        "ablation_improved",
        f"true D = {true_d:.2f} slots\n"
        f"basic estimator (assumes r=1): {basic_d:.2f} slots\n"
        f"improved estimator (r = U/V): {corrected_d:.2f} slots",
    )
    assert abs(corrected_d - true_d) < abs(basic_d - true_d)
    assert corrected_d == pytest.approx(true_d, rel=0.15)


def test_ablation_jitter(benchmark, profile, archive):
    """Probe send jitter (host timing noise) vs estimation accuracy."""
    models = [
        ("none", NoJitter()),
        ("uniform-2ms", UniformJitter(0.002)),
        ("spiky-20ms", SpikeJitter(base_sigma=0.0005, spike_prob=0.05,
                                   spike_delay=0.020)),
    ]

    def run():
        rows = []
        for name, model in models:
            result, truth = run_badabing(
                "episodic_cbr", p=0.5, n_slots=_cbr_n_slots(profile),
                seed=111, scenario_kwargs=CBR_KWARGS, jitter=model,
            )
            rows.append((name, truth.frequency, result.frequency))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    archive(
        "ablation_jitter",
        "\n".join(
            f"{name:<12} true F={true_f:.4f}  est F={est_f:.4f}"
            for name, true_f, est_f in rows
        ),
    )
    # All jitter levels stay within a factor ~2.5 of truth: the estimator
    # depends on the number of probes, not their precise spacing.
    for _name, true_f, est_f in rows:
        assert est_f == pytest.approx(true_f, rel=1.5)


def test_ablation_clock_skew(benchmark, profile, archive):
    """Skewed receiver clock: marking degrades; de-skewing restores it."""

    def run():
        keep = {}
        result, truth = run_badabing(
            "episodic_cbr", p=0.5, n_slots=_cbr_n_slots(profile), seed=117,
            scenario_kwargs=CBR_KWARGS,
            receiver_clock=AffineClock(offset=0.0, skew=2e-4),
            keep=keep,
        )
        tool = keep["tool"]
        deskewed = tool.result(probes=deskew_probe_records(result.probes))
        return truth.frequency, result.frequency, deskewed.frequency

    true_f, skewed_f, deskewed_f = benchmark.pedantic(run, rounds=1, iterations=1)
    archive(
        "ablation_clock_skew",
        f"true F = {true_f:.4f}\n"
        f"skewed clock (200 ppm): {skewed_f:.4f}\n"
        f"after convex-hull skew removal: {deskewed_f:.4f}",
    )
    assert deskewed_f == pytest.approx(true_f, rel=1.0)
    # De-skewing gets at least as close to truth as the raw skewed run.
    assert abs(deskewed_f - true_f) <= abs(skewed_f - true_f) + 0.002


def test_ablation_probe_size(benchmark, profile, archive):
    """Probe packet size (footnote 2): bigger probes detect loss better."""
    from repro.config import ProbeConfig

    def run():
        rows = []
        for size in (100, 600, 1400):
            result, truth = run_badabing(
                "episodic_cbr", p=0.5, n_slots=_cbr_n_slots(profile),
                seed=123, scenario_kwargs=CBR_KWARGS,
                probe=ProbeConfig(probe_size=size),
            )
            rows.append((size, truth.frequency, result.frequency,
                         result.lost_probe_packets))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    archive(
        "ablation_probe_size",
        "\n".join(
            f"{size:>5}B  true F={tf:.4f}  est F={ef:.4f}  lost pkts={lost}"
            for size, tf, ef, lost in rows
        ),
    )
    # Larger probes are likelier to be clipped by a full queue.
    lost_by_size = [lost for _s, _t, _e, lost in rows]
    assert lost_by_size[0] <= lost_by_size[-1]
    for _size, true_f, est_f, _lost in rows:
        assert est_f == pytest.approx(true_f, rel=1.5)


def test_ablation_red_queue(benchmark, profile, archive):
    """BADABING keeps working when the bottleneck runs RED, not drop-tail."""

    def run():
        result, truth = run_badabing(
            "episodic_cbr", p=0.5, n_slots=_cbr_n_slots(profile), seed=131,
            scenario_kwargs=CBR_KWARGS,
            testbed_config=TestbedConfig(red=True),
        )
        return truth, result

    truth, result = benchmark.pedantic(run, rounds=1, iterations=1)
    archive(
        "ablation_red",
        f"RED bottleneck: true F={truth.frequency:.4f} "
        f"est F={result.frequency:.4f} (episodes={truth.n_episodes})",
    )
    assert truth.n_episodes > 0
    assert result.frequency > 0
    # RED spreads drops in time, so truth and estimate stay the same order
    # of magnitude even though the loss process is no longer tail-drop.
    assert result.frequency == pytest.approx(truth.frequency, rel=2.0)


def test_ablation_modulation(benchmark, profile, archive):
    """Geometric (BADABING) vs Poisson vs periodic at matched rates."""

    def run():
        # BADABING.
        bb_result, bb_truth = run_badabing(
            "episodic_cbr", p=0.3, n_slots=_cbr_n_slots(profile), seed=137,
            scenario_kwargs=CBR_KWARGS,
        )
        duration = _cbr_n_slots(profile) * 0.005
        interval = 600 * 8 / bb_result.probe_load_bps
        rows = [("badabing", bb_truth.frequency, bb_result.frequency)]
        for name, tool_class, kwargs in (
            ("zing", ZingTool, {"mean_interval": interval}),
            ("pinglike", PingLikeTool, {"interval": interval}),
        ):
            sim, testbed = build_testbed(seed=137)
            apply_scenario(sim, testbed, "episodic_cbr", **CBR_KWARGS)
            tool = tool_class(
                sim, testbed.probe_sender, testbed.probe_receiver,
                packet_size=600, duration=duration, start=10.0, **kwargs,
            )
            sim.run(until=10.0 + duration + DRAIN_TIME)
            truth = compute_ground_truth(testbed, 0.005, 10.0, duration)
            rows.append((name, truth.frequency, tool.result().frequency))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    archive(
        "ablation_modulation",
        "\n".join(
            f"{name:<10} true F={tf:.4f}  reported F={ef:.4f}"
            for name, tf, ef in rows
        ),
    )
    by_name = {name: (tf, ef) for name, tf, ef in rows}
    bb_error = abs(by_name["badabing"][1] - by_name["badabing"][0])
    for baseline in ("zing", "pinglike"):
        true_f, est_f = by_name[baseline]
        assert abs(est_f - true_f) >= bb_error


def test_ablation_multihop(benchmark, profile, archive):
    """Path-level accuracy as bottleneck hops accumulate (§6.2 future work)."""
    from repro.experiments.runner import run_badabing_multihop

    def run():
        rows = []
        for n_hops in (1, 2, 4):
            result, truth = run_badabing_multihop(
                n_hops,
                p=0.5,
                n_slots=_cbr_n_slots(profile),
                seed=141,
                mean_spacings=[8.0 + 2.0 * hop for hop in range(n_hops)],
            )
            rows.append((n_hops, truth.frequency, result.frequency,
                         truth.duration_mean, result.duration_seconds))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    archive(
        "ablation_multihop",
        "\n".join(
            f"{hops} hops  true F={tf:.4f} est F={ef:.4f}  "
            f"true D={td * 1000:.1f}ms est D={ed * 1000:.1f}ms"
            for hops, tf, ef, td, ed in rows
        ),
    )
    # More hops -> more path congestion; the estimate keeps tracking it.
    true_fs = [tf for _h, tf, _ef, _td, _ed in rows]
    assert true_fs[0] < true_fs[-1]
    for _hops, true_f, est_f, _td, _ed in rows:
        assert est_f == pytest.approx(true_f, rel=0.8)


def test_ablation_uncorrelated_loss(benchmark, profile, archive):
    """End-host/NIC-style random loss on the probe's receiving access link.

    §6.1 argues that loss "at end host operating system buffers or in
    network interface card buffers" can be filtered because "such losses
    are unlikely to be correlated with end-to-end network congestion and
    delays". Measured: the paper's mean-of-OWD_max alone does NOT achieve
    this — uncorrelated losses both anchor the tau rule at innocent times
    and pollute the threshold history, inflating F-hat ~3x at 0.5%/packet
    NIC loss. Making the correlation test explicit
    (``filter_uncorrelated_losses``: a loss whose own delay evidence is
    below the congestion threshold is reclassified as noise) restores
    accuracy. Both markings run over the same lossy measurement.
    """
    from repro.config import BadabingConfig, MarkingConfig
    from repro.core.badabing import BadabingTool
    from repro.experiments.runner import default_marking_for

    def run():
        baseline, truth0 = run_badabing(
            "episodic_cbr", p=0.5, n_slots=_cbr_n_slots(profile),
            seed=151, scenario_kwargs=CBR_KWARGS,
        )
        sim, testbed = build_testbed(seed=151)
        apply_scenario(sim, testbed, "episodic_cbr", **CBR_KWARGS)
        testbed.topology.nodes["routerR"].links["probercv"].set_random_loss(0.005)
        config = BadabingConfig(
            p=0.5, n_slots=_cbr_n_slots(profile),
            marking=default_marking_for(0.5, 0.005),
        )
        tool = BadabingTool(
            sim, testbed.probe_sender, testbed.probe_receiver, config, start=10.0
        )
        sim.run(until=tool.end_time + DRAIN_TIME)
        truth = compute_ground_truth(testbed, 0.005, 10.0, config.duration)
        base = config.marking
        rows = [("clean/paper", truth0.frequency, baseline.frequency,
                 baseline.marking.noise_losses)]
        for name, filtered in (("lossy/paper", False), ("lossy/filtered", True)):
            marked = tool.result(
                marking=MarkingConfig(
                    alpha=base.alpha, tau=base.tau,
                    filter_uncorrelated_losses=filtered,
                )
            )
            rows.append((name, truth.frequency, marked.frequency,
                         marked.marking.noise_losses))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    archive(
        "ablation_uncorrelated_loss",
        "\n".join(
            f"{name:<15} true F={tf:.4f}  est F={ef:.4f}  noise losses={nl}"
            for name, tf, ef, nl in rows
        ),
    )
    by_name = {name: (tf, ef, nl) for name, tf, ef, nl in rows}
    _t, clean_f, _n = by_name["clean/paper"]
    _t, unfiltered_f, _n = by_name["lossy/paper"]
    truth_f, filtered_f, noise = by_name["lossy/filtered"]
    assert unfiltered_f > filtered_f  # the filter removes inflation
    assert noise > 0
    assert abs(filtered_f - truth_f) < abs(unfiltered_f - truth_f)
    assert filtered_f - clean_f < 0.01
