"""Units and conversion helpers.

The simulator works internally in SI base units:

* time in **seconds** (float),
* data sizes in **bytes** (int),
* rates in **bits per second** (float).

These helpers exist so that configuration code can say ``mbps(155)`` or
``ms(100)`` instead of sprinkling magic multipliers around.
"""

from __future__ import annotations

#: Bits per byte; named to make rate/size conversions self-documenting.
BITS_PER_BYTE = 8


def kbps(value: float) -> float:
    """Convert kilobits/second to bits/second."""
    return float(value) * 1e3


def mbps(value: float) -> float:
    """Convert megabits/second to bits/second."""
    return float(value) * 1e6


def gbps(value: float) -> float:
    """Convert gigabits/second to bits/second."""
    return float(value) * 1e9


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return float(value) * 1e-6


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return float(value) * 1e-3


def seconds_to_ms(value: float) -> float:
    """Convert seconds to milliseconds (for display)."""
    return float(value) * 1e3


def kib(value: float) -> int:
    """Convert KiB to bytes."""
    return int(value * 1024)


def mib(value: float) -> int:
    """Convert MiB to bytes."""
    return int(value * 1024 * 1024)


def transmission_time(size_bytes: int, rate_bps: float) -> float:
    """Serialization delay of ``size_bytes`` on a ``rate_bps`` link."""
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    return size_bytes * BITS_PER_BYTE / rate_bps


def bytes_for_duration(duration_s: float, rate_bps: float) -> int:
    """How many bytes a ``rate_bps`` link carries in ``duration_s`` seconds.

    Used, e.g., to size a buffer to "100 milliseconds of packets" the way
    the paper's testbed bottleneck was configured.
    """
    if duration_s < 0:
        raise ValueError(f"duration must be non-negative, got {duration_s}")
    return int(duration_s * rate_bps / BITS_PER_BYTE)
