"""Windowed (streaming) estimation over a long-running measurement.

§7's "alternate design is to take measurements continuously" implies a
monitoring deployment where loss characteristics are reported over time,
not once. :class:`WindowedEstimator` consumes experiment outcomes in slot
order and emits one :class:`WindowPoint` per fixed-size slot window —
a time series of F̂ (and D̂ when the window saw enough transitions), with
the §5.4 validation evaluated per window.

This makes regime changes visible: a path whose loss-episode rate shifts
mid-measurement shows a step in the F̂ series long before the aggregate
estimate reflects it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.core.estimators import (
    duration_from_counter,
    estimate_from_outcomes,
    frequency_from_counter,
)
from repro.core.records import ExperimentOutcome
from repro.core.validation import SequentialValidator, validate_outcomes
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WindowPoint:
    """Estimates for one window of slots."""

    window_index: int
    start_slot: int
    end_slot: int
    n_experiments: int
    frequency: float
    #: None when the window saw no transitions (duration undefined there).
    duration_slots: Optional[float]
    transitions: int
    acceptable: bool

    def duration_seconds(self, slot_width: float) -> Optional[float]:
        if self.duration_slots is None:
            return None
        return self.duration_slots * slot_width


class WindowedEstimator:
    """Re-run the §5 estimators over fixed-size slot windows.

    Parameters
    ----------
    window_slots:
        Window width in slots (e.g. 12,000 = one minute at 5 ms).
    min_experiments:
        Windows with fewer experiments are skipped (no point estimating
        from a handful of observations).
    """

    def __init__(self, window_slots: int, min_experiments: int = 10):
        if window_slots < 2:
            raise ConfigurationError(f"window_slots must be >= 2: {window_slots}")
        if min_experiments < 1:
            raise ConfigurationError(f"min_experiments must be >= 1: {min_experiments}")
        self.window_slots = window_slots
        self.min_experiments = min_experiments

    def windows(self, outcomes: Iterable[ExperimentOutcome]) -> List[WindowPoint]:
        """Partition outcomes by start slot and estimate each window."""
        buckets = {}
        for outcome in outcomes:
            buckets.setdefault(outcome.start_slot // self.window_slots, []).append(
                outcome
            )
        points: List[WindowPoint] = []
        for index in sorted(buckets):
            window_outcomes = buckets[index]
            if len(window_outcomes) < self.min_experiments:
                continue
            estimate = estimate_from_outcomes(window_outcomes)
            validation = validate_outcomes(window_outcomes)
            points.append(
                WindowPoint(
                    window_index=index,
                    start_slot=index * self.window_slots,
                    end_slot=(index + 1) * self.window_slots - 1,
                    n_experiments=len(window_outcomes),
                    frequency=estimate.frequency,
                    duration_slots=(
                        estimate.duration_slots if estimate.duration_valid else None
                    ),
                    transitions=validation.transition_count,
                    acceptable=validation.is_acceptable(),
                )
            )
        return points


@dataclass(frozen=True)
class ConvergencePoint:
    """Cumulative estimates + validator signals after one more experiment.

    ``end_slot`` is the last slot the experiment covered, so the point can
    be placed on the simulation time axis (``start + (end_slot + 1) * slot``)
    by consumers that know the slot width.
    """

    n_experiments: int
    end_slot: int
    frequency: float
    #: None while no transition has been observed (duration undefined).
    duration_slots: Optional[float]
    transitions: int
    violation_rate: float
    transition_asymmetry: float
    #: 1/sqrt(S); None while S = 0.
    estimated_relative_error: Optional[float]
    should_stop: bool
    should_abort: bool


def convergence_points(
    outcomes: Iterable[ExperimentOutcome],
    improved: Optional[bool] = None,
    validator: Optional[SequentialValidator] = None,
    every: int = 1,
) -> List[ConvergencePoint]:
    """Replay outcomes in slot order, emitting the estimator trajectory.

    This is the batch twin of a live monitoring loop: outcomes are sorted
    by start slot (the order a continuously-running collector would see
    them) and folded one at a time into a
    :class:`~repro.core.validation.SequentialValidator`, whose pattern
    counter doubles as the estimator state; after every ``every``-th
    outcome (and always after the last) the cumulative F̂, D̂, and §5.4
    trustworthiness signals are recorded. Everything here is in the
    simulation domain, so seeded runs yield identical trajectories. A
    validator passed in with prior history contributes that history to the
    cumulative estimates (continuation semantics).
    """
    if every < 1:
        raise ConfigurationError(f"every must be >= 1, got {every}")
    ordered = sorted(outcomes, key=lambda o: (o.start_slot, o.bits))
    if validator is None:
        validator = SequentialValidator()
    counter = validator.pattern_counter
    use_improved = (
        any(outcome.is_extended for outcome in ordered) if improved is None else improved
    )
    points: List[ConvergencePoint] = []
    for index, outcome in enumerate(ordered):
        validator.add(outcome)
        if (index + 1) % every and index + 1 != len(ordered):
            continue
        signals = validator.signals()
        duration = duration_from_counter(counter, use_improved)
        points.append(
            ConvergencePoint(
                n_experiments=counter["M"],
                end_slot=outcome.start_slot + len(outcome.bits) - 1,
                frequency=frequency_from_counter(counter),
                duration_slots=None if duration != duration else duration,
                transitions=signals.transitions,
                violation_rate=signals.violation_rate,
                transition_asymmetry=signals.transition_asymmetry,
                estimated_relative_error=signals.estimated_relative_error,
                should_stop=signals.should_stop,
                should_abort=signals.should_abort,
            )
        )
    return points


def detect_level_shift(
    points: List[WindowPoint], factor: float = 2.0, min_windows: int = 3
) -> Optional[int]:
    """Crude change detection on the F̂ series.

    Returns the index (into ``points``) of the first window whose
    frequency differs from the running mean of all preceding windows by
    more than ``factor`` (in either direction), or None. Needs at least
    ``min_windows`` of history before it will fire. A building block for
    "constancy" analyses in the spirit of Zhang et al. [39].
    """
    if factor <= 1.0:
        raise ConfigurationError(f"factor must exceed 1, got {factor}")
    history: List[float] = []
    for index, point in enumerate(points):
        if len(history) >= min_windows:
            mean = sum(history) / len(history)
            if mean > 0 and (
                point.frequency > factor * mean or point.frequency < mean / factor
            ):
                return index
            if mean == 0 and point.frequency > 0:
                return index
        history.append(point.frequency)
    return None
