"""The paper's contribution: the BADABING probe process and estimators.

* :mod:`repro.core.records` — probe records and experiment outcomes,
* :mod:`repro.core.schedule` — the geometric experiment schedule (§5.2/§5.3),
* :mod:`repro.core.marking` — loss + one-way-delay congestion marking (§6.1),
* :mod:`repro.core.estimators` — frequency and duration estimators (§5.2.2,
  §5.3.1),
* :mod:`repro.core.validation` — the §5.4 validation tests and stopping rule,
* :mod:`repro.core.adaptive` — open-ended measurement driven by validation,
* :mod:`repro.core.badabing` — the BADABING tool running on the simulator,
* :mod:`repro.core.zing` — the ZING Poisson baseline (§4),
* :mod:`repro.core.pinglike` — fixed-interval PING-like baseline,
* :mod:`repro.core.jitter` — probe launch-time jitter models (host realism),
* :mod:`repro.core.clock` — backend-agnostic time sources (sim vs wall
  clock) plus clock offset/skew models and removal (§7).
"""

from repro.core.records import ExperimentOutcome, ProbeRecord
from repro.core.schedule import GeometricSchedule
from repro.core.marking import CongestionMarker, MarkingResult
from repro.core.estimators import LossEstimate, estimate_from_outcomes, predicted_duration_stddev
from repro.core.parametric import GilbertEstimate, estimate_gilbert
from repro.core.planning import MeasurementPlan, plan_measurement, required_p, required_slots
from repro.core.streaming import WindowedEstimator, WindowPoint, detect_level_shift
from repro.core.uncertainty import BootstrapResult, bootstrap_estimates
from repro.core.validation import ValidationReport, SequentialValidator
from repro.core.adaptive import AdaptiveMeasurement, AdaptiveOutcome
from repro.core.badabing import BadabingResult, BadabingTool
from repro.core.zing import ZingResult, ZingTool
from repro.core.pinglike import PingLikeTool
from repro.core.jitter import GaussianJitter, NoJitter, SpikeJitter, UniformJitter
from repro.core.clock import (
    AffineClock,
    Clock,
    MonotonicClock,
    SimClock,
    deskew_probe_records,
    estimate_skew,
    rebase_probe_owds,
    remove_skew,
)

__all__ = [
    "ExperimentOutcome",
    "ProbeRecord",
    "GeometricSchedule",
    "CongestionMarker",
    "MarkingResult",
    "LossEstimate",
    "estimate_from_outcomes",
    "predicted_duration_stddev",
    "GilbertEstimate",
    "estimate_gilbert",
    "MeasurementPlan",
    "plan_measurement",
    "required_p",
    "required_slots",
    "WindowedEstimator",
    "WindowPoint",
    "detect_level_shift",
    "BootstrapResult",
    "bootstrap_estimates",
    "ValidationReport",
    "SequentialValidator",
    "AdaptiveMeasurement",
    "AdaptiveOutcome",
    "BadabingResult",
    "BadabingTool",
    "ZingResult",
    "ZingTool",
    "PingLikeTool",
    "NoJitter",
    "UniformJitter",
    "GaussianJitter",
    "SpikeJitter",
    "AffineClock",
    "Clock",
    "MonotonicClock",
    "SimClock",
    "deskew_probe_records",
    "estimate_skew",
    "rebase_probe_owds",
    "remove_skew",
]
