"""Frequency and duration estimators (§5.2.2 and §5.3).

Notation (matching the paper):

* ``M``  — number of experiments conducted,
* ``z_i`` — first digit of ``y_i``; ``F̂ = Σ z_i / M``,
* ``R``  — #{i : y_i ∈ {01, 10, 11}} over two-slot observations,
* ``S``  — #{i : y_i ∈ {01, 10}},
* Basic algorithm (assumes r = p2/p1 = 1):  ``D̂ = 2(R/S − 1) + 1``,
* Improved algorithm: from extended experiments, ``U = #{011, 110}`` and
  ``V = #{001, 100}`` estimate ``r = U/V`` (both state families contain the
  same number 2B of slots in the full series, so their observation-rate
  ratio is p2/p1), giving ``D̂ = (2V/U)(R/S − 1) + 1``.

Durations are in slots; multiply by the slot width for seconds.

Fidelity note: the §5.3 identity "the combined number of states 011,110 in
the full time series is still 2B" holds when every congestion episode and
every congestion-free gap spans at least two slots. That is §7's operating
requirement — "the interval between the discrete time slots is smaller than
the time scales of the congested episodes" — made precise: with 1-slot
episodes present, U undercounts and the r-correction over-corrects. The
estimator tests construct renewal processes that honor the assumption.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro import profiling as _profiling
from repro.core.records import CoverageReport, ExperimentOutcome
from repro.errors import EstimationError

#: Two-slot patterns contributing to R (some congestion observed).
_R_PATTERNS = frozenset({"01", "10", "11"})
#: Two-slot patterns contributing to S (a transition observed).
_S_PATTERNS = frozenset({"01", "10"})
#: Extended patterns contributing to U (adjacent-pair transitions).
_U_PATTERNS = frozenset({"011", "110"})
#: Extended patterns contributing to V (gap transitions).
_V_PATTERNS = frozenset({"001", "100"})


@dataclass
class LossEstimate:
    """Result of one estimation pass.

    ``duration_slots`` is ``nan`` when no transition was observed (S = 0)
    or when the improved correction was requested but U = 0 or V = 0 (the
    r̂ = U/V correction needs both transition families); check
    :attr:`duration_valid` before using it.
    """

    frequency: float
    duration_slots: float
    n_experiments: int
    counts: Dict[str, int] = field(default_factory=dict)
    r_hat: Optional[float] = None
    improved: bool = False
    #: Fraction of the planned measurement the estimate actually rests on
    #: (None when the caller provided no plan to compare against).
    coverage: Optional[CoverageReport] = None

    @property
    def duration_valid(self) -> bool:
        return not math.isnan(self.duration_slots)

    def duration_seconds(self, slot_width: float) -> float:
        """Convert the duration estimate to seconds."""
        return self.duration_slots * slot_width

    @property
    def ratio_rs(self) -> float:
        """R/S, the quotient at the heart of the duration estimator."""
        s = self.counts.get("S", 0)
        if s == 0:
            return float("nan")
        return self.counts.get("R", 0) / s

    @property
    def episode_rate_per_slot(self) -> float:
        """Estimated loss episodes per slot (§7's L): F̂ / D̂.

        F̂ is the fraction of congested slots and D̂ the mean episode
        length in slots, so their quotient is episode starts per slot.
        ``nan`` when the duration estimate is invalid or zero.
        """
        if not self.duration_valid or self.duration_slots <= 0:
            return float("nan")
        return self.frequency / self.duration_slots

    def loss_rate(self, within_episode_drop_probability: float) -> float:
        """§1's derived loss rate from the two measured characteristics.

        The fraction of time congested (F̂) times the packet drop
        probability while congested gives the long-run packet loss rate.
        The drop probability is workload-specific (e.g. ``(r-B)/r`` for a
        CBR overload of rate r over bottleneck B) and must be supplied or
        estimated separately — the probe process itself estimates it as
        lost probe packets / probe packets sent during congested slots.
        """
        if not 0 <= within_episode_drop_probability <= 1:
            raise EstimationError(
                "drop probability must be in [0, 1], got "
                f"{within_episode_drop_probability}"
            )
        return self.frequency * within_episode_drop_probability


def update_pattern_counter(counter: Counter, outcome: ExperimentOutcome) -> None:
    """Fold one outcome into a pattern counter (the incremental kernel).

    Shared by :func:`count_patterns` (batch) and the streaming consumers
    (:class:`~repro.core.validation.SequentialValidator`, convergence
    telemetry), so an outcome fed one at a time produces exactly the same
    totals as the batch path. ``E`` counts extended (3-slot) experiments.
    """
    pattern = outcome.as_string
    counter[pattern] += 1
    counter["M"] += 1
    counter["Z"] += outcome.bits[0]
    if len(pattern) == 2:
        if pattern in _R_PATTERNS:
            counter["R"] += 1
        if pattern in _S_PATTERNS:
            counter["S"] += 1
    else:
        counter["E"] += 1
        if pattern in _U_PATTERNS:
            counter["U"] += 1
        if pattern in _V_PATTERNS:
            counter["V"] += 1


def count_patterns(outcomes: Iterable[ExperimentOutcome]) -> Counter:
    """Histogram of the y_i strings, plus the derived R/S/U/V totals.

    Two-slot prefixes of extended experiments are *not* folded into R and S
    by default — §5.3 uses triples only for estimating r. (The folding
    variant of §5.5 is exposed via ``estimate_from_outcomes(...,
    include_extended_prefixes=True)``.)
    """
    counter: Counter = Counter()
    for outcome in outcomes:
        update_pattern_counter(counter, outcome)
    return counter


def frequency_from_counter(counter: Counter) -> float:
    """F̂ = Σ z_i / M from a pattern counter (nan when no experiments)."""
    m = counter.get("M", 0)
    if m == 0:
        return float("nan")
    return counter.get("Z", 0) / m


def duration_from_counter(counter: Counter, improved: bool) -> float:
    """D̂ in slots from a pattern counter; ``nan`` when undefined.

    The same arithmetic :func:`estimate_from_outcomes` performs, exposed
    separately so streaming consumers can re-evaluate the estimators after
    every outcome without materializing a :class:`LossEstimate`.

    The improved correction needs *both* transition families observed:
    with U = 0 the ratio is undefined, and with V = 0 the correction
    factor ``2V/U`` collapses to zero — the formula would return exactly
    1.0 (one slot) regardless of how long R/S says the episodes are, a
    silently "valid" D̂ in precisely the regimes (short measurements,
    rare long episodes) where it misleads most. Both degenerate cases
    return ``nan`` so ``duration_valid`` reports the truth.
    """
    s = counter.get("S", 0)
    if s == 0:
        return float("nan")
    base_term = counter.get("R", 0) / s - 1.0
    if improved:
        u = counter.get("U", 0)
        v = counter.get("V", 0)
        if u == 0 or v == 0:
            return float("nan")
        return (2.0 * v / u) * base_term + 1.0
    return 2.0 * base_term + 1.0


def estimate_from_outcomes(
    outcomes: Iterable[ExperimentOutcome],
    improved: Optional[bool] = None,
    include_extended_prefixes: bool = False,
    coverage: Optional[CoverageReport] = None,
) -> LossEstimate:
    """Run the §5 estimators over a set of experiment outcomes.

    Parameters
    ----------
    outcomes:
        The measured y_i values.
    improved:
        Force the improved (r-corrected) duration estimator on/off. By
        default it is used iff any extended experiments are present.
    include_extended_prefixes:
        §5.5 modification: also count the first two digits of extended
        experiments toward R and S, increasing the sample size.
    coverage:
        The plan-vs-observed accounting of a degraded measurement. It is
        attached to the returned estimate and included in the error raised
        when nothing usable survived.

    Raises
    ------
    EstimationError
        If no usable experiments were provided at all (coverage zero).
        This is the *only* failure mode — partial data degrades to a
        thinner estimate, never to an arithmetic error.
    """
    with _profiling.profile_stage("estimator.fold"):
        return _estimate_from_outcomes(
            outcomes,
            improved=improved,
            include_extended_prefixes=include_extended_prefixes,
            coverage=coverage,
        )


def _estimate_from_outcomes(
    outcomes: Iterable[ExperimentOutcome],
    improved: Optional[bool] = None,
    include_extended_prefixes: bool = False,
    coverage: Optional[CoverageReport] = None,
) -> LossEstimate:
    outcome_list = list(outcomes)
    if not outcome_list:
        detail = f" ({coverage.describe()})" if coverage is not None else ""
        raise EstimationError(f"no experiments to estimate from{detail}")
    counter = count_patterns(outcome_list)
    return estimate_from_counter(
        counter,
        improved=improved,
        include_extended_prefixes=include_extended_prefixes,
        coverage=coverage,
    )


def fold_extended_prefixes(counter: Counter) -> Counter:
    """§5.5: fold the two-slot prefixes of extended experiments into R/S.

    Derivable from the pattern counts alone (the prefix of ``"011"`` is
    ``"01"``, ...), so the batch pipeline and the scalar one share this
    exactly. Returns a new counter; the input is not mutated.
    """
    folded = Counter(counter)
    for pattern in ("000", "001", "010", "011", "100", "101", "110", "111"):
        count = counter.get(pattern, 0)
        if not count:
            continue
        prefix = pattern[:2]
        if prefix in _R_PATTERNS:
            folded["R"] += count
        if prefix in _S_PATTERNS:
            folded["S"] += count
    return folded


def estimate_from_counter(
    counter: Counter,
    improved: Optional[bool] = None,
    include_extended_prefixes: bool = False,
    coverage: Optional[CoverageReport] = None,
) -> LossEstimate:
    """Run the §5 estimators over an already-folded pattern counter.

    The shared arithmetic core of :func:`estimate_from_outcomes`: the
    scalar path folds outcomes one at a time into the counter, the batch
    path (:mod:`repro.core.batch`) reconstructs the identical counter from
    one ``np.bincount`` — both land here, so the estimator cannot fork
    between them.
    """
    m = counter.get("M", 0)
    if m == 0:
        detail = f" ({coverage.describe()})" if coverage is not None else ""
        raise EstimationError(f"no experiments to estimate from{detail}")
    if include_extended_prefixes:
        counter = fold_extended_prefixes(counter)

    frequency = counter["Z"] / m

    use_improved = counter["E"] > 0 if improved is None else improved
    duration = duration_from_counter(counter, use_improved)

    # r̂ = U/V is only defined when both transition families were observed;
    # with V = 0 (like U = 0) there is no ratio to report — the same
    # degeneracy that invalidates the improved D̂ above.
    r_hat: Optional[float] = None
    if use_improved and counter["S"] > 0 and counter["U"] > 0 and counter["V"] > 0:
        r_hat = counter["U"] / counter["V"]

    counts = {
        key: counter.get(key, 0)
        for key in ("R", "S", "U", "V", "01", "10", "11", "001", "100", "011", "110", "010", "101", "00", "000", "111")
    }
    return LossEstimate(
        frequency=frequency,
        duration_slots=duration,
        n_experiments=m,
        counts=counts,
        r_hat=r_hat,
        improved=use_improved,
        coverage=coverage,
    )


def predicted_duration_stddev(p: float, n_slots: int, loss_event_rate: float) -> float:
    """§7's guidance: StdDev(duration) ≈ 1 / sqrt(p · N · L).

    ``loss_event_rate`` is L, the mean number of loss events per slot.
    Used to choose (p, N) for a target accuracy before measuring.
    """
    if p <= 0 or n_slots <= 0 or loss_event_rate <= 0:
        raise EstimationError(
            f"p, N and L must all be positive (got {p}, {n_slots}, {loss_event_rate})"
        )
    return 1.0 / math.sqrt(p * n_slots * loss_event_rate)
