"""Congestion marking from probe loss and one-way delay (§6.1).

A probe that loses a packet has certainly met congestion, but most packets
pass through a congested queue untouched, so loss alone under-detects.
BADABING therefore also marks a probe as congested when it is *near a loss
in time* and *delayed like a full queue*:

1. Whenever a probe loses a packet, the one-way delay of the most recent
   successfully transmitted packet estimates the maximum queue depth
   (``OWD_max``). A bounded history of such estimates is kept and averaged
   (which also filters end-host/NIC losses whose delays are uncorrelated
   with path congestion).
2. A probe is marked congested iff it lost a packet, **or** it lies within
   ``tau`` seconds of some probe that lost a packet *and* its own maximum
   one-way delay exceeds ``(1 − alpha) × mean(OWD_max)``.

This assumes FIFO queueing at the congestion point, as the paper notes.
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

from repro import profiling as _profiling
from repro.config import MarkingConfig
from repro.core.records import ProbeRecord
from repro.errors import ConfigurationError


@dataclass
class MarkingResult:
    """Per-slot congestion indications plus marking diagnostics."""

    #: probed slot -> congestion indication (the input to y_i assembly).
    slot_states: Dict[int, bool]
    #: How many probes were marked because of actual probe packet loss.
    marked_by_loss: int = 0
    #: How many probes were marked by the delay-proximity rule.
    marked_by_delay: int = 0
    #: Lossy probes reclassified as end-host noise (filter enabled only).
    noise_losses: int = 0
    #: The OWD_max estimates accumulated during the pass.
    owd_max_estimates: List[float] = field(default_factory=list)

    @property
    def marked(self) -> int:
        return self.marked_by_loss + self.marked_by_delay


def _aggregate(history: "Deque[float]", statistic: str) -> float:
    """Combine the OWD_max history into one value per the config."""
    if statistic == "mean":
        return sum(history) / len(history)
    if statistic == "max":
        return max(history)
    ordered = sorted(history)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return 0.5 * (ordered[middle - 1] + ordered[middle])


class CongestionMarker:
    """Applies the §6.1 marking rule to a chronological probe stream."""

    def __init__(self, config: Optional[MarkingConfig] = None):
        self.config = config if config is not None else MarkingConfig()

    def mark(self, probes: Sequence[ProbeRecord]) -> MarkingResult:
        """Mark every probe; returns per-slot states keyed by slot index.

        ``probes`` must be sorted by send time (one probe per slot).
        """
        with _profiling.profile_stage("marking.apply"):
            return self._mark(probes)

    def mark_arrays(self, arrays) -> "MarkingResult":
        """Array-batched marking over a probe structure-of-arrays.

        Takes a :class:`repro.core.batch.ProbeArrays` and runs the
        vectorized §6.1 pass (:func:`repro.core.batch.mark_probe_arrays`),
        which is bit-identical to :meth:`mark` over the equivalent record
        list; the result is materialized into the scalar
        :class:`MarkingResult` shape for drop-in consumers. Callers that
        stay array-native (the batch pipeline) use the batch function
        directly and skip the dict materialization.
        """
        from repro.core.batch import mark_probe_arrays

        batch = mark_probe_arrays(arrays, self.config)
        return MarkingResult(
            slot_states=batch.slot_states_dict(),
            marked_by_loss=batch.marked_by_loss,
            marked_by_delay=batch.marked_by_delay,
            noise_losses=batch.noise_losses,
            owd_max_estimates=batch.owd_max_estimates,
        )

    def _mark(self, probes: Sequence[ProbeRecord]) -> MarkingResult:
        cfg = self.config
        for i in range(1, len(probes)):
            if probes[i].send_time < probes[i - 1].send_time:
                raise ConfigurationError("probes must be sorted by send time")

        # Pass 1: collect loss times and the running OWD_max estimates.
        loss_times: List[float] = []
        noise_loss_slots = set()
        history: Deque[float] = deque(maxlen=cfg.owd_history)
        #: Aggregated OWD_max threshold as of each probe, in probe order.
        thresholds: List[Optional[float]] = []
        last_success_owd: Optional[float] = None
        for probe in probes:
            if probe.lost:
                # Optionally classify the loss: a loss whose own delay
                # evidence sits well below the congestion threshold did not
                # come from a full queue — it is end-host/NIC noise and
                # must not anchor the tau rule or feed the threshold
                # history (§6.1's "filters loss at end host operating
                # system buffers", made explicit).
                current = (
                    (1.0 - cfg.alpha) * _aggregate(history, cfg.owd_statistic)
                    if history
                    else None
                )
                evidence = probe.max_owd
                if evidence is None:
                    evidence = probe.owd_before_loss
                is_noise = (
                    cfg.filter_uncorrelated_losses
                    and current is not None
                    and evidence is not None
                    and evidence < current
                )
                if is_noise:
                    noise_loss_slots.add(probe.slot)
                else:
                    loss_times.append(probe.send_time)
                    estimate = probe.owd_before_loss
                    if estimate is None:
                        # Fall back to the newest delivery seen anywhere
                        # before this loss (the sender/receiver join
                        # supplies owd_before_loss when it can be
                        # attributed precisely).
                        estimate = last_success_owd
                    if estimate is not None:
                        history.append(estimate)
            thresholds.append(
                (1.0 - cfg.alpha) * _aggregate(history, cfg.owd_statistic)
                if history
                else None
            )
            if probe.owds:
                last_success_owd = probe.owds[-1]

        # Probes that predate the first OWD_max estimate fall back to the
        # end-of-run mean: the tau rule is symmetric in time ("within tau
        # seconds of an indication of a lost packet" looks both ways), so
        # the delay threshold must be available on both sides too.
        final_threshold: Optional[float] = (
            (1.0 - cfg.alpha) * _aggregate(history, cfg.owd_statistic)
            if history
            else None
        )
        thresholds = [
            threshold if threshold is not None else final_threshold
            for threshold in thresholds
        ]

        # Pass 2: mark.
        result = MarkingResult(slot_states={})
        for probe, threshold in zip(probes, thresholds):
            if probe.lost and probe.slot not in noise_loss_slots:
                result.slot_states[probe.slot] = True
                result.marked_by_loss += 1
                continue
            if probe.slot in noise_loss_slots:
                # Reclassified end-host loss: fall through to the delay
                # rule like any other probe (its surviving packets still
                # carry delay evidence).
                result.noise_losses += 1
            congested = False
            if threshold is not None and loss_times:
                near_loss = _nearest_distance(loss_times, probe.send_time) <= cfg.tau
                max_owd = probe.max_owd
                if near_loss and max_owd is not None and max_owd > threshold:
                    congested = True
            if congested:
                result.marked_by_delay += 1
            result.slot_states[probe.slot] = congested
        result.owd_max_estimates = list(history)
        return result


def _nearest_distance(sorted_times: List[float], time: float) -> float:
    """Distance from ``time`` to the nearest element of ``sorted_times``."""
    index = bisect.bisect_left(sorted_times, time)
    best = float("inf")
    if index < len(sorted_times):
        best = sorted_times[index] - time
    if index > 0:
        best = min(best, time - sorted_times[index - 1])
    return best
