"""Experiment schedules (§5.2, §5.3).

The probe process is geometric in discrete time: at every slot ``i`` a coin
with bias ``p`` decides whether an experiment starts there. A *basic*
experiment probes slots ``i`` and ``i+1``; under the improved algorithm,
half the experiments (an independent fair coin) are *extended* and probe
``i, i+1, i+2``.

Experiments overlap freely (an experiment may start while another is in
flight); each slot is probed **at most once** — overlapping experiments
share the probe in a shared slot. This matches the actual BADABING tool's
behaviour and is what makes the paper's reported probe load (one 3-packet
probe per covered slot) come out right: the expected fraction of probed
slots is ``1-(1-p)^2`` for the basic design, not ``2p``.

The design property the estimators rely on is that experiment *starts* are
i.i.d. Bernoulli(p) across slots — "the performance of the accompanying
estimators relies on the total number of probes that are sent, but not on
their sending rate".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro import profiling as _profiling
from repro.core.records import CoverageReport, ExperimentOutcome
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Experiment:
    """A planned experiment: start slot and how many slots it spans."""

    start_slot: int
    length: int

    def __post_init__(self) -> None:
        if self.length not in (2, 3):
            raise ConfigurationError(f"experiment length must be 2 or 3: {self.length}")
        if self.start_slot < 0:
            raise ConfigurationError(f"start_slot must be >= 0: {self.start_slot}")

    @property
    def slots(self) -> Tuple[int, ...]:
        return tuple(range(self.start_slot, self.start_slot + self.length))


class GeometricSchedule:
    """The full experiment plan for one measurement of ``n_slots`` slots.

    Parameters
    ----------
    p:
        Per-slot probability of starting an experiment.
    n_slots:
        Total number of slots (the paper's N).
    rng:
        Random stream (seeded for determinism).
    improved:
        If True, each experiment is extended (3 slots) with probability 1/2
        (§5.3); otherwise all experiments are basic (2 slots).
    vectorized:
        Generate via the array-batched RNG sweep in :mod:`repro.core.batch`
        (one mirrored block draw instead of a per-slot loop). The draw
        sequence, the resulting experiment list, and the state ``rng`` is
        left in are all identical to the scalar loop — this is a pure
        speed switch. Requires numpy.

    Start coins are drawn for *every* slot (the i.i.d. Bernoulli(p) design
    property), and the window edge is handled afterwards: an extended draw
    that would overflow the window degrades to a basic 2-slot experiment
    when that fits, and a start in the very last slot — where nothing fits
    — is dropped. Degrading (rather than discarding) keeps the effective
    start probability at slot N−2 equal to p under the improved design;
    discarding would silently halve it, biasing starts near the tail. The
    length coin is drawn either way, so seeds whose draws never overflow
    produce byte-identical schedules to the historical behaviour.
    """

    def __init__(
        self,
        p: float,
        n_slots: int,
        rng: random.Random,
        improved: bool = False,
        vectorized: bool = False,
    ):
        if not 0 < p <= 1:
            raise ConfigurationError(f"p must be in (0, 1], got {p}")
        if n_slots < 2:
            raise ConfigurationError(f"n_slots must be >= 2, got {n_slots}")
        self.p = p
        self.n_slots = n_slots
        self.improved = improved
        self.experiments: List[Experiment] = []
        #: Experiment (start, length) pairs as int64 arrays when generated
        #: vectorized (None on the scalar path) — downstream batch stages
        #: reuse them without re-walking the experiment objects.
        self.start_array = None
        self.length_array = None
        if vectorized:
            from repro.core import batch

            starts, lengths = batch.draw_schedule_arrays(
                p, n_slots, rng, improved=improved
            )
            self.start_array = starts
            self.length_array = lengths
            self.experiments = [
                Experiment(start, length)
                for start, length in zip(starts.tolist(), lengths.tolist())
            ]
            self.probe_slots: List[int] = batch.probe_slots_from_experiments(
                starts, lengths, n_slots
            ).tolist()
            return
        probed = set()
        prof = _profiling.ACTIVE
        prof_frame = prof.start("schedule.generate") if prof is not None else None
        try:
            for slot in range(n_slots):
                if rng.random() >= p:
                    continue
                length = 3 if improved and rng.random() < 0.5 else 2
                if slot + length > n_slots:
                    if slot + 2 > n_slots:
                        # Nothing fits in the final slot; the start is lost.
                        continue
                    # Degrade the overflowing extended draw to a basic
                    # experiment (keeps P(start at N-2) = p; the draw
                    # sequence is unchanged because the length coin was
                    # already consumed).
                    length = 2
                experiment = Experiment(slot, length)
                self.experiments.append(experiment)
                probed.update(experiment.slots)
            self.probe_slots = sorted(probed)
        finally:
            if prof is not None:
                prof.stop(prof_frame)

    # ------------------------------------------------------------- accounting
    @property
    def n_experiments(self) -> int:
        return len(self.experiments)

    @property
    def n_probes(self) -> int:
        """Number of probes actually sent (one per covered slot)."""
        return len(self.probe_slots)

    def probe_load_bps(self, packets_per_probe: int, probe_size: int, slot: float) -> float:
        """Average probe bit rate this schedule generates."""
        total_bits = self.n_probes * packets_per_probe * probe_size * 8
        return total_bits / (self.n_slots * slot)

    # -------------------------------------------------------------- outcomes
    def outcomes_from_states(
        self, slot_states: Dict[int, bool]
    ) -> List[ExperimentOutcome]:
        """Materialize y_i for every experiment from measured slot states.

        ``slot_states`` maps probed slot -> congestion indication (the
        marking step's output). Every slot an experiment covers was probed
        by construction; a missing entry means the probe produced no usable
        report (should not happen — loss itself is a report) and the
        experiment is skipped defensively.
        """
        outcomes: List[ExperimentOutcome] = []
        for experiment in self.experiments:
            bits = []
            for slot in experiment.slots:
                state = slot_states.get(slot)
                if state is None:
                    break
                bits.append(int(state))
            else:
                outcomes.append(ExperimentOutcome(experiment.start_slot, tuple(bits)))
        return outcomes

    def coverage_from_states(self, slot_states: Dict[int, bool]) -> CoverageReport:
        """Quantify how much of the plan the marked states actually cover."""
        return coverage_report(self.experiments, slot_states)


def coverage_report(
    experiments: Sequence[Experiment], slot_states: Dict[int, bool]
) -> CoverageReport:
    """Scheduled-vs-usable accounting for any experiment plan.

    A slot is *usable* when the marking produced a state for it; an
    experiment is usable when every slot it spans is. Shared by the live
    tool (:class:`GeometricSchedule`) and offline traces
    (:class:`repro.io.traces.Measurement`).
    """
    scheduled: set = set()
    usable_experiments = 0
    for experiment in experiments:
        slots = experiment.slots
        scheduled.update(slots)
        if all(slot in slot_states for slot in slots):
            usable_experiments += 1
    usable_slots = sum(1 for slot in scheduled if slot in slot_states)
    return CoverageReport(
        scheduled_slots=len(scheduled),
        usable_slots=usable_slots,
        scheduled_experiments=len(experiments),
        usable_experiments=usable_experiments,
    )


def outcomes_from_true_states(
    experiments: Sequence[Experiment], states: Sequence[bool]
) -> List[ExperimentOutcome]:
    """Perfect-observation outcomes (p1 = p2 = 1) from a truth sequence.

    Used by the synthetic substrate and in tests; the virtual observer in
    :mod:`repro.synthetic.observer` degrades these according to the paper's
    assumption structure.
    """
    outcomes = []
    for experiment in experiments:
        bits = tuple(int(states[slot]) for slot in experiment.slots)
        outcomes.append(ExperimentOutcome(experiment.start_slot, bits))
    return outcomes
