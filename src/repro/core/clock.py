"""Clock sources, clock models, and skew removal (§7).

Two distinct concerns share this module:

**Time sources.** The measurement pipeline (schedule walking, probe
timestamping, marking, streaming estimation) must not care whether time
comes from the discrete-event simulator or from a real host. The
:class:`Clock` protocol is that seam: anything with ``now()`` /
``now_ns()`` is a clock. :class:`SimClock` adapts a simulator (optionally
through an affine skew model) and :class:`MonotonicClock` reads the real
``time.monotonic_ns`` wall clock for the live runtime
(:mod:`repro.live`). All pipeline code downstream of a clock works in
float seconds of *that clock's* domain — nothing assumes simulator
seconds specifically.

**Clock error models and their removal.** One-way delay thresholds
require the two hosts' clocks to agree. The paper notes that offset is
trivially removable but *skew* (clocks running at slightly different
rates) is a real concern, pointing at on-line and off-line
synchronization algorithms:

* :class:`AffineClock` — an affine clock model ``c(t) = t(1 + skew) +
  offset`` attached to measurement hosts,
* :func:`estimate_skew` — the classic convex-hull/lower-envelope linear fit
  (Moon-Skelly-Towsley style): fit the line that lies *below* every
  (send-time, measured-OWD) point and minimizes the total area between the
  points and the line. True delay is always ≥ propagation, so the lower
  envelope of measured OWDs tracks the clock drift exactly.
* :func:`remove_skew` — subtract the fitted trend from measured delays,
  re-anchored at the fitted envelope (so de-skewed OWDs stay positive),
* :func:`deskew_probe_records` — the same correction applied in place over
  a BADABING probe-record stream before marking,
* :func:`rebase_probe_owds` — the "trivial" offset removal: shift all
  one-way delays so the smallest observed delay becomes the propagation
  baseline. Required before §6.1 marking when sender and receiver
  timestamps come from unsynchronized clocks (the live one-way path),
  because the ``(1 − alpha) × OWD_max`` threshold scales any constant
  offset by ``alpha`` instead of cancelling it.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from repro.errors import EstimationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.records import ProbeRecord
    from repro.net.simulator import Simulator


@runtime_checkable
class Clock(Protocol):
    """Backend-agnostic time source.

    ``now()`` returns seconds and ``now_ns()`` integer nanoseconds of the
    same instant; implementations must keep the two consistent, but the
    epoch is implementation-defined (simulation start, process start, …) —
    consumers may only difference readings from the *same* clock.
    """

    def now(self) -> float:
        """Current time in float seconds of this clock's domain."""
        ...  # pragma: no cover - protocol

    def now_ns(self) -> int:
        """Current time in integer nanoseconds of this clock's domain."""
        ...  # pragma: no cover - protocol


class AffineClock:
    """Affine host clock *model*: reads ``t * (1 + skew) + offset`` at true
    time t. Not itself a time source — pair it with a :class:`SimClock` to
    emulate a drifting host on the simulator backend."""

    def __init__(self, offset: float = 0.0, skew: float = 0.0):
        if skew <= -1.0:
            raise EstimationError(f"skew must exceed -1, got {skew}")
        self.offset = offset
        self.skew = skew

    def read(self, true_time: float) -> float:
        """Timestamp this clock produces at the given true time."""
        return true_time * (1.0 + self.skew) + self.offset


class SimClock:
    """Simulator-backed :class:`Clock`, optionally skewed by a model.

    ``SimClock(sim)`` reads virtual time directly; ``SimClock(sim, model)``
    reads what a host carrying that :class:`AffineClock` would stamp at
    the current virtual instant.
    """

    def __init__(self, sim: "Simulator", model: Optional[AffineClock] = None):
        self.sim = sim
        self.model = model

    def now(self) -> float:
        true_time = self.sim.now
        return self.model.read(true_time) if self.model is not None else true_time

    def now_ns(self) -> int:
        return int(round(self.now() * 1e9))


class MonotonicClock:
    """Wall :class:`Clock` over ``time.monotonic_ns`` (the live backend).

    Monotonic rather than wall-calendar time: immune to NTP steps, which
    would otherwise masquerade as loss-episode-scale delay shifts. Each
    host's epoch is arbitrary, so live one-way delays carry an unknown
    constant offset — remove it with :func:`rebase_probe_owds` before
    marking.
    """

    def now(self) -> float:
        return time.monotonic_ns() / 1e9

    def now_ns(self) -> int:
        return time.monotonic_ns()


def lower_convex_hull(points: Sequence[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Lower convex hull of points sorted by x (Andrew's monotone chain)."""
    hull: List[Tuple[float, float]] = []
    for point in points:
        while len(hull) >= 2 and _cross(hull[-2], hull[-1], point) <= 0:
            hull.pop()
        hull.append(point)
    return hull


def _cross(o: Tuple[float, float], a: Tuple[float, float], b: Tuple[float, float]) -> float:
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def estimate_skew(points: Sequence[Tuple[float, float]]) -> Tuple[float, float]:
    """Fit the under-line ``owd ≈ intercept + slope * t`` to OWD samples.

    Returns ``(intercept, slope)``; ``slope`` is the relative clock skew
    between receiver and sender. Among all lines through consecutive hull
    vertices (each lies below every sample), the one minimizing the summed
    vertical distance to the samples is chosen.

    Raises :class:`EstimationError` with fewer than two distinct sample
    times.
    """
    # Keep only the lowest delay per timestamp: the envelope fit ignores
    # higher samples at the same instant, and duplicate timestamps would
    # create vertical hull edges.
    lowest: dict = {}
    for t, d in points:
        if t not in lowest or d < lowest[t]:
            lowest[t] = d
    cleaned = sorted(lowest.items())
    if len(cleaned) < 2:
        raise EstimationError("need samples at >= 2 distinct times to fit skew")
    hull = lower_convex_hull(cleaned)
    if len(hull) == 1:
        return hull[0][1], 0.0
    sum_t = sum(t for t, _ in cleaned)
    sum_d = sum(d for _, d in cleaned)
    n = len(cleaned)
    best: Tuple[float, float] = (0.0, 0.0)
    best_cost = float("inf")
    for (t0, d0), (t1, d1) in zip(hull, hull[1:]):
        slope = (d1 - d0) / (t1 - t0)
        intercept = d0 - slope * t0
        # Total vertical distance Σ(d_i − (a + b t_i)); all terms are ≥ 0
        # because the hull edge's line is below every point over the hull
        # segment — globally it can cut above distant points, so clamp by
        # checking the endpoints' support later. The aggregate form is O(1).
        cost = sum_d - (intercept * n + slope * sum_t)
        if cost < best_cost:
            best_cost = cost
            best = (intercept, slope)
    return best


def remove_skew(
    points: Sequence[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """De-trend measured OWDs: subtract the fitted skew line, keep the level.

    The returned delays are re-based so the smallest de-trended delay maps
    to the fitted line's value at the first sample time — i.e., de-skewed
    OWDs remain comparable to raw early-run OWDs.
    """
    intercept, slope = estimate_skew(points)
    t0 = min(t for t, _ in points)
    base = intercept + slope * t0
    return [(t, d - (intercept + slope * t) + base) for t, d in points]


def deskew_probe_records(probes: Sequence["ProbeRecord"]) -> List["ProbeRecord"]:
    """Remove clock skew from the one-way delays of a probe-record stream.

    Fits the skew line over every delivered packet's (send time, OWD)
    sample and rebuilds the records with de-trended delays (including the
    ``owd_before_loss`` OWD_max estimates). Use before
    :meth:`~repro.core.marking.CongestionMarker.mark` when sender and
    receiver clocks are known (or suspected) to drift — the §7 concern.

    With fewer than two delivered packets there is nothing to fit; the
    records are returned unchanged.
    """
    from repro.core.records import ProbeRecord as _ProbeRecord

    points = [
        (probe.send_time, owd) for probe in probes for owd in probe.owds
    ]
    if len(set(points)) < 2 or len({t for t, _ in points}) < 2:
        return list(probes)
    intercept, slope = estimate_skew(points)
    t0 = min(t for t, _ in points)
    base = intercept + slope * t0

    def adjust(time: float, owd: float) -> float:
        return owd - (intercept + slope * time) + base

    cleaned: List["ProbeRecord"] = []
    for probe in probes:
        cleaned.append(
            _ProbeRecord(
                slot=probe.slot,
                send_time=probe.send_time,
                n_packets=probe.n_packets,
                owds=tuple(adjust(probe.send_time, owd) for owd in probe.owds),
                owd_before_loss=(
                    adjust(probe.send_time, probe.owd_before_loss)
                    if probe.owd_before_loss is not None
                    else None
                ),
            )
        )
    return cleaned


def rebase_probe_owds(
    probes: Sequence["ProbeRecord"], baseline: float = 0.0
) -> List["ProbeRecord"]:
    """Remove the constant clock offset from a probe stream's OWDs.

    Shifts every one-way delay (including the ``owd_before_loss``
    estimates) so the smallest observed delay maps to ``baseline``. This
    is the paper's "trivially removable" offset correction: with
    unsynchronized sender/receiver clocks (two hosts' independent
    monotonic epochs) raw OWDs are ``true_delay + C`` for an unknown —
    possibly enormous, possibly negative — constant ``C``. Marking's
    ``max_owd > (1 − alpha) × mean(OWD_max)`` comparison does *not*
    cancel ``C`` (alpha scales it), so live one-way records must pass
    through here first. Records with no delivered packets pass through
    unchanged; an empty or delivery-free stream is returned as-is.
    """
    from repro.core.records import ProbeRecord as _ProbeRecord

    minimum: Optional[float] = None
    for probe in probes:
        for owd in probe.owds:
            if minimum is None or owd < minimum:
                minimum = owd
    if minimum is None:
        return list(probes)
    shift = minimum - baseline
    if shift == 0.0:
        return list(probes)
    rebased: List["ProbeRecord"] = []
    for probe in probes:
        rebased.append(
            _ProbeRecord(
                slot=probe.slot,
                send_time=probe.send_time,
                n_packets=probe.n_packets,
                owds=tuple(owd - shift for owd in probe.owds),
                owd_before_loss=(
                    probe.owd_before_loss - shift
                    if probe.owd_before_loss is not None
                    else None
                ),
            )
        )
    return rebased
