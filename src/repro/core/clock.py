"""Clock models and skew removal (§7).

One-way delay thresholds require the two hosts' clocks to agree. The paper
notes that offset is trivially removable but *skew* (clocks running at
slightly different rates) is a real concern, pointing at on-line and
off-line synchronization algorithms. This module provides:

* :class:`Clock` — an affine clock model ``c(t) = t(1 + skew) + offset``
  attached to measurement hosts,
* :func:`estimate_skew` — the classic convex-hull/lower-envelope linear fit
  (Moon-Skelly-Towsley style): fit the line that lies *below* every
  (send-time, measured-OWD) point and minimizes the total area between the
  points and the line. True delay is always ≥ propagation, so the lower
  envelope of measured OWDs tracks the clock drift exactly.
* :func:`remove_skew` — subtract the fitted trend from measured delays,
  re-anchored at the fitted envelope (so de-skewed OWDs stay positive),
* :func:`deskew_probe_records` — the same correction applied in place over
  a BADABING probe-record stream before marking.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence, Tuple

from repro.errors import EstimationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.records import ProbeRecord


class Clock:
    """Affine host clock: reads ``t * (1 + skew) + offset`` at true time t."""

    def __init__(self, offset: float = 0.0, skew: float = 0.0):
        if skew <= -1.0:
            raise EstimationError(f"skew must exceed -1, got {skew}")
        self.offset = offset
        self.skew = skew

    def read(self, true_time: float) -> float:
        """Timestamp this clock produces at the given true time."""
        return true_time * (1.0 + self.skew) + self.offset


def lower_convex_hull(points: Sequence[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Lower convex hull of points sorted by x (Andrew's monotone chain)."""
    hull: List[Tuple[float, float]] = []
    for point in points:
        while len(hull) >= 2 and _cross(hull[-2], hull[-1], point) <= 0:
            hull.pop()
        hull.append(point)
    return hull


def _cross(o: Tuple[float, float], a: Tuple[float, float], b: Tuple[float, float]) -> float:
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def estimate_skew(points: Sequence[Tuple[float, float]]) -> Tuple[float, float]:
    """Fit the under-line ``owd ≈ intercept + slope * t`` to OWD samples.

    Returns ``(intercept, slope)``; ``slope`` is the relative clock skew
    between receiver and sender. Among all lines through consecutive hull
    vertices (each lies below every sample), the one minimizing the summed
    vertical distance to the samples is chosen.

    Raises :class:`EstimationError` with fewer than two distinct sample
    times.
    """
    # Keep only the lowest delay per timestamp: the envelope fit ignores
    # higher samples at the same instant, and duplicate timestamps would
    # create vertical hull edges.
    lowest: dict = {}
    for t, d in points:
        if t not in lowest or d < lowest[t]:
            lowest[t] = d
    cleaned = sorted(lowest.items())
    if len(cleaned) < 2:
        raise EstimationError("need samples at >= 2 distinct times to fit skew")
    hull = lower_convex_hull(cleaned)
    if len(hull) == 1:
        return hull[0][1], 0.0
    sum_t = sum(t for t, _ in cleaned)
    sum_d = sum(d for _, d in cleaned)
    n = len(cleaned)
    best: Tuple[float, float] = (0.0, 0.0)
    best_cost = float("inf")
    for (t0, d0), (t1, d1) in zip(hull, hull[1:]):
        slope = (d1 - d0) / (t1 - t0)
        intercept = d0 - slope * t0
        # Total vertical distance Σ(d_i − (a + b t_i)); all terms are ≥ 0
        # because the hull edge's line is below every point over the hull
        # segment — globally it can cut above distant points, so clamp by
        # checking the endpoints' support later. The aggregate form is O(1).
        cost = sum_d - (intercept * n + slope * sum_t)
        if cost < best_cost:
            best_cost = cost
            best = (intercept, slope)
    return best


def remove_skew(
    points: Sequence[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """De-trend measured OWDs: subtract the fitted skew line, keep the level.

    The returned delays are re-based so the smallest de-trended delay maps
    to the fitted line's value at the first sample time — i.e., de-skewed
    OWDs remain comparable to raw early-run OWDs.
    """
    intercept, slope = estimate_skew(points)
    t0 = min(t for t, _ in points)
    base = intercept + slope * t0
    return [(t, d - (intercept + slope * t) + base) for t, d in points]


def deskew_probe_records(probes: Sequence["ProbeRecord"]) -> List["ProbeRecord"]:
    """Remove clock skew from the one-way delays of a probe-record stream.

    Fits the skew line over every delivered packet's (send time, OWD)
    sample and rebuilds the records with de-trended delays (including the
    ``owd_before_loss`` OWD_max estimates). Use before
    :meth:`~repro.core.marking.CongestionMarker.mark` when sender and
    receiver clocks are known (or suspected) to drift — the §7 concern.

    With fewer than two delivered packets there is nothing to fit; the
    records are returned unchanged.
    """
    from repro.core.records import ProbeRecord as _ProbeRecord

    points = [
        (probe.send_time, owd) for probe in probes for owd in probe.owds
    ]
    if len(set(points)) < 2 or len({t for t, _ in points}) < 2:
        return list(probes)
    intercept, slope = estimate_skew(points)
    t0 = min(t for t, _ in points)
    base = intercept + slope * t0

    def adjust(time: float, owd: float) -> float:
        return owd - (intercept + slope * time) + base

    cleaned: List["ProbeRecord"] = []
    for probe in probes:
        cleaned.append(
            _ProbeRecord(
                slot=probe.slot,
                send_time=probe.send_time,
                n_packets=probe.n_packets,
                owds=tuple(adjust(probe.send_time, owd) for owd in probe.owds),
                owd_before_loss=(
                    adjust(probe.send_time, probe.owd_before_loss)
                    if probe.owd_before_loss is not None
                    else None
                ),
            )
        )
    return cleaned
