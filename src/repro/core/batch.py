"""Array-batched slot pipeline (vectorized twin of the scalar hot path).

The paper's §7 accuracy guidance — StdDev(D̂) ≈ 1/√(p·N·L) — makes large N
the lever for production-grade estimates, but the scalar pipeline walks one
Python object per slot: `GeometricSchedule` draws per-slot coins in a loop,
`CongestionMarker._mark` runs two per-probe passes over `ProbeRecord`
objects, y_i assembly builds a tuple per experiment, and the §5 fold
touches a `Counter` once per outcome. This module re-expresses each stage
over contiguous NumPy arrays:

* **schedule** — the per-slot start/length coin draws become one mirrored
  RNG sweep (`draw_schedule_arrays`): Python's ``random.Random`` and
  NumPy's legacy ``RandomState`` share the MT19937 generator *and* the
  53-bit double construction, so a state transplant yields bit-identical
  uniform streams, and the data-dependent draw interleaving (a length coin
  is drawn only after a start coin hits) is resolved with a vectorized
  parity-since-last-reset classification instead of a per-slot loop;
* **probe records** — structure-of-arrays (:class:`ProbeArrays`: slot,
  send_time, lost_packets, max_owd, last_owd, owd_before_loss) replaces
  per-object dispatch;
* **marking** — `mark_probe_arrays` reduces §6.1 to array threshold /
  ``searchsorted`` passes; only the loss events themselves (a small, data-
  sparse subset) are walked scalar, because the OWD_max history is a
  bounded deque whose aggregate must match the scalar `_aggregate`
  bit-for-bit;
* **estimator fold** — experiment outcomes become packed bit-codes and the
  whole §5/§5.4 pattern count is one ``np.bincount``, reconstructed into
  the exact `Counter` the scalar `count_patterns` produces.

Equivalence contract: for identical inputs the batch pipeline produces the
*same bits* as the scalar one — same experiments for the same seed, same
slot states, same pattern counter, same estimates — so scorecard and
metrics-snapshot digests are byte-identical between modes. The scalar path
stays as the reference implementation; `tests/test_batch.py` pins the two
together with hypothesis property tests.

NumPy is a declared dependency, but every entry point degrades loudly (not
silently) without it: callers gate on :data:`NUMPY_AVAILABLE` or catch the
:class:`~repro.errors.ConfigurationError` that :func:`require_numpy`
raises, and fall back to the scalar path.
"""

from __future__ import annotations

import random
from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro import profiling as _profiling
from repro.config import BadabingConfig, MarkingConfig
from repro.core.estimators import (
    _R_PATTERNS,
    _S_PATTERNS,
    _U_PATTERNS,
    _V_PATTERNS,
)
from repro.core.records import CoverageReport, ExperimentOutcome, ProbeRecord
from repro.errors import ConfigurationError

try:  # gate, don't crash: the scalar pipeline works without numpy
    import numpy as np

    NUMPY_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised only on stripped installs
    np = None  # type: ignore[assignment]
    NUMPY_AVAILABLE = False


def require_numpy(feature: str = "the vectorized pipeline") -> None:
    """Raise a structured error when numpy is missing."""
    if not NUMPY_AVAILABLE:  # pragma: no cover - exercised only when stripped
        raise ConfigurationError(
            f"{feature} requires numpy; install it or use the scalar path "
            "(vectorized=False)"
        )


# ---------------------------------------------------------------------------
# Mirrored RNG: bit-identical uniform streams, drawn in blocks
# ---------------------------------------------------------------------------

def mirror_rng(rng: random.Random) -> "np.random.RandomState":
    """A ``RandomState`` that will emit exactly ``rng``'s future doubles.

    CPython's ``random.random`` and NumPy's legacy ``random_sample`` both
    run MT19937 and build doubles as ``(a >> 5) * 2**26 + (b >> 6)`` over
    ``2**53``, so transplanting the 624-word state + position yields the
    *same* stream bit-for-bit. The mirror is a copy: drawing from it does
    not advance ``rng`` (see :func:`advance_rng`).
    """
    require_numpy("RNG mirroring")
    version, internal, _gauss = rng.getstate()
    if version != 3:  # pragma: no cover - only historical pickles differ
        raise ConfigurationError(
            f"cannot mirror random.Random state version {version}"
        )
    state = np.random.RandomState()
    state.set_state(("MT19937", np.asarray(internal[:-1], dtype=np.uint32),
                     int(internal[-1])))
    return state


def advance_rng(rng: random.Random, n_draws: int) -> None:
    """Advance ``rng`` past ``n_draws`` doubles without a Python loop.

    After a mirrored block draw the original stream must end up exactly
    where the scalar loop would have left it, so later consumers of the
    same ``random.Random`` see an unchanged world.
    """
    if n_draws <= 0:
        return
    mirror = mirror_rng(rng)
    mirror.random_sample(n_draws)
    _kind, key, pos, _has_gauss, _gauss = mirror.get_state()
    rng.setstate((3, tuple(int(word) for word in key) + (int(pos),), None))


def random_block(rng: random.Random, count: int) -> "np.ndarray":
    """Draw ``count`` doubles from ``rng``'s stream as one array.

    Equivalent to ``[rng.random() for _ in range(count)]`` — including the
    state ``rng`` is left in — but in one vectorized sweep.
    """
    require_numpy("block RNG draws")
    if count < 0:
        raise ConfigurationError(f"count must be >= 0, got {count}")
    mirror = mirror_rng(rng)
    block = mirror.random_sample(count)
    _kind, key, pos, _has_gauss, _gauss = mirror.get_state()
    rng.setstate((3, tuple(int(word) for word in key) + (int(pos),), None))
    return block


# ---------------------------------------------------------------------------
# Schedule generation: one RNG sweep instead of a per-slot loop
# ---------------------------------------------------------------------------

def _classify_start_coins(b: "np.ndarray") -> "np.ndarray":
    """Which draws of a schedule stream are start coins (vs length coins).

    The scalar generator is a two-state machine over the draw stream: in
    state S (expecting a start coin) a draw under ``p`` moves to state L
    (the next draw is the length coin); state L always returns to S. The
    recurrence ``S_i = not (S_{i-1} and b_{i-1})`` resets to S after any
    ``b = 0`` draw and alternates within a run of ``b = 1`` draws, so the
    state is the parity of the distance to the last reset — which
    vectorizes as a running maximum over reset indices.
    """
    n = b.shape[0]
    indices = np.arange(n, dtype=np.int64)
    reset = np.empty(n, dtype=bool)
    reset[0] = True
    np.logical_not(b[:-1], out=reset[1:])
    last_reset = np.maximum.accumulate(np.where(reset, indices, -1))
    return ((indices - last_reset) & 1) == 0


def draw_schedule_arrays(
    p: float,
    n_slots: int,
    rng: random.Random,
    improved: bool = False,
) -> Tuple["np.ndarray", "np.ndarray"]:
    """Vectorized twin of the :class:`GeometricSchedule` draw loop.

    Returns ``(starts, lengths)`` — int64 arrays of experiment start slots
    and spans — consuming exactly the draws the scalar loop would (one
    start coin per slot, one length coin per start when ``improved``) and
    leaving ``rng`` in the identical state. Overflowing extended draws are
    degraded to basic experiments when those fit, and starts in the last
    slot (where nothing fits) are dropped — the same tail rule the scalar
    generator applies.
    """
    require_numpy("vectorized schedule generation")
    if not 0 < p <= 1:
        raise ConfigurationError(f"p must be in (0, 1], got {p}")
    if n_slots < 2:
        raise ConfigurationError(f"n_slots must be >= 2, got {n_slots}")
    with _profiling.profile_stage("schedule.generate"):
        mirror = mirror_rng(rng)
        if not improved:
            draws = mirror.random_sample(n_slots)
            starts = np.flatnonzero(draws < p).astype(np.int64)
            consumed = n_slots
            start_coins = None
            is_start = None
        else:
            # The draw stream interleaves start and length coins, so its
            # length is data-dependent; grow the buffer until it contains
            # n_slots start coins, then classify in one vectorized pass.
            chunks: List[np.ndarray] = []
            target = int(n_slots * (1.0 + p) * 1.05) + 64
            while True:
                need = target - sum(chunk.shape[0] for chunk in chunks)
                if need > 0:
                    chunks.append(mirror.random_sample(need))
                draws = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
                chunks = [draws]
                start_coins = _classify_start_coins(draws < p)
                n_start_coins = int(np.count_nonzero(start_coins))
                if n_start_coins >= n_slots:
                    break
                shortfall = n_slots - n_start_coins
                target = draws.shape[0] + int(shortfall * (1.0 + p)) + 64
            start_positions = np.flatnonzero(start_coins)[:n_slots]
            last = int(start_positions[-1])
            # The final slot's start coin may itself trigger a length coin,
            # which can sit one past the classified buffer.
            consumed = last + 1 + int(draws[last] < p)
            if consumed > draws.shape[0]:
                draws = np.concatenate(
                    [draws, mirror.random_sample(consumed - draws.shape[0])]
                )
            is_start = draws[start_positions] < p
            starts = np.flatnonzero(is_start).astype(np.int64)
        if improved:
            coin_positions = start_positions[is_start]
            lengths = np.where(
                draws[coin_positions + 1] < 0.5, 3, 2
            ).astype(np.int64)
        else:
            lengths = np.full(starts.shape[0], 2, dtype=np.int64)
        # Tail rule (shared with the scalar generator): degrade overflowing
        # extended draws to basic experiments when those fit; drop starts
        # whose slot cannot hold even a basic experiment.
        overflow = starts + lengths > n_slots
        lengths[overflow & (starts + 2 <= n_slots)] = 2
        keep = starts + 2 <= n_slots
        starts = starts[keep]
        lengths = lengths[keep]
        advance_rng(rng, consumed)
    return starts, lengths


def probe_slots_from_experiments(
    starts: "np.ndarray", lengths: "np.ndarray", n_slots: int
) -> "np.ndarray":
    """Sorted unique covered slots, via a difference array (no per-slot set).

    ``n_slots`` bounds the coverage map; experiments are assumed to fit
    (the generators guarantee it).
    """
    require_numpy("vectorized schedule coverage")
    span = np.zeros(n_slots + 1, dtype=np.int64)
    np.add.at(span, starts, 1)
    np.add.at(span, starts + lengths, -1)
    covered = np.cumsum(span[:-1]) > 0
    return np.flatnonzero(covered).astype(np.int64)


def experiment_arrays(
    experiments: Sequence["Experiment"],
) -> Tuple["np.ndarray", "np.ndarray"]:
    """(starts, lengths) int64 arrays from a scalar experiment plan.

    Bridges schedules generated by the scalar loop (or loaded from a
    trace) into the batch pipeline; schedules generated vectorized carry
    their arrays natively (``GeometricSchedule.start_array``).
    """
    require_numpy("vectorized experiment plans")
    starts = np.fromiter(
        (experiment.start_slot for experiment in experiments),
        dtype=np.int64,
        count=len(experiments),
    )
    lengths = np.fromiter(
        (experiment.length for experiment in experiments),
        dtype=np.int64,
        count=len(experiments),
    )
    return starts, lengths


# ---------------------------------------------------------------------------
# Probe records as structure-of-arrays
# ---------------------------------------------------------------------------

@dataclass
class ProbeArrays:
    """Structure-of-arrays form of a chronological probe stream.

    One entry per probe, sorted by ``send_time`` (the marker's invariant).
    Missing optional values (``max_owd`` for all-lost probes, ``last_owd``
    for probes with no delivery, ``owd_before_loss`` when unattributable)
    are ``nan`` — the batch marker treats ``nan`` exactly as the scalar
    marker treats ``None``.
    """

    slot: "np.ndarray"  # int64
    send_time: "np.ndarray"  # float64
    n_packets: "np.ndarray"  # int64
    lost_packets: "np.ndarray"  # int64
    max_owd: "np.ndarray"  # float64, nan = no delivery
    last_owd: "np.ndarray"  # float64, nan = no delivery (owds[-1] otherwise)
    owd_before_loss: "np.ndarray"  # float64, nan = None

    def __len__(self) -> int:
        return int(self.slot.shape[0])

    @property
    def lost(self) -> "np.ndarray":
        return self.lost_packets > 0

    @classmethod
    def from_records(cls, probes: Sequence[ProbeRecord]) -> "ProbeArrays":
        """Pack per-object records into contiguous arrays (one pass)."""
        require_numpy("probe structure-of-arrays")
        n = len(probes)
        slot = np.empty(n, dtype=np.int64)
        send_time = np.empty(n, dtype=np.float64)
        n_packets = np.empty(n, dtype=np.int64)
        lost_packets = np.empty(n, dtype=np.int64)
        max_owd = np.full(n, np.nan, dtype=np.float64)
        last_owd = np.full(n, np.nan, dtype=np.float64)
        owd_before_loss = np.full(n, np.nan, dtype=np.float64)
        for i, probe in enumerate(probes):
            slot[i] = probe.slot
            send_time[i] = probe.send_time
            n_packets[i] = probe.n_packets
            owds = probe.owds
            lost_packets[i] = probe.n_packets - len(owds)
            if owds:
                max_owd[i] = max(owds)
                last_owd[i] = owds[-1]
            if probe.owd_before_loss is not None:
                owd_before_loss[i] = probe.owd_before_loss
        return cls(
            slot=slot,
            send_time=send_time,
            n_packets=n_packets,
            lost_packets=lost_packets,
            max_owd=max_owd,
            last_owd=last_owd,
            owd_before_loss=owd_before_loss,
        )

    def to_records(self) -> List[ProbeRecord]:
        """Rebuild per-object records (testing / interop only).

        Only the marker-relevant shape survives the SoA round trip: a probe
        with ``d`` deliveries comes back with ``d - 1`` copies of a filler
        delay, then its true last delay — ``max_owd`` is preserved exactly
        when it equals ``last_owd`` (always true for the single-delivery
        and all-lost cases the synthetic substrate emits).
        """
        records: List[ProbeRecord] = []
        for i in range(len(self)):
            delivered = int(self.n_packets[i]) - int(self.lost_packets[i])
            owds: Tuple[float, ...]
            if delivered <= 0:
                owds = ()
            elif delivered == 1:
                owds = (float(self.last_owd[i]),)
            else:
                head = float(self.max_owd[i])
                owds = (head,) * (delivered - 1) + (float(self.last_owd[i]),)
            obl = self.owd_before_loss[i]
            records.append(
                ProbeRecord(
                    slot=int(self.slot[i]),
                    send_time=float(self.send_time[i]),
                    n_packets=int(self.n_packets[i]),
                    owds=owds,
                    owd_before_loss=None if np.isnan(obl) else float(obl),
                )
            )
        return records


# ---------------------------------------------------------------------------
# §6.1 marking as array passes
# ---------------------------------------------------------------------------

@dataclass
class BatchMarkingResult:
    """Array-native marking output (twin of :class:`MarkingResult`).

    ``slots``/``states`` carry the per-probe verdicts in probe order;
    ``dense_states`` (int8, −1 = unprobed) is keyed by slot index for O(1)
    y_i assembly. The diagnostic counts match the scalar marker exactly.
    """

    slots: "np.ndarray"  # int64, probe order
    states: "np.ndarray"  # bool, probe order
    dense_states: "np.ndarray"  # int8 over slot indices, -1 = unknown
    marked_by_loss: int
    marked_by_delay: int
    noise_losses: int
    owd_max_estimates: List[float]

    @property
    def marked(self) -> int:
        return self.marked_by_loss + self.marked_by_delay

    def slot_states_dict(self) -> Dict[int, bool]:
        """Materialize the scalar-shaped mapping (interop boundary only)."""
        return {
            int(slot): bool(state)
            for slot, state in zip(self.slots.tolist(), self.states.tolist())
        }


def _loss_pass(
    arrays: ProbeArrays, cfg: MarkingConfig
) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray", "np.ndarray", List[float]]:
    """The only scalar sub-pass: walk the loss events in probe order.

    The OWD_max history is a bounded deque whose aggregate must match the
    scalar :func:`~repro.core.marking._aggregate` bit-for-bit, and noise
    classification feeds back into that history — so the loss events
    themselves (a sparse subset of probes) are folded scalar while every
    per-probe quantity stays vectorized. Returns ``(noise_mask, loss_times,
    change_positions, change_values, final_history)`` where the change
    arrays describe the per-probe threshold step function.
    """
    from repro.core.marking import _aggregate

    lossy = np.flatnonzero(arrays.lost)
    noise_mask = np.zeros(len(arrays), dtype=bool)
    loss_times: List[float] = []
    change_positions: List[int] = []
    change_values: List[float] = []
    if lossy.shape[0] == 0:
        return (
            noise_mask,
            np.empty(0, dtype=np.float64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            [],
        )

    # last_success_owd as of each lossy probe: the newest delivery strictly
    # before it, forward-filled without a per-probe loop.
    has_delivery = ~np.isnan(arrays.last_owd)
    indices = np.arange(len(arrays), dtype=np.int64)
    last_delivery_at = np.maximum.accumulate(np.where(has_delivery, indices, -1))
    prev_delivery = np.empty(len(arrays), dtype=np.int64)
    prev_delivery[0] = -1
    prev_delivery[1:] = last_delivery_at[:-1]

    history: Deque[float] = deque(maxlen=cfg.owd_history)
    one_minus_alpha = 1.0 - cfg.alpha
    filter_noise = cfg.filter_uncorrelated_losses
    statistic = cfg.owd_statistic
    send_time = arrays.send_time
    max_owd = arrays.max_owd
    owd_before_loss = arrays.owd_before_loss
    for i in lossy.tolist():
        current = (
            one_minus_alpha * _aggregate(history, statistic) if history else None
        )
        evidence = max_owd[i]
        if np.isnan(evidence):
            evidence = owd_before_loss[i]
        if (
            filter_noise
            and current is not None
            and not np.isnan(evidence)
            and evidence < current
        ):
            noise_mask[i] = True
            continue
        loss_times.append(float(send_time[i]))
        estimate = owd_before_loss[i]
        if np.isnan(estimate):
            fallback = prev_delivery[i]
            estimate = (
                arrays.last_owd[fallback] if fallback >= 0 else np.nan
            )
        if not np.isnan(estimate):
            history.append(float(estimate))
            change_positions.append(i)
            change_values.append(
                one_minus_alpha * _aggregate(history, statistic)
            )
    return (
        noise_mask,
        np.asarray(loss_times, dtype=np.float64),
        np.asarray(change_positions, dtype=np.int64),
        np.asarray(change_values, dtype=np.float64),
        list(history),
    )


def mark_probe_arrays(
    arrays: ProbeArrays, config: Optional[MarkingConfig] = None
) -> BatchMarkingResult:
    """§6.1 marking over a probe SoA — array threshold/searchsorted passes.

    Bit-identical to :meth:`CongestionMarker.mark` over the equivalent
    record list: the same loss/noise classification, the same per-probe
    OWD_max threshold (including the end-of-run fallback for probes that
    predate the first estimate), the same tau-proximity rule.
    """
    require_numpy("vectorized marking")
    cfg = config if config is not None else MarkingConfig()
    with _profiling.profile_stage("marking.apply"):
        n = len(arrays)
        if n and bool(np.any(np.diff(arrays.send_time) < 0)):
            raise ConfigurationError("probes must be sorted by send time")
        if n and int(arrays.slot.min()) < 0:
            raise ConfigurationError("probe slots must be non-negative")

        noise_mask, loss_times, change_positions, change_values, final_history = (
            _loss_pass(arrays, cfg)
        )

        # Per-probe threshold: a step function that changes only at the
        # (sparse) history updates; probes before the first update fall
        # back to the end-of-run aggregate, exactly like the scalar pass.
        if change_values.shape[0]:
            final_value = change_values[-1]
            steps = np.concatenate(([final_value], change_values))
            which = np.searchsorted(change_positions, np.arange(n), side="right")
            thresholds = steps[which]
            have_threshold = np.ones(n, dtype=bool)
        else:
            thresholds = np.zeros(n, dtype=np.float64)
            have_threshold = np.zeros(n, dtype=bool)

        lost = arrays.lost
        hard_loss = lost & ~noise_mask

        # tau rule: distance to the nearest loss anchor, both directions.
        if loss_times.shape[0]:
            pos = np.searchsorted(loss_times, arrays.send_time)
            after = np.full(n, np.inf)
            valid = pos < loss_times.shape[0]
            after[valid] = loss_times[pos[valid]] - arrays.send_time[valid]
            before = np.full(n, np.inf)
            valid = pos > 0
            before[valid] = arrays.send_time[valid] - loss_times[pos[valid] - 1]
            near_loss = np.minimum(after, before) <= cfg.tau
        else:
            near_loss = np.zeros(n, dtype=bool)

        delay_marked = (
            have_threshold
            & near_loss
            & ~np.isnan(arrays.max_owd)
            & (arrays.max_owd > thresholds)
            & ~hard_loss
        )
        states = hard_loss | delay_marked

        max_slot = int(arrays.slot.max()) + 1 if n else 0
        dense = np.full(max_slot, -1, dtype=np.int8)
        dense[arrays.slot] = states  # duplicate slots: last write wins
        return BatchMarkingResult(
            slots=arrays.slot,
            states=states,
            dense_states=dense,
            marked_by_loss=int(np.count_nonzero(hard_loss)),
            marked_by_delay=int(np.count_nonzero(delay_marked)),
            noise_losses=int(np.count_nonzero(noise_mask)),
            owd_max_estimates=final_history,
        )


# ---------------------------------------------------------------------------
# y_i assembly and the §5 fold: packed bit-codes + one bincount
# ---------------------------------------------------------------------------

#: Packed-key layout: key = (length - 2) * 8 + code, where code packs the
#: congestion bits MSB-first. Basic experiments occupy keys 0..3, extended
#: ones keys 8..15; 16 keys total.
N_PATTERN_KEYS = 16

#: key -> (§5 pattern string, bits tuple); basic keys 4..7 are unused.
_KEY_TABLE: List[Optional[Tuple[str, Tuple[int, ...]]]] = [None] * N_PATTERN_KEYS
for _code in range(4):
    _bits = ((_code >> 1) & 1, _code & 1)
    _KEY_TABLE[_code] = ("".join(map(str, _bits)), _bits)
for _code in range(8):
    _bits = ((_code >> 2) & 1, (_code >> 1) & 1, _code & 1)
    _KEY_TABLE[8 + _code] = ("".join(map(str, _bits)), _bits)

def outcome_keys(
    starts: "np.ndarray",
    lengths: "np.ndarray",
    dense_states: "np.ndarray",
    n_slots: Optional[int] = None,
) -> Tuple["np.ndarray", "np.ndarray"]:
    """Packed outcome keys per experiment, plus the usable-experiment mask.

    An experiment is usable when every slot it covers has a marked state —
    the same rule as the scalar ``outcomes_from_states`` (which skips an
    experiment at its first unprobed slot). ``dense_states`` is int8 with
    −1 for unprobed slots; experiments reaching beyond it are unusable.
    """
    require_numpy("vectorized outcome assembly")
    n_exp = starts.shape[0]
    size = dense_states.shape[0]
    if n_exp == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
    padded = np.concatenate(
        [dense_states.astype(np.int64), np.full(3, -1, dtype=np.int64)]
    )
    idx0 = np.minimum(starts, size)
    idx1 = np.minimum(starts + 1, size)
    idx2 = np.minimum(starts + 2, size)
    b0 = padded[idx0]
    b1 = padded[idx1]
    b2 = padded[idx2]
    extended = lengths == 3
    valid = (b0 >= 0) & (b1 >= 0) & (~extended | (b2 >= 0))
    safe0 = np.maximum(b0, 0)
    safe1 = np.maximum(b1, 0)
    safe2 = np.maximum(b2, 0)
    keys = np.where(
        extended,
        8 + safe0 * 4 + safe1 * 2 + safe2,
        safe0 * 2 + safe1,
    )
    return keys.astype(np.int64), valid


def pattern_histogram(keys: "np.ndarray", valid: "np.ndarray") -> "np.ndarray":
    """Counts per packed key over the usable experiments (one bincount)."""
    require_numpy("vectorized pattern fold")
    with _profiling.profile_stage("estimator.fold"):
        return np.bincount(keys[valid], minlength=N_PATTERN_KEYS)


def counter_from_histogram(histogram: "np.ndarray") -> Counter:
    """Reconstruct the exact scalar pattern counter from a key histogram.

    Matches :func:`~repro.core.estimators.count_patterns` key-for-key: the
    per-pattern counts plus the derived M/Z/R/S/E/U/V totals, with keys
    that the scalar fold never touched left absent (M and Z are always
    present — the scalar fold writes them unconditionally).
    """
    counter: Counter = Counter()
    m = 0
    z = 0
    for key in range(N_PATTERN_KEYS):
        entry = _KEY_TABLE[key]
        if entry is None:
            continue
        count = int(histogram[key])
        if count == 0:
            continue
        pattern, bits = entry
        counter[pattern] += count
        m += count
        z += bits[0] * count
        if len(bits) == 2:
            if pattern in _R_PATTERNS:
                counter["R"] += count
            if pattern in _S_PATTERNS:
                counter["S"] += count
        else:
            counter["E"] += count
            if pattern in _U_PATTERNS:
                counter["U"] += count
            if pattern in _V_PATTERNS:
                counter["V"] += count
    counter["M"] = m
    counter["Z"] = z
    return counter


def materialize_outcomes(
    starts: "np.ndarray",
    keys: "np.ndarray",
    valid: "np.ndarray",
) -> List[ExperimentOutcome]:
    """Build the per-object outcome list from packed keys (interop only).

    The batch estimator fold never needs these objects; they exist for
    consumers of :class:`~repro.core.badabing.BadabingResult` (audit
    convergence replays, trace round-trips) that still speak per-object.
    """
    bits_for_key = [entry[1] if entry else None for entry in _KEY_TABLE]
    return [
        ExperimentOutcome(int(start), bits_for_key[int(key)])
        for start, key in zip(starts[valid], keys[valid])
    ]


def coverage_from_arrays(
    starts: "np.ndarray",
    lengths: "np.ndarray",
    dense_states: "np.ndarray",
    valid: "np.ndarray",
) -> CoverageReport:
    """Scheduled-vs-usable accounting, vectorized twin of ``coverage_report``."""
    require_numpy("vectorized coverage accounting")
    n_exp = int(starts.shape[0])
    if n_exp == 0:
        return CoverageReport(
            scheduled_slots=0,
            usable_slots=0,
            scheduled_experiments=0,
            usable_experiments=0,
        )
    reach = int((starts + lengths).max())
    span = np.zeros(reach + 1, dtype=np.int64)
    np.add.at(span, starts, 1)
    np.add.at(span, starts + lengths, -1)
    scheduled = np.cumsum(span[:-1]) > 0
    size = dense_states.shape[0]
    usable = scheduled.copy()
    if reach > size:
        usable[size:] = False
        usable[:size] &= dense_states >= 0
    else:
        usable &= dense_states[:reach] >= 0
    return CoverageReport(
        scheduled_slots=int(np.count_nonzero(scheduled)),
        usable_slots=int(np.count_nonzero(usable)),
        scheduled_experiments=n_exp,
        usable_experiments=int(np.count_nonzero(valid)),
    )


# ---------------------------------------------------------------------------
# The assembled pipeline
# ---------------------------------------------------------------------------

@dataclass
class BatchPipelineResult:
    """Everything the slot pipeline produced, array-native.

    The heavyweight consumers (estimate, validation) are materialized —
    they are O(1) summaries — while outcomes stay packed until a caller
    explicitly asks (:func:`materialize_outcomes`).
    """

    counter: Counter
    marking: BatchMarkingResult
    keys: "np.ndarray"
    valid: "np.ndarray"
    starts: "np.ndarray"
    lengths: "np.ndarray"
    coverage: CoverageReport


def run_slot_pipeline(
    starts: "np.ndarray",
    lengths: "np.ndarray",
    probes: ProbeArrays,
    config: Optional[BadabingConfig] = None,
    marking: Optional[MarkingConfig] = None,
    n_slots: Optional[int] = None,
) -> BatchPipelineResult:
    """Marking → y_i assembly → pattern fold over arrays, start to finish.

    The batch twin of :func:`repro.core.badabing.assemble_result`'s middle:
    everything between a joined probe stream and the §5 estimators runs as
    array passes, and the resulting pattern counter plugs into the same
    estimator/validator arithmetic the scalar path uses.
    """
    require_numpy("the vectorized slot pipeline")
    marking_cfg = marking
    if marking_cfg is None:
        marking_cfg = config.marking if config is not None else MarkingConfig()
    marked = mark_probe_arrays(probes, marking_cfg)
    keys, valid = outcome_keys(starts, lengths, marked.dense_states, n_slots)
    histogram = pattern_histogram(keys, valid)
    counter = counter_from_histogram(histogram)
    coverage = coverage_from_arrays(starts, lengths, marked.dense_states, valid)
    return BatchPipelineResult(
        counter=counter,
        marking=marked,
        keys=keys,
        valid=valid,
        starts=starts,
        lengths=lengths,
        coverage=coverage,
    )
