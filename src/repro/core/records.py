"""Probe records and experiment outcomes.

Two data shapes flow through the BADABING pipeline:

* :class:`ProbeRecord` — what one multi-packet probe measured in one slot
  (which packets survived, with what one-way delays). Produced by joining
  sender and receiver logs; consumed by the §6.1 marking algorithm.
* :class:`ExperimentOutcome` — the paper's ``y_i``: the binary string of
  congestion indications for the slots of one basic (2-slot) or extended
  (3-slot) experiment. Consumed by the estimators and validators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError

#: Every legal ``bits`` tuple mapped to its §5 pattern string ("01",
#: "110", ...). Outcomes are validated to 2–3 bits of 0/1, so the string
#: form is a table lookup instead of a per-access join — this sits on the
#: hot path of the pattern-counting estimators.
_PATTERN_STRINGS = {
    bits: "".join(str(bit) for bit in bits)
    for length in (2, 3)
    for bits in product((0, 1), repeat=length)
}


@dataclass(frozen=True)
class ProbeRecord:
    """One probe (a train of packets sent back-to-back within one slot).

    Attributes
    ----------
    slot:
        Discrete slot index the probe targeted.
    send_time:
        Time the first packet left the sender (sender clock).
    n_packets:
        How many packets the probe comprised.
    owds:
        One-way delays of the packets that arrived, in packet order.
        Lost packets simply have no entry; ``n_packets - len(owds)`` were
        lost. Delays are measured with whatever clocks the hosts have, so
        they may include offset/skew (see :mod:`repro.core.clock`).
    owd_before_loss:
        One-way delay of the most recent successfully transmitted packet
        seen at the time a loss in this probe was detected — §6.1's
        estimate of the maximum queue depth. None when no packet was lost
        or no earlier delivery existed.
    """

    slot: int
    send_time: float
    n_packets: int
    owds: Tuple[float, ...]
    owd_before_loss: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_packets < 1:
            raise ConfigurationError("a probe has at least one packet")
        if len(self.owds) > self.n_packets:
            raise ConfigurationError("more deliveries than packets sent")

    @property
    def lost_packets(self) -> int:
        return self.n_packets - len(self.owds)

    @property
    def lost(self) -> bool:
        """True if any packet of the probe was lost."""
        return self.lost_packets > 0

    @property
    def max_owd(self) -> Optional[float]:
        """Largest observed one-way delay, or None if all packets lost."""
        return max(self.owds) if self.owds else None


@dataclass(frozen=True)
class ExperimentOutcome:
    """The paper's y_i: per-slot congestion bits for one experiment."""

    start_slot: int
    bits: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.bits) not in (2, 3):
            raise ConfigurationError(
                f"experiments span 2 or 3 slots, got {len(self.bits)}"
            )
        if any(bit not in (0, 1) for bit in self.bits):
            raise ConfigurationError(f"bits must be 0/1, got {self.bits}")

    @property
    def is_basic(self) -> bool:
        return len(self.bits) == 2

    @property
    def is_extended(self) -> bool:
        return len(self.bits) == 3

    @property
    def as_string(self) -> str:
        """The y_i notation used throughout §5, e.g. ``"01"`` or ``"110"``."""
        return _PATTERN_STRINGS[self.bits]

    @property
    def first_bit(self) -> int:
        """z_i, the input to the frequency estimator."""
        return self.bits[0]


@dataclass(frozen=True)
class CoverageReport:
    """How much of a planned measurement produced usable data.

    Degraded runs (duplicated/reordered/partially lost logs, collector
    outages, truncated simulations) can leave scheduled slots with no
    probe record; the estimators then work from fewer experiments than
    planned. This report quantifies the gap so consumers can weight or
    reject estimates from thin data instead of silently trusting them.
    """

    scheduled_slots: int
    usable_slots: int
    scheduled_experiments: int
    usable_experiments: int

    def __post_init__(self) -> None:
        if self.scheduled_slots < 0 or self.scheduled_experiments < 0:
            raise ConfigurationError("scheduled counts must be non-negative")
        if not 0 <= self.usable_slots <= self.scheduled_slots:
            raise ConfigurationError(
                f"usable_slots must be in [0, {self.scheduled_slots}], "
                f"got {self.usable_slots}"
            )
        if not 0 <= self.usable_experiments <= self.scheduled_experiments:
            raise ConfigurationError(
                f"usable_experiments must be in [0, {self.scheduled_experiments}], "
                f"got {self.usable_experiments}"
            )

    @property
    def slot_fraction(self) -> float:
        """Slots with usable data / scheduled slots (1.0 when none planned)."""
        if self.scheduled_slots == 0:
            return 1.0
        return self.usable_slots / self.scheduled_slots

    @property
    def experiment_fraction(self) -> float:
        """Usable experiments / scheduled experiments (1.0 when none planned)."""
        if self.scheduled_experiments == 0:
            return 1.0
        return self.usable_experiments / self.scheduled_experiments

    @property
    def complete(self) -> bool:
        """True when nothing scheduled went unobserved."""
        return (
            self.usable_slots == self.scheduled_slots
            and self.usable_experiments == self.scheduled_experiments
        )

    def describe(self) -> str:
        """Human-readable one-liner for logs and error messages."""
        return (
            f"coverage {self.slot_fraction:.1%} "
            f"({self.usable_slots}/{self.scheduled_slots} slots, "
            f"{self.usable_experiments}/{self.scheduled_experiments} experiments)"
        )


@dataclass
class MeasurementLog:
    """Everything one BADABING run produced, for estimation and debugging."""

    slot_width: float
    n_slots: int
    probes: List[ProbeRecord] = field(default_factory=list)
    outcomes: List[ExperimentOutcome] = field(default_factory=list)
    #: Slots whose probes were entirely lost *and* had no delay info; kept
    #: for diagnostics (they are still marked congested — loss is loss).
    blind_slots: int = 0
