"""Probe launch-time jitter models.

The real BADABING runs on commodity hosts whose OS scheduler (or, in this
reproduction's framing, a Python interpreter) delays probe transmissions by
variable amounts — the main practical threat to a discrete-time probe
process ("the interval between the discrete time slots [must be] smaller
than the time scales of the congested episodes", §7). The simulator's
timing is perfect, so host realism is *injected* through these models and
studied as an ablation.

All models return a non-negative delay to add to the nominal slot boundary:
real schedulers make you late, never early.
"""

from __future__ import annotations

import random

from repro.errors import ConfigurationError


class JitterModel:
    """Base class: draw a send-time displacement in seconds."""

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError


class NoJitter(JitterModel):
    """Perfect timing (the simulator default)."""

    def sample(self, rng: random.Random) -> float:
        return 0.0


class UniformJitter(JitterModel):
    """Uniform lateness in [0, max_delay] — coarse scheduler quantum."""

    def __init__(self, max_delay: float):
        if max_delay < 0:
            raise ConfigurationError(f"max_delay must be >= 0, got {max_delay}")
        self.max_delay = max_delay

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(0.0, self.max_delay)


class GaussianJitter(JitterModel):
    """Half-normal lateness — typical interrupt/timer dispersion."""

    def __init__(self, sigma: float):
        if sigma < 0:
            raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
        self.sigma = sigma

    def sample(self, rng: random.Random) -> float:
        return abs(rng.gauss(0.0, self.sigma))


class SpikeJitter(JitterModel):
    """Mostly-small lateness with occasional large spikes.

    Models garbage-collection pauses / scheduling preemption: with
    probability ``spike_prob`` the probe is late by ``spike_delay``,
    otherwise by a half-normal draw with ``base_sigma``.
    """

    def __init__(self, base_sigma: float, spike_prob: float, spike_delay: float):
        if base_sigma < 0 or spike_delay < 0:
            raise ConfigurationError("delays must be non-negative")
        if not 0 <= spike_prob <= 1:
            raise ConfigurationError(f"spike_prob must be in [0,1], got {spike_prob}")
        self.base_sigma = base_sigma
        self.spike_prob = spike_prob
        self.spike_delay = spike_delay

    def sample(self, rng: random.Random) -> float:
        if rng.random() < self.spike_prob:
            return self.spike_delay
        return abs(rng.gauss(0.0, self.base_sigma))
