"""Measurement planning (§7).

§7 reduces parameter choice to one formula: with L the mean number of loss
events per slot (assumed stationary), the duration estimate's accuracy
follows ``StdDev(duration) ≈ 1 / sqrt(p · N · L)`` — "the individual
choice of p and N allow a trade off between timeliness of results and
impact that the user is willing to have on the link. Prior empirical
studies can provide initial estimates of L."

This module turns that guidance into an API: given a target accuracy and
an L estimate (from a previous measurement's
:attr:`~repro.experiments.runner.GroundTruth.loss_event_rate_per_slot`, a
prior :class:`~repro.core.estimators.LossEstimate`'s
``episode_rate_per_slot``, or operator knowledge), compute the missing
parameter and the resulting probe load.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import ProbeConfig
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MeasurementPlan:
    """A resolved (p, N) choice with its predicted cost and accuracy."""

    p: float
    n_slots: int
    loss_event_rate: float
    predicted_duration_stddev: float
    probe_config: ProbeConfig

    @property
    def duration_seconds(self) -> float:
        """Wall-clock length of the planned measurement."""
        return self.n_slots * self.probe_config.slot

    @property
    def probe_load_bps(self) -> float:
        """Expected average probe bit rate (shared-probe coverage model)."""
        coverage = 1.0 - (1.0 - self.p) ** 2
        cfg = self.probe_config
        return coverage * cfg.packets_per_probe * cfg.probe_size * 8 / cfg.slot

    def describe(self) -> str:
        """One-line human summary."""
        return (
            f"p={self.p:g}, N={self.n_slots} "
            f"({self.duration_seconds:.0f}s at {self.probe_config.slot * 1000:g}ms slots), "
            f"load ~{self.probe_load_bps / 1e3:.0f} kb/s, "
            f"predicted StdDev(D) ~{self.predicted_duration_stddev:.2f}"
        )


def _validate_common(loss_event_rate: float, target_stddev: float) -> None:
    if loss_event_rate <= 0:
        raise ConfigurationError(
            f"loss_event_rate must be positive, got {loss_event_rate} "
            "(estimate it from a prior run's loss_event_rate_per_slot)"
        )
    if target_stddev <= 0:
        raise ConfigurationError(
            f"target_stddev must be positive, got {target_stddev}"
        )


def required_slots(
    p: float, loss_event_rate: float, target_stddev: float
) -> int:
    """Smallest N meeting the accuracy target at probe probability ``p``.

    Inverts §7's formula: ``N >= 1 / (p · L · target²)``.
    """
    if not 0 < p <= 1:
        raise ConfigurationError(f"p must be in (0, 1], got {p}")
    _validate_common(loss_event_rate, target_stddev)
    return max(2, math.ceil(1.0 / (p * loss_event_rate * target_stddev ** 2)))


def required_p(
    n_slots: int, loss_event_rate: float, target_stddev: float
) -> float:
    """Smallest p meeting the accuracy target within ``n_slots`` slots.

    Raises :class:`ConfigurationError` when even p = 1 cannot reach the
    target in the given time — the §5.1 "accuracy determined impossible"
    outcome, at planning time.
    """
    if n_slots < 2:
        raise ConfigurationError(f"n_slots must be >= 2, got {n_slots}")
    _validate_common(loss_event_rate, target_stddev)
    p = 1.0 / (n_slots * loss_event_rate * target_stddev ** 2)
    if p > 1.0:
        raise ConfigurationError(
            f"target StdDev {target_stddev} is unreachable in {n_slots} slots "
            f"at L={loss_event_rate}: would need p={p:.2f} > 1; "
            "measure longer or accept less accuracy"
        )
    return p


def plan_measurement(
    loss_event_rate: float,
    target_stddev: float,
    p: float = 0.0,
    n_slots: int = 0,
    probe: ProbeConfig = None,
) -> MeasurementPlan:
    """Resolve a full plan from a target accuracy plus *one* of p / N.

    Exactly one of ``p`` and ``n_slots`` must be given (non-zero); the
    other is computed. This is §7's impact-vs-timeliness dial: fix p to
    cap probe load and learn how long to measure, or fix N to cap wait
    time and learn how hard to probe.
    """
    if probe is None:
        probe = ProbeConfig()
    if bool(p) == bool(n_slots):
        raise ConfigurationError("specify exactly one of p or n_slots")
    if p:
        n_slots = required_slots(p, loss_event_rate, target_stddev)
    else:
        p = required_p(n_slots, loss_event_rate, target_stddev)
    predicted = 1.0 / math.sqrt(p * n_slots * loss_event_rate)
    return MeasurementPlan(
        p=p,
        n_slots=n_slots,
        loss_event_rate=loss_event_rate,
        predicted_duration_stddev=predicted,
        probe_config=probe,
    )
