"""Open-ended ("adaptive") measurement mode (§5.1, §7).

§5.1 allows a full experiment to be terminated "in an open-ended adaptive
fashion, e.g., until estimates of desired accuracy for a congestion
characteristic have been obtained, or until such accuracy is determined
impossible"; §7 recommends exactly this at low probe rates, where impact
on the path is negligible but a fixed N may be too short.

:class:`AdaptiveMeasurement` packages that workflow: it owns a
:class:`~repro.core.badabing.BadabingTool` provisioned for a maximum
duration, advances the simulation in chunks, feeds new experiment outcomes
to a :class:`~repro.core.validation.SequentialValidator`, and stops as
soon as the validator declares the estimate robust (or hopeless).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config import BadabingConfig, MarkingConfig, ProbeConfig
from repro.core.badabing import BadabingResult, BadabingTool
from repro.core.validation import SequentialValidator
from repro.errors import ConfigurationError
from repro.net.node import Host
from repro.net.simulator import Simulator


@dataclass
class AdaptiveOutcome:
    """What an adaptive measurement concluded."""

    result: BadabingResult
    elapsed: float
    chunks: int
    #: "converged" | "aborted" | "exhausted"
    reason: str

    @property
    def trustworthy(self) -> bool:
        return self.reason == "converged"


class AdaptiveMeasurement:
    """Run BADABING until the §5.4 validator is satisfied.

    Parameters
    ----------
    sim, sender_host, receiver_host:
        Simulator and probe endpoints (traffic must already be attached to
        the simulator; this class drives the event loop).
    p:
        Per-slot experiment probability (typically small: the use case is
        low-impact monitoring).
    chunk_seconds:
        How much simulated time to advance between validator checks.
    max_seconds:
        Hard cap on total probing time.
    validator:
        Stopping policy; defaults to a 25%-relative-error target.
    """

    #: Drain margin before each mid-run estimate so in-flight packets are
    #: not miscounted as lost.
    DRAIN = 2.0

    def __init__(
        self,
        sim: Simulator,
        sender_host: Host,
        receiver_host: Host,
        p: float = 0.1,
        chunk_seconds: float = 30.0,
        max_seconds: float = 3600.0,
        start: float = 0.0,
        probe: Optional[ProbeConfig] = None,
        marking: Optional[MarkingConfig] = None,
        validator: Optional[SequentialValidator] = None,
        improved: bool = False,
    ):
        if chunk_seconds <= 0 or max_seconds < chunk_seconds:
            raise ConfigurationError(
                "need 0 < chunk_seconds <= max_seconds "
                f"(got {chunk_seconds}, {max_seconds})"
            )
        probe_cfg = probe if probe is not None else ProbeConfig()
        n_slots = int(max_seconds / probe_cfg.slot)
        config_kwargs = dict(
            probe=probe_cfg, p=p, n_slots=n_slots, improved=improved
        )
        if marking is not None:
            config_kwargs["marking"] = marking
        self.config = BadabingConfig(**config_kwargs)
        self.sim = sim
        self.start = start
        self.chunk_seconds = chunk_seconds
        self.max_seconds = max_seconds
        self.tool = BadabingTool(
            sim, sender_host, receiver_host, self.config, start=start
        )
        self.validator = (
            validator if validator is not None else SequentialValidator()
        )
        #: (elapsed, transitions, relative error) after each chunk.
        self.progress: List[tuple] = []

    def run(self) -> AdaptiveOutcome:
        """Advance the simulation chunk by chunk until a verdict."""
        seen = 0
        chunks = 0
        elapsed = 0.0
        reason = "exhausted"
        result = None
        while elapsed < self.max_seconds:
            elapsed = min(elapsed + self.chunk_seconds, self.max_seconds)
            chunks += 1
            self.sim.run(until=self.start + elapsed + self.DRAIN)
            result = self.tool.result()
            self.validator.extend(result.outcomes[seen:])
            seen = len(result.outcomes)
            error = self.validator.estimated_relative_error()
            self.progress.append(
                (elapsed, self.validator.report.transition_count, error)
            )
            if self.validator.should_stop():
                reason = "converged"
                break
            if self.validator.should_abort():
                reason = "aborted"
                break
        assert result is not None  # max_seconds >= chunk_seconds
        return AdaptiveOutcome(
            result=result, elapsed=elapsed, chunks=chunks, reason=reason
        )
