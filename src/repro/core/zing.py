"""The ZING baseline: Poisson-modulated UDP probing (§4).

ZING sends UDP probe packets at Poisson-modulated intervals with a fixed
mean rate; the receiver logs arrivals. Per §4's evaluation semantics:

* reported **loss frequency** is the fraction of probe packets lost — the
  PASTA estimate of the probability a random instant is experiencing loss
  *as seen by single packets*;
* reported **loss episode durations** come from Zhang et al.'s definition,
  "a series of consecutive packets (possibly only of length one) that were
  lost": each maximal run of consecutive lost sequence numbers is an
  episode whose duration is the span of send times from its first to its
  last packet (zero for an isolated loss).

The same machinery drives the fixed-interval PING-like baseline
(:mod:`repro.core.pinglike`) via a different interval process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.stats import mean_std
from repro.errors import ConfigurationError
from repro.net.node import Host
from repro.net.simulator import Simulator
from repro.traffic.base import Application, ephemeral_port

ZING_PROTOCOL = "zing"


class _StreamSender(Application):
    """Sends sequence-numbered probes at intervals drawn from a callable."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        dst: str,
        dst_port: int,
        packet_size: int,
        interval: Callable[[], float],
        start: float,
        stop: float,
        flight: int = 1,
        flight_gap: float = 30e-6,
    ):
        if packet_size <= 0:
            raise ConfigurationError(f"packet_size must be positive: {packet_size}")
        if flight < 1:
            raise ConfigurationError(f"flight must be >= 1: {flight}")
        if stop <= start:
            raise ConfigurationError("stop must come after start")
        super().__init__(sim, host, ZING_PROTOCOL)
        self.dst = dst
        self.dst_port = dst_port
        self.packet_size = packet_size
        self.interval = interval
        self.stop = stop
        self.flight = flight
        self.flight_gap = flight_gap
        self._seq = 0
        #: seq -> send time, in send order.
        self.sent: Dict[int, float] = {}
        #: Per-flight grouping: flights[i] lists the seqs sent together
        #: (used by the Figure 7 probe-train analysis).
        self.flights: List[List[int]] = []
        self._m_packets = (
            sim.metrics.counter("probe.packets_sent", tool="zing")
            if sim.metrics.enabled
            else None
        )
        sim.schedule_at(max(start, sim.now), self._tick)

    def _tick(self) -> None:
        if self.sim.now >= self.stop:
            return
        group = len(self.flights)
        self.flights.append([])
        for index in range(self.flight):
            self.sim.schedule(index * self.flight_gap, self._emit, group)
        self.sim.schedule(self.interval(), self._tick)

    def _emit(self, group: int) -> None:
        self._seq += 1
        self.flights[group].append(self._seq)
        self.sent[self._seq] = self.sim.now
        if self._m_packets is not None:
            self._m_packets.inc()
        self.send_packet(
            self.dst,
            self.packet_size,
            payload=(self._seq, self.sim.now),
            port=self.dst_port,
            flow="zing",
        )


class _StreamReceiver(Application):
    """Logs probe arrivals."""

    def __init__(self, sim: Simulator, host: Host, port: Optional[int] = None):
        super().__init__(sim, host, ZING_PROTOCOL, port)
        #: seq -> (send time, receive time).
        self.received: Dict[int, Tuple[float, float]] = {}
        self._m_received = (
            sim.metrics.counter("probe.packets_received", tool="zing")
            if sim.metrics.enabled
            else None
        )

    def on_packet(self, packet) -> None:
        seq, send_time = packet.payload
        self.received[seq] = (send_time, self.sim.now)
        if self._m_received is not None:
            self._m_received.inc()


@dataclass
class ZingResult:
    """What the Poisson prober reports after a run."""

    n_sent: int
    n_lost: int
    #: Maximal runs of consecutive lost probes: (first send, last send, count).
    loss_runs: List[Tuple[float, float, int]]
    duration_mean: float
    duration_std: float
    mean_owd: float
    #: Provenance + timing record (filled in by the experiment runner).
    manifest: Optional[object] = None

    @property
    def frequency(self) -> float:
        """Fraction of probes lost (the tool's loss-frequency report)."""
        if self.n_sent == 0:
            return 0.0
        return self.n_lost / self.n_sent

    @property
    def n_episodes(self) -> int:
        return len(self.loss_runs)


class ZingTool:
    """Deploy a Poisson (or custom-interval) prober between two hosts.

    Parameters
    ----------
    mean_interval:
        Mean gap between probes (paper: 100 ms at 10 Hz, 50 ms at 20 Hz).
    packet_size:
        Probe size in bytes (paper: 256 B at 10 Hz, 64 B at 20 Hz).
    duration:
        Probing phase length in seconds (paper: 15 minutes).
    interval:
        Override the interval process; defaults to exponential with the
        given mean (Poisson modulation). The PING-like tool passes a
        constant.
    """

    def __init__(
        self,
        sim: Simulator,
        sender_host: Host,
        receiver_host: Host,
        mean_interval: float,
        packet_size: int = 256,
        duration: float = 900.0,
        start: float = 0.0,
        flight: int = 1,
        interval: Optional[Callable[[], float]] = None,
        rng_label: str = "zing",
    ):
        if mean_interval <= 0:
            raise ConfigurationError(f"mean_interval must be positive: {mean_interval}")
        self.sim = sim
        self._loss_recorded = False
        rng = sim.rng(rng_label)
        if interval is None:
            interval = lambda: rng.expovariate(1.0 / mean_interval)  # noqa: E731
        port = ephemeral_port()
        self.receiver = _StreamReceiver(sim, receiver_host, port)
        self.sender = _StreamSender(
            sim,
            sender_host,
            receiver_host.name,
            port,
            packet_size,
            interval,
            start,
            start + duration,
            flight=flight,
        )

    def result(self) -> ZingResult:
        """Compute the §4 report from the sender/receiver logs."""
        sent = self.sender.sent
        received = self.receiver.received
        runs: List[Tuple[float, float, int]] = []
        run_start: Optional[float] = None
        run_last = 0.0
        run_count = 0
        owds: List[float] = []
        n_lost = 0
        for seq in sorted(sent):
            send_time = sent[seq]
            if seq in received:
                owds.append(received[seq][1] - send_time)
                if run_start is not None:
                    runs.append((run_start, run_last, run_count))
                    run_start = None
            else:
                n_lost += 1
                if run_start is None:
                    run_start = send_time
                    run_count = 0
                run_last = send_time
                run_count += 1
        if run_start is not None:
            runs.append((run_start, run_last, run_count))
        durations = [last - first for first, last, _count in runs]
        duration_mean, duration_std = mean_std(durations)
        mean_owd = sum(owds) / len(owds) if owds else 0.0
        if not self._loss_recorded and self.sim.metrics.enabled:
            self._loss_recorded = True
            self.sim.metrics.counter("probe.packets_lost", tool="zing").inc(n_lost)
        return ZingResult(
            n_sent=len(sent),
            n_lost=n_lost,
            loss_runs=runs,
            duration_mean=duration_mean,
            duration_std=duration_std,
            mean_owd=mean_owd,
        )
