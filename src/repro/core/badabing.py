"""The BADABING tool: probe emission, collection, and estimation.

One :class:`BadabingTool` couples a sender application and a receiver
application on two simulator hosts:

* the sender walks a :class:`~repro.core.schedule.GeometricSchedule`,
  emitting one probe (a train of ``packets_per_probe`` packets,
  ``intra_probe_gap`` apart) at the start of every covered slot, optionally
  displaced by a jitter model and timestamped by a (possibly skewed) clock;
* the receiver logs arrivals with its own clock;
* :meth:`BadabingTool.result` joins the two logs into
  :class:`~repro.core.records.ProbeRecord` objects, applies the §6.1
  congestion marking, assembles experiment outcomes, and runs the §5
  estimators and §5.4 validation.

The probe packets travel as protocol ``"probe"`` so the bottleneck monitor
can attribute drops (used by the Figure 8 analysis of probe impact).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.config import BadabingConfig, MarkingConfig
from repro.core.clock import AffineClock, Clock, SimClock
from repro.core.estimators import LossEstimate, estimate_from_outcomes
from repro.core.jitter import JitterModel, NoJitter
from repro.core.marking import CongestionMarker, MarkingResult
from repro.core.records import CoverageReport, ExperimentOutcome, ProbeRecord
from repro.core.schedule import GeometricSchedule
from repro.core.validation import ValidationReport, validate_outcomes
from repro.net.node import Host
from repro.net.simulator import Simulator
from repro.obs.tracing import trace_span
from repro.traffic.base import Application, ephemeral_port

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.audit import RunAudit
    from repro.obs.manifest import RunManifest
    from repro.obs.tracing import Tracer

PROBE_PROTOCOL = "probe"

#: Buckets (seconds) for the probe launch-timing-error histogram: sub-slot
#: resolution at the bottom, a whole slot and beyond at the top.
TIMING_ERROR_BUCKETS = (1e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 2.5e-2)


class _ProbeSender(Application):
    """Emits the scheduled probe trains and logs send timestamps."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        dst: str,
        dst_port: int,
        schedule: GeometricSchedule,
        slot_width: float,
        probe_size: int,
        packets_per_probe: int,
        intra_probe_gap: float,
        start: float,
        jitter: JitterModel,
        clock: Clock,
        rng_label: str,
    ):
        super().__init__(sim, host, PROBE_PROTOCOL)
        self.dst = dst
        self.dst_port = dst_port
        self.probe_size = probe_size
        self.packets_per_probe = packets_per_probe
        self.intra_probe_gap = intra_probe_gap
        self.clock = clock
        self.start = start
        self.slot_width = slot_width
        #: (slot, packet index) -> (true send time, sender-clock timestamp).
        self.sent: Dict[Tuple[int, int], Tuple[float, float]] = {}
        self.trains_sent = 0
        # Counts are published by a pull-collector at snapshot time (the
        # send log itself is the source of truth), so the per-packet path
        # carries no registry work; only the timing-error histogram needs a
        # per-train observation.
        metrics = sim.metrics
        if metrics.enabled:
            self._m_timing = metrics.histogram(
                "probe.timing_error_seconds",
                buckets=TIMING_ERROR_BUCKETS,
                tool="badabing",
            )
            metrics.add_collector(self._collect_metrics)
        else:
            self._m_timing = None
        rng = sim.rng(rng_label + "-jitter")
        for slot in schedule.probe_slots:
            nominal = start + slot * slot_width
            sim.schedule_at(nominal + jitter.sample(rng), self._emit_probe, slot)

    def _collect_metrics(self, registry) -> None:
        registry.counter("probe.trains_sent", tool="badabing").value = self.trains_sent
        registry.counter("probe.packets_sent", tool="badabing").value = len(self.sent)

    def _emit_probe(self, slot: int) -> None:
        self.trains_sent += 1
        if self._m_timing is not None:
            # Launch-timing error: how far jitter displaced this train from
            # the nominal slot boundary the schedule asked for (§5's "probes
            # at the start of every covered slot" assumption).
            self._m_timing.observe(abs(self.sim.now - (self.start + slot * self.slot_width)))
        for index in range(self.packets_per_probe):
            self.sim.schedule(index * self.intra_probe_gap, self._emit_packet, slot, index)

    def _emit_packet(self, slot: int, index: int) -> None:
        now = self.sim.now
        stamp = self.clock.now()
        self.sent[(slot, index)] = (now, stamp)
        self.send_packet(
            self.dst,
            self.probe_size,
            payload=(slot, index, stamp),
            port=self.dst_port,
            flow="badabing",
        )


class _ProbeReceiver(Application):
    """Logs probe arrivals with the receiver's clock.

    The log is keyed by probe sequence ``(slot, packet index)``, so
    reordered arrivals land in the right place regardless of arrival
    order, and duplicated packets are deduplicated by keeping the *first*
    arrival per sequence number (later copies only bump a counter).
    """

    def __init__(self, sim: Simulator, host: Host, clock: Clock, port: Optional[int] = None):
        super().__init__(sim, host, PROBE_PROTOCOL, port)
        self.clock = clock
        #: (slot, packet index) -> receiver-clock arrival timestamp.
        self.received: Dict[Tuple[int, int], float] = {}
        #: Arrivals discarded because the sequence number was already logged.
        self.duplicate_arrivals = 0
        #: Arrivals whose sequence is older than one already seen — the
        #: receiver-visible signature of in-network reordering.
        self.late_arrivals = 0
        self._max_key: Optional[Tuple[int, int]] = None
        # The arrival log and the native dedup/reorder tallies are the
        # source of truth; a pull-collector publishes them at snapshot time
        # so the per-packet path carries no registry work.
        if sim.metrics.enabled:
            sim.metrics.add_collector(self._collect_metrics)

    def _collect_metrics(self, registry) -> None:
        registry.counter("probe.packets_received", tool="badabing").value = len(
            self.received
        )
        registry.counter("probe.duplicates", tool="badabing").value = (
            self.duplicate_arrivals
        )
        registry.counter("probe.late_arrivals", tool="badabing").value = (
            self.late_arrivals
        )

    def on_packet(self, packet) -> None:
        slot, index, _stamp = packet.payload
        key = (slot, index)
        if key in self.received:
            self.duplicate_arrivals += 1
            return
        if self._max_key is None or key > self._max_key:
            self._max_key = key
        else:
            self.late_arrivals += 1
        self.received[key] = self.clock.now()


@dataclass
class BadabingResult:
    """Everything one measurement produced."""

    estimate: LossEstimate
    validation: ValidationReport
    marking: MarkingResult
    probes: List[ProbeRecord]
    outcomes: List[ExperimentOutcome]
    n_probes_sent: int
    probe_load_bps: float
    slot_width: float
    #: Plan-vs-observed accounting (how degraded the measurement was).
    coverage: Optional[CoverageReport] = None
    #: Receiver-side duplicate arrivals discarded during the log join.
    duplicate_arrivals: int = 0
    #: Provenance + timing record (filled in by the experiment runner).
    manifest: Optional["RunManifest"] = None
    #: Accuracy audit against ground truth (filled in by the experiment
    #: runner when the run's metrics registry is enabled).
    audit: Optional["RunAudit"] = None

    @property
    def frequency(self) -> float:
        """Estimated congestion frequency F̂."""
        return self.estimate.frequency

    @property
    def duration_seconds(self) -> float:
        """Estimated mean loss-episode duration D̂ in seconds (may be nan)."""
        return self.estimate.duration_seconds(self.slot_width)

    @property
    def lost_probe_packets(self) -> int:
        return sum(probe.lost_packets for probe in self.probes)


def filter_blackouts(
    probes: List[ProbeRecord],
    blackout_windows: Optional[List[Tuple[float, float]]],
) -> List[ProbeRecord]:
    """Drop probes sent inside known collector-outage windows."""
    if not blackout_windows:
        return probes
    return [
        probe
        for probe in probes
        if not any(
            start <= probe.send_time < end for start, end in blackout_windows
        )
    ]


def _assemble_result_vectorized(
    schedule: GeometricSchedule,
    probes: List[ProbeRecord],
    config: BadabingConfig,
    marker: Optional[CongestionMarker],
    tracer: Optional["Tracer"],
) -> Tuple[Any, Any, Any, Any]:
    """Array-batched middle of :func:`assemble_result`.

    Returns ``(marked, outcomes, coverage, (estimate, validation))`` with
    values bit-identical to the scalar stages — the batch pipeline folds
    the pattern counter once with ``np.bincount`` and both the estimator
    and the validator read that one counter.
    """
    from repro.core import batch
    from repro.core.estimators import estimate_from_counter
    from repro.core.validation import report_from_counter

    marking_cfg = marker.config if marker is not None else config.marking
    with trace_span(tracer, "probe.mark", n_probes=len(probes)):
        arrays = batch.ProbeArrays.from_records(probes)
        if schedule.start_array is not None:
            starts, lengths = schedule.start_array, schedule.length_array
        else:
            starts, lengths = batch.experiment_arrays(schedule.experiments)
        pipeline = batch.run_slot_pipeline(
            starts, lengths, arrays, marking=marking_cfg, n_slots=schedule.n_slots
        )
    marked = MarkingResult(
        slot_states=pipeline.marking.slot_states_dict(),
        marked_by_loss=pipeline.marking.marked_by_loss,
        marked_by_delay=pipeline.marking.marked_by_delay,
        noise_losses=pipeline.marking.noise_losses,
        owd_max_estimates=pipeline.marking.owd_max_estimates,
    )
    outcomes = batch.materialize_outcomes(
        pipeline.starts, pipeline.keys, pipeline.valid
    )
    with trace_span(tracer, "probe.estimate"):
        estimate = estimate_from_counter(
            pipeline.counter, improved=config.improved, coverage=pipeline.coverage
        )
    with trace_span(tracer, "probe.validate"):
        validation = report_from_counter(
            pipeline.counter, coverage=pipeline.coverage
        )
    return marked, outcomes, pipeline.coverage, (estimate, validation)


def assemble_result(
    schedule: GeometricSchedule,
    probes: List[ProbeRecord],
    config: BadabingConfig,
    marker: Optional[CongestionMarker] = None,
    blackout_windows: Optional[List[Tuple[float, float]]] = None,
    duplicate_arrivals: int = 0,
    tracer: Optional["Tracer"] = None,
    vectorized: bool = False,
) -> BadabingResult:
    """Marking + estimation + validation over a joined probe stream.

    This is THE estimator path: both measurement backends — the simulator
    (:class:`BadabingTool`) and the live asyncio runtime
    (:mod:`repro.live`) — funnel their probe records through this one
    function, so estimator/validator behaviour cannot fork between them.
    ``probes`` must be sorted by send time; ``blackout_windows`` lists
    ``(start, end)`` send-time intervals during which the collector is
    known to have been down — probes inside them are excluded (degrading
    coverage) rather than mistaken for total loss.

    ``vectorized`` routes the marking → y_i → fold middle through the
    array-batched pipeline (:mod:`repro.core.batch`). The result is
    bit-identical — same outcomes, counts, estimates, and coverage — so
    the switch is purely about wall time; it needs numpy and honours a
    custom ``marker``'s *config* (a subclassed ``_mark`` would be
    bypassed, so exotic markers should stay scalar).
    """
    probes = filter_blackouts(probes, blackout_windows)
    if vectorized:
        marked, outcomes, coverage, (estimate, validation) = (
            _assemble_result_vectorized(schedule, probes, config, marker, tracer)
        )
        return BadabingResult(
            estimate=estimate,
            validation=validation,
            marking=marked,
            probes=probes,
            outcomes=outcomes,
            n_probes_sent=schedule.n_probes,
            probe_load_bps=schedule.probe_load_bps(
                config.probe.packets_per_probe,
                config.probe.probe_size,
                config.probe.slot,
            ),
            slot_width=config.probe.slot,
            coverage=coverage,
            duplicate_arrivals=duplicate_arrivals,
        )
    if marker is None:
        marker = CongestionMarker(config.marking)
    with trace_span(tracer, "probe.mark", n_probes=len(probes)):
        marked = marker.mark(probes)
    outcomes = schedule.outcomes_from_states(marked.slot_states)
    coverage = schedule.coverage_from_states(marked.slot_states)
    with trace_span(tracer, "probe.estimate"):
        estimate = estimate_from_outcomes(
            outcomes, improved=config.improved, coverage=coverage
        )
    with trace_span(tracer, "probe.validate"):
        validation = validate_outcomes(outcomes, coverage=coverage)
    return BadabingResult(
        estimate=estimate,
        validation=validation,
        marking=marked,
        probes=probes,
        outcomes=outcomes,
        n_probes_sent=schedule.n_probes,
        probe_load_bps=schedule.probe_load_bps(
            config.probe.packets_per_probe, config.probe.probe_size, config.probe.slot
        ),
        slot_width=config.probe.slot,
        coverage=coverage,
        duplicate_arrivals=duplicate_arrivals,
    )


class BadabingTool:
    """Deploy BADABING between two hosts of a simulation.

    Create the tool *before* running the simulator, run the simulator past
    ``start + config.duration`` (plus a drain margin for in-flight
    packets), then call :meth:`result`.
    """

    def __init__(
        self,
        sim: Simulator,
        sender_host: Host,
        receiver_host: Host,
        config: Optional[BadabingConfig] = None,
        start: float = 0.0,
        jitter: Optional[JitterModel] = None,
        sender_clock: Optional[AffineClock] = None,
        receiver_clock: Optional[AffineClock] = None,
        rng_label: str = "badabing",
        tracer: Optional["Tracer"] = None,
        vectorized: Optional[bool] = None,
    ):
        self.sim = sim
        self.config = config if config is not None else BadabingConfig()
        self.start = start
        self.tracer = tracer
        self._loss_recorded = False
        # Per-tool override beats the simulator-wide default; both mere
        # speed switches (the schedule, estimates, and digests are
        # bit-identical either way).
        self.vectorized = (
            vectorized if vectorized is not None else getattr(sim, "vectorized", False)
        )
        cfg = self.config
        self.schedule = GeometricSchedule(
            cfg.p,
            cfg.n_slots,
            sim.rng(rng_label + "-schedule"),
            improved=cfg.improved,
            vectorized=self.vectorized,
        )
        receiver_port = ephemeral_port()
        self.receiver = _ProbeReceiver(
            sim,
            receiver_host,
            SimClock(sim, receiver_clock),
            port=receiver_port,
        )
        self.sender = _ProbeSender(
            sim,
            sender_host,
            receiver_host.name,
            receiver_port,
            self.schedule,
            cfg.probe.slot,
            cfg.probe.probe_size,
            cfg.probe.packets_per_probe,
            cfg.probe.intra_probe_gap,
            start,
            jitter if jitter is not None else NoJitter(),
            SimClock(sim, sender_clock),
            rng_label,
        )
        self.marker = CongestionMarker(cfg.marking)

    # ------------------------------------------------------------------ output
    @property
    def end_time(self) -> float:
        """Nominal end of the probing phase (before network drain)."""
        return self.start + self.config.duration

    def probe_records(self) -> List[ProbeRecord]:
        """Join sender and receiver logs into per-slot probe records."""
        sent = self.sender.sent
        received = self.receiver.received
        k = self.config.probe.packets_per_probe
        records: List[ProbeRecord] = []
        for slot in self.schedule.probe_slots:
            first = sent.get((slot, 0))
            if first is None:
                # The schedule may place a slot beyond the time the caller
                # actually ran the simulator for; ignore unsent probes.
                continue
            send_true, _send_stamp = first
            owds: List[float] = []
            owd_before_loss: Optional[float] = None
            last_owd: Optional[float] = None
            saw_loss = False
            incomplete = False
            for index in range(k):
                entry = sent.get((slot, index))
                if entry is None:
                    # The train is still being emitted (result() called
                    # mid-run); treat the whole probe as not-yet-taken.
                    incomplete = True
                    break
                _true_time, stamp = entry
                arrival = received.get((slot, index))
                if arrival is None:
                    if not saw_loss:
                        saw_loss = True
                        owd_before_loss = last_owd
                else:
                    owd = arrival - stamp
                    owds.append(owd)
                    last_owd = owd
            if incomplete:
                continue
            records.append(
                ProbeRecord(
                    slot=slot,
                    send_time=send_true,
                    n_packets=k,
                    owds=tuple(owds),
                    owd_before_loss=owd_before_loss,
                )
            )
        # Launch jitter can reorder emissions relative to slot order; the
        # marker's running OWD_max logic needs true chronological order.
        records.sort(key=lambda record: record.send_time)
        return records

    def result(
        self,
        marking: Optional[MarkingConfig] = None,
        probes: Optional[List[ProbeRecord]] = None,
        blackout_windows: Optional[List[Tuple[float, float]]] = None,
    ) -> BadabingResult:
        """Run marking + estimation + validation over the collected logs.

        ``marking`` optionally overrides the marking parameters, allowing
        one expensive simulation run to be re-marked under many (alpha,
        tau) settings — how the Figure 9 sensitivity sweeps are produced.
        ``probes`` optionally substitutes pre-processed records (e.g.
        de-skewed via :func:`repro.core.clock.deskew_probe_records`).

        ``blackout_windows`` lists absolute-time ``(start, end)`` intervals
        during which the collector is known to have been down (crash /
        restart). Probes sent inside a window are *excluded* rather than
        mistaken for total loss — their slots count against the coverage
        report instead of polluting the congestion estimate. With every
        probe blacked out, estimation raises
        :class:`~repro.errors.EstimationError` carrying the coverage.
        """
        if probes is None:
            with trace_span(self.tracer, "probe.join"):
                probes = self.probe_records()
        probes = filter_blackouts(probes, blackout_windows)
        if not self._loss_recorded and self.sim.metrics.enabled:
            # Record receiver-side loss once (result() may be re-invoked to
            # re-mark the same logs under other parameters).
            self._loss_recorded = True
            self.sim.metrics.counter("probe.packets_lost", tool="badabing").inc(
                sum(probe.lost_packets for probe in probes)
            )
        marker = CongestionMarker(marking) if marking is not None else self.marker
        return assemble_result(
            self.schedule,
            probes,
            self.config,
            marker=marker,
            duplicate_arrivals=self.receiver.duplicate_arrivals,
            tracer=self.tracer,
            vectorized=self.vectorized,
        )
