"""Fixed-interval (PING-like) probing.

The paper's introduction frames the problem with "PING-like tools [that]
send probe packets to a target host at fixed intervals". This baseline
reuses the ZING machinery with a constant interval process, giving the
third point of comparison (periodic vs Poisson vs BADABING) used by the
scheduling ablation benchmark.
"""

from __future__ import annotations

from repro.core.zing import ZingResult, ZingTool
from repro.net.node import Host
from repro.net.simulator import Simulator


class PingLikeTool(ZingTool):
    """A :class:`~repro.core.zing.ZingTool` with deterministic spacing."""

    def __init__(
        self,
        sim: Simulator,
        sender_host: Host,
        receiver_host: Host,
        interval: float,
        packet_size: int = 64,
        duration: float = 900.0,
        start: float = 0.0,
        flight: int = 1,
    ):
        super().__init__(
            sim,
            sender_host,
            receiver_host,
            mean_interval=interval,
            packet_size=packet_size,
            duration=duration,
            start=start,
            flight=flight,
            interval=lambda: interval,
            rng_label="pinglike",
        )


__all__ = ["PingLikeTool", "ZingResult"]
