"""Parametric loss-characteristic inference (§8 future work).

The paper closes with: "We are also considering alternative, parametric
methods for inferring loss characteristics from our probe process." This
module implements the natural first candidate: assume the slot-level
congestion process is a **two-state Markov chain** (the classic Gilbert
model — geometric episode and gap lengths) and fit it by maximum
likelihood from the adjacent-slot pair counts the experiments already
collect.

With states 0/1, let ``g = P(1 -> 0)`` (episode ends) and
``b = P(0 -> 1)`` (episode begins). Observed adjacent pairs are i.i.d.
draws of (Y_i, Y_{i+1}) under the stationary law, so:

* ``ĝ = n10 / (n10 + n11)`` — a binomial MLE,
* ``b̂ = n01 / (n01 + n00)``,
* mean episode duration ``D = 1/g`` slots (geometric),
* stationary frequency ``F = b / (b + g)``.

The estimators come with delta-method standard errors from the binomial
Fisher information, giving *closed-form confidence intervals* — something
the nonparametric §5 estimators do not provide. Under the Markov
assumption the point estimate of D agrees asymptotically with the basic
algorithm's ``2(R/S - 1) + 1`` whenever the 01/10 symmetry holds; when
the true process is not Markov (e.g. fixed-length engineered episodes)
the parametric duration can be biased — which is exactly the trade-off
"parametric methods" buy.

Observation fidelity: the fit assumes ``p1 = p2 = 1`` (every probe
reports its slot correctly); feed it marked outcomes the same way as the
basic algorithm.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from repro.core.records import ExperimentOutcome
from repro.errors import EstimationError

#: z-scores for the supported confidence levels.
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def pair_counts(outcomes: Iterable[ExperimentOutcome]) -> Dict[str, int]:
    """Count adjacent slot pairs, using both pairs of extended outcomes."""
    counts = {"00": 0, "01": 0, "10": 0, "11": 0}
    for outcome in outcomes:
        bits = outcome.bits
        for first, second in zip(bits, bits[1:]):
            counts[f"{first}{second}"] += 1
    return counts


@dataclass(frozen=True)
class GilbertEstimate:
    """MLE fit of the two-state Markov congestion model."""

    #: Estimated P(congested -> clear) per slot.
    g: float
    #: Estimated P(clear -> congested) per slot.
    b: float
    #: Stationary congestion frequency b/(b+g).
    frequency: float
    #: Mean episode duration 1/g, in slots.
    duration_slots: float
    #: Symmetric CI half-widths (same units as the point estimates).
    frequency_halfwidth: float
    duration_halfwidth: float
    confidence: float
    counts: Dict[str, int]

    def duration_seconds(self, slot_width: float) -> float:
        return self.duration_slots * slot_width

    def duration_interval(self, slot_width: float = 1.0) -> Tuple[float, float]:
        """(low, high) CI for the mean episode duration."""
        low = max(1.0, self.duration_slots - self.duration_halfwidth)
        high = self.duration_slots + self.duration_halfwidth
        return low * slot_width, high * slot_width

    def frequency_interval(self) -> Tuple[float, float]:
        """(low, high) CI for the congestion frequency."""
        low = max(0.0, self.frequency - self.frequency_halfwidth)
        high = min(1.0, self.frequency + self.frequency_halfwidth)
        return low, high


def estimate_gilbert(
    outcomes: Iterable[ExperimentOutcome], confidence: float = 0.95
) -> GilbertEstimate:
    """Fit the Gilbert model to experiment outcomes by maximum likelihood.

    Raises
    ------
    EstimationError
        If no congested-state pairs (for g) or no clear-state pairs (for
        b) were observed — the chain parameter is then unidentifiable —
        or if the confidence level is unsupported.
    """
    z = _Z.get(round(confidence, 2))
    if z is None:
        raise EstimationError(
            f"unsupported confidence {confidence}; choose from {sorted(_Z)}"
        )
    counts = pair_counts(outcomes)
    ones = counts["10"] + counts["11"]
    zeros = counts["01"] + counts["00"]
    if ones == 0:
        raise EstimationError("no congested slots observed: g unidentifiable")
    if counts["10"] == 0:
        raise EstimationError("no episode endings observed: g degenerate at 0")
    if zeros == 0:
        raise EstimationError("no clear slots observed: b unidentifiable")
    g = counts["10"] / ones
    b = counts["01"] / zeros

    frequency = b / (b + g)
    duration = 1.0 / g

    # Binomial standard errors.
    se_g = math.sqrt(g * (1.0 - g) / ones)
    se_b = math.sqrt(b * (1.0 - b) / zeros)
    # Delta method: D = 1/g  ->  Var(D) = Var(g) / g^4.
    se_duration = se_g / (g * g)
    # F = b/(b+g): dF/db = g/(b+g)^2, dF/dg = -b/(b+g)^2 (independent fits).
    denom = (b + g) ** 2
    se_frequency = math.sqrt(
        (g / denom) ** 2 * se_b ** 2 + (b / denom) ** 2 * se_g ** 2
    )
    return GilbertEstimate(
        g=g,
        b=b,
        frequency=frequency,
        duration_slots=duration,
        frequency_halfwidth=z * se_frequency,
        duration_halfwidth=z * se_duration,
        confidence=confidence,
        counts=counts,
    )
