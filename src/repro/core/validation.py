"""Validation tests and stopping criteria (§5.4).

The estimators rest on symmetry assumptions that the measured data can
check for free:

* basic design: P(y = 01) = P(y = 10) — episode beginnings are observed as
  often as endings;
* improved design: the four patterns 01, 10, 001, 100 occur at similar
  rates, as do 011 and 110;
* the patterns 010 and 101 are impossible under the assumption structure
  (a miss replaces the whole report with zeros, never flips interior bits);
  each occurrence is a violation.

:class:`ValidationReport` scores a finished measurement;
:class:`SequentialValidator` implements the open-ended "measure until the
estimates are trustworthy" mode sketched in §5.4/§7.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Optional

from repro import profiling as _profiling
from repro.core.estimators import count_patterns, update_pattern_counter
from repro.core.records import CoverageReport, ExperimentOutcome

#: Default ceiling on 010/101 occurrences per experiment before a
#: measurement is judged unacceptable; shared by
#: :meth:`ValidationReport.is_acceptable` and the fast
#: :meth:`SequentialValidator.signals` snapshot so the two verdicts agree.
DEFAULT_MAX_VIOLATION_RATE = 0.05


@dataclass(frozen=True)
class ValidationReport:
    """Outcome-pattern symmetry diagnostics for one measurement."""

    n_experiments: int
    n01: int
    n10: int
    n001: int
    n100: int
    n011: int
    n110: int
    n010: int
    n101: int
    #: Plan-vs-observed accounting for degraded measurements (None when
    #: the validation was run without knowledge of the schedule).
    coverage: Optional[CoverageReport] = None

    # ------------------------------------------------------------- derived
    @property
    def transition_count(self) -> int:
        return self.n01 + self.n10

    @property
    def transition_asymmetry(self) -> float:
        """|#01 − #10| / (#01 + #10); 0 is perfect symmetry.

        §7: "This difference is directly proportional to the expected
        standard deviation of the estimation."
        """
        total = self.transition_count
        if total == 0:
            return 0.0
        return abs(self.n01 - self.n10) / total

    @property
    def extended_pair_asymmetry(self) -> float:
        """|#011 − #110| / (#011 + #110) for the improved design."""
        total = self.n011 + self.n110
        if total == 0:
            return 0.0
        return abs(self.n011 - self.n110) / total

    @property
    def extended_gap_asymmetry(self) -> float:
        """|#001 − #100| / (#001 + #100) for the improved design."""
        total = self.n001 + self.n100
        if total == 0:
            return 0.0
        return abs(self.n001 - self.n100) / total

    @property
    def violations(self) -> int:
        """Occurrences of the impossible patterns 010 and 101."""
        return self.n010 + self.n101

    @property
    def violation_rate(self) -> float:
        """Violations per experiment."""
        if self.n_experiments == 0:
            return 0.0
        return self.violations / self.n_experiments

    def is_acceptable(
        self,
        max_asymmetry: float = 0.3,
        max_violation_rate: float = DEFAULT_MAX_VIOLATION_RATE,
        min_transitions: int = 10,
        min_coverage: float = 0.0,
    ) -> bool:
        """Overall pass/fail judgement with tunable thresholds.

        A measurement with too few observed transitions is *not* failed —
        it is simply inconclusive (and the duration estimate will be
        invalid anyway); symmetry is only judged once ``min_transitions``
        transitions have been seen. ``min_coverage`` (a fraction of
        scheduled slots) fails measurements whose degraded coverage is
        known and below the bar.
        """
        if (
            min_coverage > 0
            and self.coverage is not None
            and self.coverage.slot_fraction < min_coverage
        ):
            return False
        if self.violation_rate > max_violation_rate:
            return False
        if self.transition_count >= min_transitions:
            if self.transition_asymmetry > max_asymmetry:
                return False
        return True


def report_from_counter(
    counter: Counter, coverage: Optional[CoverageReport] = None
) -> ValidationReport:
    """Build a :class:`ValidationReport` from an already-folded counter.

    The streaming path: :class:`SequentialValidator` (and the convergence
    telemetry built on it) maintains one pattern counter incrementally and
    re-derives the report in O(1) after each outcome.
    """
    return ValidationReport(
        n_experiments=counter.get("M", 0),
        n01=counter.get("01", 0),
        n10=counter.get("10", 0),
        n001=counter.get("001", 0),
        n100=counter.get("100", 0),
        n011=counter.get("011", 0),
        n110=counter.get("110", 0),
        n010=counter.get("010", 0),
        n101=counter.get("101", 0),
        coverage=coverage,
    )


def validate_outcomes(
    outcomes: Iterable[ExperimentOutcome],
    coverage: Optional[CoverageReport] = None,
) -> ValidationReport:
    """Build a :class:`ValidationReport` from measured outcomes."""
    with _profiling.profile_stage("validator.fold"):
        return report_from_counter(count_patterns(outcomes), coverage=coverage)


@dataclass(frozen=True)
class ValidatorSignals:
    """One instantaneous reading of a :class:`SequentialValidator`.

    The convergence-telemetry layer samples these after every outcome and
    exports them as registry series, so an operator can watch the §5.4
    trustworthiness signals evolve instead of learning them post hoc.
    """

    n_experiments: int
    transitions: int
    violation_rate: float
    transition_asymmetry: float
    extended_pair_asymmetry: float
    extended_gap_asymmetry: float
    #: 1/sqrt(S); None while no transition has been observed.
    estimated_relative_error: Optional[float]
    should_stop: bool
    should_abort: bool


class SequentialValidator:
    """Open-ended experimentation with a §5.4-style stopping rule.

    Feed outcomes as they are produced; :meth:`should_stop` turns true when
    enough transitions have accumulated for the duration estimator's
    predicted relative error to fall below ``target_relative_error`` *and*
    the symmetry checks pass. ``should_abort`` turns true if the symmetry
    discrepancy persists long past the point it should have converged —
    the paper's "a large discrepancy that is not bridged by increasing M".

    The validator folds outcomes into one pattern counter as they arrive,
    so :attr:`report`, :meth:`should_stop`, and :meth:`signals` cost O(1)
    per call regardless of how many outcomes have been seen — cheap enough
    to evaluate after *every* outcome for convergence telemetry.
    """

    def __init__(
        self,
        target_relative_error: float = 0.25,
        max_asymmetry: float = 0.3,
        min_transitions: int = 20,
        abort_after_transitions: int = 500,
    ):
        self.target_relative_error = target_relative_error
        self.max_asymmetry = max_asymmetry
        self.min_transitions = min_transitions
        self.abort_after_transitions = abort_after_transitions
        self._counter: Counter = Counter()

    def add(self, outcome: ExperimentOutcome) -> None:
        update_pattern_counter(self._counter, outcome)

    def extend(self, outcomes: Iterable[ExperimentOutcome]) -> None:
        for outcome in outcomes:
            update_pattern_counter(self._counter, outcome)

    def absorb_counter(self, counter: Counter) -> None:
        """Fold a whole pre-counted pattern counter into this validator.

        The batch pipeline (:mod:`repro.core.batch`) folds an entire
        outcome array into one counter with ``np.bincount``; absorbing it
        here produces exactly the totals that feeding the outcomes one at
        a time through :meth:`add` would have. Only positive entries are
        merged, so the key set matches the incremental fold's.
        """
        for key, count in counter.items():
            if count:
                self._counter[key] += count

    @property
    def n_experiments(self) -> int:
        return self._counter.get("M", 0)

    @property
    def pattern_counter(self) -> Counter:
        """Live view of the folded pattern counter (treat as read-only).

        Lets streaming consumers (convergence telemetry) derive F̂/D̂ from
        the same counter the validator maintains instead of folding every
        outcome a second time.
        """
        return self._counter

    @property
    def report(self) -> ValidationReport:
        return report_from_counter(self._counter)

    def signals(self) -> ValidatorSignals:
        """Snapshot every live signal at the current outcome count.

        Reads the counter directly instead of materializing a
        :class:`ValidationReport` — the convergence-telemetry loop calls
        this once per sampled outcome, so the snapshot is kept to dict
        reads and arithmetic. The acceptability logic must mirror
        :meth:`ValidationReport.is_acceptable` at this validator's
        thresholds (a regression test pins the two together).
        """
        get = self._counter.get
        n01 = get("01", 0)
        n10 = get("10", 0)
        transitions = n01 + n10
        n_experiments = get("M", 0)
        violations = get("010", 0) + get("101", 0)
        violation_rate = violations / n_experiments if n_experiments else 0.0
        asymmetry = abs(n01 - n10) / transitions if transitions else 0.0
        n001 = get("001", 0)
        n100 = get("100", 0)
        gap_total = n001 + n100
        n011 = get("011", 0)
        n110 = get("110", 0)
        pair_total = n011 + n110
        error = 1.0 / math.sqrt(transitions) if transitions else None
        acceptable = violation_rate <= DEFAULT_MAX_VIOLATION_RATE and (
            transitions < self.min_transitions or asymmetry <= self.max_asymmetry
        )
        return ValidatorSignals(
            n_experiments=n_experiments,
            transitions=transitions,
            violation_rate=violation_rate,
            transition_asymmetry=asymmetry,
            extended_pair_asymmetry=(
                abs(n011 - n110) / pair_total if pair_total else 0.0
            ),
            extended_gap_asymmetry=(
                abs(n001 - n100) / gap_total if gap_total else 0.0
            ),
            estimated_relative_error=error,
            should_stop=(
                transitions >= self.min_transitions
                and error is not None
                and error <= self.target_relative_error
                and acceptable
            ),
            should_abort=transitions >= self.abort_after_transitions
            and not acceptable,
        )

    def estimated_relative_error(self) -> Optional[float]:
        """1/sqrt(S): the relative sampling error of the transition count.

        S (observed transitions) plays the role of p·N·L in §7's accuracy
        formula; with fewer than one transition the error is unbounded.
        """
        report = self.report
        if report.transition_count == 0:
            return None
        return 1.0 / math.sqrt(report.transition_count)

    def should_stop(self) -> bool:
        report = self.report
        if report.transition_count < self.min_transitions:
            return False
        error = self.estimated_relative_error()
        if error is None or error > self.target_relative_error:
            return False
        return report.is_acceptable(
            max_asymmetry=self.max_asymmetry, min_transitions=self.min_transitions
        )

    def should_abort(self) -> bool:
        report = self.report
        if report.transition_count < self.abort_after_transitions:
            return False
        return not report.is_acceptable(
            max_asymmetry=self.max_asymmetry, min_transitions=self.min_transitions
        )
