"""Validation tests and stopping criteria (§5.4).

The estimators rest on symmetry assumptions that the measured data can
check for free:

* basic design: P(y = 01) = P(y = 10) — episode beginnings are observed as
  often as endings;
* improved design: the four patterns 01, 10, 001, 100 occur at similar
  rates, as do 011 and 110;
* the patterns 010 and 101 are impossible under the assumption structure
  (a miss replaces the whole report with zeros, never flips interior bits);
  each occurrence is a violation.

:class:`ValidationReport` scores a finished measurement;
:class:`SequentialValidator` implements the open-ended "measure until the
estimates are trustworthy" mode sketched in §5.4/§7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.core.estimators import count_patterns
from repro.core.records import CoverageReport, ExperimentOutcome


@dataclass(frozen=True)
class ValidationReport:
    """Outcome-pattern symmetry diagnostics for one measurement."""

    n_experiments: int
    n01: int
    n10: int
    n001: int
    n100: int
    n011: int
    n110: int
    n010: int
    n101: int
    #: Plan-vs-observed accounting for degraded measurements (None when
    #: the validation was run without knowledge of the schedule).
    coverage: Optional[CoverageReport] = None

    # ------------------------------------------------------------- derived
    @property
    def transition_count(self) -> int:
        return self.n01 + self.n10

    @property
    def transition_asymmetry(self) -> float:
        """|#01 − #10| / (#01 + #10); 0 is perfect symmetry.

        §7: "This difference is directly proportional to the expected
        standard deviation of the estimation."
        """
        total = self.transition_count
        if total == 0:
            return 0.0
        return abs(self.n01 - self.n10) / total

    @property
    def extended_pair_asymmetry(self) -> float:
        """|#011 − #110| / (#011 + #110) for the improved design."""
        total = self.n011 + self.n110
        if total == 0:
            return 0.0
        return abs(self.n011 - self.n110) / total

    @property
    def extended_gap_asymmetry(self) -> float:
        """|#001 − #100| / (#001 + #100) for the improved design."""
        total = self.n001 + self.n100
        if total == 0:
            return 0.0
        return abs(self.n001 - self.n100) / total

    @property
    def violations(self) -> int:
        """Occurrences of the impossible patterns 010 and 101."""
        return self.n010 + self.n101

    @property
    def violation_rate(self) -> float:
        """Violations per experiment."""
        if self.n_experiments == 0:
            return 0.0
        return self.violations / self.n_experiments

    def is_acceptable(
        self,
        max_asymmetry: float = 0.3,
        max_violation_rate: float = 0.05,
        min_transitions: int = 10,
        min_coverage: float = 0.0,
    ) -> bool:
        """Overall pass/fail judgement with tunable thresholds.

        A measurement with too few observed transitions is *not* failed —
        it is simply inconclusive (and the duration estimate will be
        invalid anyway); symmetry is only judged once ``min_transitions``
        transitions have been seen. ``min_coverage`` (a fraction of
        scheduled slots) fails measurements whose degraded coverage is
        known and below the bar.
        """
        if (
            min_coverage > 0
            and self.coverage is not None
            and self.coverage.slot_fraction < min_coverage
        ):
            return False
        if self.violation_rate > max_violation_rate:
            return False
        if self.transition_count >= min_transitions:
            if self.transition_asymmetry > max_asymmetry:
                return False
        return True


def validate_outcomes(
    outcomes: Iterable[ExperimentOutcome],
    coverage: Optional[CoverageReport] = None,
) -> ValidationReport:
    """Build a :class:`ValidationReport` from measured outcomes."""
    counter = count_patterns(outcomes)
    return ValidationReport(
        n_experiments=counter.get("M", 0),
        n01=counter.get("01", 0),
        n10=counter.get("10", 0),
        n001=counter.get("001", 0),
        n100=counter.get("100", 0),
        n011=counter.get("011", 0),
        n110=counter.get("110", 0),
        n010=counter.get("010", 0),
        n101=counter.get("101", 0),
        coverage=coverage,
    )


class SequentialValidator:
    """Open-ended experimentation with a §5.4-style stopping rule.

    Feed outcomes as they are produced; :meth:`should_stop` turns true when
    enough transitions have accumulated for the duration estimator's
    predicted relative error to fall below ``target_relative_error`` *and*
    the symmetry checks pass. ``should_abort`` turns true if the symmetry
    discrepancy persists long past the point it should have converged —
    the paper's "a large discrepancy that is not bridged by increasing M".
    """

    def __init__(
        self,
        target_relative_error: float = 0.25,
        max_asymmetry: float = 0.3,
        min_transitions: int = 20,
        abort_after_transitions: int = 500,
    ):
        self.target_relative_error = target_relative_error
        self.max_asymmetry = max_asymmetry
        self.min_transitions = min_transitions
        self.abort_after_transitions = abort_after_transitions
        self._outcomes: List[ExperimentOutcome] = []

    def add(self, outcome: ExperimentOutcome) -> None:
        self._outcomes.append(outcome)

    def extend(self, outcomes: Iterable[ExperimentOutcome]) -> None:
        self._outcomes.extend(outcomes)

    @property
    def report(self) -> ValidationReport:
        return validate_outcomes(self._outcomes)

    def estimated_relative_error(self) -> Optional[float]:
        """1/sqrt(S): the relative sampling error of the transition count.

        S (observed transitions) plays the role of p·N·L in §7's accuracy
        formula; with fewer than one transition the error is unbounded.
        """
        report = self.report
        if report.transition_count == 0:
            return None
        return 1.0 / math.sqrt(report.transition_count)

    def should_stop(self) -> bool:
        report = self.report
        if report.transition_count < self.min_transitions:
            return False
        error = self.estimated_relative_error()
        if error is None or error > self.target_relative_error:
            return False
        return report.is_acceptable(
            max_asymmetry=self.max_asymmetry, min_transitions=self.min_transitions
        )

    def should_abort(self) -> bool:
        report = self.report
        if report.transition_count < self.abort_after_transitions:
            return False
        return not report.is_acceptable(
            max_asymmetry=self.max_asymmetry, min_transitions=self.min_transitions
        )
