"""Data-driven uncertainty for the §5 estimators (§8 future work).

The paper's closing tasks include: "estimate the variability of the
estimates of congestion frequency and duration themselves directly from
the measured data, under a minimal set of statistical assumptions on the
congestion process."

Experiment *starts* are i.i.d. Bernoulli(p) by design, so the outcomes
form (nearly) exchangeable draws from the path's window distribution; the
nonparametric bootstrap over experiments therefore needs no model of the
congestion process at all. :func:`bootstrap_estimates` resamples the
outcome list with replacement, re-runs the §5 estimators on each
resample, and reports percentile confidence intervals.

(Adjacent experiments can overlap slots, introducing weak dependence;
:func:`bootstrap_estimates` optionally resamples in small blocks to be
safe, which is the standard fix.)
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.estimators import estimate_from_outcomes
from repro.core.records import ExperimentOutcome
from repro.errors import EstimationError


@dataclass(frozen=True)
class BootstrapResult:
    """Percentile bootstrap intervals for F̂ and D̂."""

    frequency: float
    frequency_interval: Tuple[float, float]
    duration_slots: float
    duration_interval: Tuple[float, float]
    #: Fraction of resamples on which the duration estimator was valid
    #: (observed at least one transition). Below ~0.9, treat the duration
    #: interval as unreliable.
    duration_support: float
    n_resamples: int
    confidence: float

    def duration_interval_seconds(self, slot_width: float) -> Tuple[float, float]:
        low, high = self.duration_interval
        return low * slot_width, high * slot_width


def _percentile(sorted_values: List[float], q: float) -> float:
    """Linear-interpolation percentile of pre-sorted data, q in [0, 1]."""
    if not sorted_values:
        return float("nan")
    position = q * (len(sorted_values) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return sorted_values[low]
    weight = position - low
    return sorted_values[low] * (1 - weight) + sorted_values[high] * weight


def bootstrap_estimates(
    outcomes: Sequence[ExperimentOutcome],
    n_resamples: int = 200,
    confidence: float = 0.95,
    block: int = 1,
    rng: Optional[random.Random] = None,
    improved: Optional[bool] = None,
) -> BootstrapResult:
    """Bootstrap percentile CIs for frequency and duration.

    Parameters
    ----------
    outcomes:
        Measured experiment outcomes (any mix of basic/extended).
    n_resamples:
        Bootstrap replicates; 200 is plenty for 95% percentile intervals.
    block:
        Resample contiguous blocks of this many experiments (block
        bootstrap) to respect the slight dependence between overlapping
        experiments. 1 = plain i.i.d. bootstrap.
    rng:
        Random stream (seed it for reproducibility).
    improved:
        Forwarded to :func:`estimate_from_outcomes`.
    """
    if not outcomes:
        raise EstimationError("no outcomes to bootstrap")
    if n_resamples < 10:
        raise EstimationError(f"need >= 10 resamples, got {n_resamples}")
    if not 0.5 < confidence < 1.0:
        raise EstimationError(f"confidence must be in (0.5, 1), got {confidence}")
    if block < 1:
        raise EstimationError(f"block must be >= 1, got {block}")
    if rng is None:
        rng = random.Random(0)

    point = estimate_from_outcomes(outcomes, improved=improved)
    n = len(outcomes)
    frequencies: List[float] = []
    durations: List[float] = []
    for _ in range(n_resamples):
        resample: List[ExperimentOutcome] = []
        while len(resample) < n:
            start = rng.randrange(n)
            resample.extend(outcomes[start : start + block])
        resample = resample[:n]
        replicate = estimate_from_outcomes(resample, improved=improved)
        frequencies.append(replicate.frequency)
        if replicate.duration_valid:
            durations.append(replicate.duration_slots)

    tail = (1.0 - confidence) / 2.0
    frequencies.sort()
    durations.sort()
    frequency_interval = (
        _percentile(frequencies, tail),
        _percentile(frequencies, 1.0 - tail),
    )
    duration_interval = (
        _percentile(durations, tail),
        _percentile(durations, 1.0 - tail),
    )
    return BootstrapResult(
        frequency=point.frequency,
        frequency_interval=frequency_interval,
        duration_slots=point.duration_slots,
        duration_interval=duration_interval,
        duration_support=len(durations) / n_resamples,
        n_resamples=n_resamples,
        confidence=confidence,
    )
