"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library errors without
swallowing programming mistakes (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was configured with invalid or inconsistent parameters."""


class FaultInjectionError(ConfigurationError):
    """A fault-injection profile was invalid or attached inconsistently."""


class TraceFormatError(ConfigurationError):
    """A measurement trace file was malformed (bad JSON, missing fields).

    Carries the offending 1-based line number when known, so diagnostics
    can point at the exact corrupt record.
    """

    def __init__(self, message: str, line_number: int | None = None):
        super().__init__(message)
        self.line_number = line_number


class WireFormatError(ConfigurationError):
    """A live-runtime datagram violated the binary wire format.

    Raised by :mod:`repro.live.wire` on short reads, bad magic, version
    skew, and out-of-range fields. This is the *only* exception the
    decoders raise, so a reflector can count-and-drop malformed datagrams
    without ever crashing on hostile input.
    """


class LiveSessionError(ReproError):
    """A live measurement session failed (handshake timeout, bind error)."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""


class BudgetExhaustedError(SimulationError):
    """A run stopped because its event budget ran out with work pending.

    Carries the progress the simulation made so sweep harnesses and logs
    can report *where* the budget died, not just that it did.
    """

    def __init__(
        self,
        message: str,
        events_processed: int | None = None,
        sim_time: float | None = None,
        budget: int | None = None,
    ):
        super().__init__(message)
        self.events_processed = events_processed
        self.sim_time = sim_time
        self.budget = budget


class ObservabilityError(ReproError):
    """A metrics/trace document was malformed or failed schema validation."""


class RoutingError(SimulationError):
    """A packet could not be routed to its destination."""


class EstimationError(ReproError):
    """An estimator could not produce a value (e.g., no observations)."""


class ValidationError(ReproError):
    """A measurement failed the §5.4 validation checks badly enough to abort."""
