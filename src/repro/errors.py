"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library errors without
swallowing programming mistakes (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was configured with invalid or inconsistent parameters."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""


class RoutingError(SimulationError):
    """A packet could not be routed to its destination."""


class EstimationError(ReproError):
    """An estimator could not produce a value (e.g., no observations)."""


class ValidationError(ReproError):
    """A measurement failed the §5.4 validation checks badly enough to abort."""
