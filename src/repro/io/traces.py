"""JSON-lines measurement traces.

Format (one JSON object per line):

* line 1 — header: ``{"type": "badabing-trace", "version": 1,
  "slot_width": ..., "n_slots": ..., "p": ..., "metadata": {...},
  "experiments": [[start, length], ...]}``
* following lines — probes: ``{"slot": ..., "t": send_time,
  "n": n_packets, "owds": [...], "obl": owd_before_loss-or-null}``

The format is self-contained: everything estimation needs (schedule and
probe observations) is in the file, so traces can be shipped between
machines and re-analyzed with different §6.1 marking parameters.

Alongside the JSONL format there is a packed binary variant
(:func:`save_measurement_binary` / :func:`load_measurement_binary`): the
same measurement as a structure-of-arrays ``.npz`` archive, written and
read in one shot instead of one JSON object per probe. A long trace loads
as a handful of contiguous arrays — the natural feed for the vectorized
pipeline (:meth:`Measurement.probe_arrays` →
:func:`repro.core.batch.run_slot_pipeline`) — and round-trips exactly
(float bit patterns preserved).
"""

from __future__ import annotations

import json
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Any, Dict, List, Optional, Union

from repro import profiling as _profiling
from repro.config import MarkingConfig
from repro.core.badabing import BadabingResult, BadabingTool
from repro.core.estimators import estimate_from_outcomes
from repro.core.marking import CongestionMarker
from repro.core.records import ExperimentOutcome, ProbeRecord
from repro.core.schedule import Experiment, coverage_report
from repro.core.validation import validate_outcomes
from repro.errors import ConfigurationError, TraceFormatError

FORMAT_NAME = "badabing-trace"
FORMAT_VERSION = 1

PathLike = Union[str, Path]


@dataclass
class TraceDiagnostic:
    """One corrupt line skipped while loading a trace in recovery mode."""

    line_number: int
    reason: str
    snippet: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"line {self.line_number}: {self.reason} ({self.snippet})"


@dataclass
class Measurement:
    """A persisted (or persistable) measurement: schedule + probe records."""

    slot_width: float
    n_slots: int
    p: float
    experiments: List[Experiment]
    probes: List[ProbeRecord]
    metadata: Dict[str, Any] = field(default_factory=dict)
    #: Corrupt lines skipped by a recovery-mode load (empty otherwise).
    diagnostics: List[TraceDiagnostic] = field(default_factory=list)

    def outcomes(self, slot_states: Dict[int, bool]) -> List[ExperimentOutcome]:
        """Assemble y_i values from marked slot states."""
        outcomes: List[ExperimentOutcome] = []
        for experiment in self.experiments:
            bits = []
            for slot in experiment.slots:
                state = slot_states.get(slot)
                if state is None:
                    break
                bits.append(int(state))
            else:
                outcomes.append(
                    ExperimentOutcome(experiment.start_slot, tuple(bits))
                )
        return outcomes

    def probe_arrays(self):
        """This measurement's probes as a batch structure-of-arrays.

        Returns a :class:`repro.core.batch.ProbeArrays` (requires numpy)
        sorted by send time, ready for
        :func:`repro.core.batch.run_slot_pipeline`.
        """
        from repro.core.batch import ProbeArrays

        probes = sorted(self.probes, key=lambda probe: probe.send_time)
        return ProbeArrays.from_records(probes)

    def experiment_arrays(self):
        """The schedule as ``(starts, lengths)`` int64 arrays (needs numpy)."""
        from repro.core.batch import experiment_arrays

        return experiment_arrays(self.experiments)


def measurement_from_tool(
    tool: BadabingTool, metadata: Optional[Dict[str, Any]] = None
) -> Measurement:
    """Snapshot a finished (or in-progress) BADABING tool."""
    config = tool.config
    return Measurement(
        slot_width=config.probe.slot,
        n_slots=config.n_slots,
        p=config.p,
        experiments=list(tool.schedule.experiments),
        probes=tool.probe_records(),
        metadata=dict(metadata or {}),
    )


def _header_line(
    slot_width: float,
    n_slots: int,
    p: float,
    experiments: List[Experiment],
    metadata: Dict[str, Any],
) -> str:
    header = {
        "type": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "slot_width": slot_width,
        "n_slots": n_slots,
        "p": p,
        "metadata": metadata,
        "experiments": [
            [experiment.start_slot, experiment.length]
            for experiment in experiments
        ],
    }
    return json.dumps(header)


def _probe_line(probe: ProbeRecord) -> str:
    return json.dumps(
        {
            "slot": probe.slot,
            "t": probe.send_time,
            "n": probe.n_packets,
            "owds": list(probe.owds),
            "obl": probe.owd_before_loss,
        }
    )


class TraceWriter:
    """Incremental trace writer for long-running (live) measurements.

    The batch :func:`save_measurement` needs the whole probe list up
    front; a live session instead knows its *schedule* at start and grows
    its probe log over minutes or hours. The writer puts the header on
    disk immediately and flushes each probe line as it is appended, so a
    crash (or Ctrl-C) mid-session leaves a trace that is valid up to the
    last completed line — and :func:`load_measurement` with
    ``recover=True`` shrugs off the torn final line a hard kill can leave.

    Usable as a context manager; ``close()`` is idempotent.
    """

    def __init__(
        self,
        path: PathLike,
        slot_width: float,
        n_slots: int,
        p: float,
        experiments: List[Experiment],
        metadata: Optional[Dict[str, Any]] = None,
    ):
        from repro.obs.artifacts import ensure_parent_dir

        ensure_parent_dir(path, "trace", exc_type=TraceFormatError)
        try:
            self._handle = open(path, "w", encoding="utf-8")
        except OSError as exc:
            raise TraceFormatError(f"cannot write trace {path}: {exc}") from exc
        self.path = path
        self.probes_written = 0
        self._handle.write(
            _header_line(slot_width, n_slots, p, experiments, dict(metadata or {}))
            + "\n"
        )
        self._handle.flush()

    def write_probe(self, probe: ProbeRecord) -> None:
        if self._handle is None:
            raise TraceFormatError(f"trace writer for {self.path} is closed")
        prof = _profiling.ACTIVE
        if prof is None:
            self._handle.write(_probe_line(probe) + "\n")
            self._handle.flush()
        else:
            started = perf_counter()
            self._handle.write(_probe_line(probe) + "\n")
            self._handle.flush()
            prof.record("trace.io", perf_counter() - started)
        self.probes_written += 1

    def write_probes(self, probes: List[ProbeRecord]) -> None:
        """Append a batch of probes with one write + one flush.

        The per-probe :meth:`write_probe` flushes after every line (the
        crash-safety contract for live sessions); batch writers — sweep
        archival, trace re-export, the vectorized pipeline dumping a whole
        run — pay that syscall tax per *batch* instead. Line format and
        resulting file bytes are identical to repeated single writes.
        """
        if self._handle is None:
            raise TraceFormatError(f"trace writer for {self.path} is closed")
        if not probes:
            return
        payload = "".join(_probe_line(probe) + "\n" for probe in probes)
        prof = _profiling.ACTIVE
        if prof is None:
            self._handle.write(payload)
            self._handle.flush()
        else:
            started = perf_counter()
            self._handle.write(payload)
            self._handle.flush()
            prof.record("trace.io", perf_counter() - started)
        self.probes_written += len(probes)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def save_measurement(
    path: PathLike,
    measurement: Union[Measurement, BadabingTool],
    metadata: Optional[Dict[str, Any]] = None,
) -> None:
    """Write a measurement trace. Accepts a Measurement or a live tool."""
    if isinstance(measurement, BadabingTool):
        measurement = measurement_from_tool(measurement, metadata)
    elif metadata:
        measurement.metadata.update(metadata)
    with _profiling.profile_stage("trace.io"):
        with TraceWriter(
            path,
            measurement.slot_width,
            measurement.n_slots,
            measurement.p,
            measurement.experiments,
            measurement.metadata,
        ) as writer:
            writer.write_probes(measurement.probes)


def _parse_probe_line(line: str) -> ProbeRecord:
    """Decode one probe line; raises ValueError/KeyError/TypeError on rot."""
    record = json.loads(line)
    if not isinstance(record, dict):
        raise ValueError(f"expected a JSON object, got {type(record).__name__}")
    return ProbeRecord(
        slot=record["slot"],
        send_time=record["t"],
        n_packets=record["n"],
        owds=tuple(record["owds"]),
        owd_before_loss=record["obl"],
    )


def load_measurement(path: PathLike, recover: bool = False) -> Measurement:
    """Read a measurement trace written by :func:`save_measurement`.

    Parameters
    ----------
    path:
        The JSONL trace file.
    recover:
        When False (default), the first corrupt probe line aborts the load
        with a :class:`~repro.errors.TraceFormatError` naming the line.
        When True, corrupt probe lines are *skipped* and recorded as
        :class:`TraceDiagnostic` entries on the returned measurement — a
        partially damaged trace still yields every intact record. The
        header (line 1) is required in either mode: without it there is
        no schedule to recover against.
    """
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as exc:
        raise TraceFormatError(f"cannot read trace {path}: {exc}") from exc
    with _profiling.profile_stage("trace.io"), handle:
        header_line = handle.readline()
        if not header_line.strip():
            raise TraceFormatError(f"{path}: empty trace file", line_number=1)
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                f"{path}: header is not valid JSON: {exc}", line_number=1
            ) from exc
        if not isinstance(header, dict) or header.get("type") != FORMAT_NAME:
            kind = header.get("type") if isinstance(header, dict) else header
            raise TraceFormatError(
                f"{path}: not a {FORMAT_NAME} file (type={kind!r})", line_number=1
            )
        if header.get("version") != FORMAT_VERSION:
            raise TraceFormatError(
                f"{path}: unsupported trace version {header.get('version')!r}",
                line_number=1,
            )
        try:
            measurement = Measurement(
                slot_width=header["slot_width"],
                n_slots=header["n_slots"],
                p=header["p"],
                experiments=[
                    Experiment(start, length)
                    for start, length in header["experiments"]
                ],
                probes=[],
                metadata=header.get("metadata", {}),
            )
        except (KeyError, TypeError, ValueError, ConfigurationError) as exc:
            raise TraceFormatError(
                f"{path}: malformed header: {exc!r}", line_number=1
            ) from exc
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                measurement.probes.append(_parse_probe_line(line))
            except (
                json.JSONDecodeError,
                KeyError,
                TypeError,
                ValueError,
                ConfigurationError,
            ) as exc:
                reason = (
                    f"missing field {exc}" if isinstance(exc, KeyError) else str(exc)
                )
                if not recover:
                    raise TraceFormatError(
                        f"{path}: corrupt probe record on line {line_number}: "
                        f"{reason}",
                        line_number=line_number,
                    ) from exc
                snippet = line if len(line) <= 80 else line[:77] + "..."
                measurement.diagnostics.append(
                    TraceDiagnostic(line_number, reason, snippet)
                )
    return measurement


#: Binary (structure-of-arrays) trace format marker, stored in the archive.
BINARY_FORMAT_NAME = "badabing-trace-npz"
BINARY_FORMAT_VERSION = 1


def save_measurement_binary(
    path: PathLike,
    measurement: Union[Measurement, BadabingTool],
    metadata: Optional[Dict[str, Any]] = None,
) -> None:
    """Write a measurement as a packed structure-of-arrays ``.npz`` archive.

    The columnar twin of :func:`save_measurement`: the schedule and every
    probe field become contiguous arrays (variable-length per-probe OWD
    lists are flattened with an offsets array; absent ``owd_before_loss``
    is nan-coded), written in one shot. Requires numpy; float values
    round-trip bit-exactly, so a re-estimate over a reloaded binary trace
    matches the JSONL one digest-for-digest.
    """
    import numpy as np

    from repro.obs.artifacts import ensure_parent_dir

    if isinstance(measurement, BadabingTool):
        measurement = measurement_from_tool(measurement, metadata)
    elif metadata:
        measurement.metadata.update(metadata)
    probes = measurement.probes
    n = len(probes)
    owds_offsets = np.zeros(n + 1, dtype=np.int64)
    for index, probe in enumerate(probes):
        owds_offsets[index + 1] = owds_offsets[index] + len(probe.owds)
    owds_flat = np.fromiter(
        (owd for probe in probes for owd in probe.owds),
        dtype=np.float64,
        count=int(owds_offsets[-1]),
    )
    header = {
        "type": BINARY_FORMAT_NAME,
        "version": BINARY_FORMAT_VERSION,
        "slot_width": measurement.slot_width,
        "n_slots": measurement.n_slots,
        "p": measurement.p,
        "metadata": measurement.metadata,
    }
    ensure_parent_dir(path, "trace", exc_type=TraceFormatError)
    with _profiling.profile_stage("trace.io"):
        try:
            with open(path, "wb") as handle:
                np.savez_compressed(
                    handle,
                    header=np.frombuffer(
                        json.dumps(header).encode("utf-8"), dtype=np.uint8
                    ),
                    exp_start=np.array(
                        [e.start_slot for e in measurement.experiments], dtype=np.int64
                    ),
                    exp_length=np.array(
                        [e.length for e in measurement.experiments], dtype=np.int64
                    ),
                    slot=np.array([p.slot for p in probes], dtype=np.int64),
                    send_time=np.array([p.send_time for p in probes], dtype=np.float64),
                    n_packets=np.array([p.n_packets for p in probes], dtype=np.int64),
                    owds_flat=owds_flat,
                    owds_offsets=owds_offsets,
                    owd_before_loss=np.array(
                        [
                            float("nan") if p.owd_before_loss is None else p.owd_before_loss
                            for p in probes
                        ],
                        dtype=np.float64,
                    ),
                )
        except OSError as exc:
            raise TraceFormatError(f"cannot write trace {path}: {exc}") from exc


def load_measurement_binary(path: PathLike) -> Measurement:
    """Read a measurement written by :func:`save_measurement_binary`."""
    import math

    import numpy as np

    with _profiling.profile_stage("trace.io"):
        try:
            with np.load(path) as archive:
                arrays = {name: archive[name] for name in archive.files}
        except (OSError, ValueError, zipfile.BadZipFile) as exc:
            raise TraceFormatError(f"cannot read trace {path}: {exc}") from exc
    try:
        header = json.loads(bytes(arrays["header"]).decode("utf-8"))
    except (KeyError, ValueError) as exc:
        raise TraceFormatError(f"{path}: malformed binary trace header") from exc
    if header.get("type") != BINARY_FORMAT_NAME:
        raise TraceFormatError(
            f"{path}: not a {BINARY_FORMAT_NAME} archive (type={header.get('type')!r})"
        )
    if header.get("version") != BINARY_FORMAT_VERSION:
        raise TraceFormatError(
            f"{path}: unsupported binary trace version {header.get('version')!r}"
        )
    try:
        experiments = [
            Experiment(int(start), int(length))
            for start, length in zip(
                arrays["exp_start"].tolist(), arrays["exp_length"].tolist()
            )
        ]
        offsets = arrays["owds_offsets"].tolist()
        owds_flat = arrays["owds_flat"].tolist()
        obl = arrays["owd_before_loss"].tolist()
        probes = [
            ProbeRecord(
                slot=int(slot),
                send_time=send_time,
                n_packets=int(n_packets),
                owds=tuple(owds_flat[offsets[index] : offsets[index + 1]]),
                owd_before_loss=None if math.isnan(obl[index]) else obl[index],
            )
            for index, (slot, send_time, n_packets) in enumerate(
                zip(
                    arrays["slot"].tolist(),
                    arrays["send_time"].tolist(),
                    arrays["n_packets"].tolist(),
                )
            )
        ]
    except (KeyError, IndexError, ConfigurationError) as exc:
        raise TraceFormatError(f"{path}: malformed binary trace body: {exc!r}") from exc
    return Measurement(
        slot_width=header["slot_width"],
        n_slots=header["n_slots"],
        p=header["p"],
        experiments=experiments,
        probes=probes,
        metadata=header.get("metadata", {}),
    )


def reestimate(
    measurement: Measurement,
    marking: Optional[MarkingConfig] = None,
    improved: Optional[bool] = None,
    vectorized: bool = False,
) -> BadabingResult:
    """Offline §6.1 marking + §5 estimation over a loaded trace.

    Degrades like the live tool: partial traces (recovery-mode loads,
    receiver outages) produce an estimate with a sub-unity coverage
    report; a trace with no usable experiments raises
    :class:`~repro.errors.EstimationError` describing the coverage.
    ``vectorized`` runs the marking → fold middle as array passes
    (requires numpy); the result is bit-identical to the scalar path.
    """
    if vectorized:
        return _reestimate_vectorized(measurement, marking, improved)
    marker = CongestionMarker(marking)
    marked = marker.mark(measurement.probes)
    outcomes = measurement.outcomes(marked.slot_states)
    coverage = coverage_report(measurement.experiments, marked.slot_states)
    estimate = estimate_from_outcomes(outcomes, improved=improved, coverage=coverage)
    return BadabingResult(
        estimate=estimate,
        validation=validate_outcomes(outcomes, coverage=coverage),
        marking=marked,
        probes=measurement.probes,
        outcomes=outcomes,
        n_probes_sent=len({probe.slot for probe in measurement.probes}),
        probe_load_bps=_probe_load_bps(measurement),
        slot_width=measurement.slot_width,
        coverage=coverage,
    )


def _probe_load_bps(measurement: Measurement) -> float:
    """Probe load from the records themselves (sizes are not persisted, so
    report packets/second x nominal 600 B unless metadata overrides)."""
    probe_size = int(measurement.metadata.get("probe_size", 600))
    duration = measurement.n_slots * measurement.slot_width
    if duration <= 0:
        return 0.0
    return (
        sum(probe.n_packets for probe in measurement.probes) * probe_size * 8 / duration
    )


def _reestimate_vectorized(
    measurement: Measurement,
    marking: Optional[MarkingConfig],
    improved: Optional[bool],
) -> BadabingResult:
    """Array-batched twin of :func:`reestimate` (same bits, fewer objects)."""
    from repro.core import batch
    from repro.core.estimators import estimate_from_counter
    from repro.core.marking import MarkingResult
    from repro.core.validation import report_from_counter

    arrays = measurement.probe_arrays()
    starts, lengths = measurement.experiment_arrays()
    pipeline = batch.run_slot_pipeline(
        starts,
        lengths,
        arrays,
        marking=marking if marking is not None else MarkingConfig(),
        n_slots=measurement.n_slots,
    )
    marked = MarkingResult(
        slot_states=pipeline.marking.slot_states_dict(),
        marked_by_loss=pipeline.marking.marked_by_loss,
        marked_by_delay=pipeline.marking.marked_by_delay,
        noise_losses=pipeline.marking.noise_losses,
        owd_max_estimates=pipeline.marking.owd_max_estimates,
    )
    outcomes = batch.materialize_outcomes(
        pipeline.starts, pipeline.keys, pipeline.valid
    )
    estimate = estimate_from_counter(
        pipeline.counter, improved=improved, coverage=pipeline.coverage
    )
    return BadabingResult(
        estimate=estimate,
        validation=report_from_counter(pipeline.counter, coverage=pipeline.coverage),
        marking=marked,
        probes=measurement.probes,
        outcomes=outcomes,
        n_probes_sent=len({probe.slot for probe in measurement.probes}),
        probe_load_bps=_probe_load_bps(measurement),
        slot_width=measurement.slot_width,
        coverage=pipeline.coverage,
    )
