"""Measurement persistence and offline re-analysis.

The real BADABING tool separates collection from estimation: the receiver
"collects the probe packets and reports the loss characteristics after a
specified period of time". This subpackage gives the reproduction the same
property: a finished measurement (the experiment schedule plus the joined
probe records) can be saved to a JSON-lines trace and re-analyzed later
under different marking parameters, estimators, or validation thresholds —
without re-running the simulation.
"""

from repro.io.traces import (
    Measurement,
    TraceDiagnostic,
    TraceWriter,
    load_measurement,
    load_measurement_binary,
    reestimate,
    save_measurement,
    save_measurement_binary,
)

__all__ = [
    "Measurement",
    "TraceDiagnostic",
    "TraceWriter",
    "load_measurement",
    "load_measurement_binary",
    "reestimate",
    "save_measurement",
    "save_measurement_binary",
]
