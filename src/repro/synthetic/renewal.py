"""Alternating renewal congestion processes over discrete slots.

§5.2.2 proves the estimators consistent when "congestion is described by an
alternating renewal process with finite mean lifetimes D and D' for the
congested and uncongested periods". This module generates exactly such
processes so the estimators can be validated against known truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError


class DurationDistribution:
    """Base class: draws positive integer slot counts."""

    def sample(self, rng: random.Random) -> int:
        raise NotImplementedError


@dataclass(frozen=True)
class FixedSlots(DurationDistribution):
    """Always ``k`` slots."""

    k: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError(f"duration must be >= 1 slot, got {self.k}")

    def sample(self, rng: random.Random) -> int:
        return self.k


@dataclass(frozen=True)
class GeometricSlots(DurationDistribution):
    """Geometric on {1, 2, ...} with the given mean."""

    mean: float

    def __post_init__(self) -> None:
        if self.mean < 1.0:
            raise ConfigurationError(f"geometric mean must be >= 1, got {self.mean}")

    def sample(self, rng: random.Random) -> int:
        if self.mean == 1.0:
            return 1
        # Success probability q gives mean 1/q on {1, 2, ...}.
        q = 1.0 / self.mean
        count = 1
        while rng.random() > q:
            count += 1
        return count


@dataclass(frozen=True)
class UniformSlots(DurationDistribution):
    """Uniform integer in [lo, hi]."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not 1 <= self.lo <= self.hi:
            raise ConfigurationError(f"need 1 <= lo <= hi, got [{self.lo}, {self.hi}]")

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.lo, self.hi)


class AlternatingRenewalProcess:
    """Alternating congested / uncongested periods over N slots.

    Parameters
    ----------
    congested, uncongested:
        Duration distributions (in slots) of the two phases.
    rng:
        Random stream (pass a seeded :class:`random.Random` for determinism).
    start_congested:
        Whether slot 0 starts inside a congested period.
    """

    def __init__(
        self,
        congested: DurationDistribution,
        uncongested: DurationDistribution,
        rng: random.Random,
        start_congested: bool = False,
    ):
        self.congested = congested
        self.uncongested = uncongested
        self.rng = rng
        self.start_congested = start_congested

    def generate(self, n_slots: int) -> List[bool]:
        """Return the per-slot truth Y as a list of booleans."""
        if n_slots < 1:
            raise ConfigurationError(f"n_slots must be >= 1, got {n_slots}")
        states: List[bool] = []
        congested_now = self.start_congested
        while len(states) < n_slots:
            dist = self.congested if congested_now else self.uncongested
            length = dist.sample(self.rng)
            states.extend([congested_now] * length)
            congested_now = not congested_now
        return states[:n_slots]

    @staticmethod
    def truth(states: Sequence[bool]) -> Tuple[float, float]:
        """True (F, D) of a realized state sequence.

        F is the fraction of congested slots; D is the mean congestion
        episode length in slots (§5.2.2's A/B), 0.0 if no episode exists.
        """
        total = len(states)
        if total == 0:
            return 0.0, 0.0
        congested_slots = 0
        episodes = 0
        previous = False
        for state in states:
            if state:
                congested_slots += 1
                if not previous:
                    episodes += 1
            previous = state
        frequency = congested_slots / total
        duration = congested_slots / episodes if episodes else 0.0
        return frequency, duration
