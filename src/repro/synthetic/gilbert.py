"""Gilbert(-Elliott) two-state Markov congestion and loss models.

The Gilbert model is the classic parametric description of bursty packet
loss (the paper's related work [37] fits Markov models of exactly this
kind). It is the special case of the alternating renewal process with
*geometric* phase lengths, which makes every quantity closed-form:

* ``g`` — P(congested -> clear) per slot → mean episode length ``1/g``,
* ``b`` — P(clear -> congested) per slot → mean gap ``1/b``,
* stationary congestion frequency ``F = b / (b + g)``.

:class:`GilbertProcess` generates slot-level truth (for estimator tests
where the parametric fit of :mod:`repro.core.parametric` must recover the
generating parameters exactly), and :func:`sample_packet_losses` converts
a slot series into per-packet loss outcomes under the Gilbert-Elliott
refinement (loss probability ``h`` while congested, ``k`` while clear) —
a cheap stand-in for the full packet simulator when only the loss channel
matters.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.synthetic.renewal import AlternatingRenewalProcess, GeometricSlots


class GilbertProcess:
    """Two-state Markov slot process with explicit (g, b) parameters."""

    def __init__(self, g: float, b: float, rng: random.Random):
        if not 0 < g <= 1 or not 0 < b <= 1:
            raise ConfigurationError(f"g and b must be in (0, 1], got {g}, {b}")
        self.g = g
        self.b = b
        self._renewal = AlternatingRenewalProcess(
            congested=GeometricSlots(1.0 / g),
            uncongested=GeometricSlots(1.0 / b),
            rng=rng,
        )

    @property
    def frequency(self) -> float:
        """Stationary congestion frequency b/(b+g)."""
        return self.b / (self.b + self.g)

    @property
    def mean_episode_slots(self) -> float:
        """Mean congestion episode length, 1/g slots."""
        return 1.0 / self.g

    @property
    def mean_gap_slots(self) -> float:
        """Mean congestion-free gap length, 1/b slots."""
        return 1.0 / self.b

    def generate(self, n_slots: int) -> List[bool]:
        """Slot-level truth sequence."""
        return self._renewal.generate(n_slots)


def sample_packet_losses(
    states: Sequence[bool],
    packets_per_slot: int,
    rng: random.Random,
    loss_prob_congested: float = 0.5,
    loss_prob_clear: float = 0.0,
) -> Tuple[int, int]:
    """Draw Gilbert-Elliott packet losses over a slot series.

    Returns ``(packets_sent, packets_lost)`` for a constant-rate stream of
    ``packets_per_slot`` packets per slot, each lost independently with
    the state-dependent probability. This is the analytic stand-in for a
    CBR stream crossing the simulated bottleneck.
    """
    if packets_per_slot < 1:
        raise ConfigurationError(
            f"packets_per_slot must be >= 1, got {packets_per_slot}"
        )
    for name, probability in (
        ("loss_prob_congested", loss_prob_congested),
        ("loss_prob_clear", loss_prob_clear),
    ):
        if not 0 <= probability <= 1:
            raise ConfigurationError(f"{name} must be in [0, 1], got {probability}")
    sent = 0
    lost = 0
    for congested in states:
        probability = loss_prob_congested if congested else loss_prob_clear
        for _ in range(packets_per_slot):
            sent += 1
            if probability > 0 and rng.random() < probability:
                lost += 1
    return sent, lost
