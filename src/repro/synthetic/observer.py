"""Virtual probe observation with the paper's exact assumption structure.

§5.2.1/§5.3.1 assume the report ``y_i`` equals the truth ``Y_i`` with a
probability that depends only on the number of 1-bits in ``Y_i`` (``p1``
for one bit, ``p2`` for two), and otherwise collapses to all zeros; truth
strings with no congestion are always reported faithfully.

:class:`VirtualObserver` applies exactly that channel to perfect outcomes,
so estimator tests can impose any (p1, p2) — including the p1 ≠ p2 regime
where the basic algorithm is provably biased and the improved algorithm's
r-correction must rescue it.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.core.records import ExperimentOutcome
from repro.core.schedule import Experiment, outcomes_from_true_states
from repro.errors import ConfigurationError


class VirtualObserver:
    """Degrades true outcomes through the §5 observation channel."""

    def __init__(self, p1: float, p2: float, rng: random.Random):
        if not 0 < p1 <= 1 or not 0 < p2 <= 1:
            raise ConfigurationError(f"p1/p2 must be in (0,1], got {p1}, {p2}")
        self.p1 = p1
        self.p2 = p2
        self.rng = rng

    def observe_outcome(self, truth: ExperimentOutcome) -> ExperimentOutcome:
        """Report for one experiment given its true congestion bits."""
        ones = sum(truth.bits)
        if ones == 0:
            return truth
        # The paper's model assigns a miss probability only to the states
        # the estimators use (one or two 1-bits); fully congested windows
        # (11, 111) have unknown fidelity and the estimators never consume
        # them, so we conservatively report them via p2 as well.
        keep_probability = self.p1 if ones == 1 else self.p2
        if self.rng.random() < keep_probability:
            return truth
        return ExperimentOutcome(truth.start_slot, tuple(0 for _ in truth.bits))

    def observe(
        self, experiments: Sequence[Experiment], states: Sequence[bool]
    ) -> List[ExperimentOutcome]:
        """Observe every experiment against a truth slot sequence."""
        perfect = outcomes_from_true_states(experiments, states)
        return [self.observe_outcome(outcome) for outcome in perfect]
