"""Analytic congestion-process substrate.

The packet simulator produces *realistic* congestion; this subpackage
produces *exactly specified* congestion: an alternating renewal process over
discrete slots (the precise setting of the paper's §5 consistency proofs)
plus a virtual observer that reports experiment outcomes with the exact miss
probabilities p1/p2 of the paper's assumptions. Estimator unit tests and
property-based tests run here, where the true F and D are known in closed
form.
"""

from repro.synthetic.renewal import (
    AlternatingRenewalProcess,
    FixedSlots,
    GeometricSlots,
    UniformSlots,
)
from repro.synthetic.observer import VirtualObserver
from repro.synthetic.gilbert import GilbertProcess, sample_packet_losses

__all__ = [
    "AlternatingRenewalProcess",
    "FixedSlots",
    "GeometricSlots",
    "UniformSlots",
    "VirtualObserver",
    "GilbertProcess",
    "sample_packet_losses",
]
