"""Configuration dataclasses shared across the library.

:class:`TestbedConfig` describes the dumbbell testbed replica (paper Fig. 3).
The defaults are the *scaled* testbed documented in DESIGN.md §2: bandwidths
are reduced ~13x relative to the paper's OC3 bottleneck so that pure-Python
simulation finishes in minutes, while everything expressed in *time* — the
100 ms bottleneck buffer, the 100 ms round-trip time, the 5 ms probe slot —
keeps the paper's values, preserving loss-episode dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.units import mbps, ms


@dataclass
class TestbedConfig:
    """Parameters of the dumbbell testbed replica.

    Attributes
    ----------
    bottleneck_bps:
        Bottleneck link rate (paper: OC3 155 Mb/s; scaled default 12 Mb/s).
    access_bps:
        Per-host access link rate (paper: GigE; scaled to 10x bottleneck).
    buffer_time:
        Bottleneck buffer depth in seconds of line rate (paper: ~100 ms).
    prop_delay:
        One-way propagation delay inserted on the bottleneck (paper: 50 ms
        per direction via a hardware emulator → 100 ms RTT).
    access_delay:
        One-way delay of each access link (small, non-zero).
    n_traffic_pairs:
        Number of traffic-generator host pairs hanging off the dumbbell.
    mtu:
        Full-size data packet in bytes (paper: 1500).
    red:
        Use a RED bottleneck queue instead of drop-tail (ablation only).
    """

    bottleneck_bps: float = mbps(12)
    access_bps: float = mbps(120)
    buffer_time: float = ms(100)
    prop_delay: float = ms(50)
    access_delay: float = ms(0.1)
    n_traffic_pairs: int = 4
    mtu: int = 1500
    red: bool = False

    def __post_init__(self) -> None:
        if self.bottleneck_bps <= 0 or self.access_bps <= 0:
            raise ConfigurationError("link rates must be positive")
        if self.access_bps < self.bottleneck_bps:
            raise ConfigurationError(
                "access links must be at least as fast as the bottleneck "
                "(otherwise loss moves off the bottleneck and ground truth "
                "instrumentation misses it)"
            )
        if self.buffer_time <= 0:
            raise ConfigurationError("buffer_time must be positive")
        if self.n_traffic_pairs < 1:
            raise ConfigurationError("need at least one traffic pair")
        if self.mtu < 64:
            raise ConfigurationError(f"mtu too small: {self.mtu}")

    @property
    def buffer_bytes(self) -> int:
        """Bottleneck queue capacity in bytes (buffer_time x line rate)."""
        return int(self.buffer_time * self.bottleneck_bps / 8)

    @property
    def base_rtt(self) -> float:
        """Round-trip propagation time through the dumbbell (no queueing)."""
        # Forward: access + bottleneck + access; reverse the same.
        return 2 * (2 * self.access_delay + self.prop_delay)


@dataclass
class ProbeConfig:
    """Parameters shared by the probe tools (BADABING and baselines).

    Attributes
    ----------
    slot:
        Discretization interval in seconds (paper: 5 ms).
    probe_size:
        Size of each probe packet in bytes (paper: 600).
    packets_per_probe:
        Packets per probe "train" (paper: 3).
    intra_probe_gap:
        Back-to-back spacing of packets within a probe (paper: ~30 µs).
    """

    slot: float = ms(5)
    probe_size: int = 600
    packets_per_probe: int = 3
    intra_probe_gap: float = 30e-6

    def __post_init__(self) -> None:
        if self.slot <= 0:
            raise ConfigurationError("slot must be positive")
        if self.probe_size <= 0:
            raise ConfigurationError("probe_size must be positive")
        if self.packets_per_probe < 1:
            raise ConfigurationError("packets_per_probe must be >= 1")
        if self.intra_probe_gap < 0:
            raise ConfigurationError("intra_probe_gap must be non-negative")
        if (self.packets_per_probe - 1) * self.intra_probe_gap >= self.slot:
            raise ConfigurationError(
                "probe train longer than a slot; increase slot or shrink train"
            )


@dataclass
class MarkingConfig:
    """§6.1 congestion-marking parameters.

    A probed slot is marked congested if any probe packet in it was lost, or
    if it falls within ``tau`` seconds of a slot with probe loss and its
    one-way delay exceeds ``(1 - alpha) * OWD_max`` (with OWD_max tracked
    from the delays of packets adjacent to losses, aggregated over the last
    ``owd_history`` estimates).

    ``owd_statistic`` selects the aggregate over the estimate history:

    * ``"mean"`` — the paper's choice (§6.1);
    * ``"median"`` — robust variant: end-host/NIC losses taken at normal
      delays produce low OWD_max estimates that drag a *mean* down until
      the threshold sits below the propagation floor, marking everything
      near a loss; the median shrugs them off (see the
      ``ablation_uncorrelated_loss`` benchmark);
    * ``"max"`` — most conservative threshold.
    """

    alpha: float = 0.1
    tau: float = ms(80)
    owd_history: int = 16
    owd_statistic: str = "mean"
    #: Reclassify losses whose own delay evidence is below the congestion
    #: threshold as end-host/NIC noise: they neither mark their slot nor
    #: anchor the tau rule. Off by default (paper behaviour).
    filter_uncorrelated_losses: bool = False

    def __post_init__(self) -> None:
        if not 0 < self.alpha < 1:
            raise ConfigurationError(f"alpha must be in (0,1), got {self.alpha}")
        if self.tau < 0:
            raise ConfigurationError(f"tau must be non-negative, got {self.tau}")
        if self.owd_history < 1:
            raise ConfigurationError("owd_history must be >= 1")
        if self.owd_statistic not in ("mean", "median", "max"):
            raise ConfigurationError(
                f"owd_statistic must be mean/median/max, got {self.owd_statistic!r}"
            )


@dataclass
class BadabingConfig:
    """Full BADABING tool configuration (§5 + §6)."""

    probe: ProbeConfig = field(default_factory=ProbeConfig)
    marking: MarkingConfig = field(default_factory=MarkingConfig)
    #: Per-slot probability of starting an experiment (paper's p).
    p: float = 0.3
    #: Total number of slots in the measurement (paper's N).
    n_slots: int = 180_000
    #: Use the §5.3 improved algorithm (extended 3-probe experiments w.p. 1/2).
    improved: bool = False

    def __post_init__(self) -> None:
        if not 0 < self.p <= 1:
            raise ConfigurationError(f"p must be in (0,1], got {self.p}")
        if self.n_slots < 2:
            raise ConfigurationError("n_slots must be >= 2")

    @property
    def duration(self) -> float:
        """Wall-clock length of the measurement in seconds."""
        return self.n_slots * self.probe.slot
