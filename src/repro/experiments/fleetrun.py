"""Asyncio glue for the adaptive fleet controller.

:class:`~repro.live.controller.FleetController` is a pure decision
function; this module is the driver that turns its
:class:`~repro.live.controller.LaunchDirective` s into real asyncio
sender sessions:

* Paths declared with ``port == 0`` get an in-process loopback fleet
  reflector each, carrying that path's deterministic fault profile (the
  3-path "one deliberately lossy path" recipe from EXPERIMENTS.md).
  Paths with a concrete port are probed as-is — a mixed roster works.
* Each launched session runs against a **fresh registry shard**; on
  completion the detached shard is handed to the controller (retained
  for the canonical merge) and merged into the caller's export-facing
  registry under the standardized ``path/session[round]`` label.
* BUSY/RETRY_AFTER rejections route to
  :meth:`~repro.live.controller.FleetController.on_session_busy` (budget
  refunded, path deferred) rather than becoming failed outcomes.
* At the end the run proves the ordered-merge invariant: the canonical
  roster/round-ordered merged registry digest must equal the digest of
  serially replaying the shards in actual chronological completion
  order (:attr:`FleetRunResult.digest_match`).

``max_wall_seconds`` degrades gracefully: the shared stop event asks
in-flight senders to finalize early, launches cease, and whatever
completed still merges and digests cleanly.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import EstimationError, LiveSessionError
from repro.experiments.runner import RunOutcome
from repro.live.controller import (
    ControllerPolicy,
    FleetController,
    LaunchDirective,
    PathTarget,
    shard_label,
)
from repro.live.fleet import FleetPolicy, start_fleet_reflector
from repro.live.impair import build_impairment
from repro.live.runtime import run_live_send
from repro.live.session import make_session_id
from repro.net.simulator import _stable_seed
from repro.obs.metrics import MetricsRegistry

#: Smallest idle sleep while waiting out BUSY backoffs (seconds).
_MIN_IDLE_SLEEP = 0.02


@dataclass
class FleetRunResult:
    """Everything one controller-driven fleet run produced."""

    controller: FleetController
    outcomes: List[RunOutcome]
    #: Chronological (path, round) completion order actually observed.
    completion_order: List[Tuple[str, int]] = field(default_factory=list)
    #: Canonical roster/round-ordered merged-registry digest.
    merged_digest: str = ""
    #: Digest of serially replaying the shards in completion order.
    replay_digest: str = ""
    #: Per-path closing signal summaries (keyed by path name).
    path_summary: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    remaining_slots: int = 0
    wall_seconds: float = 0.0
    deadline_hit: bool = False

    @property
    def events(self) -> List[Dict[str, Any]]:
        return self.controller.events

    @property
    def digest_match(self) -> bool:
        return bool(self.merged_digest) and self.merged_digest == self.replay_digest

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes) and self.digest_match

    @property
    def failures(self) -> List[RunOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]


async def run_fleet(
    paths: Sequence[PathTarget],
    policy: Optional[ControllerPolicy] = None,
    base_seed: int = 1,
    registry: Optional[MetricsRegistry] = None,
    exporter=None,
    events_path=None,
    rebalance_interval: float = 0.25,
    max_wall_seconds: Optional[float] = None,
    fleet_policy: Optional[FleetPolicy] = None,
    tracer=None,
    controller: Optional[FleetController] = None,
) -> FleetRunResult:
    """Drive a :class:`FleetController` against live reflectors.

    ``registry`` is the export-facing registry: it receives the
    ``controller.*`` instruments, reflector-side counters from any
    locally spun loopback reflectors, and every completed session's
    shard merged under its ``path/session[round]`` label — the registry
    a :class:`~repro.obs.export.TelemetryExporter` (``exporter``) would
    monitor. The *measurement* registry of record is the controller's
    canonical merge, recomputed from retained shards, so attaching or
    detaching telemetry never changes the measurement digests.
    """
    if controller is None:
        controller = FleetController(
            paths,
            policy=policy,
            base_seed=base_seed,
            registry=registry,
            events_path=events_path,
        )
    loop = asyncio.get_running_loop()
    stop_event = asyncio.Event()
    merged = registry if registry is not None and registry.enabled else None

    # --- loopback reflectors for port-0 paths (one per path, so each
    # carries its own deterministic impairment profile).
    seed_maps: Dict[str, Dict[int, int]] = {}
    endpoints: Dict[str, Tuple[str, int]] = {}
    reflectors = []

    def _impairment_for(name: str, faults):
        seeds = seed_maps[name]

        def impairment_for(session_id: int):
            seed = seeds.get(session_id)
            if seed is None or faults is None:
                return None
            return build_impairment(faults, _stable_seed(seed, "live-impair"))

        return impairment_for

    started_wall = loop.time()
    outcomes: List[RunOutcome] = []
    completion_order: List[Tuple[str, int]] = []
    deadline_hit = False
    try:
        for target in paths:
            if target.port != 0:
                endpoints[target.name] = (target.host, target.port)
                continue
            seed_maps[target.name] = {}
            transport, protocol, watchdog_task = await start_fleet_reflector(
                target.host,
                0,
                policy=fleet_policy,
                registry=registry,
                impairment_for=_impairment_for(target.name, target.faults),
                mode="echo",
            )
            reflectors.append((transport, watchdog_task))
            endpoints[target.name] = (
                target.host,
                transport.get_extra_info("sockname")[1],
            )

        if exporter is not None:
            await exporter.start()

        async def _run_one(directive: LaunchDirective):
            label = shard_label(directive.path, directive.round_index)
            host, port = endpoints[directive.path]
            shard = MetricsRegistry()
            session_started = loop.time()
            try:
                run = await run_live_send(
                    host,
                    port,
                    config=directive.config,
                    seed=directive.seed,
                    registry=shard,
                    tracer=tracer,
                    stop_event=stop_event,
                )
            except LiveSessionError as exc:
                if getattr(exc, "busy", False):
                    controller.on_session_busy(
                        directive.path,
                        directive.round_index,
                        retry_after=getattr(exc, "retry_after", None),
                    )
                    return None
                controller.on_session_failure(
                    directive.path, directive.round_index, str(exc)
                )
                return RunOutcome(
                    label=label,
                    ok=False,
                    error=str(exc),
                    error_type=type(exc).__name__,
                    attempts=1,
                    seeds=(directive.seed,),
                    elapsed_seconds=loop.time() - session_started,
                )
            except EstimationError as exc:
                controller.on_session_failure(
                    directive.path, directive.round_index, str(exc)
                )
                return RunOutcome(
                    label=label,
                    ok=False,
                    error=str(exc),
                    error_type=type(exc).__name__,
                    attempts=1,
                    seeds=(directive.seed,),
                    elapsed_seconds=loop.time() - session_started,
                )
            shard.detach_collectors()
            controller.on_session_complete(
                directive.path,
                directive.round_index,
                frequency=run.result.frequency,
                validation=run.result.validation,
                duration_seconds=run.result.duration_seconds,
                shard=shard,
            )
            completion_order.append((directive.path, directive.round_index))
            if merged is not None:
                merged.merge(shard, series_labels={"session": label})
            return RunOutcome(
                label=label,
                ok=True,
                result=run,
                attempts=1,
                seeds=(directive.seed,),
                elapsed_seconds=loop.time() - session_started,
            )

        pending = set()
        while True:
            if (
                max_wall_seconds is not None
                and loop.time() - started_wall >= max_wall_seconds
                and not deadline_hit
            ):
                deadline_hit = True
                stop_event.set()
            if not deadline_hit:
                for directive in controller.step():
                    seeds = seed_maps.get(directive.path)
                    if seeds is not None:
                        seeds[make_session_id(directive.seed)] = directive.seed
                    pending.add(loop.create_task(_run_one(directive)))
            if not pending:
                if controller.done or deadline_hit:
                    break
                wait = controller.next_retry_in()
                await asyncio.sleep(
                    max(
                        _MIN_IDLE_SLEEP,
                        min(rebalance_interval, wait)
                        if wait is not None
                        else rebalance_interval,
                    )
                )
                continue
            done, pending = await asyncio.wait(
                pending,
                timeout=None if deadline_hit else rebalance_interval,
                return_when=asyncio.ALL_COMPLETED
                if deadline_hit
                else asyncio.FIRST_COMPLETED,
            )
            for task in done:
                outcome = task.result()
                if outcome is not None:
                    outcomes.append(outcome)
    finally:
        for transport, watchdog_task in reflectors:
            watchdog_task.cancel()
            try:
                await watchdog_task
            except asyncio.CancelledError:
                pass
            transport.close()
        if exporter is not None:
            await exporter.stop()
        controller.finalize()

    merged_digest = controller.merged_digest() if completion_order else ""
    replay_digest = (
        controller.replay_digest(completion_order) if completion_order else ""
    )
    return FleetRunResult(
        controller=controller,
        outcomes=sorted(outcomes, key=lambda o: o.label),
        completion_order=completion_order,
        merged_digest=merged_digest,
        replay_digest=replay_digest,
        path_summary={name: controller.signals(name) for name in controller.paths},
        remaining_slots=controller.remaining_slots,
        wall_seconds=loop.time() - started_wall,
        deadline_hit=deadline_hit,
    )


def fleet_run(*args, **kwargs) -> FleetRunResult:
    """Synchronous wrapper around :func:`run_fleet`."""
    return asyncio.run(run_fleet(*args, **kwargs))
