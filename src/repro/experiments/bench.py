"""Pinned benchmark suites behind ``repro bench``.

Each suite is a fixed list of scenarios — single cell, multihop chain,
process-parallel sweep, live loopback — with sizes pinned *in the suite
definition* (independent of ``REPRO_PROFILE``), so successive
``BENCH_<suite>.json`` documents are comparable points on one perf
trajectory. Every scenario runs under a fresh
:class:`~repro.obs.profile.StageProfiler`; the parallel-sweep scenario
additionally profiles inside the worker shards
(``sweep_badabing(profiled=True)``) and recovers their stage stats from
the merged registry's published ``profile.*`` instruments.

Wall-clock numbers here are measurement artifacts, not simulation state:
nothing this module records ever enters a monitored registry's snapshot,
keeping the DESIGN.md §14 determinism contract intact.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

from repro.config import BadabingConfig, MarkingConfig, ProbeConfig
from repro.errors import ConfigurationError
from repro.obs.bench import make_bench_document
from repro.obs.manifest import config_digest
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (
    StageProfiler,
    merge_stage_maps,
    stages_from_registry,
)
from repro.profiling import profiling

#: Scenario kinds the suite runner knows how to execute.
_RUNNERS: Dict[str, Callable[..., Dict[str, Any]]] = {}


@dataclass(frozen=True)
class BenchScenario:
    """One pinned suite entry: a named scenario kind plus its kwargs."""

    name: str
    kind: str
    kwargs: Dict[str, Any] = field(default_factory=dict)


#: The pinned suites. ``fast`` is the CI trajectory point (tens of
#: seconds end to end); ``smoke`` is the tiny variant integration tests
#: run. Sizes are deliberately literal — do not derive them from
#: REPRO_PROFILE, or the trajectory stops being comparable run to run.
SUITES: Dict[str, Tuple[BenchScenario, ...]] = {
    "fast": (
        BenchScenario(
            "single_cell",
            "single_cell",
            {
                "scenario": "episodic_cbr",
                "p": 0.3,
                "n_slots": 4000,
                "seed": 3,
                "warmup": 2.0,
                "scenario_kwargs": {"mean_spacing": 2.0},
            },
        ),
        BenchScenario(
            "multihop",
            "multihop",
            {"n_hops": 2, "p": 0.3, "n_slots": 2500, "seed": 1, "warmup": 2.0},
        ),
        BenchScenario(
            "parallel_sweep",
            "parallel_sweep",
            {
                "cells": [
                    {"p": p, "seed": seed}
                    for p in (0.1, 0.3) for seed in (1, 2)
                ],
                "workers": 2,
                "scenario": "episodic_cbr",
                "n_slots": 1500,
                "warmup": 2.0,
                "scenario_kwargs": {"mean_spacing": 2.0},
            },
        ),
        BenchScenario(
            "live_loopback",
            "live_loopback",
            {"p": 0.3, "n_slots": 500, "slot": 0.005, "seed": 1},
        ),
    ),
    "smoke": (
        BenchScenario(
            "single_cell",
            "single_cell",
            {
                "scenario": "episodic_cbr",
                "p": 0.3,
                "n_slots": 800,
                "seed": 3,
                "warmup": 2.0,
                "scenario_kwargs": {"mean_spacing": 2.0},
            },
        ),
        BenchScenario(
            "parallel_sweep",
            "parallel_sweep",
            {
                "cells": [{"p": 0.3, "seed": 1}, {"p": 0.5, "seed": 2}],
                "workers": 2,
                "scenario": "episodic_cbr",
                "n_slots": 600,
                "warmup": 2.0,
                "scenario_kwargs": {"mean_spacing": 2.0},
            },
        ),
        BenchScenario(
            "live_loopback",
            "live_loopback",
            {"p": 0.3, "n_slots": 200, "slot": 0.005, "seed": 1},
        ),
    ),
}


def _scenario_runner(kind: str):
    def _register(fn):
        _RUNNERS[kind] = fn
        return fn

    return _register


@_scenario_runner("single_cell")
def _run_single_cell(**kwargs) -> Dict[str, Any]:
    from repro.experiments.runner import run_badabing

    registry = MetricsRegistry()
    result, _truth = run_badabing(metrics=registry, **kwargs)
    return {
        "events_processed": int(registry.counter("sim.events_processed").value),
        "probes_sent": int(result.n_probes_sent),
    }


@_scenario_runner("multihop")
def _run_multihop(**kwargs) -> Dict[str, Any]:
    from repro.experiments.runner import run_badabing_multihop

    registry = MetricsRegistry()
    result, _truth = run_badabing_multihop(metrics=registry, **kwargs)
    return {
        "events_processed": int(registry.counter("sim.events_processed").value),
        "probes_sent": int(result.n_probes_sent),
    }


@_scenario_runner("parallel_sweep")
def _run_parallel_sweep(cells, workers=2, **common) -> Dict[str, Any]:
    from repro.experiments.runner import sweep_badabing

    registry = MetricsRegistry()
    outcomes = sweep_badabing(
        cells, metrics=registry, workers=workers, profiled=True, **common
    )
    failed = [o.label for o in outcomes if not o.ok]
    if failed:
        raise ConfigurationError(
            f"bench sweep cells failed: {', '.join(failed)}"
        )
    snapshot = registry.snapshot()
    return {
        "events_processed": int(
            snapshot.get("counters", {}).get("sim.events_processed", 0)
        ),
        "probes_sent": sum(
            o.result.n_probes_sent for o in outcomes if o.ok
        ),
        # Worker-shard stage stats come back through the merged registry's
        # published profile.* instruments (the merge itself is profiled on
        # the parent's profiler).
        "worker_stages": stages_from_registry(snapshot),
    }


@_scenario_runner("live_loopback")
def _run_live_loopback(p=0.3, n_slots=500, slot=0.005, seed=1) -> Dict[str, Any]:
    from repro.live.runtime import live_loopback

    config = BadabingConfig(
        probe=ProbeConfig(slot=slot, probe_size=64, packets_per_probe=3),
        marking=MarkingConfig(tau=0.0),
        p=p,
        n_slots=n_slots,
    )
    registry = MetricsRegistry()
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        run = live_loopback(
            config=config,
            seed=seed,
            registry=registry,
            trace_path=str(Path(tmp) / "loopback.jsonl"),
        )
    probes = int(run.result.n_probes_sent)
    return {
        "events_processed": int(run.stats.packets_sent),
        "probes_sent": probes,
    }


def run_scenario(scenario: BenchScenario) -> Dict[str, Any]:
    """Execute one scenario under a fresh profiler; returns its entry."""
    runner = _RUNNERS.get(scenario.kind)
    if runner is None:
        raise ConfigurationError(f"unknown bench scenario kind {scenario.kind!r}")
    profiler = StageProfiler()
    started = time.perf_counter()
    with profiling(profiler):
        extra = runner(**scenario.kwargs)
    wall = time.perf_counter() - started
    stages = profiler.stages()
    worker_stages = extra.pop("worker_stages", None)
    if worker_stages:
        stages = merge_stage_maps(stages, worker_stages)
    entry: Dict[str, Any] = {
        "wall_seconds": wall,
        "config_digest": config_digest(
            {"name": scenario.name, "kind": scenario.kind, **scenario.kwargs}
        ),
        "stages": stages,
        "edges": profiler.edges(),
    }
    entry.update(extra)
    events = entry.get("events_processed")
    if isinstance(events, int) and wall > 0:
        entry["events_per_second"] = events / wall
    probes = entry.get("probes_sent")
    if isinstance(probes, int) and wall > 0:
        entry["probes_per_second"] = probes / wall
    return entry


def run_bench_suite(
    suite: str = "fast",
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run a pinned suite and return its (unwritten) bench document."""
    scenarios = SUITES.get(suite)
    if scenarios is None:
        raise ConfigurationError(
            f"unknown bench suite {suite!r} (have: {', '.join(sorted(SUITES))})"
        )
    entries: Dict[str, Dict[str, Any]] = {}
    for scenario in scenarios:
        if progress is not None:
            progress(f"running {scenario.name} ...")
        entries[scenario.name] = run_scenario(scenario)
    return make_bench_document(suite, entries)
