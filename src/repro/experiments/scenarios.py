"""Background-traffic scenarios (§4 / §6 of the paper).

Three scenarios drive every table and figure:

* :func:`infinite_tcp` — long-lived TCP flows in congestion avoidance. The
  paper used 40 flows on a 155 Mb/s bottleneck; on the scaled testbed the
  flow count is scaled with the bottleneck rate so each flow operates in
  the same window regime (tens of segments), which is what produces the
  characteristic synchronized sawtooth and ~RTT-length loss episodes.
* :func:`episodic_cbr` — engineered constant-duration loss episodes at
  exponentially spaced epochs (the modified-Iperf scenarios).
* :func:`harpoon_web` — heavy-tailed web-like traffic with load surges
  inducing loss roughly every 20 seconds.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.net.topology import DumbbellTestbed
from repro.net.simulator import Simulator
from repro.traffic.cbr import EpisodicCbrTraffic
from repro.traffic.harpoon import HarpoonWebTraffic
from repro.traffic.tcp import TcpReceiver, TcpSender
from repro.traffic.base import ephemeral_port
from repro.units import mbps

#: The paper's flow count and bottleneck rate, used for scaling.
PAPER_TCP_FLOWS = 40
PAPER_BOTTLENECK_BPS = mbps(155)


def scaled_flow_count(bottleneck_bps: float) -> int:
    """Scale the paper's 40 flows to a different bottleneck rate.

    Keeps per-flow bandwidth share (and therefore the congestion-window
    regime) comparable to the paper's testbed.
    """
    scaled = round(PAPER_TCP_FLOWS * bottleneck_bps / PAPER_BOTTLENECK_BPS)
    return max(2, scaled)


def infinite_tcp(
    sim: Simulator,
    testbed: DumbbellTestbed,
    n_flows: Optional[int] = None,
    rwnd: int = 256,
    stagger: float = 2.0,
    start: float = 0.0,
) -> List[TcpSender]:
    """Start long-lived TCP flows across the dumbbell.

    Flow starts are staggered uniformly over ``stagger`` seconds so slow
    start does not begin in lockstep; congestion-avoidance synchronization
    then emerges from the shared drop-tail queue, as in the paper's Fig. 4.
    """
    if n_flows is None:
        n_flows = scaled_flow_count(testbed.config.bottleneck_bps)
    rng = sim.rng("infinite-tcp-starts")
    senders: List[TcpSender] = []
    n_pairs = len(testbed.traffic_senders)
    for index in range(n_flows):
        sender_host = testbed.traffic_senders[index % n_pairs]
        receiver_host = testbed.traffic_receivers[index % n_pairs]
        port = ephemeral_port()
        TcpReceiver(sim, receiver_host, port)
        senders.append(
            TcpSender(
                sim,
                sender_host,
                receiver_host.name,
                port,
                mss=testbed.config.mtu,
                rwnd=rwnd,
                total_segments=None,
                start=start + rng.uniform(0.0, stagger),
            )
        )
    return senders


def episodic_cbr(
    sim: Simulator,
    testbed: DumbbellTestbed,
    episode_durations: Sequence[float] = (0.068,),
    mean_spacing: float = 10.0,
    overload_factor: float = 2.0,
    start: float = 0.5,
) -> EpisodicCbrTraffic:
    """Engineered constant-duration loss episodes (Tables 2/4/5, Fig. 5)."""
    cfg = testbed.config
    return EpisodicCbrTraffic(
        sim,
        testbed.traffic_senders[0],
        testbed.traffic_receivers[0],
        bottleneck_bps=cfg.bottleneck_bps,
        buffer_bytes=cfg.buffer_bytes,
        episode_durations=episode_durations,
        mean_spacing=mean_spacing,
        overload_factor=overload_factor,
        packet_size=cfg.mtu,
        start=start,
    )


def harpoon_web(
    sim: Simulator,
    testbed: DumbbellTestbed,
    load_factor: float = 0.5,
    surge_interval_mean: float = 20.0,
    start: float = 0.0,
) -> HarpoonWebTraffic:
    """Web-like traffic sized to ``load_factor`` of the bottleneck.

    The base session process is calibrated from the mean file size so that
    offered load ≈ ``load_factor`` × bottleneck rate; surges of parallel
    transfers then push the queue into loss on the paper's ~20 s cadence.
    """
    cfg = testbed.config
    shape = 1.2
    min_file = 12_000
    mean_files = 5.0
    # Truncated-Pareto mean ≈ shape/(shape-1) × min for the sizes in play.
    mean_file_bytes = min_file * shape / (shape - 1.0)
    session_bytes = mean_file_bytes * mean_files
    target_bps = load_factor * cfg.bottleneck_bps
    session_rate = target_bps / (session_bytes * 8)
    # Surge sizing: enough simultaneous bytes to fill the buffer through the
    # access links and overflow it briefly.
    surge_flows = max(4, len(testbed.traffic_senders))
    surge_file_bytes = int(2.5 * cfg.buffer_bytes / surge_flows) + cfg.buffer_bytes
    return HarpoonWebTraffic(
        sim,
        testbed.traffic_senders,
        testbed.traffic_receivers,
        session_rate=session_rate,
        mean_files_per_session=mean_files,
        pareto_shape=shape,
        min_file_bytes=min_file,
        surge_interval_mean=surge_interval_mean,
        surge_flows=surge_flows,
        surge_file_bytes=surge_file_bytes,
        mss=cfg.mtu,
        start=start,
    )
