"""Process-parallel sweep engine: spawn-safe cells, deterministic merge.

The paper's headline tables and figures are grids of runs over
``(p, duration, scenario, seed)`` cells, each cell an independent seeded
simulation — embarrassingly parallel work that :func:`~repro.experiments.runner.sweep_badabing`
used to execute serially. This module dispatches prepared cells to a
``ProcessPoolExecutor`` and re-assembles the results so that the parallel
sweep is **byte-identical** to the serial one on the same seeds:

* every cell runs under its *own* fresh
  :class:`~repro.obs.metrics.MetricsRegistry` and (when tracing) its own
  :class:`~repro.obs.tracing.Tracer` shard inside the worker — no shared
  mutable state crosses a process boundary during the run;
* the parent merges the per-cell registries with
  :meth:`MetricsRegistry.merge` and absorbs the trace shards **in cell
  order**, regardless of completion order, so the merged snapshot is a
  pure function of the cell list and seeds (the serial path performs the
  exact same per-cell-registry + ordered-merge dance);
* outcomes come back as the same ordered
  :class:`~repro.experiments.runner.RunOutcome` list serial produces, so
  :func:`~repro.experiments.runner.scorecard_from_outcomes` digests
  identically over either.

Failure containment mirrors the protected-run philosophy: a worker that
dies *hard* (``BrokenProcessPool`` from a segfault/``os._exit``/OOM-kill,
an unpicklable payload or result) is converted into a structured failed
``RunOutcome`` for the cell being waited on, the pool is rebuilt, and the
remaining cells are resubmitted — the sweep always returns its full
shape. A sweep-level ``max_wall_seconds`` deadline cancels cells that
have not started yet and reports them as budget-exhausted; in-flight
cells are never interrupted (matching
:class:`~repro.experiments.runner.RunBudget.max_wall_seconds` semantics).

The worker entry point lives at module top level and payloads are plain
picklable dataclasses, so the engine is safe under the ``spawn`` start
method (the only one that is fork-safety-proof across platforms).
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import CancelledError, ProcessPoolExecutor
from contextlib import nullcontext
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry, NullRegistry
from repro.obs.tracing import Tracer, trace_span
from repro.profiling import profiling

#: How many times one cell may be the observed victim of a broken pool
#: before it is permanently failed. Two lets an *innocent* cell that was
#: merely co-resident with a crashing one get a fresh chance, while a
#: cell that reliably kills its worker converges to a structured failure.
MAX_POOL_BREAK_BLAME = 2

#: Registry construction modes a payload can request (mirrors what the
#: serial path injects for the same parent-registry state).
METRICS_FRESH = "fresh"
METRICS_NULL = "null"
METRICS_NONE = "none"


@dataclass(frozen=True)
class CellPayload:
    """Everything a worker needs to run one sweep cell, picklable.

    ``runner`` is an importable top-level callable (``None`` means
    :func:`~repro.experiments.runner.run_badabing`); ``kwargs`` must not
    contain live objects (``metrics``/``tracer``/``keep``) — the caller
    validates that before building payloads.
    """

    index: int
    label: str
    seed: int
    kwargs: Dict[str, Any]
    budget: Optional[Any] = None
    metrics_mode: str = METRICS_NONE
    with_tracer: bool = False
    #: When True (and the cell registry is live), the worker runs its cell
    #: under a :class:`~repro.obs.profile.StageProfiler` and publishes the
    #: stage stats as ``profile.*`` instruments on the cell registry, so
    #: the parent's ordered ``merge(series_labels=)`` aggregates them
    #: across shards (bench suites only — published stage timings are
    #: wall-clock, so profiled registries are not digest-deterministic).
    with_profiler: bool = False
    runner: Optional[Callable[..., Any]] = None


@dataclass
class CellResult:
    """What a worker sends back: the outcome plus its observability shards."""

    index: int
    outcome: Any
    registry: Optional[MetricsRegistry] = None
    spans: List[Dict[str, Any]] = field(default_factory=list)


def run_cell(payload: CellPayload) -> CellResult:
    """Worker entry point: run one protected cell in a child process.

    Builds the cell's private registry/tracer, runs the protected cell
    exactly as the serial path would, then detaches the registry's
    collectors (they close over the finished simulator and cannot be
    pickled) so the result is a plain data bundle.
    """
    from repro.experiments import runner as _runner

    fn = payload.runner if payload.runner is not None else _runner.run_badabing
    registry: Optional[MetricsRegistry] = None
    if payload.metrics_mode == METRICS_FRESH:
        registry = MetricsRegistry()
    elif payload.metrics_mode == METRICS_NULL:
        registry = NullRegistry()
    kwargs = dict(payload.kwargs)
    if registry is not None and _runner.accepts_kwarg(fn, "metrics"):
        kwargs["metrics"] = registry
    tracer = (
        Tracer(shard="sweep-worker", cell=payload.label)
        if payload.with_tracer
        else None
    )
    profiler = None
    if payload.with_profiler and registry is not None and registry.enabled:
        from repro.obs.profile import StageProfiler

        profiler = StageProfiler()
    scope = profiling(profiler) if profiler is not None else nullcontext()
    with trace_span(tracer, "sweep.cell", label=payload.label, seed=payload.seed):
        with scope:
            outcome = _runner.run_protected(
                fn,
                label=payload.label,
                seed=payload.seed,
                budget=payload.budget,
                **kwargs,
            )
    if profiler is not None:
        profiler.publish(registry)
    if registry is not None:
        registry.detach_collectors()
    return CellResult(
        index=payload.index,
        outcome=outcome,
        registry=registry if payload.metrics_mode == METRICS_FRESH else None,
        spans=list(tracer.spans) if tracer is not None else [],
    )


def _crash_outcome(payload: CellPayload, exc: BaseException, elapsed: float) -> Any:
    """A structured failed RunOutcome for a cell whose worker died hard."""
    from repro.experiments.runner import RunOutcome

    return RunOutcome(
        label=payload.label,
        ok=False,
        error=str(exc) or type(exc).__name__,
        error_type=type(exc).__name__,
        error_traceback="".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ),
        attempts=1,
        seeds=(payload.seed,),
        elapsed_seconds=elapsed,
    )


def deadline_outcome(label: str, max_wall_seconds: float) -> Any:
    """A budget-exhausted RunOutcome for a cell skipped at the deadline."""
    from repro.experiments.runner import RunOutcome

    return RunOutcome(
        label=label,
        ok=False,
        error=(
            f"sweep wall-clock deadline ({max_wall_seconds}s) reached "
            "before this cell started"
        ),
        error_type="BudgetExhaustedError",
        budget_exhausted=True,
        attempts=0,
        seeds=(),
    )


def _await_cell(future, deadline: Optional[float]) -> Tuple[str, Any]:
    """Wait for one cell future under the sweep deadline.

    Returns ``("ok", CellResult)``, ``("deadline", None)`` for a cell
    cancelled before it started, or ``("error", exception)`` for a hard
    worker failure. A cell already running at the deadline is allowed to
    finish — only not-yet-started cells are cancelled.
    """
    timeout = None if deadline is None else max(0.0, deadline - time.monotonic())
    try:
        return "ok", future.result(timeout=timeout)
    except FuturesTimeoutError:
        if future.cancel():
            return "deadline", None
        try:  # in flight: never interrupted
            return "ok", future.result()
        except CancelledError:
            return "deadline", None
        except BaseException as exc:  # noqa: BLE001 — contained per-cell
            return "error", exc
    except CancelledError:
        return "deadline", None
    except BaseException as exc:  # noqa: BLE001 — contained per-cell
        return "error", exc


def execute_parallel_sweep(
    payloads: Sequence[CellPayload],
    workers: int,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    max_wall_seconds: Optional[float] = None,
    exporter=None,
) -> List[Any]:
    """Run prepared cells across ``workers`` processes; merge in cell order.

    Returns one ``RunOutcome`` per payload, in payload order. Per-cell
    registries are merged into ``metrics`` and trace shards absorbed into
    ``tracer`` strictly in cell order as each cell is finalized, so the
    parent's merged state is independent of completion order.

    ``exporter`` (when given) emits one ``kind="progress"`` snapshot per
    finalized cell; the record envelope carries the cell label and status
    while the metrics snapshot stays exactly the registry's merged state.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    started = time.monotonic()
    deadline = started + max_wall_seconds if max_wall_seconds is not None else None
    outcomes: List[Any] = [None] * len(payloads)
    blame: Dict[int, int] = {}
    context = get_context("spawn")
    pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
    try:
        futures = {
            payload.index: pool.submit(run_cell, payload) for payload in payloads
        }
        deadline_swept = False
        for payload in payloads:
            while outcomes[payload.index] is None:
                if (
                    deadline is not None
                    and not deadline_swept
                    and time.monotonic() >= deadline
                ):
                    # Cancel everything still pending in one sweep, before the
                    # executor's feeder thread can promote more cells into the
                    # call queue as running ones complete. Cells already fed
                    # refuse the cancel and are allowed to finish.
                    for future in futures.values():
                        future.cancel()
                    deadline_swept = True
                status, value = _await_cell(futures[payload.index], deadline)
                if status == "ok":
                    cell: CellResult = value
                    if metrics is not None and cell.registry is not None:
                        metrics.merge(
                            cell.registry, series_labels={"cell": payload.label}
                        )
                    if tracer is not None and cell.spans:
                        tracer.absorb(cell.spans)
                    outcomes[payload.index] = cell.outcome
                elif status == "deadline":
                    outcomes[payload.index] = deadline_outcome(
                        payload.label, max_wall_seconds
                    )
                elif isinstance(value, BrokenProcessPool):
                    # The pool died under some worker; we can only observe it
                    # at the cell we are waiting on. Blame it (bounded), then
                    # rebuild the pool and resubmit everything unfinished so
                    # innocent co-resident cells still complete.
                    blame[payload.index] = blame.get(payload.index, 0) + 1
                    if blame[payload.index] >= MAX_POOL_BREAK_BLAME:
                        outcomes[payload.index] = _crash_outcome(
                            payload, value, time.monotonic() - started
                        )
                    pool, futures = _rebuild_pool(
                        pool, context, workers, payloads, futures, outcomes
                    )
                    deadline_swept = False  # resubmitted cells need the sweep too
                else:
                    outcomes[payload.index] = _crash_outcome(
                        payload, value, time.monotonic() - started
                    )
            if exporter is not None:
                outcome = outcomes[payload.index]
                status = "ok" if outcome.ok else (
                    "budget_exhausted" if outcome.budget_exhausted else "failed"
                )
                exporter.export_now(
                    kind="progress", cell=payload.label, status=status
                )
    finally:
        pool.shutdown(wait=False)
    return outcomes


def _rebuild_pool(
    pool: ProcessPoolExecutor,
    context,
    workers: int,
    payloads: Sequence[CellPayload],
    futures: Dict[int, Any],
    outcomes: List[Any],
):
    """Replace a broken pool; resubmit every cell still owed a result.

    Cells whose futures already completed successfully keep their results;
    cells already finalized into ``outcomes`` are skipped.
    """
    pool.shutdown(wait=False)
    fresh = ProcessPoolExecutor(max_workers=workers, mp_context=context)
    rebuilt = dict(futures)
    for payload in payloads:
        if outcomes[payload.index] is not None:
            continue
        future = futures[payload.index]
        if future.done() and not future.cancelled() and future.exception() is None:
            continue  # finished before the break; result is intact
        rebuilt[payload.index] = fresh.submit(run_cell, payload)
    return fresh, rebuilt
