"""Paper-reproduction harness: scenarios, runner, tables, and figures."""

from repro.experiments.runner import (
    GroundTruth,
    RunBudget,
    RunOutcome,
    build_testbed,
    apply_scenario,
    compute_ground_truth,
    ground_truth_from_episodes,
    default_marking_for,
    install_faults,
    run_badabing,
    run_badabing_multihop,
    run_protected,
    run_zing,
    sweep_badabing,
)

__all__ = [
    "GroundTruth",
    "RunBudget",
    "RunOutcome",
    "build_testbed",
    "apply_scenario",
    "compute_ground_truth",
    "ground_truth_from_episodes",
    "default_marking_for",
    "install_faults",
    "run_badabing",
    "run_badabing_multihop",
    "run_protected",
    "run_zing",
    "sweep_badabing",
]
