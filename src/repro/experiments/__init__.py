"""Paper-reproduction harness: scenarios, runner, tables, and figures."""

from repro.experiments.runner import (
    GroundTruth,
    build_testbed,
    apply_scenario,
    compute_ground_truth,
    ground_truth_from_episodes,
    default_marking_for,
    run_badabing,
    run_badabing_multihop,
    run_zing,
)

__all__ = [
    "GroundTruth",
    "build_testbed",
    "apply_scenario",
    "compute_ground_truth",
    "ground_truth_from_episodes",
    "default_marking_for",
    "run_badabing",
    "run_badabing_multihop",
    "run_zing",
]
