"""Plain-text rendering of reproduced tables and figures.

Everything renders to monospace text (the library has no plotting
dependency); figures become compact ASCII sparklines / aligned series
listings that make the paper's qualitative shapes visible in a terminal.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

from repro.experiments.figures import (
    ProbeImpactSeries,
    QueueSeries,
    SensitivitySweep,
    TrainSensitivity,
)
from repro.experiments.tables import TableResult


def _fmt(value, precision: int = 4) -> str:
    """Format a float/None for table cells."""
    if value is None:
        return "-"
    if isinstance(value, float) and math.isnan(value):
        return "nan"
    return f"{value:.{precision}f}"


def render_table(result: TableResult) -> str:
    """Render a :class:`TableResult` like the paper's tables."""
    header = ["", "loss frequency", "", "loss duration (s)", ""]
    sub = ["row", "true", "measured", "true µ (σ)", "measured"]
    lines = [
        f"{result.table_id.upper()}: {result.title}",
        f"[profile={result.profile}]",
    ]
    rows: List[List[str]] = [sub]
    for row in result.rows:
        rows.append(
            [
                row.label,
                _fmt(row.true_frequency),
                _fmt(row.measured_frequency),
                f"{_fmt(row.true_duration, 3)} ({_fmt(row.true_duration_std, 3)})",
                _fmt(row.measured_duration, 3),
            ]
        )
    widths = [max(len(r[i]) for r in rows) for i in range(len(sub))]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip())
    lines.append("  ".join(c.ljust(w) for c, w in zip(sub, widths)))
    lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for cells in rows[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
    if result.notes:
        lines.append(f"note: {result.notes}")
    return "\n".join(lines)


_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 72) -> str:
    """Compress a series into a unicode sparkline of ``width`` chars."""
    if not values:
        return ""
    top = max(values)
    if top <= 0:
        return _SPARK[0] * min(width, len(values))
    bucket = max(1, len(values) // width)
    chars = []
    for i in range(0, len(values), bucket):
        chunk = values[i : i + bucket]
        level = max(chunk) / top
        chars.append(_SPARK[min(len(_SPARK) - 1, int(level * len(_SPARK)))])
    return "".join(chars)


def render_queue_series(series: QueueSeries, width: int = 72) -> str:
    """Render a Figure 4/5/6-style queue series as a sparkline + stats."""
    peak = max(series.delays) if series.delays else 0.0
    lines = [
        f"{series.name}: queue delay over {series.times[0]:.1f}..{series.times[-1]:.1f}s "
        f"(peak {peak * 1000:.1f} ms, {len(series.episodes)} loss episodes)",
        sparkline(series.delays, width),
    ]
    return "\n".join(lines)


def render_train_sensitivity(curves: Iterable[TrainSensitivity]) -> str:
    """Render Figure 7: P(no loss seen | inside episode) vs train length."""
    lines = ["FIG 7: P(probe sees no loss during a loss episode) vs probe length"]
    for curve in curves:
        lines.append(f"  {curve.scenario}:")
        for n, probability, hits in zip(
            curve.train_lengths, curve.miss_probabilities, curve.probes_in_episodes
        ):
            bar = "#" * int(probability * 40)
            lines.append(f"    {n:>2} pkts  {probability:.3f}  ({hits:>5} probes)  {bar}")
    return "\n".join(lines)


def render_probe_impact(results: Iterable[ProbeImpactSeries]) -> str:
    """Render Figure 8: drops and load per probe-train configuration."""
    lines = ["FIG 8: probe impact on the bottleneck during loss episodes"]
    for item in results:
        lines.append(
            f"  train={item.train_length:>2} pkts  probe load "
            f"{item.probe_load_fraction * 100:5.2f}%  cross drops "
            f"{len(item.cross_drop_times):>5}  probe drops {len(item.probe_drop_times):>4}  "
            f"episodes {len(item.series.episodes):>3}"
        )
    return "\n".join(lines)


def render_sensitivity(sweep: SensitivitySweep) -> str:
    """Render Figure 9a/9b: estimated frequency vs p per parameter value."""
    lines = [
        f"FIG 9 ({sweep.parameter}): estimated loss frequency vs p  "
        f"[true frequency ≈ {sweep.true_frequency:.4f}]"
    ]
    for value, points in sorted(sweep.curves.items()):
        cells = "  ".join(f"p={p:.1f}:{freq:.4f}" for p, freq in points)
        label = (
            f"{sweep.parameter}={value:g}"
            if sweep.parameter == "alpha"
            else f"{sweep.parameter}={value * 1000:.0f}ms"
        )
        lines.append(f"  {label:<12} {cells}")
    return "\n".join(lines)
