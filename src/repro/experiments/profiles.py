"""Run-length profiles.

The paper's experiments are 15-minute (900 s) runs, with Table 7's larger-N
row covering a full hour. Simulating those faithfully is supported (the
``full`` profile) but slow in pure Python, so the default ``fast`` profile
shortens every run by 3x while keeping all rates, spacings, and parameters
identical — estimates get noisier, shapes stay the same.

Select with the ``REPRO_PROFILE`` environment variable (``fast``/``full``)
or pass a :class:`Profile` explicitly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Paper slot width (5 ms).
SLOT = 0.005


@dataclass(frozen=True)
class Profile:
    """Durations for one reproduction pass."""

    name: str
    #: ZING / PING run length in seconds (paper: 900).
    tool_duration: float
    #: BADABING slot count (paper: 180,000 == 900 s at 5 ms).
    n_slots: int
    #: Table 7's larger N (paper: 720,000 == 1 hour).
    n_slots_large: int
    #: Figure 7/8 probe-train run length in seconds.
    train_duration: float
    #: Warmup before the measurement window opens.
    warmup: float = 10.0

    def __post_init__(self) -> None:
        if self.tool_duration <= 0 or self.train_duration <= 0:
            raise ConfigurationError("durations must be positive")
        if not 2 <= self.n_slots <= self.n_slots_large:
            raise ConfigurationError("need 2 <= n_slots <= n_slots_large")

    @property
    def badabing_duration(self) -> float:
        return self.n_slots * SLOT


FAST = Profile(
    name="fast",
    tool_duration=300.0,
    n_slots=60_000,
    n_slots_large=240_000,
    train_duration=120.0,
)

FULL = Profile(
    name="full",
    tool_duration=900.0,
    n_slots=180_000,
    n_slots_large=720_000,
    train_duration=300.0,
)

#: Tiny profile for CI-style smoke testing of the harness itself.
SMOKE = Profile(
    name="smoke",
    tool_duration=60.0,
    n_slots=12_000,
    n_slots_large=24_000,
    train_duration=30.0,
)

PROFILES = {profile.name: profile for profile in (FAST, FULL, SMOKE)}


def active_profile() -> Profile:
    """Profile selected by ``REPRO_PROFILE`` (default: fast)."""
    name = os.environ.get("REPRO_PROFILE", "fast").lower()
    profile = PROFILES.get(name)
    if profile is None:
        raise ConfigurationError(
            f"unknown REPRO_PROFILE {name!r}; choose from {sorted(PROFILES)}"
        )
    return profile
