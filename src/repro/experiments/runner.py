"""Experiment runner: wire testbed + scenario + tool, extract ground truth.

Every table/figure reproduction boils down to the same loop:

1. build the dumbbell testbed on a fresh seeded simulator,
2. start one of the §4/§6 traffic scenarios,
3. start a measurement tool (BADABING / ZING / PING-like),
4. run for warmup + measurement + drain,
5. extract ground truth from the bottleneck monitor over the measurement
   window and compare with what the tool reported.

The helpers here implement steps 1-5 once, so the table/figure modules and
user code stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.analysis.episodes import LossEpisode, episodes_from_monitor
from repro.analysis.slots import true_frequency
from repro.analysis.stats import mean_std
from repro.config import BadabingConfig, MarkingConfig, ProbeConfig, TestbedConfig
from repro.core.badabing import BadabingResult, BadabingTool
from repro.core.clock import Clock
from repro.core.jitter import JitterModel
from repro.core.zing import ZingResult, ZingTool
from repro.errors import ConfigurationError
from repro.experiments import scenarios as _scenarios
from repro.net.simulator import Simulator
from repro.net.topology import DumbbellTestbed

#: Extra simulated time after the measurement window so in-flight packets
#: drain and the tools' logs are complete.
DRAIN_TIME = 2.0

#: Registry of named scenarios usable by tables, benches, and the CLI.
SCENARIOS: Dict[str, Callable[..., Any]] = {
    "infinite_tcp": _scenarios.infinite_tcp,
    "episodic_cbr": _scenarios.episodic_cbr,
    "harpoon_web": _scenarios.harpoon_web,
}


def build_testbed(
    seed: int = 1,
    config: Optional[TestbedConfig] = None,
    sample_interval: Optional[float] = None,
) -> Tuple[Simulator, DumbbellTestbed]:
    """Fresh simulator + dumbbell testbed."""
    sim = Simulator(seed=seed)
    testbed = DumbbellTestbed(sim, config=config, sample_interval=sample_interval)
    return sim, testbed


def apply_scenario(
    sim: Simulator, testbed: DumbbellTestbed, scenario: str, **kwargs: Any
) -> Any:
    """Start a named background-traffic scenario."""
    factory = SCENARIOS.get(scenario)
    if factory is None:
        raise ConfigurationError(
            f"unknown scenario {scenario!r}; choose from {sorted(SCENARIOS)}"
        )
    return factory(sim, testbed, **kwargs)


@dataclass
class GroundTruth:
    """What actually happened at the bottleneck during the window."""

    episodes: List[LossEpisode]
    frequency: float
    duration_mean: float
    duration_std: float
    loss_rate: float
    n_slots: int
    slot: float
    window: Tuple[float, float]

    @property
    def n_episodes(self) -> int:
        return len(self.episodes)

    @property
    def loss_event_rate_per_slot(self) -> float:
        """§7's L: mean number of loss events (episodes) per slot."""
        if self.n_slots == 0:
            return 0.0
        return self.n_episodes / self.n_slots


def compute_ground_truth(
    testbed: DumbbellTestbed,
    slot: float,
    start: float,
    duration: float,
    max_gap: float = 0.5,
) -> GroundTruth:
    """Extract router-centric truth over ``[start, start + duration]``."""
    episodes = episodes_from_monitor(testbed.monitor, max_gap=max_gap)
    return ground_truth_from_episodes(
        episodes, testbed.monitor.loss_rate, slot, start, duration
    )


def ground_truth_from_episodes(
    episodes: List[LossEpisode],
    loss_rate: float,
    slot: float,
    start: float,
    duration: float,
) -> GroundTruth:
    """Windowed truth from an already-extracted episode list.

    Used directly by multi-hop experiments, where the episode list is the
    union of per-hop extractions.
    """
    if duration <= 0:
        raise ConfigurationError(f"duration must be positive, got {duration}")
    end = start + duration
    window_episodes = [
        episode for episode in episodes if episode.end >= start and episode.start <= end
    ]
    # Re-express episode times relative to the measurement start so slot
    # indices line up with the probe process's slots.
    shifted = [
        LossEpisode(
            max(episode.start, start) - start,
            min(episode.end, end) - start,
            episode.drops,
        )
        for episode in window_episodes
    ]
    n_slots = int(round(duration / slot))
    frequency = true_frequency(shifted, slot, n_slots) if shifted else 0.0
    durations = [episode.duration for episode in window_episodes]
    duration_mean, duration_std = mean_std(durations)
    return GroundTruth(
        episodes=window_episodes,
        frequency=frequency,
        duration_mean=duration_mean,
        duration_std=duration_std,
        loss_rate=loss_rate,
        n_slots=n_slots,
        slot=slot,
        window=(start, end),
    )


def default_marking_for(p: float, slot: float) -> MarkingConfig:
    """§6.2's parameter recipe.

    tau: "the expected time between probes plus one standard deviation" —
    for the geometric design the gap between probed slots is geometric with
    per-slot coverage probability ``1 - (1-p)^2``.

    alpha: 0.2 at p = 0.1, 0.1 at p in {0.3, 0.5}, 0.05 at p in {0.7, 0.9}
    (the paper's text prints "0.5" for the last group, which contradicts
    its own Figure 9 range of 0.025-0.2; we read it as 0.05).
    """
    coverage = 1.0 - (1.0 - p) ** 2
    mean_gap = slot / coverage
    std_gap = slot * sqrt(1.0 - coverage) / coverage
    tau = mean_gap + std_gap
    if p <= 0.15:
        alpha = 0.2
    elif p <= 0.55:
        alpha = 0.1
    else:
        alpha = 0.05
    return MarkingConfig(alpha=alpha, tau=tau)


def run_badabing(
    scenario: str,
    p: float,
    n_slots: int,
    seed: int = 1,
    improved: bool = False,
    probe: Optional[ProbeConfig] = None,
    marking: Optional[MarkingConfig] = None,
    testbed_config: Optional[TestbedConfig] = None,
    scenario_kwargs: Optional[Dict[str, Any]] = None,
    warmup: float = 10.0,
    jitter: Optional[JitterModel] = None,
    sender_clock: Optional[Clock] = None,
    receiver_clock: Optional[Clock] = None,
    keep: Optional[Dict[str, Any]] = None,
) -> Tuple[BadabingResult, GroundTruth]:
    """Full BADABING experiment: returns (tool result, ground truth).

    ``keep`` (if provided) is filled with the live objects (sim, testbed,
    tool, traffic) so callers can do further analysis — e.g. re-mark the
    same probe logs under different (alpha, tau) settings for Figure 9.
    """
    probe_cfg = probe if probe is not None else ProbeConfig()
    marking_cfg = marking if marking is not None else default_marking_for(p, probe_cfg.slot)
    config = BadabingConfig(
        probe=probe_cfg, marking=marking_cfg, p=p, n_slots=n_slots, improved=improved
    )
    sim, testbed = build_testbed(seed=seed, config=testbed_config)
    traffic = apply_scenario(sim, testbed, scenario, **(scenario_kwargs or {}))
    tool = BadabingTool(
        sim,
        testbed.probe_sender,
        testbed.probe_receiver,
        config,
        start=warmup,
        jitter=jitter,
        sender_clock=sender_clock,
        receiver_clock=receiver_clock,
    )
    sim.run(until=tool.end_time + DRAIN_TIME)
    truth = compute_ground_truth(testbed, probe_cfg.slot, warmup, config.duration)
    result = tool.result()
    if keep is not None:
        keep.update(sim=sim, testbed=testbed, tool=tool, traffic=traffic)
    return result, truth


def run_badabing_multihop(
    n_hops: int,
    p: float,
    n_slots: int,
    seed: int = 1,
    mean_spacings: Optional[List[float]] = None,
    episode_durations: Tuple[float, ...] = (0.068,),
    testbed_config: Optional[TestbedConfig] = None,
    probe: Optional[ProbeConfig] = None,
    marking: Optional[MarkingConfig] = None,
    warmup: float = 10.0,
    keep: Optional[Dict[str, Any]] = None,
) -> Tuple[BadabingResult, GroundTruth]:
    """BADABING across a chain of independently congested bottlenecks.

    Each hop carries its own engineered episodic CBR cross traffic
    (spacing given per hop via ``mean_spacings``, default 10 s each);
    truth is the *union* of per-hop loss episodes — the path-level
    congestion state the probes actually traverse.
    """
    from repro.net.multihop import MultiHopTestbed
    from repro.traffic.cbr import EpisodicCbrTraffic

    probe_cfg = probe if probe is not None else ProbeConfig()
    marking_cfg = marking if marking is not None else default_marking_for(p, probe_cfg.slot)
    config = BadabingConfig(
        probe=probe_cfg, marking=marking_cfg, p=p, n_slots=n_slots
    )
    sim = Simulator(seed=seed)
    testbed = MultiHopTestbed(sim, n_hops=n_hops, config=testbed_config)
    cfg = testbed.config
    if mean_spacings is None:
        mean_spacings = [10.0] * n_hops
    if len(mean_spacings) != n_hops:
        raise ConfigurationError(
            f"need one spacing per hop ({n_hops}), got {len(mean_spacings)}"
        )
    traffic = [
        EpisodicCbrTraffic(
            sim,
            testbed.cross_senders[hop],
            testbed.cross_receivers[hop],
            bottleneck_bps=cfg.bottleneck_bps,
            buffer_bytes=cfg.buffer_bytes,
            episode_durations=episode_durations,
            mean_spacing=mean_spacings[hop],
            packet_size=cfg.mtu,
            rng_label=f"episodic-cbr-hop{hop}",
        )
        for hop in range(n_hops)
    ]
    tool = BadabingTool(
        sim, testbed.probe_sender, testbed.probe_receiver, config, start=warmup
    )
    sim.run(until=tool.end_time + DRAIN_TIME)
    total_arrivals = sum(m.arrivals for m in testbed.hop_monitors)
    total_drops = testbed.total_drops
    loss_rate = (
        total_drops / (total_arrivals + total_drops)
        if total_arrivals + total_drops
        else 0.0
    )
    truth = ground_truth_from_episodes(
        testbed.path_episodes(), loss_rate, probe_cfg.slot, warmup, config.duration
    )
    result = tool.result()
    if keep is not None:
        keep.update(sim=sim, testbed=testbed, tool=tool, traffic=traffic)
    return result, truth


def run_zing(
    scenario: str,
    mean_interval: float,
    packet_size: int,
    duration: float,
    seed: int = 1,
    slot: float = 0.005,
    testbed_config: Optional[TestbedConfig] = None,
    scenario_kwargs: Optional[Dict[str, Any]] = None,
    warmup: float = 10.0,
    keep: Optional[Dict[str, Any]] = None,
) -> Tuple[ZingResult, GroundTruth]:
    """Full ZING experiment: returns (tool result, ground truth).

    ``slot`` only affects how the *truth* frequency is discretized; ZING
    itself is slot-free.
    """
    sim, testbed = build_testbed(seed=seed, config=testbed_config)
    traffic = apply_scenario(sim, testbed, scenario, **(scenario_kwargs or {}))
    tool = ZingTool(
        sim,
        testbed.probe_sender,
        testbed.probe_receiver,
        mean_interval=mean_interval,
        packet_size=packet_size,
        duration=duration,
        start=warmup,
    )
    sim.run(until=warmup + duration + DRAIN_TIME)
    truth = compute_ground_truth(testbed, slot, warmup, duration)
    result = tool.result()
    if keep is not None:
        keep.update(sim=sim, testbed=testbed, tool=tool, traffic=traffic)
    return result, truth
