"""Experiment runner: wire testbed + scenario + tool, extract ground truth.

Every table/figure reproduction boils down to the same loop:

1. build the dumbbell testbed on a fresh seeded simulator,
2. start one of the §4/§6 traffic scenarios,
3. start a measurement tool (BADABING / ZING / PING-like),
4. run for warmup + measurement + drain,
5. extract ground truth from the bottleneck monitor over the measurement
   window and compare with what the tool reported.

The helpers here implement steps 1-5 once, so the table/figure modules and
user code stay declarative.
"""

from __future__ import annotations

import inspect
import time
import traceback
from dataclasses import dataclass
from math import sqrt
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type, Union

from repro.analysis.episodes import LossEpisode, episodes_from_monitor
from repro.analysis.slots import true_frequency
from repro.analysis.stats import mean_std
from repro.config import BadabingConfig, MarkingConfig, ProbeConfig, TestbedConfig
from repro.core.badabing import BadabingResult, BadabingTool
from repro.core.clock import AffineClock
from repro.core.jitter import JitterModel
from repro.core.zing import ZingResult, ZingTool
from repro.errors import (
    BudgetExhaustedError,
    ConfigurationError,
    ReproError,
    SimulationError,
)
from repro.experiments import scenarios as _scenarios
from repro.net.faults import FaultInjector, FaultProfile, resolve_fault_profile
from repro.net.simulator import Simulator, _stable_seed
from repro.net.topology import DumbbellTestbed
from repro.obs.audit import (
    AccuracyScorecard,
    audit_run,
    publish_audit,
    scorecard_from_runs,
)
from repro.obs.manifest import RunManifest, config_digest, summarize_snapshot
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer, trace_span

#: Extra simulated time after the measurement window so in-flight packets
#: drain and the tools' logs are complete.
DRAIN_TIME = 2.0

#: The heartbeat emits at most this many progress events per run.
HEARTBEAT_BEATS = 8

#: Registry of named scenarios usable by tables, benches, and the CLI.
SCENARIOS: Dict[str, Callable[..., Any]] = {
    "infinite_tcp": _scenarios.infinite_tcp,
    "episodic_cbr": _scenarios.episodic_cbr,
    "harpoon_web": _scenarios.harpoon_web,
}


def build_testbed(
    seed: int = 1,
    config: Optional[TestbedConfig] = None,
    sample_interval: Optional[float] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Tuple[Simulator, DumbbellTestbed]:
    """Fresh simulator + dumbbell testbed."""
    sim = Simulator(seed=seed, metrics=metrics)
    testbed = DumbbellTestbed(sim, config=config, sample_interval=sample_interval)
    return sim, testbed


def _build_manifest(
    tool: str, seed: int, sim: Simulator, *configs: Any
) -> RunManifest:
    """Provenance record for one finished run (see repro.obs.manifest)."""
    from repro import __version__

    return RunManifest(
        tool=tool,
        seed=seed,
        config_digest=config_digest(*configs),
        package_version=__version__,
        sim_seconds=sim.now,
        wall_seconds=sim.wall_seconds,
        events_processed=sim.events_processed,
        metrics=summarize_snapshot(sim.metrics.snapshot()),
    )


def _start_heartbeat(sim: Simulator, tracer: Optional[Tracer], until: float) -> None:
    """Emit periodic sim-time progress events while a run executes.

    A long simulation is silent between the ``sim.run`` span's start and
    end; the heartbeat marks simulated-time progress (and the event count
    at each beat) so a stalled run is distinguishable from a slow one in
    the trace. A no-op without a tracer — the simulation schedule gains no
    extra events, preserving clean-path determinism.
    """
    if tracer is None or until <= 0:
        return
    interval = until / HEARTBEAT_BEATS

    def beat() -> None:
        tracer.event(
            "sim.heartbeat",
            sim_time=round(sim.now, 9),
            events_processed=sim.events_processed,
        )
        if sim.now + interval <= until:
            sim.schedule(interval, beat)

    sim.schedule(interval, beat)


def apply_scenario(
    sim: Simulator, testbed: DumbbellTestbed, scenario: str, **kwargs: Any
) -> Any:
    """Start a named background-traffic scenario."""
    factory = SCENARIOS.get(scenario)
    if factory is None:
        raise ConfigurationError(
            f"unknown scenario {scenario!r}; choose from {sorted(SCENARIOS)}"
        )
    return factory(sim, testbed, **kwargs)


@dataclass
class GroundTruth:
    """What actually happened at the bottleneck during the window."""

    episodes: List[LossEpisode]
    frequency: float
    duration_mean: float
    duration_std: float
    loss_rate: float
    n_slots: int
    slot: float
    window: Tuple[float, float]

    @property
    def n_episodes(self) -> int:
        return len(self.episodes)

    @property
    def loss_event_rate_per_slot(self) -> float:
        """§7's L: mean number of loss events (episodes) per slot."""
        if self.n_slots == 0:
            return 0.0
        return self.n_episodes / self.n_slots


def compute_ground_truth(
    testbed: DumbbellTestbed,
    slot: float,
    start: float,
    duration: float,
    max_gap: float = 0.5,
) -> GroundTruth:
    """Extract router-centric truth over ``[start, start + duration]``."""
    episodes = episodes_from_monitor(testbed.monitor, max_gap=max_gap)
    return ground_truth_from_episodes(
        episodes, testbed.monitor.loss_rate, slot, start, duration
    )


def ground_truth_from_episodes(
    episodes: List[LossEpisode],
    loss_rate: float,
    slot: float,
    start: float,
    duration: float,
) -> GroundTruth:
    """Windowed truth from an already-extracted episode list.

    Used directly by multi-hop experiments, where the episode list is the
    union of per-hop extractions.
    """
    if duration <= 0:
        raise ConfigurationError(f"duration must be positive, got {duration}")
    end = start + duration
    window_episodes = [
        episode for episode in episodes if episode.end >= start and episode.start <= end
    ]
    # Re-express episode times relative to the measurement start so slot
    # indices line up with the probe process's slots.
    shifted = [
        LossEpisode(
            max(episode.start, start) - start,
            min(episode.end, end) - start,
            episode.drops,
        )
        for episode in window_episodes
    ]
    n_slots = int(round(duration / slot))
    frequency = true_frequency(shifted, slot, n_slots) if shifted else 0.0
    durations = [episode.duration for episode in window_episodes]
    duration_mean, duration_std = mean_std(durations)
    return GroundTruth(
        episodes=window_episodes,
        frequency=frequency,
        duration_mean=duration_mean,
        duration_std=duration_std,
        loss_rate=loss_rate,
        n_slots=n_slots,
        slot=slot,
        window=(start, end),
    )


def default_marking_for(p: float, slot: float) -> MarkingConfig:
    """§6.2's parameter recipe.

    tau: "the expected time between probes plus one standard deviation" —
    for the geometric design the gap between probed slots is geometric with
    per-slot coverage probability ``1 - (1-p)^2``.

    alpha: 0.2 at p = 0.1, 0.1 at p in {0.3, 0.5}, 0.05 at p in {0.7, 0.9}
    (the paper's text prints "0.5" for the last group, which contradicts
    its own Figure 9 range of 0.025-0.2; we read it as 0.05).
    """
    coverage = 1.0 - (1.0 - p) ** 2
    mean_gap = slot / coverage
    std_gap = slot * sqrt(1.0 - coverage) / coverage
    tau = mean_gap + std_gap
    if p <= 0.15:
        alpha = 0.2
    elif p <= 0.55:
        alpha = 0.1
    else:
        alpha = 0.05
    return MarkingConfig(alpha=alpha, tau=tau)


def install_faults(
    sim: Simulator,
    testbed: DumbbellTestbed,
    faults: Union[str, FaultProfile, None],
    anchor: float = 0.0,
    label: str = "path",
) -> Optional[FaultInjector]:
    """Attach a fault profile to a dumbbell testbed's measured path.

    The injector sits on the *forward bottleneck link* (post-queue, so its
    drops/reorderings/duplications are uncorrelated with congestion — the
    noise the paper's estimators must tolerate) and on the probe receiver
    host (collector outage windows). Times in the profile are authored
    relative to the measurement start; ``anchor`` (normally the warmup
    length) shifts them to absolute simulation time. Returns None when the
    profile resolves to a no-op — the clean path stays byte-identical.
    """
    profile = resolve_fault_profile(faults)
    if profile is None:
        return None
    injector = FaultInjector(sim, profile.shifted(anchor), label=label)
    injector.attach_to_link(testbed.forward_link)
    injector.attach_to_host(testbed.probe_receiver)
    return injector


def _check_event_budget(
    sim: Simulator, dispatched: int, max_events: Optional[int], needed_until: float
) -> None:
    """Raise a structured BudgetExhaustedError when a budgeted run starved.

    Shared by every runner entry point so zing/multihop cells starve the
    same way BADABING ones do — as a typed, retryable failure carrying the
    progress made, never as a silent truncation.
    """
    if not sim.budget_exhausted:
        return
    raise BudgetExhaustedError(
        f"event budget exhausted after {dispatched} events at "
        f"t={sim.now:.3f}s (budget {max_events}, needed to reach "
        f"t={needed_until:.3f}s)",
        events_processed=dispatched,
        sim_time=sim.now,
        budget=max_events,
    )


def run_badabing(
    scenario: str,
    p: float,
    n_slots: int,
    seed: int = 1,
    improved: bool = False,
    probe: Optional[ProbeConfig] = None,
    marking: Optional[MarkingConfig] = None,
    testbed_config: Optional[TestbedConfig] = None,
    scenario_kwargs: Optional[Dict[str, Any]] = None,
    warmup: float = 10.0,
    jitter: Optional[JitterModel] = None,
    sender_clock: Optional[AffineClock] = None,
    receiver_clock: Optional[AffineClock] = None,
    faults: Union[str, FaultProfile, None] = None,
    max_events: Optional[int] = None,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    keep: Optional[Dict[str, Any]] = None,
    vectorized: bool = False,
) -> Tuple[BadabingResult, GroundTruth]:
    """Full BADABING experiment: returns (tool result, ground truth).

    ``vectorized`` routes schedule generation and the marking → estimator
    fold through the array-batched pipeline (:mod:`repro.core.batch`);
    results and digests are bit-identical to the scalar path — it is a
    speed switch only (requires numpy). Works per-cell under
    :func:`sweep_badabing` too: pass it in ``common`` or any cell dict.

    ``keep`` (if provided) is filled with the live objects (sim, testbed,
    tool, traffic, fault_injector) so callers can do further analysis —
    e.g. re-mark the same probe logs under different (alpha, tau) settings
    for Figure 9.

    ``faults`` (a profile name from :data:`repro.net.faults.FAULT_PROFILES`
    or a :class:`~repro.net.faults.FaultProfile`) injects path impairments;
    ``max_events`` caps the simulation's event budget, raising
    :class:`~repro.errors.BudgetExhaustedError` if the run does not complete
    within it (so runaway cells are caught instead of hanging a sweep).

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) collects
    the run's telemetry — on by default, pass a
    :class:`~repro.obs.metrics.NullRegistry` to disable; ``tracer``
    records wall-clock spans around each phase. The returned result
    carries a :class:`~repro.obs.manifest.RunManifest`.
    """
    probe_cfg = probe if probe is not None else ProbeConfig()
    marking_cfg = marking if marking is not None else default_marking_for(p, probe_cfg.slot)
    config = BadabingConfig(
        probe=probe_cfg, marking=marking_cfg, p=p, n_slots=n_slots, improved=improved
    )
    with trace_span(tracer, "testbed.build", seed=seed):
        sim, testbed = build_testbed(seed=seed, config=testbed_config, metrics=metrics)
    with trace_span(tracer, "traffic.start", scenario=scenario):
        traffic = apply_scenario(sim, testbed, scenario, **(scenario_kwargs or {}))
    tool = BadabingTool(
        sim,
        testbed.probe_sender,
        testbed.probe_receiver,
        config,
        start=warmup,
        jitter=jitter,
        sender_clock=sender_clock,
        receiver_clock=receiver_clock,
        tracer=tracer,
        vectorized=vectorized,
    )
    injector = install_faults(sim, testbed, faults, anchor=warmup)
    _start_heartbeat(sim, tracer, until=tool.end_time + DRAIN_TIME)
    with trace_span(tracer, "sim.run", until=tool.end_time + DRAIN_TIME):
        dispatched = sim.run(until=tool.end_time + DRAIN_TIME, max_events=max_events)
    _check_event_budget(sim, dispatched, max_events, tool.end_time + DRAIN_TIME)
    with trace_span(tracer, "truth.extract"):
        truth = compute_ground_truth(testbed, probe_cfg.slot, warmup, config.duration)
    # A real collector knows when it was down (its own restart log); feed
    # the known outage windows back so those slots degrade coverage instead
    # of masquerading as loss episodes.
    blackouts = (
        list(injector.profile.outage_windows)
        if injector is not None and injector.profile.outage_windows
        else None
    )
    with trace_span(tracer, "tool.result"):
        result = tool.result(blackout_windows=blackouts)
    if sim.metrics.enabled:
        with trace_span(tracer, "audit.build"):
            result.audit = audit_run(result, truth, tool.schedule, start=warmup)
            publish_audit(sim.metrics, result.audit, start=warmup)
    result.manifest = _build_manifest(
        "badabing", seed, sim, config, testbed.config
    )
    if keep is not None:
        keep.update(
            sim=sim,
            testbed=testbed,
            tool=tool,
            traffic=traffic,
            fault_injector=injector,
        )
    return result, truth


def run_badabing_multihop(
    n_hops: int,
    p: float,
    n_slots: int,
    seed: int = 1,
    mean_spacings: Optional[List[float]] = None,
    episode_durations: Tuple[float, ...] = (0.068,),
    testbed_config: Optional[TestbedConfig] = None,
    probe: Optional[ProbeConfig] = None,
    marking: Optional[MarkingConfig] = None,
    warmup: float = 10.0,
    max_events: Optional[int] = None,
    metrics: Optional[MetricsRegistry] = None,
    keep: Optional[Dict[str, Any]] = None,
) -> Tuple[BadabingResult, GroundTruth]:
    """BADABING across a chain of independently congested bottlenecks.

    Each hop carries its own engineered episodic CBR cross traffic
    (spacing given per hop via ``mean_spacings``, default 10 s each);
    truth is the *union* of per-hop loss episodes — the path-level
    congestion state the probes actually traverse. ``max_events`` caps
    the simulation's event budget exactly as in :func:`run_badabing`,
    raising :class:`~repro.errors.BudgetExhaustedError` on exhaustion.
    """
    from repro.net.multihop import MultiHopTestbed
    from repro.traffic.cbr import EpisodicCbrTraffic

    probe_cfg = probe if probe is not None else ProbeConfig()
    marking_cfg = marking if marking is not None else default_marking_for(p, probe_cfg.slot)
    config = BadabingConfig(
        probe=probe_cfg, marking=marking_cfg, p=p, n_slots=n_slots
    )
    sim = Simulator(seed=seed, metrics=metrics)
    testbed = MultiHopTestbed(sim, n_hops=n_hops, config=testbed_config)
    cfg = testbed.config
    if mean_spacings is None:
        mean_spacings = [10.0] * n_hops
    if len(mean_spacings) != n_hops:
        raise ConfigurationError(
            f"need one spacing per hop ({n_hops}), got {len(mean_spacings)}"
        )
    traffic = [
        EpisodicCbrTraffic(
            sim,
            testbed.cross_senders[hop],
            testbed.cross_receivers[hop],
            bottleneck_bps=cfg.bottleneck_bps,
            buffer_bytes=cfg.buffer_bytes,
            episode_durations=episode_durations,
            mean_spacing=mean_spacings[hop],
            packet_size=cfg.mtu,
            rng_label=f"episodic-cbr-hop{hop}",
        )
        for hop in range(n_hops)
    ]
    tool = BadabingTool(
        sim, testbed.probe_sender, testbed.probe_receiver, config, start=warmup
    )
    dispatched = sim.run(until=tool.end_time + DRAIN_TIME, max_events=max_events)
    _check_event_budget(sim, dispatched, max_events, tool.end_time + DRAIN_TIME)
    total_arrivals = sum(m.arrivals for m in testbed.hop_monitors)
    total_drops = testbed.total_drops
    loss_rate = (
        total_drops / (total_arrivals + total_drops)
        if total_arrivals + total_drops
        else 0.0
    )
    truth = ground_truth_from_episodes(
        testbed.path_episodes(), loss_rate, probe_cfg.slot, warmup, config.duration
    )
    result = tool.result()
    if sim.metrics.enabled:
        result.audit = audit_run(
            result, truth, tool.schedule, start=warmup, tool="badabing-multihop"
        )
        publish_audit(sim.metrics, result.audit, start=warmup)
    result.manifest = _build_manifest(
        "badabing-multihop", seed, sim, config, testbed.config
    )
    if keep is not None:
        keep.update(sim=sim, testbed=testbed, tool=tool, traffic=traffic)
    return result, truth


def run_zing(
    scenario: str,
    mean_interval: float,
    packet_size: int,
    duration: float,
    seed: int = 1,
    slot: float = 0.005,
    testbed_config: Optional[TestbedConfig] = None,
    scenario_kwargs: Optional[Dict[str, Any]] = None,
    warmup: float = 10.0,
    max_events: Optional[int] = None,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    keep: Optional[Dict[str, Any]] = None,
) -> Tuple[ZingResult, GroundTruth]:
    """Full ZING experiment: returns (tool result, ground truth).

    ``slot`` only affects how the *truth* frequency is discretized; ZING
    itself is slot-free. ``max_events`` caps the simulation's event
    budget exactly as in :func:`run_badabing`, raising
    :class:`~repro.errors.BudgetExhaustedError` on exhaustion — so the
    Poisson baseline can run under the same :class:`RunBudget` protection
    as the tool it is compared against.
    """
    with trace_span(tracer, "testbed.build", seed=seed):
        sim, testbed = build_testbed(seed=seed, config=testbed_config, metrics=metrics)
    with trace_span(tracer, "traffic.start", scenario=scenario):
        traffic = apply_scenario(sim, testbed, scenario, **(scenario_kwargs or {}))
    tool = ZingTool(
        sim,
        testbed.probe_sender,
        testbed.probe_receiver,
        mean_interval=mean_interval,
        packet_size=packet_size,
        duration=duration,
        start=warmup,
    )
    with trace_span(tracer, "sim.run", until=warmup + duration + DRAIN_TIME):
        dispatched = sim.run(
            until=warmup + duration + DRAIN_TIME, max_events=max_events
        )
    _check_event_budget(sim, dispatched, max_events, warmup + duration + DRAIN_TIME)
    with trace_span(tracer, "truth.extract"):
        truth = compute_ground_truth(testbed, slot, warmup, duration)
    with trace_span(tracer, "tool.result"):
        result = tool.result()
    result.manifest = _build_manifest("zing", seed, sim, testbed.config)
    if keep is not None:
        keep.update(sim=sim, testbed=testbed, tool=tool, traffic=traffic)
    return result, truth


# ---------------------------------------------------------------------------
# Protected runs: budgets, retries, and structured outcomes
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RunBudget:
    """Resource limits for one sweep cell.

    Attributes
    ----------
    max_events:
        Simulator event budget per attempt (None = unlimited). A run that
        exhausts it raises :class:`~repro.errors.BudgetExhaustedError`,
        which the protected runner turns into a structured failure.
    max_attempts:
        Total tries per cell. Attempts after the first rerun with a fresh
        seed derived deterministically from the original, so one unlucky
        draw (or a budget-busting schedule) gets a bounded second chance.
    max_wall_seconds:
        Soft wall-clock budget across attempts: once exceeded, no further
        retries are made (the in-flight attempt is never interrupted).
    retry_on:
        Exception types that trigger a retry; anything else derived from
        :class:`~repro.errors.ReproError` is captured without retrying.
    """

    max_events: Optional[int] = None
    max_attempts: int = 2
    max_wall_seconds: Optional[float] = None
    retry_on: Tuple[Type[BaseException], ...] = (SimulationError,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.max_events is not None and self.max_events < 1:
            raise ConfigurationError(
                f"max_events must be >= 1, got {self.max_events}"
            )


@dataclass
class RunOutcome:
    """What happened to one protected run: a result *or* a captured error.

    A sweep over many cells returns a list of these; failed cells carry
    the error class, message, and traceback instead of killing the sweep.
    """

    label: str
    ok: bool
    result: Optional[Any] = None
    truth: Optional[GroundTruth] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    error_traceback: Optional[str] = None
    attempts: int = 0
    seeds: Tuple[int, ...] = ()
    budget_exhausted: bool = False
    elapsed_seconds: float = 0.0

    @property
    def failed(self) -> bool:
        return not self.ok

    def describe(self) -> str:
        """One-line summary for sweep logs."""
        if self.ok:
            return f"{self.label}: ok ({self.attempts} attempt(s))"
        return (
            f"{self.label}: FAILED after {self.attempts} attempt(s) — "
            f"{self.error_type}: {self.error}"
        )

    def unwrap(self) -> Tuple[Any, Optional[GroundTruth]]:
        """Return (result, truth), re-raising the captured error if failed."""
        if not self.ok:
            raise ReproError(
                f"{self.label}: {self.error_type}: {self.error}"
            )
        return self.result, self.truth


def derive_retry_seed(seed: int, attempt: int) -> int:
    """Deterministic fresh seed for retry ``attempt`` (1-based) of ``seed``."""
    return _stable_seed(seed, f"retry-{attempt}") % (1 << 31)


def accepts_kwarg(fn: Callable[..., Any], name: str) -> bool:
    """Whether ``fn(name=...)`` is a valid call (directly or via ``**kwargs``).

    Used to forward optional budget/observability kwargs only to runners
    that can take them: ``run_protected(run_zing, budget=...)`` must not
    die with a ``TypeError`` because ZING predates some kwarg. Callables
    whose signature cannot be introspected are assumed to accept it.
    """
    try:
        parameters = inspect.signature(fn).parameters
    except (TypeError, ValueError):
        return True
    parameter = parameters.get(name)
    if parameter is not None:
        return parameter.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        )
    return any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )


def run_protected(
    fn: Callable[..., Tuple[Any, GroundTruth]],
    label: str = "run",
    seed: int = 1,
    budget: Optional[RunBudget] = None,
    **kwargs: Any,
) -> RunOutcome:
    """Run one experiment cell under a budget, capturing failure as data.

    ``fn`` is any runner entry point taking ``seed=`` and returning a
    ``(result, truth)`` pair — :func:`run_badabing`, :func:`run_zing`,
    :func:`run_badabing_multihop`, or user code with the same shape. The
    budget's ``max_events`` is forwarded automatically when ``fn`` accepts
    that kwarg (all built-in runners do); a runner without it simply runs
    unbudgeted rather than crashing the cell with a ``TypeError``.
    """
    budget = budget if budget is not None else RunBudget()
    if (
        budget.max_events is not None
        and "max_events" not in kwargs
        and accepts_kwarg(fn, "max_events")
    ):
        kwargs = dict(kwargs, max_events=budget.max_events)
    seeds: List[int] = []
    started = time.monotonic()
    last_error: Optional[BaseException] = None
    budget_exhausted = False
    for attempt in range(budget.max_attempts):
        attempt_seed = seed if attempt == 0 else derive_retry_seed(seed, attempt)
        seeds.append(attempt_seed)
        try:
            result, truth = fn(seed=attempt_seed, **kwargs)
            return RunOutcome(
                label=label,
                ok=True,
                result=result,
                truth=truth,
                attempts=attempt + 1,
                seeds=tuple(seeds),
                elapsed_seconds=time.monotonic() - started,
            )
        except ReproError as exc:
            last_error = exc
            if isinstance(exc, BudgetExhaustedError):
                budget_exhausted = True
            if not isinstance(exc, budget.retry_on):
                break
            if (
                budget.max_wall_seconds is not None
                and time.monotonic() - started >= budget.max_wall_seconds
            ):
                break
    return RunOutcome(
        label=label,
        ok=False,
        error=str(last_error),
        error_type=type(last_error).__name__,
        error_traceback="".join(
            traceback.format_exception(
                type(last_error), last_error, last_error.__traceback__
            )
        ),
        attempts=len(seeds),
        seeds=tuple(seeds),
        budget_exhausted=budget_exhausted,
        elapsed_seconds=time.monotonic() - started,
    )


def _prepare_cells(
    cells: Sequence[Dict[str, Any]], common: Dict[str, Any]
) -> List[Tuple[int, str, int, Dict[str, Any]]]:
    """Resolve every cell to ``(index, label, seed, kwargs)``.

    ``common`` supplies shared kwargs (cells win on conflict). A ``label``
    given per cell is used verbatim; a label inherited from ``common`` is
    suffixed with the cell index — otherwise every row of the sweep's
    outcome list and scorecard would collide on one name.
    """
    prepared: List[Tuple[int, str, int, Dict[str, Any]]] = []
    for index, cell in enumerate(cells):
        merged = dict(common, **cell)
        merged.pop("label", None)
        if cell.get("label"):
            label = cell["label"]
        elif common.get("label"):
            label = f"{common['label']}[{index}]"
        else:
            label = _cell_label(index, merged)
        seed = merged.pop("seed", 1)
        prepared.append((index, label, seed, merged))
    return prepared


def _outcome_status(outcome: RunOutcome) -> str:
    if outcome.ok:
        return "ok"
    return "budget_exhausted" if outcome.budget_exhausted else "failed"


def _record_sweep_metrics(
    metrics: Optional[MetricsRegistry], outcome: RunOutcome
) -> None:
    """Sweep-level per-cell telemetry, recorded registry-side in cell order."""
    if metrics is None or not metrics.enabled:
        return
    metrics.counter("sweep.cells", status=_outcome_status(outcome)).inc()
    metrics.counter("sweep.retries").inc(max(0, outcome.attempts - 1))
    if not outcome.ok:
        metrics.counter("sweep.degraded_cells").inc()


def sweep_badabing(
    cells: Sequence[Dict[str, Any]],
    budget: Optional[RunBudget] = None,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    workers: Optional[int] = None,
    max_wall_seconds: Optional[float] = None,
    exporter=None,
    profiled: bool = False,
    **common: Any,
) -> List[RunOutcome]:
    """Run a whole grid of BADABING cells, never dying on one of them.

    Each cell is a kwargs dict for :func:`run_badabing` (plus an optional
    ``"label"``); ``common`` supplies shared kwargs (cells win on
    conflict). Every cell yields a :class:`RunOutcome` — crashed or
    budget-exhausted cells come back as structured failures, so a table
    sweep always produces its full shape.

    ``workers`` > 1 dispatches cells to a spawn-based process pool (see
    :mod:`repro.experiments.parallel`). Each cell runs under its own
    registry and trace shard — in *both* modes — and the shards are merged
    into ``metrics``/``tracer`` strictly in cell order, so the parallel
    sweep's outcome list, merged metrics snapshot, and scorecard are
    byte-identical to the serial run on the same seeds. A worker that dies
    hard (segfault, OOM-kill, unpicklable result) becomes a structured
    failed outcome for its cell instead of killing the sweep.

    ``max_wall_seconds`` is a sweep-level deadline: cells that have not
    started when it expires are skipped and reported as budget-exhausted
    outcomes (in-flight cells always finish). It bounds the whole grid the
    way :attr:`RunBudget.max_wall_seconds` bounds one cell's retries.

    When ``metrics`` is given the sweep also records per-status cell
    counts and retry totals (``sweep.cells{status=...}``,
    ``sweep.retries``); ``tracer`` gains one ``sweep.cell`` span per cell.

    ``exporter`` (a :class:`~repro.obs.export.TelemetryExporter` over the
    same ``metrics`` registry) gets one ``kind="progress"`` snapshot per
    finalized cell — in both serial and parallel modes — so a long grid
    streams per-cell progress instead of going dark until it returns.
    Progress records live in the export envelope only; they never touch
    the registry, so serial-vs-parallel digest equivalence is unaffected.

    ``profiled`` runs every cell under its own
    :class:`~repro.obs.profile.StageProfiler` and publishes the stage
    stats as ``profile.*`` instruments on the cell registry before the
    ordered merge — identically in serial and parallel modes, so the
    aggregated stage *call counts* still match across modes (stage
    *seconds* are wall-clock and machine-dependent). Bench suites only:
    a profiled registry's snapshot digest is no longer seed-deterministic.
    """
    prepared = _prepare_cells(cells, common)
    if workers is not None and workers > 1:
        from repro.experiments.parallel import CellPayload, execute_parallel_sweep

        payloads = []
        for index, label, seed, merged in prepared:
            live = sorted(k for k in ("metrics", "tracer", "keep") if k in merged)
            if live:
                raise ConfigurationError(
                    f"cell {label!r}: per-cell {'/'.join(live)} objects cannot "
                    "cross a process boundary; drop them or run with workers=1"
                )
            if metrics is None:
                mode = "none"
            elif metrics.enabled:
                mode = "fresh"
            else:
                mode = "null"
            payloads.append(
                CellPayload(
                    index=index,
                    label=label,
                    seed=seed,
                    kwargs=merged,
                    budget=budget,
                    metrics_mode=mode,
                    with_tracer=tracer is not None,
                    with_profiler=profiled,
                )
            )
        outcomes = execute_parallel_sweep(
            payloads,
            workers=workers,
            metrics=metrics,
            tracer=tracer,
            max_wall_seconds=max_wall_seconds,
            exporter=exporter,
        )
        for outcome in outcomes:
            _record_sweep_metrics(metrics, outcome)
        return outcomes

    outcomes: List[RunOutcome] = []
    started = time.monotonic()
    for index, label, seed, merged in prepared:
        if (
            max_wall_seconds is not None
            and time.monotonic() - started >= max_wall_seconds
        ):
            from repro.experiments.parallel import deadline_outcome

            outcome = deadline_outcome(label, max_wall_seconds)
        else:
            cell_registry: Optional[MetricsRegistry] = None
            if metrics is not None and "metrics" not in merged:
                # Each cell gets a private registry merged back in cell
                # order — the same dance the parallel engine does — so
                # serial and parallel sweeps aggregate identically.
                from repro.obs.metrics import NullRegistry

                cell_registry = MetricsRegistry() if metrics.enabled else NullRegistry()
                merged = dict(merged, metrics=cell_registry)
            cell_profiler = None
            if profiled and cell_registry is not None and cell_registry.enabled:
                from repro.obs.profile import StageProfiler
                from repro.profiling import profiling as profiling_scope

                cell_profiler = StageProfiler()
            with trace_span(tracer, "sweep.cell", label=label, seed=seed):
                if cell_profiler is not None:
                    with profiling_scope(cell_profiler):
                        outcome = run_protected(
                            run_badabing,
                            label=label,
                            seed=seed,
                            budget=budget,
                            **merged,
                        )
                else:
                    outcome = run_protected(
                        run_badabing, label=label, seed=seed, budget=budget, **merged
                    )
            if cell_profiler is not None:
                cell_profiler.publish(cell_registry)
            if cell_registry is not None and metrics is not None:
                metrics.merge(cell_registry, series_labels={"cell": label})
        outcomes.append(outcome)
        _record_sweep_metrics(metrics, outcome)
        if exporter is not None:
            exporter.export_now(
                kind="progress", cell=label, status=_outcome_status(outcome)
            )
    return outcomes


def scorecard_from_outcomes(outcomes: Sequence[RunOutcome]) -> AccuracyScorecard:
    """Aggregate a sweep's :class:`RunOutcome` list into a scorecard.

    Cells audited during their run (registry enabled) contribute full
    accuracy rows; cells that failed — or ran unaudited under a
    :class:`~repro.obs.metrics.NullRegistry` — appear as not-ok rows so
    the scorecard's denominator always matches the sweep's shape.
    """
    entries = []
    for outcome in outcomes:
        seed = outcome.seeds[-1] if outcome.seeds else None
        audit = getattr(outcome.result, "audit", None) if outcome.ok else None
        error = outcome.error
        if outcome.ok and audit is None:
            error = "run was not audited (metrics registry disabled)"
        entries.append((outcome.label, audit, error, seed))
    return scorecard_from_runs(entries)


def _cell_label(index: int, kwargs: Dict[str, Any]) -> str:
    parts = [f"cell{index}"]
    for key in ("scenario", "p", "n_slots", "faults"):
        if key in kwargs and not isinstance(kwargs[key], FaultProfile):
            parts.append(f"{key}={kwargs[key]}")
    return " ".join(parts)
