"""Collate archived benchmark results into one reproduction report.

The benchmark suite archives every regenerated table, figure, and ablation
as plain text under ``benchmarks/results/<name>.<profile>.txt``. This
module stitches those files into a single markdown document — the
"everything the paper measured, as this repository measured it" artifact —
without re-running anything.

Exposed on the CLI as ``badabing-sim report [--profile fast]``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

#: Presentation order and section headers for known result names.
SECTIONS: List[Tuple[str, List[str]]] = [
    (
        "Tables (paper evaluation §4 and §6)",
        [f"table{i}" for i in range(1, 9)],
    ),
    (
        "Figures (paper evaluation §4 and §6)",
        ["fig4", "fig5", "fig6", "fig7", "fig8", "fig9a", "fig9b"],
    ),
    (
        "Observability & accuracy audit",
        ["audit_scorecard", "bench_obs_overhead"],
    ),
    (
        "Ablations (beyond the paper)",
        [
            "ablation_improved",
            "ablation_jitter",
            "ablation_clock_skew",
            "ablation_probe_size",
            "ablation_red",
            "ablation_modulation",
            "ablation_multihop",
            "ablation_uncorrelated_loss",
        ],
    ),
]


def discover_results(results_dir: Path, profile: str) -> Dict[str, str]:
    """Map result name -> archived text for one profile."""
    if not results_dir.is_dir():
        raise ConfigurationError(
            f"{results_dir} does not exist; run "
            f"`pytest benchmarks/ --benchmark-only` first"
        )
    found: Dict[str, str] = {}
    for path in sorted(results_dir.glob(f"*.{profile}.txt")):
        name = path.name[: -len(f".{profile}.txt")]
        found[name] = path.read_text(encoding="utf-8").rstrip()
    return found


def build_report(results_dir: Path, profile: str = "fast") -> str:
    """Render the collated markdown report for one profile."""
    results = discover_results(results_dir, profile)
    if not results:
        raise ConfigurationError(
            f"no archived results for profile {profile!r} under {results_dir}"
        )
    lines = [
        "# BADABING reproduction report",
        "",
        f"Profile: `{profile}`. Regenerate any entry with "
        "`pytest benchmarks/ --benchmark-only` "
        f"(REPRO_PROFILE={profile}); see EXPERIMENTS.md for the "
        "paper-vs-measured reading of each result.",
        "",
    ]
    covered = set()
    for header, names in SECTIONS:
        present = [name for name in names if name in results]
        if not present:
            continue
        lines.append(f"## {header}")
        lines.append("")
        for name in present:
            covered.add(name)
            lines.append(f"### {name}")
            lines.append("")
            lines.append("```")
            lines.append(results[name])
            lines.append("```")
            lines.append("")
    extras = sorted(set(results) - covered)
    if extras:
        lines.append("## Other archived results")
        lines.append("")
        for name in extras:
            lines.append(f"### {name}")
            lines.append("")
            lines.append("```")
            lines.append(results[name])
            lines.append("```")
            lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def write_report(
    results_dir: Path, profile: str = "fast", output: Optional[Path] = None
) -> Path:
    """Build the report and write it next to the results (or to ``output``)."""
    text = build_report(results_dir, profile)
    if output is None:
        output = results_dir / f"REPORT.{profile}.md"
    output.write_text(text, encoding="utf-8")
    return output
