"""Reproduction of every figure in the paper's evaluation (Figures 4-9).

Figures 1-3 are diagrams (system model, queue-evolution sketch, testbed
wiring) with no data series; everything data-bearing is here:

* Figures 4/5/6 — queue-length time series under the three traffic
  scenarios (:func:`figure_4`, :func:`figure_5`, :func:`figure_6`);
* Figure 7 — probability that an N-packet probe sees no loss while inside
  a loss episode (:func:`figure_7`);
* Figure 8 — queue dynamics during an episode with 0/3/10-packet probe
  trains, annotated with cross-traffic and probe drops (:func:`figure_8`);
* Figure 9 — sensitivity of estimated loss frequency to alpha (9a) and tau
  (9b) across probe rates (:func:`figure_9a`, :func:`figure_9b`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.episodes import episodes_from_monitor
from repro.analysis.slots import make_in_episode
from repro.config import MarkingConfig
from repro.core.pinglike import PingLikeTool
from repro.errors import ConfigurationError
from repro.experiments.profiles import Profile, active_profile
from repro.experiments.runner import (
    DRAIN_TIME,
    apply_scenario,
    build_testbed,
    run_badabing,
)

#: Probe-rate grid for the Figure 9 sensitivity sweeps.
FIG9_P_VALUES = (0.1, 0.3, 0.5, 0.7, 0.9)


@dataclass
class QueueSeries:
    """A queue-length time series plus the loss episodes inside it."""

    name: str
    times: List[float]
    delays: List[float]
    episodes: List[Tuple[float, float]]
    meta: Dict[str, Any] = field(default_factory=dict)


def _queue_series(
    name: str,
    scenario: str,
    scenario_kwargs: Optional[Dict[str, Any]],
    duration: float,
    seed: int,
    sample_interval: float = 0.005,
    warmup: float = 10.0,
) -> QueueSeries:
    sim, testbed = build_testbed(seed=seed, sample_interval=sample_interval)
    apply_scenario(sim, testbed, scenario, **(scenario_kwargs or {}))
    sim.run(until=warmup + duration)
    times, delays = testbed.sampler.series()
    episodes = [
        (episode.start, episode.end)
        for episode in episodes_from_monitor(testbed.monitor)
    ]
    return QueueSeries(name, times, delays, episodes, meta={"warmup": warmup})


def figure_4(profile: Optional[Profile] = None, seed: int = 104) -> QueueSeries:
    """Queue-length series with infinite TCP sources (synchronized sawtooth)."""
    profile = profile or active_profile()
    return _queue_series(
        "fig4-infinite-tcp", "infinite_tcp", None, profile.train_duration, seed
    )


def figure_5(profile: Optional[Profile] = None, seed: int = 105) -> QueueSeries:
    """Queue-length series with constant-duration CBR loss episodes."""
    profile = profile or active_profile()
    return _queue_series(
        "fig5-episodic-cbr",
        "episodic_cbr",
        {"episode_durations": (0.068,), "mean_spacing": 10.0},
        profile.train_duration,
        seed,
    )


def figure_6(profile: Optional[Profile] = None, seed: int = 106) -> QueueSeries:
    """Queue-length series with Harpoon web-like traffic."""
    profile = profile or active_profile()
    return _queue_series(
        "fig6-harpoon", "harpoon_web", None, profile.train_duration, seed
    )


# --------------------------------------------------------------------------
# Figure 7: probe-train length vs probability of missing a loss episode
# --------------------------------------------------------------------------

@dataclass
class TrainSensitivity:
    """P(probe sees no loss | probe inside a loss episode) per train length."""

    scenario: str
    train_lengths: List[int]
    miss_probabilities: List[float]
    probes_in_episodes: List[int]


def probe_train_miss_probability(
    scenario: str,
    train_length: int,
    duration: float,
    seed: int,
    scenario_kwargs: Optional[Dict[str, Any]] = None,
    interval: float = 0.010,
    probe_size: int = 600,
    warmup: float = 10.0,
) -> Tuple[float, int]:
    """One Figure 7 point: (miss probability, #probes that met an episode).

    Probes are sent every ``interval`` (the paper's modified tool used
    10 ms) so several probes land inside every episode; a probe "missed"
    if the episode ground truth says it was inside one but every packet of
    its train arrived.
    """
    if train_length < 1:
        raise ConfigurationError(f"train_length must be >= 1: {train_length}")
    sim, testbed = build_testbed(seed=seed)
    apply_scenario(sim, testbed, scenario, **(scenario_kwargs or {}))
    tool = PingLikeTool(
        sim,
        testbed.probe_sender,
        testbed.probe_receiver,
        interval=interval,
        packet_size=probe_size,
        duration=duration,
        start=warmup,
        flight=train_length,
    )
    sim.run(until=warmup + duration + DRAIN_TIME)
    episodes = episodes_from_monitor(testbed.monitor)
    if not episodes:
        return 0.0, 0
    in_episode = make_in_episode(episodes)
    received = tool.receiver.received
    sent = tool.sender.sent
    hits = 0
    misses = 0
    for flight in tool.sender.flights:
        if not flight:
            continue
        send_time = sent[flight[0]]
        if not in_episode(send_time):
            continue
        hits += 1
        if all(seq in received for seq in flight):
            misses += 1
    if hits == 0:
        return 0.0, 0
    return misses / hits, hits


def figure_7(
    profile: Optional[Profile] = None,
    seed: int = 107,
    train_lengths: Sequence[int] = tuple(range(1, 11)),
) -> List[TrainSensitivity]:
    """Both Figure 7 curves: infinite TCP and constant-bit-rate traffic."""
    profile = profile or active_profile()
    results: List[TrainSensitivity] = []
    for scenario, kwargs in (
        ("infinite_tcp", None),
        ("episodic_cbr", {"episode_durations": (0.068,), "mean_spacing": 3.0}),
    ):
        misses: List[float] = []
        counts: List[int] = []
        for offset, train in enumerate(train_lengths):
            probability, count = probe_train_miss_probability(
                scenario,
                train,
                duration=profile.train_duration,
                seed=seed + offset,
                scenario_kwargs=kwargs,
            )
            misses.append(probability)
            counts.append(count)
        results.append(
            TrainSensitivity(scenario, list(train_lengths), misses, counts)
        )
    return results


# --------------------------------------------------------------------------
# Figure 8: probe impact on queue dynamics during an episode
# --------------------------------------------------------------------------

@dataclass
class ProbeImpactSeries:
    """Fine-grained queue series with drop annotations for one train size."""

    train_length: int
    series: QueueSeries
    cross_drop_times: List[float]
    probe_drop_times: List[float]
    probe_load_fraction: float


def figure_8(
    profile: Optional[Profile] = None,
    seed: int = 108,
    train_lengths: Sequence[int] = (0, 3, 10),
    interval: float = 0.010,
) -> List[ProbeImpactSeries]:
    """Queue behaviour under no probes / 3-packet / 10-packet trains."""
    profile = profile or active_profile()
    duration = profile.train_duration
    results: List[ProbeImpactSeries] = []
    for train in train_lengths:
        sim, testbed = build_testbed(seed=seed, sample_interval=0.001)
        apply_scenario(sim, testbed, "infinite_tcp")
        tool: Optional[PingLikeTool] = None
        if train > 0:
            tool = PingLikeTool(
                sim,
                testbed.probe_sender,
                testbed.probe_receiver,
                interval=interval,
                packet_size=600,
                duration=duration,
                start=10.0,
                flight=train,
            )
        sim.run(until=10.0 + duration + DRAIN_TIME)
        times, delays = testbed.sampler.series()
        episodes = [
            (episode.start, episode.end)
            for episode in episodes_from_monitor(testbed.monitor)
        ]
        load = 0.0
        if train > 0:
            load = (600 * 8 * train / interval) / testbed.config.bottleneck_bps
        results.append(
            ProbeImpactSeries(
                train_length=train,
                series=QueueSeries(f"fig8-train-{train}", times, delays, episodes),
                cross_drop_times=testbed.monitor.drop_times("tcp"),
                probe_drop_times=testbed.monitor.drop_times("zing"),
                probe_load_fraction=load,
            )
        )
    return results


# --------------------------------------------------------------------------
# Figure 9: marking-parameter sensitivity
# --------------------------------------------------------------------------

@dataclass
class SensitivitySweep:
    """Estimated frequency as a function of p for each parameter value."""

    parameter: str
    #: parameter value -> [(p, estimated frequency)].
    curves: Dict[float, List[Tuple[float, float]]]
    true_frequency: float


def _figure_9(
    parameter: str,
    values: Sequence[float],
    fixed_alpha: float,
    fixed_tau: float,
    profile: Profile,
    seed: int,
) -> SensitivitySweep:
    curves: Dict[float, List[Tuple[float, float]]] = {value: [] for value in values}
    true_frequencies: List[float] = []
    for index, p in enumerate(FIG9_P_VALUES):
        keep: Dict[str, Any] = {}
        _result, truth = run_badabing(
            "episodic_cbr",
            p=p,
            n_slots=profile.n_slots,
            seed=seed + index,
            scenario_kwargs={"episode_durations": (0.068,)},
            warmup=profile.warmup,
            keep=keep,
        )
        true_frequencies.append(truth.frequency)
        tool = keep["tool"]
        for value in values:
            if parameter == "alpha":
                marking = MarkingConfig(alpha=value, tau=fixed_tau)
            else:
                marking = MarkingConfig(alpha=fixed_alpha, tau=value)
            remarked = tool.result(marking=marking)
            curves[value].append((p, remarked.frequency))
    true_frequency = sum(true_frequencies) / len(true_frequencies)
    return SensitivitySweep(parameter, curves, true_frequency)


def figure_9a(profile: Optional[Profile] = None, seed: int = 109) -> SensitivitySweep:
    """Frequency vs p for alpha in {0.05, 0.10, 0.20}, tau fixed at 80 ms."""
    profile = profile or active_profile()
    return _figure_9("alpha", (0.05, 0.10, 0.20), 0.10, 0.080, profile, seed)


def figure_9b(profile: Optional[Profile] = None, seed: int = 119) -> SensitivitySweep:
    """Frequency vs p for tau in {20, 40, 80} ms, alpha fixed at 0.10."""
    profile = profile or active_profile()
    return _figure_9("tau", (0.020, 0.040, 0.080), 0.10, 0.080, profile, seed)


ALL_FIGURES = {
    "fig4": figure_4,
    "fig5": figure_5,
    "fig6": figure_6,
    "fig7": figure_7,
    "fig8": figure_8,
    "fig9a": figure_9a,
    "fig9b": figure_9b,
}
