"""Reproduction of every table in the paper's evaluation (Tables 1-8).

Each ``table_N`` function runs the experiments behind that table and
returns a :class:`TableResult` whose rows mirror the paper's layout. Text
rendering lives in :mod:`repro.experiments.render`; the benchmark harness
in ``benchmarks/`` times and regenerates each table.

The paper's quantities:

* *loss frequency* — for ground truth and BADABING, the fraction of 5 ms
  slots congested; for ZING, the fraction of probes lost (what the tool
  reports);
* *loss duration* — mean (std) loss-episode duration in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.config import MarkingConfig, ProbeConfig
from repro.experiments.profiles import Profile, active_profile
from repro.experiments.runner import run_badabing, run_zing

#: ZING configurations used throughout §4 (rate, packet size).
ZING_10HZ = (0.100, 256)
ZING_20HZ = (0.050, 64)

#: Probe-rate sweep used in Tables 4-6.
P_SWEEP = (0.1, 0.3, 0.5, 0.7, 0.9)


@dataclass
class TableRow:
    """One line of a reproduced table."""

    label: str
    true_frequency: float
    measured_frequency: Optional[float]
    true_duration: float
    true_duration_std: float
    measured_duration: Optional[float]
    extra: Dict[str, Any] = field(default_factory=dict)


@dataclass
class TableResult:
    """A fully reproduced table."""

    table_id: str
    title: str
    rows: List[TableRow]
    profile: str
    notes: str = ""


# --------------------------------------------------------------------------
# Tables 1-3: ZING (Poisson probing) vs ground truth
# --------------------------------------------------------------------------

def _zing_table(
    table_id: str,
    title: str,
    scenario: str,
    scenario_kwargs: Optional[Dict[str, Any]],
    profile: Profile,
    seed: int,
) -> TableResult:
    rows: List[TableRow] = []
    for label, (interval, size) in (("ZING (10Hz)", ZING_10HZ), ("ZING (20Hz)", ZING_20HZ)):
        result, truth = run_zing(
            scenario,
            mean_interval=interval,
            packet_size=size,
            duration=profile.tool_duration,
            seed=seed,
            scenario_kwargs=scenario_kwargs,
            warmup=profile.warmup,
        )
        if not rows:
            rows.append(
                TableRow(
                    label="true values",
                    true_frequency=truth.frequency,
                    measured_frequency=None,
                    true_duration=truth.duration_mean,
                    true_duration_std=truth.duration_std,
                    measured_duration=None,
                    extra={"episodes": truth.n_episodes},
                )
            )
        rows.append(
            TableRow(
                label=label,
                true_frequency=truth.frequency,
                measured_frequency=result.frequency,
                true_duration=truth.duration_mean,
                true_duration_std=truth.duration_std,
                measured_duration=result.duration_mean,
                extra={
                    "duration_std": result.duration_std,
                    "probes_sent": result.n_sent,
                    "probes_lost": result.n_lost,
                    "loss_runs": result.n_episodes,
                },
            )
        )
    return TableResult(table_id, title, rows, profile.name)


def table_1(profile: Optional[Profile] = None, seed: int = 11) -> TableResult:
    """ZING with infinite TCP sources."""
    profile = profile or active_profile()
    return _zing_table(
        "table1",
        "ZING experiments with infinite TCP sources",
        "infinite_tcp",
        None,
        profile,
        seed,
    )


def table_2(profile: Optional[Profile] = None, seed: int = 12) -> TableResult:
    """ZING with randomly spaced, constant-duration loss episodes."""
    profile = profile or active_profile()
    return _zing_table(
        "table2",
        "ZING experiments with randomly spaced, constant duration loss episodes",
        "episodic_cbr",
        {"episode_durations": (0.068,)},
        profile,
        seed,
    )


def table_3(profile: Optional[Profile] = None, seed: int = 13) -> TableResult:
    """ZING with Harpoon web-like traffic."""
    profile = profile or active_profile()
    return _zing_table(
        "table3",
        "ZING experiments with Harpoon web-like traffic",
        "harpoon_web",
        None,
        profile,
        seed,
    )


# --------------------------------------------------------------------------
# Tables 4-6: BADABING probe-rate sweeps
# --------------------------------------------------------------------------

def _badabing_sweep(
    table_id: str,
    title: str,
    scenario: str,
    scenario_kwargs: Optional[Dict[str, Any]],
    profile: Profile,
    seed: int,
    p_values: Sequence[float] = P_SWEEP,
) -> TableResult:
    rows: List[TableRow] = []
    for index, p in enumerate(p_values):
        result, truth = run_badabing(
            scenario,
            p=p,
            n_slots=profile.n_slots,
            seed=seed + index,
            scenario_kwargs=scenario_kwargs,
            warmup=profile.warmup,
        )
        rows.append(
            TableRow(
                label=f"p={p}",
                true_frequency=truth.frequency,
                measured_frequency=result.frequency,
                true_duration=truth.duration_mean,
                true_duration_std=truth.duration_std,
                measured_duration=result.duration_seconds,
                extra={
                    "p": p,
                    "probes_sent": result.n_probes_sent,
                    "probe_load_bps": result.probe_load_bps,
                    "transitions": result.validation.transition_count,
                    "transition_asymmetry": result.validation.transition_asymmetry,
                },
            )
        )
    return TableResult(table_id, title, rows, profile.name)


def table_4(profile: Optional[Profile] = None, seed: int = 40) -> TableResult:
    """BADABING, CBR traffic with uniform-duration loss episodes."""
    profile = profile or active_profile()
    return _badabing_sweep(
        "table4",
        "BADABING loss estimates, CBR traffic with uniform loss episode durations",
        "episodic_cbr",
        {"episode_durations": (0.068,)},
        profile,
        seed,
    )


def table_5(profile: Optional[Profile] = None, seed: int = 50) -> TableResult:
    """BADABING, CBR traffic with 50/100/150 ms loss episodes."""
    profile = profile or active_profile()
    return _badabing_sweep(
        "table5",
        "BADABING loss estimates, CBR traffic with loss episodes of 50, 100 or 150 ms",
        "episodic_cbr",
        {"episode_durations": (0.050, 0.100, 0.150)},
        profile,
        seed,
    )


def table_6(profile: Optional[Profile] = None, seed: int = 60) -> TableResult:
    """BADABING, Harpoon web-like traffic."""
    profile = profile or active_profile()
    return _badabing_sweep(
        "table6",
        "BADABING loss estimates, Harpoon web-like traffic",
        "harpoon_web",
        None,
        profile,
        seed,
    )


# --------------------------------------------------------------------------
# Table 7: p = 0.1 — trading N against tau
# --------------------------------------------------------------------------

def table_7(profile: Optional[Profile] = None, seed: int = 70) -> TableResult:
    """p=0.1 with two values of N and two values of tau (CBR traffic).

    As in the paper, the two tau settings are evaluated on the *same*
    measurement (tau is an offline marking parameter), so the comparison
    is not confounded by run-to-run episode variation; the two N settings
    are separate runs.
    """
    profile = profile or active_profile()
    rows: List[TableRow] = []
    for index, n_slots in enumerate([profile.n_slots, profile.n_slots_large]):
        keep: Dict[str, Any] = {}
        _result, truth = run_badabing(
            "episodic_cbr",
            p=0.1,
            n_slots=n_slots,
            seed=seed + index,
            scenario_kwargs={"episode_durations": (0.068,)},
            marking=MarkingConfig(alpha=0.2, tau=0.040),
            warmup=profile.warmup,
            keep=keep,
        )
        tool = keep["tool"]
        for tau in (0.040, 0.080):
            result = tool.result(marking=MarkingConfig(alpha=0.2, tau=tau))
            rows.append(
                TableRow(
                    label=f"N={n_slots}, tau={int(tau * 1000)}ms",
                    true_frequency=truth.frequency,
                    measured_frequency=result.frequency,
                    true_duration=truth.duration_mean,
                    true_duration_std=truth.duration_std,
                    measured_duration=result.duration_seconds,
                    extra={
                        "n_slots": n_slots,
                        "tau": tau,
                        "transitions": result.validation.transition_count,
                    },
                )
            )
    return TableResult(
        "table7",
        "Loss estimates for p=0.1, two values of N and two values of tau",
        rows,
        profile.name,
    )


# --------------------------------------------------------------------------
# Table 8: BADABING vs ZING at matched probe rate
# --------------------------------------------------------------------------

def table_8(profile: Optional[Profile] = None, seed: int = 80) -> TableResult:
    """Head-to-head comparison at the p=0.3 equivalent probe rate.

    ZING's mean interval is chosen so its bit rate matches BADABING's
    average probe load at p=0.3 with 600-byte packets, mirroring the
    paper's 876 kb/s matching.
    """
    profile = profile or active_profile()
    probe = ProbeConfig()
    coverage = 1.0 - (1.0 - 0.3) ** 2
    badabing_load = coverage * probe.packets_per_probe * probe.probe_size * 8 / probe.slot
    zing_interval = probe.probe_size * 8 / badabing_load
    rows: List[TableRow] = []
    for scenario, scenario_kwargs, name in (
        ("episodic_cbr", {"episode_durations": (0.068,)}, "CBR"),
        ("harpoon_web", None, "Harpoon web-like"),
    ):
        bb_result, bb_truth = run_badabing(
            scenario,
            p=0.3,
            n_slots=profile.n_slots,
            seed=seed,
            scenario_kwargs=scenario_kwargs,
            warmup=profile.warmup,
        )
        rows.append(
            TableRow(
                label=f"{name} / BADABING",
                true_frequency=bb_truth.frequency,
                measured_frequency=bb_result.frequency,
                true_duration=bb_truth.duration_mean,
                true_duration_std=bb_truth.duration_std,
                measured_duration=bb_result.duration_seconds,
                extra={
                    "probe_load_bps": bb_result.probe_load_bps,
                    "transitions": bb_result.validation.transition_count,
                    "asymmetry": bb_result.validation.transition_asymmetry,
                },
            )
        )
        zing_result, zing_truth = run_zing(
            scenario,
            mean_interval=zing_interval,
            packet_size=probe.probe_size,
            duration=profile.badabing_duration,
            seed=seed,
            scenario_kwargs=scenario_kwargs,
            warmup=profile.warmup,
        )
        rows.append(
            TableRow(
                label=f"{name} / ZING",
                true_frequency=zing_truth.frequency,
                measured_frequency=zing_result.frequency,
                true_duration=zing_truth.duration_mean,
                true_duration_std=zing_truth.duration_std,
                measured_duration=zing_result.duration_mean,
                extra={"interval": zing_interval, "probes_sent": zing_result.n_sent},
            )
        )
    return TableResult(
        "table8",
        "BADABING vs ZING at matched probe rates (p=0.3 equivalent)",
        rows,
        profile.name,
    )


ALL_TABLES = {
    "table1": table_1,
    "table2": table_2,
    "table3": table_3,
    "table4": table_4,
    "table5": table_5,
    "table6": table_6,
    "table7": table_7,
    "table8": table_8,
}
