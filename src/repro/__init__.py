"""repro — reproduction of "Improving Accuracy in End-to-end Packet Loss
Measurement" (Sommers, Barford, Duffield, Ron — SIGCOMM 2005).

The package provides:

* :mod:`repro.core` — the BADABING probe process, estimators, validation,
  and the ZING / PING-like baselines;
* :mod:`repro.net` — the packet-level network simulator substrate
  (testbed replica, drop-tail bottleneck, ground-truth monitors);
* :mod:`repro.traffic` — TCP Reno, CBR/Iperf-like, and Harpoon-like
  traffic generators;
* :mod:`repro.analysis` — router-centric loss-episode extraction and
  statistics;
* :mod:`repro.synthetic` — alternating-renewal congestion processes for
  exact estimator validation;
* :mod:`repro.experiments` — the harness that regenerates every table and
  figure of the paper's evaluation.

Quickstart::

    from repro.experiments import run_badabing

    result, truth = run_badabing("episodic_cbr", p=0.3, n_slots=60_000)
    print(f"true F={truth.frequency:.4f}  estimated F={result.frequency:.4f}")
    print(f"true D={truth.duration_mean:.3f}s  "
          f"estimated D={result.duration_seconds:.3f}s")
"""

from repro.config import (
    BadabingConfig,
    MarkingConfig,
    ProbeConfig,
    TestbedConfig,
)
from repro.errors import (
    ConfigurationError,
    EstimationError,
    ReproError,
    RoutingError,
    SimulationError,
    ValidationError,
)

__version__ = "1.0.0"

__all__ = [
    "BadabingConfig",
    "MarkingConfig",
    "ProbeConfig",
    "TestbedConfig",
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "RoutingError",
    "EstimationError",
    "ValidationError",
    "__version__",
]
