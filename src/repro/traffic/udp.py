"""UDP-like datagram applications: a counting sink and a paced source."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.net.node import Host
from repro.net.packet import Packet
from repro.net.simulator import Simulator
from repro.traffic.base import Application
from repro.units import BITS_PER_BYTE


class UdpSink(Application):
    """Receives datagrams and keeps arrival statistics.

    Optionally records per-packet ``(seq, send_time, recv_time)`` tuples when
    the payload follows the ``(seq, timestamp)`` convention used by the
    sources and probe tools in this library.
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        port: Optional[int] = None,
        record: bool = False,
    ):
        super().__init__(sim, host, "udp", port)
        self.received_packets = 0
        self.received_bytes = 0
        self.record = record
        self.records: List[Tuple[int, float, float]] = []

    def on_packet(self, packet: Packet) -> None:
        self.received_packets += 1
        self.received_bytes += packet.size
        if self.record and isinstance(packet.payload, tuple) and len(packet.payload) == 2:
            seq, send_time = packet.payload
            self.records.append((seq, send_time, self.sim.now))


class UdpSource(Application):
    """Sends fixed-size datagrams at a constant rate with sequence numbers.

    The rate can be changed on the fly with :meth:`set_rate`; a rate of zero
    pauses the source. This is the building block the episodic (Iperf-like)
    scenario drives to engineer loss episodes.
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        dst: str,
        rate_bps: float,
        packet_size: int,
        dst_port: int,
        start: float = 0.0,
        flow: Optional[str] = None,
    ):
        if packet_size <= 0:
            raise ConfigurationError(f"packet_size must be positive: {packet_size}")
        if rate_bps < 0:
            raise ConfigurationError(f"rate must be non-negative: {rate_bps}")
        super().__init__(sim, host, "udp")
        self.dst = dst
        self.dst_port = dst_port
        self.packet_size = packet_size
        self.rate_bps = rate_bps
        self.flow = flow if flow is not None else f"udp:{host.name}->{dst}"
        self.sent_packets = 0
        self._seq = 0
        self._tick_event = None
        if rate_bps > 0:
            self._tick_event = sim.schedule_at(max(start, sim.now), self._tick)

    @property
    def gap(self) -> float:
        """Inter-packet interval at the current rate."""
        return self.packet_size * BITS_PER_BYTE / self.rate_bps

    def set_rate(self, rate_bps: float) -> None:
        """Change the sending rate; takes effect immediately."""
        if rate_bps < 0:
            raise ConfigurationError(f"rate must be non-negative: {rate_bps}")
        was_paused = self.rate_bps == 0
        self.rate_bps = rate_bps
        if rate_bps == 0:
            if self._tick_event is not None:
                self._tick_event.cancel()
                self._tick_event = None
        elif was_paused:
            self._tick_event = self.sim.schedule(0.0, self._tick)

    def stop(self) -> None:
        """Pause the source permanently (alias for ``set_rate(0)``)."""
        self.set_rate(0.0)

    def _tick(self) -> None:
        if self.rate_bps <= 0:
            self._tick_event = None
            return
        self._seq += 1
        self.sent_packets += 1
        self.send_packet(
            self.dst,
            self.packet_size,
            payload=(self._seq, self.sim.now),
            port=self.dst_port,
            flow=self.flow,
        )
        self._tick_event = self.sim.schedule(self.gap, self._tick)
