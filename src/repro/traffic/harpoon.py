"""Harpoon-like web traffic.

The paper's third traffic scenario used the Harpoon traffic generator [31]
configured so that self-similar, web-like workload bursts pushed the
bottleneck into loss roughly every 20 seconds. The essential properties the
loss-measurement experiments depend on are: heavy-tailed transfer sizes,
ON/OFF session structure, fluctuating flow counts, and occasional load
surges that produce *variable-duration* loss episodes — exactly what makes
episode delineation hard (§4, Fig. 6, Tables 3 and 6).

:class:`HarpoonWebTraffic` reproduces that with three ingredients on top of
the TCP model:

* Poisson session arrivals; each session performs a geometric number of
  file transfers with exponential think times between them,
* Pareto-distributed file sizes (shape ~1.2, the classic web heavy tail),
* a surge process: at exponentially spaced epochs (paper: mean ~20 s) a
  batch of simultaneous large transfers starts, briefly exceeding the
  bottleneck capacity.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError
from repro.net.node import Host
from repro.net.simulator import Simulator
from repro.traffic.tcp import TcpSender, start_tcp_flow


class HarpoonWebTraffic:
    """Self-configuring web-like background traffic with load surges.

    Parameters
    ----------
    sim:
        The simulator.
    senders, receivers:
        Pools of hosts; each transfer picks a random sender/receiver pair.
    session_rate:
        Poisson arrival rate of browsing sessions (sessions/second). This
        sets the *base* load; keep it below the bottleneck's capacity.
    mean_files_per_session:
        Geometric mean of transfers per session.
    mean_think_time:
        Mean exponential gap between a session's transfers.
    pareto_shape, min_file_bytes:
        Heavy-tailed file size distribution parameters.
    surge_interval_mean:
        Mean gap between load surges (paper: loss roughly every 20 s).
        Set to 0 to disable surges.
    surge_flows, surge_file_bytes:
        Number and size of the simultaneous transfers in each surge.
    mss, rwnd:
        TCP parameters for the generated flows.
    """

    def __init__(
        self,
        sim: Simulator,
        senders: Sequence[Host],
        receivers: Sequence[Host],
        session_rate: float = 2.0,
        mean_files_per_session: float = 5.0,
        mean_think_time: float = 0.5,
        pareto_shape: float = 1.2,
        min_file_bytes: int = 12_000,
        max_file_bytes: int = 3_000_000,
        surge_interval_mean: float = 20.0,
        surge_flows: int = 6,
        surge_file_bytes: int = 400_000,
        mss: int = 1500,
        rwnd: int = 64,
        start: float = 0.0,
        rng_label: str = "harpoon",
    ):
        if not senders or not receivers:
            raise ConfigurationError("need at least one sender and one receiver")
        if session_rate <= 0:
            raise ConfigurationError("session_rate must be positive")
        if pareto_shape <= 1.0:
            raise ConfigurationError(
                "pareto_shape must exceed 1 so mean file size is finite"
            )
        self.sim = sim
        self.senders = list(senders)
        self.receivers = list(receivers)
        self.session_rate = session_rate
        self.mean_files_per_session = mean_files_per_session
        self.mean_think_time = mean_think_time
        self.pareto_shape = pareto_shape
        self.min_file_bytes = min_file_bytes
        self.max_file_bytes = max_file_bytes
        self.surge_interval_mean = surge_interval_mean
        self.surge_flows = surge_flows
        self.surge_file_bytes = surge_file_bytes
        self.mss = mss
        self.rwnd = rwnd
        self.rng = sim.rng(rng_label)

        self.sessions_started = 0
        self.transfers_started = 0
        self.transfers_completed = 0
        self.bytes_offered = 0
        self.surges = 0
        self.active_flows = 0
        self._stopped = False

        sim.schedule_at(max(start, sim.now), self._next_session)
        if surge_interval_mean > 0:
            sim.schedule_at(
                max(start, sim.now) + self.rng.expovariate(1.0 / surge_interval_mean),
                self._surge,
            )

    # ------------------------------------------------------------- generation
    def stop(self) -> None:
        """Stop launching new sessions/surges (running flows drain)."""
        self._stopped = True

    def _next_session(self) -> None:
        if self._stopped:
            return
        self.sim.schedule(self.rng.expovariate(self.session_rate), self._next_session)
        self.sessions_started += 1
        n_files = max(1, int(self.rng.expovariate(1.0 / self.mean_files_per_session)) + 1)
        self._session_transfer(n_files)

    def _session_transfer(self, remaining: int) -> None:
        if self._stopped or remaining <= 0:
            return
        size = self._draw_file_size()
        self._start_transfer(size)
        think = self.rng.expovariate(1.0 / self.mean_think_time)
        self.sim.schedule(think, self._session_transfer, remaining - 1)

    def _surge(self) -> None:
        if self._stopped:
            return
        self.surges += 1
        for _ in range(self.surge_flows):
            self._start_transfer(self.surge_file_bytes)
        self.sim.schedule(
            self.rng.expovariate(1.0 / self.surge_interval_mean), self._surge
        )

    def _draw_file_size(self) -> int:
        # Pareto via inverse CDF, truncated to keep single transfers from
        # dominating an entire (scaled) experiment.
        u = self.rng.random()
        size = int(self.min_file_bytes / (u ** (1.0 / self.pareto_shape)))
        return min(size, self.max_file_bytes)

    def _start_transfer(self, size_bytes: int) -> None:
        sender = self.rng.choice(self.senders)
        receiver = self.rng.choice(self.receivers)
        segments = max(1, (size_bytes + self.mss - 1) // self.mss)
        self.transfers_started += 1
        self.bytes_offered += size_bytes
        self.active_flows += 1
        start_tcp_flow(
            self.sim,
            sender,
            receiver,
            total_segments=segments,
            mss=self.mss,
            rwnd=self.rwnd,
            on_complete=self._on_flow_done,
        )

    def _on_flow_done(self, sender: TcpSender) -> None:
        self.transfers_completed += 1
        self.active_flows -= 1

    # -------------------------------------------------------------- reporting
    @property
    def mean_offered_load_bps(self) -> float:
        """Rough offered load so far (bytes offered / elapsed time)."""
        if self.sim.now <= 0:
            return 0.0
        return self.bytes_offered * 8 / self.sim.now
