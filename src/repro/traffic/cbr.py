"""Constant-bit-rate traffic and engineered loss episodes.

The paper's §4/§6 CBR scenarios used (modified) Iperf to create loss episodes
of *known, constant* duration spaced at exponential intervals — the cleanest
possible ground truth. :class:`EpisodicCbrTraffic` reproduces that: between
episodes the bottleneck idles; at each exponentially spaced epoch the source
bursts above the bottleneck rate for exactly long enough to (a) fill the
buffer and then (b) keep it overflowing for the requested episode duration.

The burst arithmetic: with burst rate ``r`` and bottleneck rate ``B``, the
queue fills ``Q`` bytes in ``t_fill = 8 Q / (r - B)`` seconds; drops then
continue while the burst lasts, so a burst of ``t_fill + L`` produces a loss
episode of duration ``L``.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ConfigurationError
from repro.net.node import Host
from repro.net.simulator import Simulator
from repro.traffic.base import ephemeral_port
from repro.traffic.udp import UdpSink, UdpSource
from repro.units import BITS_PER_BYTE


class CbrSource(UdpSource):
    """Alias of :class:`UdpSource` under its traffic-scenario name."""


class EpisodicCbrTraffic:
    """Engineered constant-duration loss episodes (modified-Iperf analogue).

    Parameters
    ----------
    sim, sender, receiver:
        Simulator and the end hosts to run between.
    bottleneck_bps:
        The bottleneck rate the bursts must exceed.
    buffer_bytes:
        Bottleneck queue capacity (used to compute the fill time).
    episode_durations:
        Loss-episode durations to draw from, uniformly at random (a single
        value reproduces Table 2/4; ``[0.05, 0.10, 0.15]`` reproduces
        Table 5).
    mean_spacing:
        Mean of the exponential gap between episode *starts* (paper: 10 s).
    overload_factor:
        Burst rate as a multiple of the bottleneck rate (paper-like default
        2.0, giving a ~50% drop probability during episodes — the behaviour
        behind Figure 7's CBR curve).
    packet_size:
        Burst packet size in bytes.
    rng_label:
        Simulator RNG stream label (determinism).
    """

    def __init__(
        self,
        sim: Simulator,
        sender: Host,
        receiver: Host,
        bottleneck_bps: float,
        buffer_bytes: int,
        episode_durations: Sequence[float] = (0.068,),
        mean_spacing: float = 10.0,
        overload_factor: float = 2.0,
        packet_size: int = 1500,
        start: float = 0.5,
        rng_label: str = "episodic-cbr",
    ):
        if overload_factor <= 1.0:
            raise ConfigurationError(
                f"overload_factor must exceed 1.0 to cause loss: {overload_factor}"
            )
        if not episode_durations or any(d <= 0 for d in episode_durations):
            raise ConfigurationError("episode durations must be positive")
        if mean_spacing <= 0:
            raise ConfigurationError("mean_spacing must be positive")
        self.sim = sim
        self.bottleneck_bps = bottleneck_bps
        self.buffer_bytes = buffer_bytes
        self.episode_durations = list(episode_durations)
        self.mean_spacing = mean_spacing
        self.burst_rate = overload_factor * bottleneck_bps
        self.rng = sim.rng(rng_label)
        port = ephemeral_port()
        self.sink = UdpSink(sim, receiver, port=port)
        self.source = CbrSource(
            sim,
            sender,
            receiver.name,
            rate_bps=0.0,
            packet_size=packet_size,
            dst_port=port,
            flow=f"cbr:{sender.name}->{receiver.name}",
        )
        #: (start_time, requested_loss_duration) of every burst scheduled.
        self.scheduled_episodes: List[tuple] = []
        sim.schedule_at(max(start, sim.now), self._schedule_next)

    @property
    def fill_time(self) -> float:
        """Time for the burst to fill the bottleneck buffer from empty."""
        return self.buffer_bytes * BITS_PER_BYTE / (self.burst_rate - self.bottleneck_bps)

    def _schedule_next(self) -> None:
        gap = self.rng.expovariate(1.0 / self.mean_spacing)
        self.sim.schedule(gap, self._begin_burst)

    def _begin_burst(self) -> None:
        loss_duration = self.rng.choice(self.episode_durations)
        burst_duration = self.fill_time + loss_duration
        self.scheduled_episodes.append((self.sim.now, loss_duration))
        self.source.set_rate(self.burst_rate)
        self.sim.schedule(burst_duration, self._end_burst)

    def _end_burst(self) -> None:
        self.source.set_rate(0.0)
        self._schedule_next()
