"""A from-scratch TCP congestion-control model (Reno with NewReno recovery).

The paper's hardest traffic scenario is "40 infinite TCP sources", whose
synchronized congestion-avoidance sawtooth produces the bursty, short loss
episodes that defeat Poisson probing (Fig. 4, Table 1). This module models
the parts of TCP that matter for that queue/loss process:

* slow start and congestion avoidance (additive increase),
* fast retransmit on three duplicate ACKs, fast recovery with NewReno
  partial-ACK retransmission (the paper cites NewReno [15] as the fix born
  from understanding loss),
* retransmission timeouts with an RFC 6298-style RTT estimator and
  exponential backoff (Karn's problem is avoided via timestamp echoing),
* a receive-window cap (the paper used 256 full-size segments).

Sequence numbers count MSS-sized segments rather than bytes; ACKs are
cumulative. This keeps bookkeeping cheap without changing window dynamics.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.net.node import Host
from repro.net.packet import Packet
from repro.net.simulator import Simulator
from repro.traffic.base import Application, ephemeral_port

#: Pure-ACK packet size in bytes (IP + TCP headers).
ACK_SIZE = 40

#: Lower bound on the retransmission timer, seconds.
MIN_RTO = 0.2
#: Upper bound on the retransmission timer, seconds.
MAX_RTO = 60.0
#: Initial RTO before any RTT sample (RFC 6298 says 1 s).
INITIAL_RTO = 1.0


class TcpReceiver(Application):
    """Cumulative-ACK receiver with an out-of-order reassembly buffer."""

    def __init__(self, sim: Simulator, host: Host, port: int):
        super().__init__(sim, host, "tcp", port)
        self.rcv_next = 0
        self._out_of_order: set = set()
        self.received_segments = 0
        self.duplicate_segments = 0

    def on_packet(self, packet: Packet) -> None:
        kind, seq, timestamp = packet.payload
        if kind != "data":
            return
        self.received_segments += 1
        if seq == self.rcv_next:
            self.rcv_next += 1
            while self.rcv_next in self._out_of_order:
                self._out_of_order.remove(self.rcv_next)
                self.rcv_next += 1
        elif seq > self.rcv_next:
            self._out_of_order.add(seq)
        else:
            self.duplicate_segments += 1
        # Immediate ACK; echo the arriving segment's timestamp so the sender
        # gets clean RTT samples even across retransmissions (Karn).
        self.send_packet(
            packet.src,
            ACK_SIZE,
            payload=("ack", self.rcv_next, timestamp),
            port=packet.port,
            flow=packet.flow,
        )


class TcpSender(Application):
    """Reno/NewReno sender.

    Parameters
    ----------
    sim, host:
        Simulator and the host this sender runs on.
    dst:
        Destination host name (a :class:`TcpReceiver` must be bound there
        on ``port``).
    port:
        Shared flow port (both endpoints bind the same number).
    mss:
        Segment size in bytes (on-the-wire size of each data packet).
    rwnd:
        Receive-window cap in segments (paper: 256).
    total_segments:
        If given, the flow finishes after this many segments are acked and
        ``on_complete`` fires; if None the source is infinite.
    start:
        Absolute start time.
    on_complete:
        Callback ``f(sender)`` invoked once when a finite flow completes.
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        dst: str,
        port: int,
        mss: int = 1500,
        rwnd: int = 256,
        total_segments: Optional[int] = None,
        start: float = 0.0,
        on_complete: Optional[Callable[["TcpSender"], None]] = None,
        initial_cwnd: float = 2.0,
    ):
        if mss <= ACK_SIZE:
            raise ConfigurationError(f"mss too small: {mss}")
        if rwnd < 2:
            raise ConfigurationError(f"rwnd must be >= 2 segments: {rwnd}")
        if total_segments is not None and total_segments < 1:
            raise ConfigurationError("total_segments must be >= 1")
        super().__init__(sim, host, "tcp", port)
        self.dst = dst
        self.mss = mss
        self.rwnd = rwnd
        self.total_segments = total_segments
        self.on_complete = on_complete
        self.flow = f"tcp:{host.name}->{dst}:{port}"

        # --- congestion state -------------------------------------------------
        self.snd_una = 0
        self.snd_nxt = 0
        self.cwnd = float(initial_cwnd)
        self.ssthresh = float(rwnd)
        self.dupacks = 0
        self.in_recovery = False
        self.recover = 0

        # --- RTT estimation ---------------------------------------------------
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = INITIAL_RTO
        self._rto_event = None
        self._backoff = 1

        # --- statistics -------------------------------------------------------
        self.segments_sent = 0
        self.retransmits = 0
        self.timeouts = 0
        self.fast_retransmits = 0
        self.completed = False

        sim.schedule_at(max(start, sim.now), self._try_send)

    # ----------------------------------------------------------------- window
    @property
    def flight_size(self) -> int:
        """Outstanding segments (pipe model)."""
        return self.snd_nxt - self.snd_una

    @property
    def effective_window(self) -> int:
        return int(min(self.cwnd, float(self.rwnd)))

    def _has_data(self) -> bool:
        if self.total_segments is None:
            return True
        return self.snd_nxt < self.total_segments

    # ------------------------------------------------------------------- send
    def _try_send(self) -> None:
        if self.completed:
            return
        sent_any = False
        while self.flight_size < self.effective_window and self._has_data():
            self._emit(self.snd_nxt)
            self.snd_nxt += 1
            sent_any = True
        if sent_any:
            self._ensure_timer()

    def _emit(self, seq: int) -> None:
        self.segments_sent += 1
        self.send_packet(
            self.dst,
            self.mss,
            payload=("data", seq, self.sim.now),
            flow=self.flow,
        )

    # ------------------------------------------------------------------- ACKs
    def on_packet(self, packet: Packet) -> None:
        if self.completed:
            return
        kind, ack, ts_echo = packet.payload
        if kind != "ack":
            return
        if ack > self.snd_una:
            self._handle_new_ack(ack, ts_echo)
        elif ack == self.snd_una and self.flight_size > 0:
            self._handle_dupack()

    def _handle_new_ack(self, ack: int, ts_echo: float) -> None:
        self._sample_rtt(self.sim.now - ts_echo)
        newly_acked = ack - self.snd_una
        if self.in_recovery:
            if ack >= self.recover:
                # Full ACK: leave recovery, deflate to ssthresh.
                self.in_recovery = False
                self.cwnd = self.ssthresh
                self.dupacks = 0
            else:
                # NewReno partial ACK: the next hole starts at `ack`;
                # retransmit it and deflate by the amount acked.
                self.retransmits += 1
                self._emit(ack)
                self.cwnd = max(self.cwnd - newly_acked + 1, 1.0)
        else:
            self.dupacks = 0
            for _ in range(newly_acked):
                if self.cwnd < self.ssthresh:
                    self.cwnd += 1.0  # slow start
                else:
                    self.cwnd += 1.0 / self.cwnd  # congestion avoidance
            self.cwnd = min(self.cwnd, float(self.rwnd))
        self.snd_una = ack
        self._backoff = 1
        self._restart_timer()
        if self.total_segments is not None and self.snd_una >= self.total_segments:
            self._complete()
            return
        self._try_send()

    def _handle_dupack(self) -> None:
        self.dupacks += 1
        if self.in_recovery:
            self.cwnd += 1.0  # window inflation per additional dupack
            self._try_send()
        elif self.dupacks == 3:
            self.fast_retransmits += 1
            self.retransmits += 1
            self.ssthresh = max(self.flight_size / 2.0, 2.0)
            self.in_recovery = True
            self.recover = self.snd_nxt
            self._emit(self.snd_una)
            self.cwnd = self.ssthresh + 3.0
            self._restart_timer()

    # ------------------------------------------------------------------ timer
    def _ensure_timer(self) -> None:
        if self._rto_event is None:
            self._rto_event = self.sim.schedule(self.rto * self._backoff, self._on_timeout)

    def _restart_timer(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None
        if self.flight_size > 0:
            self._ensure_timer()

    def _on_timeout(self) -> None:
        self._rto_event = None
        if self.completed or self.flight_size == 0:
            return
        self.timeouts += 1
        self.retransmits += 1
        self.ssthresh = max(self.flight_size / 2.0, 2.0)
        self.cwnd = 1.0
        self.dupacks = 0
        self.in_recovery = False
        self._backoff = min(self._backoff * 2, 64)
        self._emit(self.snd_una)
        self._ensure_timer()

    # ------------------------------------------------------------------- RTT
    def _sample_rtt(self, sample: float) -> None:
        if sample < 0:
            return
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = min(max(self.srtt + 4.0 * self.rttvar, MIN_RTO), MAX_RTO)

    # ------------------------------------------------------------- completion
    def _complete(self) -> None:
        self.completed = True
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None
        self.close()
        if self.on_complete is not None:
            self.on_complete(self)


def start_tcp_flow(
    sim: Simulator,
    sender_host: Host,
    receiver_host: Host,
    total_segments: Optional[int] = None,
    mss: int = 1500,
    rwnd: int = 256,
    start: float = 0.0,
    on_complete: Optional[Callable[[TcpSender], None]] = None,
) -> TcpSender:
    """Wire up a receiver/sender pair on a fresh port and start the flow.

    For finite flows the receiver's port binding is released automatically
    when the sender completes, so long-running Harpoon-style workloads do
    not leak bindings.
    """
    port = ephemeral_port()
    receiver = TcpReceiver(sim, receiver_host, port)

    def _finish(sender: TcpSender) -> None:
        receiver.close()
        if on_complete is not None:
            on_complete(sender)

    return TcpSender(
        sim,
        sender_host,
        receiver_host.name,
        port,
        mss=mss,
        rwnd=rwnd,
        total_segments=total_segments,
        start=start,
        on_complete=_finish if total_segments is not None else on_complete,
    )
