"""Application plumbing.

An :class:`Application` lives on a :class:`~repro.net.node.Host`, binds a
``(protocol, port)`` pair, and exchanges packets with peers. Concrete
sources, sinks, the TCP endpoints, and the probe tools all derive from it.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.net.node import Host
from repro.net.packet import Packet
from repro.net.simulator import Simulator

#: Shared pool of ephemeral ports handed to applications that don't care.
_ephemeral_ports = itertools.count(49152)


def ephemeral_port() -> int:
    """Allocate a process-unique ephemeral port number."""
    return next(_ephemeral_ports)


class Application:
    """Base class for anything that sends or receives packets on a host."""

    def __init__(self, sim: Simulator, host: Host, protocol: str, port: Optional[int] = None):
        self.sim = sim
        self.host = host
        self.protocol = protocol
        self.port = port if port is not None else ephemeral_port()
        self._bound = False
        self.host.bind(self.protocol, self.port, self.on_packet)
        self._bound = True

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release the port binding (idempotent)."""
        if self._bound:
            self.host.unbind(self.protocol, self.port)
            self._bound = False

    # ------------------------------------------------------------------ I/O
    def on_packet(self, packet: Packet) -> None:
        """Override to handle deliveries. Default: drop silently."""

    def send_packet(
        self,
        dst: str,
        size: int,
        payload: Any = None,
        port: Optional[int] = None,
        flow: Optional[str] = None,
    ) -> Packet:
        """Build and transmit a packet from this application's host."""
        packet = Packet(
            src=self.host.name,
            dst=dst,
            size=size,
            protocol=self.protocol,
            port=port if port is not None else self.port,
            payload=payload,
            flow=flow,
        )
        self.host.send(packet)
        return packet
