"""Traffic generators (the Iperf / infinite-TCP / Harpoon substrate).

* :mod:`repro.traffic.base` — application plumbing,
* :mod:`repro.traffic.udp` — datagram sources and sinks,
* :mod:`repro.traffic.cbr` — constant-bit-rate sources and the episodic
  overload driver that engineers constant-duration loss episodes (the
  paper's modified-Iperf scenarios),
* :mod:`repro.traffic.tcp` — a from-scratch TCP Reno/NewReno model,
* :mod:`repro.traffic.harpoon` — heavy-tailed web-like session traffic.
"""

from repro.traffic.base import Application
from repro.traffic.udp import UdpSink, UdpSource
from repro.traffic.cbr import CbrSource, EpisodicCbrTraffic
from repro.traffic.tcp import TcpReceiver, TcpSender, start_tcp_flow
from repro.traffic.harpoon import HarpoonWebTraffic

__all__ = [
    "Application",
    "UdpSink",
    "UdpSource",
    "CbrSource",
    "EpisodicCbrTraffic",
    "TcpReceiver",
    "TcpSender",
    "start_tcp_flow",
    "HarpoonWebTraffic",
]
