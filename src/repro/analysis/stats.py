"""Small statistics helpers used across tables and experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple


def mean_std(values: Sequence[float]) -> Tuple[float, float]:
    """Mean and *population* standard deviation (paper tables report µ (σ)).

    Returns (0.0, 0.0) for an empty sequence — matching how the paper's
    tables report "0 (0)" when a tool observed nothing.
    """
    n = len(values)
    if n == 0:
        return 0.0, 0.0
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / n
    return mean, math.sqrt(variance)


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-ish summary for a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def stderr(self) -> float:
        """Standard error of the mean (0 when fewer than 2 samples)."""
        if self.n < 2:
            return 0.0
        return self.std / math.sqrt(self.n)

    def ci95(self) -> Tuple[float, float]:
        """Normal-approximation 95% confidence interval for the mean."""
        half = 1.96 * self.stderr()
        return self.mean - half, self.mean + half


def summarize(values: Sequence[float]) -> SummaryStats:
    """Build a :class:`SummaryStats` (zeros for an empty sample)."""
    if not values:
        return SummaryStats(0, 0.0, 0.0, 0.0, 0.0)
    mean, std = mean_std(values)
    return SummaryStats(len(values), mean, std, min(values), max(values))
