"""Router-centric loss-episode extraction (§3 definitions).

A loss episode begins when the bottleneck buffer is exceeded (the first
drop) and ends when drops cease and the queue drains. The paper
operationalized this for bursty traffic as: trace segments whose first and
last events are packet losses, with the queueing delay of everything in
between staying "within 10 milliseconds of the maximum" (i.e., above a
high-water mark).

:func:`extract_episodes` implements exactly that rule using the two compact
streams the :class:`~repro.net.monitor.QueueMonitor` records: drop times and
high-water *down-crossing* times. Two consecutive drops belong to the same
episode iff the queue never fell below the high-water mark between them and
they are not separated by more than ``max_gap`` (the paper: "longer than a
typical RTT" of quiescence ends an episode).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - avoids a package import cycle
    from repro.net.monitor import QueueMonitor


@dataclass(frozen=True)
class LossEpisode:
    """One loss episode: first drop, last drop, and how many drops."""

    start: float
    end: float
    drops: int

    @property
    def duration(self) -> float:
        """Episode duration in seconds (0 for an isolated drop)."""
        return self.end - self.start

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ConfigurationError(
                f"episode ends before it starts: [{self.start}, {self.end}]"
            )
        if self.drops < 1:
            raise ConfigurationError("an episode contains at least one drop")


def extract_episodes(
    drop_times: Sequence[float],
    down_crossings: Sequence[float] = (),
    max_gap: float = 0.5,
) -> List[LossEpisode]:
    """Group drop timestamps into loss episodes.

    Parameters
    ----------
    drop_times:
        Chronologically sorted drop timestamps.
    down_crossings:
        Chronologically sorted times at which the queue fell below the
        high-water mark. A down-crossing strictly between two drops splits
        them into separate episodes regardless of their spacing.
    max_gap:
        Maximum silent gap (seconds) inside one episode.
    """
    if max_gap <= 0:
        raise ConfigurationError(f"max_gap must be positive, got {max_gap}")
    episodes: List[LossEpisode] = []
    if not drop_times:
        return episodes
    crossings = list(down_crossings)
    start = prev = drop_times[0]
    count = 1
    for time in drop_times[1:]:
        if time < prev:
            raise ConfigurationError("drop_times must be sorted")
        split = (time - prev) > max_gap or _crossing_between(crossings, prev, time)
        if split:
            episodes.append(LossEpisode(start, prev, count))
            start = time
            count = 1
        else:
            count += 1
        prev = time
    episodes.append(LossEpisode(start, prev, count))
    return episodes


def episode_slot_range(
    episode: LossEpisode, origin: float, slot_width: float
) -> Tuple[int, int]:
    """Discrete slot indices ``(first, last)`` an episode overlaps.

    Slot ``i`` covers ``[origin + i*slot_width, origin + (i+1)*slot_width)``;
    the returned range is inclusive and may extend below 0 or beyond the
    measurement when the episode does (callers clamp against their window).
    Used by the accuracy audit to join router ground truth to the probe
    process's slot grid.
    """
    if slot_width <= 0:
        raise ConfigurationError(f"slot_width must be positive, got {slot_width}")
    first = math.floor((episode.start - origin) / slot_width)
    last = math.floor((episode.end - origin) / slot_width)
    return first, max(first, last)


def _crossing_between(crossings: List[float], lo: float, hi: float) -> bool:
    """True iff some crossing time falls strictly inside (lo, hi)."""
    index = bisect.bisect_right(crossings, lo)
    return index < len(crossings) and crossings[index] < hi


def merge_episode_lists(
    episode_lists: Sequence[Sequence[LossEpisode]],
    join_gap: float = 0.0,
) -> List[LossEpisode]:
    """Union per-hop episode lists into path-level congestion episodes.

    On a multi-hop path, the end-to-end congestion state is the union of
    the hops' states: a path episode is a maximal interval covered by at
    least one hop-level episode (intervals closer than ``join_gap`` are
    joined). Drop counts add up.
    """
    if join_gap < 0:
        raise ConfigurationError(f"join_gap must be >= 0, got {join_gap}")
    episodes = sorted(
        (episode for episodes in episode_lists for episode in episodes),
        key=lambda episode: episode.start,
    )
    if not episodes:
        return []
    merged: List[LossEpisode] = []
    current_start = episodes[0].start
    current_end = episodes[0].end
    current_drops = episodes[0].drops
    for episode in episodes[1:]:
        if episode.start <= current_end + join_gap:
            current_end = max(current_end, episode.end)
            current_drops += episode.drops
        else:
            merged.append(LossEpisode(current_start, current_end, current_drops))
            current_start = episode.start
            current_end = episode.end
            current_drops = episode.drops
    merged.append(LossEpisode(current_start, current_end, current_drops))
    return merged


def episodes_from_monitor(
    monitor: "QueueMonitor",
    max_gap: float = 0.5,
    protocol: Optional[str] = None,
) -> List[LossEpisode]:
    """Extract loss episodes from a bottleneck :class:`QueueMonitor`.

    ``protocol`` optionally restricts the drop events considered (normally
    left as None: the episode is a property of the router, not of any one
    flow — the paper's "router-centric view").
    """
    return extract_episodes(
        monitor.drop_times(protocol), monitor.down_crossings, max_gap=max_gap
    )
