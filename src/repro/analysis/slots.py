"""Time discretization helpers.

The probe-process model (§5) is formulated in discrete 5 ms slots; the
paper's "true" loss frequency is the fraction of slots overlapping a loss
episode. These helpers convert between continuous episode intervals and
slot indices.
"""

from __future__ import annotations

import bisect
from typing import Callable, List, Sequence, Set

from repro.analysis.episodes import LossEpisode
from repro.errors import ConfigurationError


def slot_of(time: float, slot: float) -> int:
    """Index of the slot containing ``time``."""
    if slot <= 0:
        raise ConfigurationError(f"slot width must be positive, got {slot}")
    return int(time / slot)


def congested_slot_set(
    episodes: Sequence[LossEpisode], slot: float, n_slots: int
) -> Set[int]:
    """The set of slot indices (0..n_slots-1) overlapping any episode."""
    congested: Set[int] = set()
    for episode in episodes:
        first = max(0, slot_of(episode.start, slot))
        last = min(n_slots - 1, slot_of(episode.end, slot))
        congested.update(range(first, last + 1))
    return congested


def congested_slot_count(
    episodes: Sequence[LossEpisode], slot: float, n_slots: int
) -> int:
    """Number of congested slots, counting overlaps once."""
    return len(congested_slot_set(episodes, slot, n_slots))


def true_frequency(
    episodes: Sequence[LossEpisode], slot: float, n_slots: int
) -> float:
    """True congestion frequency F: congested slots / total slots."""
    if n_slots <= 0:
        raise ConfigurationError(f"n_slots must be positive, got {n_slots}")
    return congested_slot_count(episodes, slot, n_slots) / n_slots


def make_in_episode(episodes: Sequence[LossEpisode]) -> Callable[[float], bool]:
    """Build a fast ``time -> inside-any-episode`` predicate.

    Episodes must be chronologically sorted and non-overlapping (which is
    what :func:`~repro.analysis.episodes.extract_episodes` produces).
    """
    starts: List[float] = [episode.start for episode in episodes]
    ends: List[float] = [episode.end for episode in episodes]
    for i in range(1, len(starts)):
        if starts[i] < ends[i - 1]:
            raise ConfigurationError("episodes must be sorted and disjoint")

    def in_episode(time: float) -> bool:
        index = bisect.bisect_right(starts, time) - 1
        return index >= 0 and time <= ends[index]

    return in_episode
