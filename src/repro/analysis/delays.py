"""One-way-delay analytics.

The §6.1 marking rule is driven by one-way delays, so understanding a
measurement's OWD distribution is part of calibrating it (choosing alpha
against the path's real queueing range, spotting clock problems, checking
the FIFO assumption). These helpers work on the ``(send_time, owd)``
samples a probe stream produces:

* :func:`owd_samples` — flatten probe records into delay samples,
* :func:`delay_floor` — propagation-floor estimate (minimum filtering),
* :func:`queueing_delays` — subtract the floor: pure queueing time,
* :class:`DelayDistribution` — quantiles/summary over a sample set,
* :func:`congestion_delay_ratio` — how separable "near loss" delays are
  from background delays (a direct health check of the alpha threshold).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.records import ProbeRecord
from repro.errors import EstimationError


def owd_samples(probes: Sequence[ProbeRecord]) -> List[Tuple[float, float]]:
    """All (send_time, owd) pairs from a probe-record stream."""
    return [(probe.send_time, owd) for probe in probes for owd in probe.owds]


def delay_floor(samples: Sequence[Tuple[float, float]]) -> float:
    """Propagation + serialization floor: the minimum observed OWD.

    With even a moderate number of samples the minimum is within one
    serialization time of the true floor on an uncongested instant.
    """
    if not samples:
        raise EstimationError("no delay samples")
    return min(owd for _t, owd in samples)


def queueing_delays(samples: Sequence[Tuple[float, float]]) -> List[float]:
    """Per-sample queueing time: OWD minus the observed floor."""
    floor = delay_floor(samples)
    return [owd - floor for _t, owd in samples]


@dataclass(frozen=True)
class DelayDistribution:
    """Quantile summary of a delay sample set (values in seconds)."""

    n: int
    minimum: float
    p50: float
    p90: float
    p99: float
    maximum: float
    mean: float

    def spread(self) -> float:
        """max - min: the observable queueing range."""
        return self.maximum - self.minimum


def _quantile(sorted_values: List[float], q: float) -> float:
    position = q * (len(sorted_values) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return sorted_values[low]
    weight = position - low
    return sorted_values[low] * (1 - weight) + sorted_values[high] * weight


def summarize_delays(values: Sequence[float]) -> DelayDistribution:
    """Build a :class:`DelayDistribution` from raw delay values."""
    if not values:
        raise EstimationError("no delay samples")
    ordered = sorted(values)
    return DelayDistribution(
        n=len(ordered),
        minimum=ordered[0],
        p50=_quantile(ordered, 0.50),
        p90=_quantile(ordered, 0.90),
        p99=_quantile(ordered, 0.99),
        maximum=ordered[-1],
        mean=sum(ordered) / len(ordered),
    )


def congestion_delay_ratio(
    probes: Sequence[ProbeRecord], tau: float
) -> float:
    """Median OWD near losses divided by median OWD far from losses.

    A calibration health check for the §6.1 rule: ratios well above 1
    mean delay cleanly separates congested from clear periods (alpha has
    room to work); a ratio near 1 means delay carries little signal on
    this path (e.g. tiny buffers) and loss-only marking is all there is.

    Raises :class:`EstimationError` when either class of probe is absent.
    """
    if tau < 0:
        raise EstimationError(f"tau must be non-negative, got {tau}")
    loss_times = [probe.send_time for probe in probes if probe.lost]
    if not loss_times:
        raise EstimationError("no losses observed: ratio undefined")
    near: List[float] = []
    far: List[float] = []
    for probe in probes:
        owd = probe.max_owd
        if owd is None:
            continue
        distance = min(abs(probe.send_time - t) for t in loss_times)
        (near if distance <= tau else far).append(owd)
    if not near or not far:
        raise EstimationError("need probes both near and far from losses")
    near.sort()
    far.sort()
    return _quantile(near, 0.5) / _quantile(far, 0.5)
