"""Ground-truth analysis: loss episodes, slot discretization, statistics."""

from repro.analysis.episodes import (
    LossEpisode,
    extract_episodes,
    episodes_from_monitor,
    merge_episode_lists,
)
from repro.analysis.delays import (
    DelayDistribution,
    congestion_delay_ratio,
    delay_floor,
    owd_samples,
    queueing_delays,
    summarize_delays,
)
from repro.analysis.slots import (
    congested_slot_count,
    congested_slot_set,
    slot_of,
    true_frequency,
    make_in_episode,
)
from repro.analysis.stats import SummaryStats, summarize, mean_std

__all__ = [
    "LossEpisode",
    "extract_episodes",
    "episodes_from_monitor",
    "merge_episode_lists",
    "DelayDistribution",
    "congestion_delay_ratio",
    "delay_floor",
    "owd_samples",
    "queueing_delays",
    "summarize_delays",
    "congested_slot_count",
    "congested_slot_set",
    "slot_of",
    "true_frequency",
    "make_in_episode",
    "SummaryStats",
    "summarize",
    "mean_std",
]
