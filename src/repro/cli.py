"""Command-line front end: ``badabing-sim`` / ``python -m repro``.

Subcommands:

* ``measure`` — run one BADABING measurement against a chosen traffic
  scenario and print the estimate vs ground truth;
* ``zing`` — run the Poisson baseline the same way;
* ``sweep`` — run a grid of BADABING cells over ``p`` × seeds, optionally
  across worker processes, and print the per-cell outcomes + scorecard;
* ``table`` — reproduce one of the paper's tables (1-8);
* ``figure`` — reproduce one of the paper's figures (4-9b);
* ``live`` — run the probe process over real UDP sockets (``send`` to a
  remote reflector, ``reflect`` to serve one, ``loopback`` for both ends
  in one process, ``fleet`` for a many-session loopback soak against one
  multi-tenant reflector);
* ``fleet run`` — drive the adaptive fleet controller: a roster of
  paths (``--paths``/``--roster``), one global probe budget, and a
  convergence-driven rebalancing loop recorded as a controller-event
  NDJSON artifact;
* ``dash`` — live terminal dashboard over a running exporter's HTTP
  endpoint (``--url``) or an offline replay of a recorded snapshot
  stream (``--replay``);
* ``obs`` — summarize or validate exported metrics/trace/audit/export
  files (``summary --by-label`` splits merged fleet/sweep shards,
  ``--by-path`` folds a controller run's shards per path,
  ``validate --controller`` checks a controller event log);
* ``list`` — show available scenarios, tables, and figures.

Long-running commands (``sweep``, ``live reflect``, ``live fleet``)
accept ``--export-out``/``--export-interval`` (and, for the live ones,
``--export-port``/``--alert-rules``) to stream NDJSON registry
snapshots and serve ``/metrics``, ``/healthz``, ``/sessions`` while
they run.
"""

from __future__ import annotations

import argparse
import math
import os
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.experiments import figures as _figures
from repro.experiments import render as _render
from repro.experiments import tables as _tables
from repro.experiments.profiles import PROFILES, active_profile
from repro.experiments.runner import SCENARIOS, run_badabing, run_zing
from repro.net.faults import FAULT_PROFILES as _FAULT_PROFILES
from repro.obs import MetricsRegistry, Tracer, write_metrics_document


def _add_profile_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile",
        choices=sorted(PROFILES),
        default=None,
        help="run-length profile (default: REPRO_PROFILE env or 'fast')",
    )


def _resolve_profile(name: Optional[str]):
    return PROFILES[name] if name else active_profile()


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out",
        default="",
        help="write the run's metrics + manifest as JSON to this path",
    )
    parser.add_argument(
        "--trace-out",
        default="",
        help="write wall-clock phase spans as JSONL to this path",
    )


def _add_export_arguments(
    parser: argparse.ArgumentParser, with_http: bool = True
) -> None:
    parser.add_argument(
        "--export-out",
        default="",
        help="stream NDJSON registry snapshots (repro.obs.export/1) to this path",
    )
    parser.add_argument(
        "--export-interval",
        type=float,
        default=1.0,
        help="seconds between periodic export snapshots (default 1)",
    )
    if with_http:
        parser.add_argument(
            "--export-port",
            type=int,
            default=None,
            help="serve /metrics, /healthz and /sessions over HTTP on this "
            "port (0 = ephemeral; omit to disable the endpoint)",
        )
    parser.add_argument(
        "--alert-rules",
        default="",
        help="JSON alert-rule file evaluated each export "
        "(default: the built-in fleet rules)",
    )


def _export_requested(args: argparse.Namespace) -> bool:
    return bool(getattr(args, "export_out", "")) or (
        getattr(args, "export_port", None) is not None
    )


def _build_exporter(
    args: argparse.Namespace, registry, tracer=None, meta=None, default_rules=None
):
    """TelemetryExporter from the --export-* flags, or None when unused."""
    if registry is None or not _export_requested(args):
        return None
    from repro.obs import TelemetryExporter, default_fleet_rules, load_alert_rules

    if args.alert_rules:
        rules = load_alert_rules(args.alert_rules)
    elif default_rules is not None:
        rules = default_rules
    else:
        rules = default_fleet_rules()
    return TelemetryExporter(
        registry,
        interval=args.export_interval,
        path=args.export_out or None,
        http_port=getattr(args, "export_port", None),
        rules=rules,
        tracer=tracer,
        meta=meta,
    )


def _announce_exporter(exporter, args: argparse.Namespace) -> None:
    if exporter is None:
        return
    port = getattr(args, "export_port", None)
    if port is not None:
        where = f"127.0.0.1:{port}" if port else "127.0.0.1 (ephemeral port)"
        print(f"telemetry: /metrics /healthz /sessions on http://{where}")
    if args.export_out:
        print(f"telemetry: streaming snapshots to {args.export_out}")


def _cmd_measure(args: argparse.Namespace) -> int:
    profile = _resolve_profile(args.profile)
    n_slots = args.slots if args.slots else profile.n_slots
    keep = {}
    metrics = MetricsRegistry() if args.metrics_out else None
    tracer = (
        Tracer(tool="badabing", scenario=args.scenario, seed=args.seed)
        if args.trace_out
        else None
    )
    result, truth = run_badabing(
        args.scenario,
        p=args.p,
        n_slots=n_slots,
        seed=args.seed,
        improved=args.improved,
        warmup=profile.warmup,
        faults=args.faults if args.faults != "none" else None,
        metrics=metrics,
        tracer=tracer,
        keep=keep,
        vectorized=args.vectorized,
    )
    if args.metrics_out:
        write_metrics_document(args.metrics_out, metrics, result.manifest)
        print(f"metrics written to {args.metrics_out}")
    if tracer is not None:
        tracer.write_jsonl(args.trace_out)
        print(f"trace written to {args.trace_out}")
    if args.audit_out:
        from repro.obs import (
            audit_document,
            scorecard_from_runs,
            write_audit_document,
        )

        if result.audit is None:
            print("audit unavailable: run executed without metrics", file=sys.stderr)
        else:
            label = f"{args.scenario} p={args.p} N={n_slots}"
            scorecard = scorecard_from_runs(
                [(label, result.audit, None, args.seed)]
            )
            write_audit_document(
                args.audit_out, audit_document(scorecard, runs=[result.audit])
            )
            print(f"audit written to {args.audit_out}")
    if args.save:
        from repro.io import save_measurement

        save_measurement(
            args.save,
            keep["tool"],
            metadata={"scenario": args.scenario, "seed": args.seed},
        )
        print(f"trace saved to {args.save}")
    print(f"scenario={args.scenario} p={args.p} N={n_slots} (seed {args.seed})")
    print(f"probes sent: {result.n_probes_sent}  load: {result.probe_load_bps / 1e3:.0f} kb/s")
    print(f"loss frequency: true={truth.frequency:.4f}  estimated={result.frequency:.4f}")
    duration = result.duration_seconds
    duration_text = "n/a (no transitions observed)" if math.isnan(duration) else f"{duration:.3f}s"
    print(
        f"loss duration:  true={truth.duration_mean:.3f}s "
        f"(σ {truth.duration_std:.3f})  estimated={duration_text}"
    )
    validation = result.validation
    print(
        f"validation: transitions={validation.transition_count} "
        f"asymmetry={validation.transition_asymmetry:.3f} "
        f"violations={validation.violations}"
    )
    _print_degraded_summary(result, keep.get("fault_injector"))
    return 0


def _print_degraded_summary(result, injector) -> None:
    """Coverage + injected-fault accounting for degraded-mode runs."""
    coverage = result.coverage
    if coverage is not None and not coverage.complete:
        print(f"degraded: {coverage.describe()}")
    if result.duplicate_arrivals:
        print(f"degraded: {result.duplicate_arrivals} duplicate arrivals discarded")
    if injector is not None:
        stats = injector.stats
        print(
            f"faults injected: dropped={stats.dropped} "
            f"(random={stats.dropped_random} burst={stats.dropped_burst} "
            f"flap={stats.dropped_flap} outage={stats.dropped_outage}) "
            f"duplicated={stats.duplicated} reordered={stats.reordered}"
        )


def _cmd_zing(args: argparse.Namespace) -> int:
    profile = _resolve_profile(args.profile)
    metrics = MetricsRegistry() if args.metrics_out else None
    tracer = (
        Tracer(tool="zing", scenario=args.scenario, seed=args.seed)
        if args.trace_out
        else None
    )
    result, truth = run_zing(
        args.scenario,
        mean_interval=1.0 / args.rate,
        packet_size=args.size,
        duration=args.duration if args.duration else profile.tool_duration,
        seed=args.seed,
        warmup=profile.warmup,
        metrics=metrics,
        tracer=tracer,
    )
    if args.metrics_out:
        write_metrics_document(args.metrics_out, metrics, result.manifest)
        print(f"metrics written to {args.metrics_out}")
    if tracer is not None:
        tracer.write_jsonl(args.trace_out)
        print(f"trace written to {args.trace_out}")
    print(f"scenario={args.scenario} rate={args.rate}Hz size={args.size}B")
    print(f"probes sent: {result.n_sent}  lost: {result.n_lost}")
    print(f"loss frequency: true={truth.frequency:.4f}  reported={result.frequency:.4f}")
    print(
        f"loss duration:  true={truth.duration_mean:.3f}s "
        f"(σ {truth.duration_std:.3f})  reported={result.duration_mean:.3f}s"
    )
    return 0


def _parse_csv(text: str, convert, what: str):
    from repro.errors import ConfigurationError

    try:
        values = [convert(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise ConfigurationError(f"invalid {what} list: {text!r}")
    if not values:
        raise ConfigurationError(f"need at least one {what}, got {text!r}")
    return values


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.runner import (
        RunBudget,
        scorecard_from_outcomes,
        sweep_badabing,
    )
    from repro.obs import render_scorecard, scorecard_digest, snapshot_digest

    profile = _resolve_profile(args.profile)
    n_slots = args.slots if args.slots else profile.n_slots
    ps = _parse_csv(args.p, float, "probe probability")
    seeds = _parse_csv(args.seeds, int, "seed")
    cells = [{"p": p, "seed": seed} for p in ps for seed in seeds]
    budget = (
        RunBudget(max_events=args.max_events) if args.max_events else None
    )
    metrics = MetricsRegistry()
    tracer = Tracer(tool="badabing-sweep") if args.trace_out else None
    exporter = _build_exporter(
        args, metrics, tracer=tracer, meta={"tool": "badabing-sweep"}
    )
    _announce_exporter(exporter, args)
    try:
        outcomes = sweep_badabing(
            cells,
            budget=budget,
            metrics=metrics,
            tracer=tracer,
            workers=args.workers if args.workers > 1 else None,
            max_wall_seconds=args.max_wall_seconds if args.max_wall_seconds else None,
            exporter=exporter,
            scenario=args.scenario,
            n_slots=n_slots,
            warmup=profile.warmup,
            improved=args.improved,
            vectorized=args.vectorized,
        )
    finally:
        # Flush the final export record on every exit path, so a sweep
        # killed by its deadline still leaves a valid snapshot stream.
        if exporter is not None:
            exporter.close()
    scorecard = scorecard_from_outcomes(outcomes)
    # Write requested artifacts before any stdout: a downstream reader
    # closing the pipe (`| head`) must not cost the exported files.
    if args.metrics_out:
        write_metrics_document(args.metrics_out, metrics, None)
    if args.audit_out:
        from repro.obs import audit_document, write_audit_document

        audits = [
            outcome.result.audit
            for outcome in outcomes
            if outcome.ok and getattr(outcome.result, "audit", None) is not None
        ]
        write_audit_document(args.audit_out, audit_document(scorecard, runs=audits))
    if tracer is not None:
        tracer.write_jsonl(args.trace_out)
    mode = f"{args.workers} workers" if args.workers > 1 else "serial"
    print(
        f"sweep: scenario={args.scenario} cells={len(cells)} "
        f"(p in {ps}, seeds {seeds}, N={n_slots}) [{mode}]"
    )
    for outcome in outcomes:
        print(f"  {outcome.describe()}")
    for line in render_scorecard(scorecard.to_dict()):
        print(line)
    print(f"scorecard digest: {scorecard_digest(scorecard)}")
    print(f"metrics digest:   {snapshot_digest(metrics.snapshot())}")
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out}")
    if args.audit_out:
        print(f"audit written to {args.audit_out}")
    if tracer is not None:
        print(f"trace written to {args.trace_out}")
    if args.export_out:
        print(f"export snapshots written to {args.export_out}")
    return 0 if any(outcome.ok for outcome in outcomes) else 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.config import MarkingConfig
    from repro.io import load_measurement, reestimate

    measurement = load_measurement(args.trace, recover=args.recover)
    for diagnostic in measurement.diagnostics:
        print(
            f"recovered: skipped corrupt line {diagnostic.line_number}: "
            f"{diagnostic.reason}",
            file=sys.stderr,
        )
    result = reestimate(
        measurement,
        marking=MarkingConfig(alpha=args.alpha, tau=args.tau),
        vectorized=args.vectorized,
    )
    print(
        f"trace: {args.trace} (N={measurement.n_slots}, p={measurement.p}, "
        f"{len(measurement.probes)} probes)"
    )
    if measurement.metadata:
        print(f"metadata: {measurement.metadata}")
    print(f"marking: alpha={args.alpha} tau={args.tau * 1000:.0f}ms")
    print(f"estimated loss frequency: {result.frequency:.4f}")
    duration = result.duration_seconds
    duration_text = (
        "n/a (no transitions observed)" if math.isnan(duration) else f"{duration:.3f}s"
    )
    print(f"estimated loss duration:  {duration_text}")
    validation = result.validation
    print(
        f"validation: transitions={validation.transition_count} "
        f"asymmetry={validation.transition_asymmetry:.3f} "
        f"violations={validation.violations}"
    )
    _print_degraded_summary(result, None)
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    key = f"table{args.number}"
    builder = _tables.ALL_TABLES.get(key)
    if builder is None:
        print(f"unknown table {args.number}; choose 1-8", file=sys.stderr)
        return 2
    profile = _resolve_profile(args.profile)
    kwargs = {"profile": profile}
    if args.seed:
        kwargs["seed"] = args.seed
    print(_render.render_table(builder(**kwargs)))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    key = args.name if args.name.startswith("fig") else f"fig{args.name}"
    builder = _figures.ALL_FIGURES.get(key)
    if builder is None:
        print(
            f"unknown figure {args.name}; choose from {sorted(_figures.ALL_FIGURES)}",
            file=sys.stderr,
        )
        return 2
    profile = _resolve_profile(args.profile)
    result = builder(profile=profile)
    if key in ("fig4", "fig5", "fig6"):
        print(_render.render_queue_series(result))
    elif key == "fig7":
        print(_render.render_train_sensitivity(result))
    elif key == "fig8":
        print(_render.render_probe_impact(result))
    else:
        print(_render.render_sensitivity(result))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import pathlib

    from repro.experiments.report import write_report

    profile = _resolve_profile(args.profile)
    output = pathlib.Path(args.out) if args.out else None
    path = write_report(pathlib.Path(args.results_dir), profile.name, output)
    print(f"report written to {path}")
    return 0


def _cmd_dash(args: argparse.Namespace) -> int:
    import time as _time

    from repro.errors import ConfigurationError
    from repro.obs.dash import (
        CLEAR,
        fetch_sessions,
        render_frame,
        replay_documents,
    )

    if bool(args.url) == bool(args.replay):
        raise ConfigurationError("dash needs exactly one of --url or --replay")

    def show(document, first: bool) -> None:
        if not args.no_clear and not args.once:
            print(CLEAR, end="")
        elif not first:
            print()
        print(render_frame(document), end="")

    frames = 0
    try:
        if args.replay:
            documents = list(replay_documents(args.replay))
            if args.once:
                documents = documents[-1:]
            if args.frames:
                documents = documents[: args.frames]
            for index, document in enumerate(documents):
                show(document, first=index == 0)
                frames += 1
                if args.interval and index + 1 < len(documents):
                    _time.sleep(args.interval)
        else:
            while True:
                show(fetch_sessions(args.url), first=frames == 0)
                frames += 1
                if args.once or (args.frames and frames >= args.frames):
                    break
                _time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    if not args.no_clear and not args.once:
        print(f"({frames} frame{'s' if frames != 1 else ''} rendered)")
    return 0


def _cmd_obs_summary(args: argparse.Namespace) -> int:
    import json

    from repro.obs import load_metrics_document, render_summary, summary_document
    from repro.obs.schema import validate_trace_file

    document = load_metrics_document(args.metrics)
    trace_lines = None
    if args.trace:
        from repro.errors import ObservabilityError

        try:
            with open(args.trace, "r", encoding="utf-8") as handle:
                trace_lines = [json.loads(line) for line in handle if line.strip()]
        except OSError as exc:
            raise ObservabilityError(f"cannot read trace {args.trace}: {exc}")
        except json.JSONDecodeError as exc:
            raise ObservabilityError(f"{args.trace}: invalid JSON ({exc.msg})")
        problems = validate_trace_file(args.trace)
        if problems:
            print(f"warning: trace has {len(problems)} schema problem(s)", file=sys.stderr)
    if args.slow:
        from repro.errors import ObservabilityError
        from repro.obs.summary import render_slowest_spans

        if trace_lines is None:
            raise ObservabilityError("--slow needs a trace file (--trace)")
        print("\n".join(render_slowest_spans(trace_lines, top=args.slow)))
        return 0
    if args.json:
        print(json.dumps(summary_document(document, trace_lines), indent=2))
    elif args.by_label or args.by_path:
        from repro.obs import render_grouped_summary

        print(render_grouped_summary(document, trace_lines, by_path=args.by_path))
    else:
        print(render_summary(document, trace_lines))
    return 0


def _cmd_obs_audit(args: argparse.Namespace) -> int:
    import json

    from repro.obs import render_audit
    from repro.obs.schema import load_audit_document

    document = load_audit_document(args.audit)
    if args.json:
        print(json.dumps(document, indent=2))
    else:
        print(render_audit(document))
    return 0


def _cmd_obs_validate(args: argparse.Namespace) -> int:
    from repro.obs.schema import validate_metrics_document, validate_trace_file

    import json

    if not (
        args.metrics
        or args.trace
        or args.audit
        or args.export
        or args.bench
        or args.controller
    ):
        print(
            "error: nothing to validate — give a metrics file and/or "
            "--trace/--audit/--export/--bench/--controller",
            file=sys.stderr,
        )
        return 2
    failures = 0
    if args.metrics:
        try:
            with open(args.metrics, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except OSError as exc:
            print(f"error: cannot read {args.metrics}: {exc}", file=sys.stderr)
            return 2
        except json.JSONDecodeError as exc:
            print(f"error: {args.metrics}: invalid JSON ({exc.msg})", file=sys.stderr)
            return 2
        problems = validate_metrics_document(document)
        for problem in problems:
            print(f"{args.metrics}: {problem}", file=sys.stderr)
        failures += len(problems)
    if args.trace:
        trace_problems = validate_trace_file(args.trace)
        for problem in trace_problems:
            print(f"{args.trace}: {problem}", file=sys.stderr)
        failures += len(trace_problems)
    if args.audit:
        from repro.obs.schema import validate_audit_document

        try:
            with open(args.audit, "r", encoding="utf-8") as handle:
                audit_doc = json.load(handle)
        except OSError as exc:
            print(f"error: cannot read {args.audit}: {exc}", file=sys.stderr)
            return 2
        except json.JSONDecodeError as exc:
            print(f"error: {args.audit}: invalid JSON ({exc.msg})", file=sys.stderr)
            return 2
        audit_problems = validate_audit_document(audit_doc)
        for problem in audit_problems:
            print(f"{args.audit}: {problem}", file=sys.stderr)
        failures += len(audit_problems)
    if args.export:
        from repro.obs.export import validate_export_file

        export_problems = validate_export_file(args.export)
        for problem in export_problems:
            print(f"{args.export}: {problem}", file=sys.stderr)
        failures += len(export_problems)
    if args.bench:
        from repro.obs.bench import validate_bench_document

        try:
            with open(args.bench, "r", encoding="utf-8") as handle:
                bench_doc = json.load(handle)
        except OSError as exc:
            print(f"error: cannot read {args.bench}: {exc}", file=sys.stderr)
            return 2
        except json.JSONDecodeError as exc:
            print(f"error: {args.bench}: invalid JSON ({exc.msg})", file=sys.stderr)
            return 2
        bench_problems = validate_bench_document(bench_doc)
        for problem in bench_problems:
            print(f"{args.bench}: {problem}", file=sys.stderr)
        failures += len(bench_problems)
    if args.controller:
        from repro.live.controller import validate_controller_file

        controller_problems = validate_controller_file(args.controller)
        for problem in controller_problems:
            print(f"{args.controller}: {problem}", file=sys.stderr)
        failures += len(controller_problems)
    if failures:
        print(f"validation FAILED: {failures} problem(s)", file=sys.stderr)
        return 1
    print("validation OK")
    return 0


def _cmd_obs_profile(args: argparse.Namespace) -> int:
    from repro.obs.bench import load_bench_document, render_profile_document

    document = load_bench_document(args.bench)
    print(
        "\n".join(
            render_profile_document(
                document, scenario=args.scenario or None, top=args.top
            )
        )
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs.bench import (
        compare_bench_documents,
        load_bench_document,
        render_bench_document,
        write_bench_document,
    )

    if args.compare:
        old = load_bench_document(args.compare[0])
        new = load_bench_document(args.compare[1])
        lines, regressions = compare_bench_documents(
            old, new, threshold=args.threshold
        )
        print("\n".join(lines))
        if regressions:
            print(
                f"{len(regressions)} perf regression(s) above "
                f"{args.threshold:g}x",
                file=sys.stderr,
            )
            return 1
        return 0
    from repro.experiments.bench import run_bench_suite

    document = run_bench_suite(
        args.suite, progress=lambda message: print(message, file=sys.stderr)
    )
    out = args.out or f"BENCH_{args.suite}.json"
    write_bench_document(out, document)
    print("\n".join(render_bench_document(document)))
    print(f"wrote {out}")
    return 0


def _live_config(args: argparse.Namespace):
    """Build the live run's BadabingConfig from CLI arguments."""
    from repro.config import BadabingConfig, MarkingConfig, ProbeConfig
    from repro.errors import ConfigurationError

    n_slots = args.slots if args.slots else int(round(args.duration / args.slot))
    if n_slots < 2:
        raise ConfigurationError(
            f"live run needs at least 2 slots (duration {args.duration}s "
            f"at {args.slot}s slots gives {n_slots})"
        )
    return BadabingConfig(
        probe=ProbeConfig(
            slot=args.slot,
            probe_size=args.size,
            packets_per_probe=args.packets,
        ),
        marking=MarkingConfig(alpha=args.alpha, tau=args.tau),
        p=args.p,
        n_slots=n_slots,
        improved=args.improved,
    )


def _live_budget(args: argparse.Namespace):
    """Optional RunBudget from --max-packets / --max-seconds."""
    from repro.experiments.runner import RunBudget

    if not args.max_packets and not args.max_seconds:
        return None
    return RunBudget(
        max_events=args.max_packets if args.max_packets else None,
        max_wall_seconds=args.max_seconds if args.max_seconds else None,
    )


def _print_live_result(run, args: argparse.Namespace) -> int:
    """Shared output path for ``live send`` and ``live loopback``."""
    stats = run.stats
    spec = run.spec
    print(
        f"live session {run.session_id:#x}: p={spec.p:.6f} N={spec.n_slots} "
        f"slot={spec.slot_seconds * 1000:.1f}ms k={spec.packets_per_probe} "
        f"(seed {args.seed})"
    )
    print(
        f"packets sent: {stats.packets_sent} ({stats.trains_sent} trains)  "
        f"echoes: {stats.echoes_received}  elapsed: {stats.elapsed_seconds:.3f}s"
    )
    if stats.stopped:
        print(f"degraded: stopped early ({stats.stopped}); partial estimate")
    result = run.result
    print(f"estimated loss frequency: {result.frequency:.4f}")
    duration = result.duration_seconds
    duration_text = (
        "n/a (no transitions observed)" if math.isnan(duration) else f"{duration:.3f}s"
    )
    print(f"estimated loss duration:  {duration_text}")
    validation = result.validation
    print(
        f"validation: transitions={validation.transition_count} "
        f"asymmetry={validation.transition_asymmetry:.3f} "
        f"violations={validation.violations}"
    )
    _print_degraded_summary(result, None)
    if run.reflector is not None:
        summary = run.reflector
        print(
            f"reflector: received={summary.probes_received} "
            f"echoed={summary.probes_echoed} "
            f"impaired_drops={summary.impaired_drops} "
            f"wire_errors={summary.wire_errors}"
        )
    if run.receiver_result is not None:
        print(
            "receiver cross-check: estimated loss frequency: "
            f"{run.receiver_result.frequency:.4f}"
        )
    return 0


def _finish_live_obs(run, metrics, tracer, args: argparse.Namespace) -> None:
    if args.metrics_out:
        write_metrics_document(args.metrics_out, metrics, run.manifest)
        print(f"metrics written to {args.metrics_out}")
    if tracer is not None:
        tracer.write_jsonl(args.trace_out)
        print(f"trace written to {args.trace_out}")
    if args.save:
        print(f"trace saved to {args.save}")


def _cmd_live_send(args: argparse.Namespace) -> int:
    from repro.live import live_send

    metrics = MetricsRegistry() if args.metrics_out else None
    tracer = (
        Tracer(tool="badabing-live", scenario="live-send", seed=args.seed)
        if args.trace_out
        else None
    )
    run = live_send(
        args.host,
        args.port,
        config=_live_config(args),
        seed=args.seed,
        registry=metrics,
        tracer=tracer,
        budget=_live_budget(args),
        trace_path=args.save or None,
        handle_sigint=True,
    )
    status = _print_live_result(run, args)
    _finish_live_obs(run, metrics, tracer, args)
    return status


def _fleet_policy(args: argparse.Namespace):
    """Optional FleetPolicy from the admission/eviction/rate flags."""
    from repro.live import FleetPolicy

    if not (
        args.max_sessions or args.max_pps or args.rate_cap or args.idle_timeout
    ):
        return None
    return FleetPolicy(
        max_sessions=args.max_sessions if args.max_sessions else None,
        max_aggregate_pps=args.max_pps if args.max_pps else None,
        rate_cap_pps=args.rate_cap if args.rate_cap else None,
        idle_timeout=args.idle_timeout if args.idle_timeout > 0 else None,
    )


def _add_fleet_policy_arguments(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--max-sessions",
        type=int,
        default=0,
        help="admission cap on concurrent sessions (extra HELLOs get BUSY)",
    )
    sub.add_argument(
        "--max-pps",
        type=float,
        default=0.0,
        help="admission cap on aggregate nominal probe packets/second",
    )
    sub.add_argument(
        "--rate-cap",
        type=float,
        default=0.0,
        help="per-session token-bucket rate (packets/second); default sizes "
        "each bucket from the session's own declared schedule",
    )
    sub.add_argument(
        "--idle-timeout",
        type=float,
        default=0.0,
        help="evict sessions idle this many seconds (default: derive the "
        "deadline from each session's own spec)",
    )


def _cmd_live_reflect(args: argparse.Namespace) -> int:
    from repro.live import live_reflect

    metrics = (
        MetricsRegistry() if (args.metrics_out or _export_requested(args)) else None
    )
    exporter = _build_exporter(
        args, metrics, meta={"tool": "badabing-reflector", "mode": args.mode}
    )
    print(f"reflecting on {args.host}:{args.port} (mode={args.mode}) — Ctrl-C to stop")
    _announce_exporter(exporter, args)
    try:
        protocol = live_reflect(
            host=args.host,
            port=args.port,
            faults=args.faults if args.faults != "none" else None,
            seed=args.seed,
            registry=metrics,
            mode=args.mode,
            policy=_fleet_policy(args),
            serve_sessions=args.serve_sessions if args.serve_sessions else None,
            exit_idle=args.exit_idle if args.exit_idle > 0 else None,
            handle_sigint=True,
            exporter=exporter,
        )
    finally:
        if exporter is not None:
            exporter.close()
    print(
        f"served {protocol.sessions_admitted} session(s): "
        f"received={protocol.probes_received_total} "
        f"echoed={protocol.probes_echoed_total} "
        f"wire_errors={protocol.wire_errors} "
        f"unknown_session={protocol.unknown_session}"
    )
    if protocol.admission_rejected or protocol.evicted or protocol.rate_limited_total:
        print(
            f"fleet: rejected={protocol.admission_rejected} "
            f"evicted={protocol.evicted} "
            f"rate_limited={protocol.rate_limited_total}"
        )
    if args.metrics_out and metrics is not None:
        write_metrics_document(args.metrics_out, metrics, None)
        print(f"metrics written to {args.metrics_out}")
    if args.export_out:
        print(f"export snapshots written to {args.export_out}")
    return 0


def _cmd_live_loopback(args: argparse.Namespace) -> int:
    from repro.live import live_loopback

    metrics = MetricsRegistry() if args.metrics_out else None
    tracer = (
        Tracer(tool="badabing-live", scenario="live-loopback", seed=args.seed)
        if args.trace_out
        else None
    )
    run = live_loopback(
        config=_live_config(args),
        seed=args.seed,
        faults=args.faults if args.faults != "none" else None,
        registry=metrics,
        tracer=tracer,
        budget=_live_budget(args),
        trace_path=args.save or None,
        handle_sigint=True,
    )
    status = _print_live_result(run, args)
    _finish_live_obs(run, metrics, tracer, args)
    return status


def _cmd_live_fleet(args: argparse.Namespace) -> int:
    from repro.live import fleet_loopback

    metrics = (
        MetricsRegistry() if (args.metrics_out or _export_requested(args)) else None
    )
    exporter = _build_exporter(
        args,
        metrics,
        meta={"tool": "badabing-fleet", "sessions": args.sessions},
    )
    _announce_exporter(exporter, args)
    try:
        soak = fleet_loopback(
            _live_config(args),
            n_sessions=args.sessions,
            base_seed=args.seed,
            policy=_fleet_policy(args),
            faults=args.faults if args.faults != "none" else None,
            registry=metrics,
            budget=_live_budget(args),
            stagger_seconds=args.stagger,
            exporter=exporter,
        )
    finally:
        if exporter is not None:
            exporter.close()
    failed = [outcome for outcome in soak.outcomes if not outcome.ok]
    print(
        f"fleet soak: {len(soak.outcomes)} session(s), "
        f"{len(soak.outcomes) - len(failed)} ok, {len(failed)} failed, "
        f"{len(soak.degraded)} degraded"
    )
    print(
        f"reflector: admitted={soak.sessions_admitted} "
        f"active={soak.sessions_active} rejected={soak.admission_rejected} "
        f"evicted={soak.evicted} rate_limited={soak.rate_limited} "
        f"wire_errors={soak.wire_errors} unknown_session={soak.unknown_session}"
    )
    frequencies = [
        outcome.result.frequency
        for outcome in soak.outcomes
        if outcome.ok and outcome.result is not None
    ]
    if frequencies:
        print(
            f"loss frequency: mean={sum(frequencies) / len(frequencies):.4f} "
            f"min={min(frequencies):.4f} max={max(frequencies):.4f}"
        )
    for outcome in failed:
        print(f"  {outcome.describe()}", file=sys.stderr)
    if args.metrics_out and metrics is not None:
        write_metrics_document(args.metrics_out, metrics, None)
        print(f"metrics written to {args.metrics_out}")
    if args.export_out:
        print(f"export snapshots written to {args.export_out}")
    if failed or soak.wire_errors:
        print("fleet soak FAILED", file=sys.stderr)
        return 1
    return 0


def _fleet_template_config(args: argparse.Namespace, overrides=None):
    """Per-path BadabingConfig: CLI template + roster-entry overrides.

    ``n_slots`` is a placeholder — the controller sizes every launched
    session itself (``dataclasses.replace(config, n_slots=...)``).
    """
    from repro.config import BadabingConfig, MarkingConfig, ProbeConfig

    entry = overrides or {}
    return BadabingConfig(
        probe=ProbeConfig(
            slot=float(entry.get("slot", args.slot)),
            probe_size=int(entry.get("size", args.size)),
            packets_per_probe=int(entry.get("packets", args.packets)),
        ),
        marking=MarkingConfig(
            alpha=float(entry.get("alpha", args.alpha)),
            tau=float(entry.get("tau", args.tau)),
        ),
        p=float(entry.get("p", args.p)),
        n_slots=max(2, args.min_session_slots),
        improved=bool(entry.get("improved", args.improved)),
    )


def _fleet_paths(args: argparse.Namespace):
    """PathTarget roster from --roster JSON or --paths name[:faults] list."""
    import json

    from repro.errors import ConfigurationError
    from repro.live import PathTarget

    def resolve_faults(name):
        if not name or name == "none":
            return None
        if name not in _FAULT_PROFILES:
            raise ConfigurationError(
                f"unknown fault profile {name!r} "
                f"(choose from {', '.join(sorted(_FAULT_PROFILES))})"
            )
        return name

    targets = []
    if args.roster:
        try:
            with open(args.roster, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except OSError as exc:
            raise ConfigurationError(f"cannot read roster {args.roster}: {exc}")
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{args.roster}: invalid JSON ({exc.msg})"
            )
        entries = document.get("paths") if isinstance(document, dict) else None
        if not isinstance(entries, list) or not entries:
            raise ConfigurationError(
                f'{args.roster}: expected {{"paths": [{{...}}, ...]}}'
            )
        for index, entry in enumerate(entries):
            if not isinstance(entry, dict) or "name" not in entry:
                raise ConfigurationError(
                    f"{args.roster}: paths[{index}] needs at least a 'name'"
                )
            targets.append(
                PathTarget(
                    name=str(entry["name"]),
                    config=_fleet_template_config(args, entry),
                    host=str(entry.get("host", "127.0.0.1")),
                    port=int(entry.get("port", 0)),
                    faults=resolve_faults(entry.get("faults")),
                )
            )
    elif args.paths:
        for token in _parse_csv(args.paths, str, "path"):
            name, _, faults = token.partition(":")
            targets.append(
                PathTarget(
                    name=name.strip(),
                    config=_fleet_template_config(args),
                    faults=resolve_faults(faults.strip()),
                )
            )
    else:
        raise ConfigurationError("fleet run needs --paths or --roster")
    return targets


def _cmd_fleet_run(args: argparse.Namespace) -> int:
    from repro.experiments.fleetrun import fleet_run
    from repro.live import ControllerPolicy
    from repro.obs import controller_alert_rules, default_fleet_rules

    targets = _fleet_paths(args)
    policy = ControllerPolicy(
        budget_slots=args.budget,
        round_slots=args.round_slots,
        min_session_slots=args.min_session_slots,
    )
    metrics = (
        MetricsRegistry() if (args.metrics_out or _export_requested(args)) else None
    )
    exporter = _build_exporter(
        args,
        metrics,
        meta={"tool": "badabing-fleet-controller", "paths": len(targets)},
        default_rules=default_fleet_rules() + controller_alert_rules(),
    )
    print(
        f"fleet controller: {len(targets)} path(s), budget {args.budget} slots, "
        f"rebalance every {args.rebalance_interval}s (seed {args.seed})"
    )
    _announce_exporter(exporter, args)
    try:
        result = fleet_run(
            targets,
            policy=policy,
            base_seed=args.seed,
            registry=metrics,
            exporter=exporter,
            events_path=args.controller_out or None,
            rebalance_interval=args.rebalance_interval,
            max_wall_seconds=args.max_wall_seconds or None,
            fleet_policy=_fleet_policy(args),
        )
    finally:
        if exporter is not None:
            exporter.close()
    print(
        f"{'path':<16} {'F_hat':>8} {'dF':>9} {'D_hat':>8} "
        f"{'rounds':>6} {'slots':>6} {'busy':>4} conv"
    )
    for name, signals in result.path_summary.items():
        f_hat = signals["f_hat"]
        delta = signals["delta_f"]
        d_hat = signals["d_hat_seconds"]
        print(
            f"{name:<16} "
            + (f"{f_hat:>8.4f}" if f_hat is not None else f"{'—':>8}")
            + " "
            + (f"{delta:>+9.4f}" if delta is not None else f"{'—':>9}")
            + " "
            + (f"{d_hat:>7.3f}s" if d_hat is not None else f"{'—':>8}")
            + f" {signals['rounds']:>6} {signals['spent_slots']:>6}"
            + f" {signals['busy_deferrals']:>4} "
            + ("yes" if signals["converged"] else "no")
        )
    completed = len(result.completion_order)
    failed = result.failures
    print(
        f"sessions: {completed} completed, {len(failed)} failed; "
        f"budget remaining: {result.remaining_slots} slots; "
        f"wall: {result.wall_seconds:.1f}s"
        + (" (deadline hit)" if result.deadline_hit else "")
    )
    if result.merged_digest:
        print(f"merged registry digest: {result.merged_digest}")
        print(f"serial replay digest:   {result.replay_digest}")
        print(f"digest match: {'yes' if result.digest_match else 'NO'}")
    for outcome in failed:
        print(f"  {outcome.describe()}", file=sys.stderr)
    if args.controller_out:
        print(f"controller events written to {args.controller_out}")
    if args.metrics_out and metrics is not None:
        write_metrics_document(args.metrics_out, metrics, None)
        print(f"metrics written to {args.metrics_out}")
    if args.export_out:
        print(f"export snapshots written to {args.export_out}")
    if failed or (result.merged_digest and not result.digest_match):
        print("fleet run FAILED", file=sys.stderr)
        return 1
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    print("scenarios:", ", ".join(sorted(SCENARIOS)))
    print("tables:   ", ", ".join(sorted(_tables.ALL_TABLES)))
    print("figures:  ", ", ".join(sorted(_figures.ALL_FIGURES)))
    print("profiles: ", ", ".join(sorted(PROFILES)))
    print("faults:   ", ", ".join(sorted(_FAULT_PROFILES)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="badabing-sim",
        description="Reproduction of SIGCOMM'05 'Improving Accuracy in "
        "End-to-end Packet Loss Measurement' (BADABING).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    measure = commands.add_parser("measure", help="run one BADABING measurement")
    measure.add_argument("scenario", choices=sorted(SCENARIOS))
    measure.add_argument("--p", type=float, default=0.3, help="per-slot probe probability")
    measure.add_argument("--slots", type=int, default=0, help="number of 5ms slots (N)")
    measure.add_argument("--seed", type=int, default=1)
    measure.add_argument("--improved", action="store_true", help="use the §5.3 improved algorithm")
    measure.add_argument(
        "--vectorized",
        action="store_true",
        help="use the array-batched slot pipeline (identical results, faster)",
    )
    measure.add_argument("--save", default="", help="save the measurement trace (JSONL)")
    measure.add_argument(
        "--faults",
        choices=sorted(_FAULT_PROFILES),
        default="none",
        help="inject a named fault profile on the measured path",
    )
    measure.add_argument(
        "--audit-out",
        default="",
        help="write the estimate-vs-truth accuracy audit as JSON to this path",
    )
    _add_obs_arguments(measure)
    _add_profile_argument(measure)
    measure.set_defaults(handler=_cmd_measure)

    analyze = commands.add_parser(
        "analyze", help="re-analyze a saved measurement trace offline"
    )
    analyze.add_argument("trace", help="path to a badabing-trace JSONL file")
    analyze.add_argument("--alpha", type=float, default=0.1, help="§6.1 delay fraction")
    analyze.add_argument("--tau", type=float, default=0.080, help="§6.1 loss proximity window (s)")
    analyze.add_argument(
        "--recover",
        action="store_true",
        help="skip corrupt trace lines (with diagnostics) instead of aborting",
    )
    analyze.add_argument(
        "--vectorized",
        action="store_true",
        help="use the array-batched slot pipeline (identical results, faster)",
    )
    analyze.set_defaults(handler=_cmd_analyze)

    sweep = commands.add_parser(
        "sweep", help="run a grid of BADABING cells, optionally in parallel"
    )
    sweep.add_argument("scenario", choices=sorted(SCENARIOS))
    sweep.add_argument(
        "--p",
        default="0.1,0.3,0.5",
        help="comma-separated per-slot probe probabilities (default 0.1,0.3,0.5)",
    )
    sweep.add_argument(
        "--seeds",
        default="1",
        help="comma-separated seeds; the grid is the p × seeds cross product",
    )
    sweep.add_argument("--slots", type=int, default=0, help="number of 5ms slots (N)")
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = serial; >1 dispatches cells to a process pool)",
    )
    sweep.add_argument(
        "--max-events",
        type=int,
        default=0,
        help="per-cell simulator event budget (0 = unlimited)",
    )
    sweep.add_argument(
        "--max-wall-seconds",
        type=float,
        default=0.0,
        help="sweep-level deadline: skip cells not started by then (0 = none)",
    )
    sweep.add_argument(
        "--improved", action="store_true", help="use the §5.3 improved algorithm"
    )
    sweep.add_argument(
        "--vectorized",
        action="store_true",
        help="use the array-batched slot pipeline in every cell (identical results)",
    )
    sweep.add_argument(
        "--audit-out",
        default="",
        help="write the sweep scorecard + per-cell audits as JSON to this path",
    )
    _add_obs_arguments(sweep)
    _add_export_arguments(sweep, with_http=False)
    _add_profile_argument(sweep)
    sweep.set_defaults(handler=_cmd_sweep)

    zing = commands.add_parser("zing", help="run the Poisson (ZING) baseline")
    zing.add_argument("scenario", choices=sorted(SCENARIOS))
    zing.add_argument("--rate", type=float, default=10.0, help="mean probe rate in Hz")
    zing.add_argument("--size", type=int, default=256, help="probe size in bytes")
    zing.add_argument("--duration", type=float, default=0.0, help="seconds of probing")
    zing.add_argument("--seed", type=int, default=1)
    _add_obs_arguments(zing)
    _add_profile_argument(zing)
    zing.set_defaults(handler=_cmd_zing)

    live = commands.add_parser(
        "live", help="run the probe process over real UDP sockets"
    )
    live_commands = live.add_subparsers(dest="live_command", required=True)

    def _add_live_probe_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--p", type=float, default=0.3, help="per-slot probe probability")
        sub.add_argument("--slot", type=float, default=0.005, help="slot width in seconds")
        sub.add_argument(
            "--duration", type=float, default=30.0, help="measurement seconds (sets N)"
        )
        sub.add_argument(
            "--slots", type=int, default=0, help="number of slots (overrides --duration)"
        )
        sub.add_argument("--packets", type=int, default=3, help="packets per probe train")
        sub.add_argument("--size", type=int, default=600, help="probe size in bytes")
        sub.add_argument("--alpha", type=float, default=0.1, help="§6.1 delay fraction")
        sub.add_argument(
            "--tau", type=float, default=0.080, help="§6.1 loss proximity window (s)"
        )
        sub.add_argument("--seed", type=int, default=1)
        sub.add_argument(
            "--improved", action="store_true", help="use the §5.3 improved algorithm"
        )
        sub.add_argument(
            "--max-packets", type=int, default=0, help="stop after this many probe packets"
        )
        sub.add_argument(
            "--max-seconds", type=float, default=0.0, help="stop after this much wall time"
        )
        sub.add_argument("--save", default="", help="stream the probe trace (JSONL) here")
        _add_obs_arguments(sub)

    live_send = live_commands.add_parser(
        "send", help="probe a reflector at HOST:PORT"
    )
    live_send.add_argument("host", help="reflector address")
    live_send.add_argument("port", type=int, help="reflector UDP port")
    _add_live_probe_arguments(live_send)
    live_send.set_defaults(handler=_cmd_live_send)

    live_reflect = live_commands.add_parser(
        "reflect", help="serve probe sessions (echo or sink)"
    )
    live_reflect.add_argument("--host", default="0.0.0.0", help="bind address")
    live_reflect.add_argument("--port", type=int, default=5005, help="bind UDP port")
    live_reflect.add_argument(
        "--mode", choices=("echo", "sink"), default="echo", help="echo probes or only record"
    )
    live_reflect.add_argument(
        "--faults",
        choices=sorted(_FAULT_PROFILES),
        default="none",
        help="emulate forward-path loss with a named fault profile",
    )
    live_reflect.add_argument("--seed", type=int, default=1, help="impairment seed")
    _add_fleet_policy_arguments(live_reflect)
    live_reflect.add_argument(
        "--serve-sessions",
        type=int,
        default=0,
        help="exit after this many finished sessions",
    )
    live_reflect.add_argument(
        "--exit-idle",
        type=float,
        default=0.0,
        help="exit after a finished session plus this many idle seconds",
    )
    live_reflect.add_argument(
        "--metrics-out", default="", help="write reflector metrics as JSON to this path"
    )
    _add_export_arguments(live_reflect)
    live_reflect.set_defaults(handler=_cmd_live_reflect)

    live_loopback = live_commands.add_parser(
        "loopback", help="run sender and reflector in-process over 127.0.0.1"
    )
    _add_live_probe_arguments(live_loopback)
    live_loopback.add_argument(
        "--faults",
        choices=sorted(_FAULT_PROFILES),
        default="none",
        help="emulate forward-path loss at the in-process reflector",
    )
    live_loopback.set_defaults(handler=_cmd_live_loopback)

    live_fleet = live_commands.add_parser(
        "fleet",
        help="many-session loopback soak against one fleet reflector",
    )
    _add_live_probe_arguments(live_fleet)
    live_fleet.add_argument(
        "--sessions", type=int, default=50, help="concurrent sender sessions"
    )
    live_fleet.add_argument(
        "--stagger",
        type=float,
        default=0.0,
        help="stagger session starts by this many seconds each",
    )
    live_fleet.add_argument(
        "--faults",
        choices=sorted(_FAULT_PROFILES),
        default="none",
        help="emulate forward-path loss at the in-process reflector",
    )
    _add_fleet_policy_arguments(live_fleet)
    _add_export_arguments(live_fleet)
    live_fleet.set_defaults(handler=_cmd_live_fleet)

    fleet = commands.add_parser(
        "fleet",
        help="multi-path probe orchestration (adaptive fleet controller)",
    )
    fleet_commands = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_run = fleet_commands.add_parser(
        "run",
        help="spend one probe budget across a roster of paths, rebalancing "
        "toward unconverged ones",
    )
    fleet_run.add_argument(
        "--paths",
        default="",
        help="comma-separated roster: name or name:fault-profile "
        "(loopback reflectors are spun per path, e.g. "
        "'clean-a,clean-b,lossy:bursty')",
    )
    fleet_run.add_argument(
        "--roster",
        default="",
        help="JSON roster file {'paths': [{name, faults, host, port, "
        "p, slot, packets, size, alpha, tau, improved}, ...]} "
        "(overrides --paths)",
    )
    fleet_run.add_argument(
        "--budget", type=int, default=6000, help="global probe budget in slots"
    )
    fleet_run.add_argument(
        "--round-slots",
        type=int,
        default=200,
        help="nominal per-path slots per rebalance round",
    )
    fleet_run.add_argument(
        "--min-session-slots",
        type=int,
        default=40,
        help="floor on a launched session's slot count",
    )
    fleet_run.add_argument(
        "--rebalance-interval",
        type=float,
        default=0.25,
        help="seconds between controller decision passes",
    )
    fleet_run.add_argument(
        "--max-wall-seconds",
        type=float,
        default=0.0,
        help="stop launching and drain after this much wall time (0 = none)",
    )
    fleet_run.add_argument(
        "--controller-out",
        default="",
        help="write controller events (repro.live.controller/1 NDJSON) here",
    )
    fleet_run.add_argument("--p", type=float, default=0.3, help="per-slot probe probability")
    fleet_run.add_argument("--slot", type=float, default=0.005, help="slot width in seconds")
    fleet_run.add_argument("--packets", type=int, default=3, help="packets per probe train")
    fleet_run.add_argument("--size", type=int, default=600, help="probe size in bytes")
    fleet_run.add_argument("--alpha", type=float, default=0.1, help="§6.1 delay fraction")
    fleet_run.add_argument(
        "--tau", type=float, default=0.080, help="§6.1 loss proximity window (s)"
    )
    fleet_run.add_argument(
        "--improved", action="store_true", help="use the §5.3 improved algorithm"
    )
    fleet_run.add_argument("--seed", type=int, default=1)
    fleet_run.add_argument(
        "--metrics-out",
        default="",
        help="write the merged export-facing registry as JSON to this path",
    )
    _add_fleet_policy_arguments(fleet_run)
    _add_export_arguments(fleet_run)
    fleet_run.set_defaults(handler=_cmd_fleet_run)

    obs = commands.add_parser(
        "obs", help="inspect exported observability artifacts"
    )
    obs_commands = obs.add_subparsers(dest="obs_command", required=True)
    obs_summary = obs_commands.add_parser(
        "summary", help="human-readable report from a metrics JSON document"
    )
    obs_summary.add_argument("metrics", help="path written by --metrics-out")
    obs_summary.add_argument(
        "--trace", default="", help="optional trace JSONL written by --trace-out"
    )
    obs_summary.add_argument(
        "--json", action="store_true", help="emit a machine-readable JSON summary"
    )
    obs_summary.add_argument(
        "--by-label",
        action="store_true",
        help="group merged fleet/sweep shards by session/cell label "
        "instead of one flat table",
    )
    obs_summary.add_argument(
        "--by-path",
        action="store_true",
        help="group shards by their path/ label prefix (controller runs)",
    )
    obs_summary.add_argument(
        "--slow",
        type=int,
        default=0,
        metavar="N",
        help="show only the N individually slowest spans from --trace",
    )
    obs_summary.set_defaults(handler=_cmd_obs_summary)
    obs_audit = obs_commands.add_parser(
        "audit", help="render an accuracy-audit document written by --audit-out"
    )
    obs_audit.add_argument("audit", help="path written by --audit-out")
    obs_audit.add_argument(
        "--json", action="store_true", help="emit the validated document as JSON"
    )
    obs_audit.set_defaults(handler=_cmd_obs_audit)
    obs_validate = obs_commands.add_parser(
        "validate", help="check metrics/trace/audit/export files against the obs schemas"
    )
    obs_validate.add_argument(
        "metrics", nargs="?", default="", help="path written by --metrics-out"
    )
    obs_validate.add_argument(
        "--trace", default="", help="optional trace JSONL written by --trace-out"
    )
    obs_validate.add_argument(
        "--audit", default="", help="optional audit JSON written by --audit-out"
    )
    obs_validate.add_argument(
        "--export",
        default="",
        help="optional NDJSON snapshot stream written by --export-out",
    )
    obs_validate.add_argument(
        "--bench",
        default="",
        help="optional BENCH_*.json document written by `repro bench`",
    )
    obs_validate.add_argument(
        "--controller",
        default="",
        help="optional controller-event NDJSON written by "
        "`repro fleet run --controller-out`",
    )
    obs_validate.set_defaults(handler=_cmd_obs_validate)
    obs_profile = obs_commands.add_parser(
        "profile",
        help="render per-stage self-time table and call tree from a "
        "BENCH_*.json document",
    )
    obs_profile.add_argument("bench", help="path written by `repro bench --out`")
    obs_profile.add_argument(
        "--scenario",
        default="",
        help="render only this scenario (default: all in the document)",
    )
    obs_profile.add_argument(
        "--top", type=int, default=20, help="stage-table rows per scenario"
    )
    obs_profile.set_defaults(handler=_cmd_obs_profile)

    bench = commands.add_parser(
        "bench",
        help="run a pinned perf suite and emit a machine-readable "
        "BENCH_<suite>.json trajectory point",
    )
    bench.add_argument(
        "--suite",
        default="fast",
        help="pinned scenario suite to run (fast, smoke)",
    )
    bench.add_argument(
        "--out",
        default="",
        help="output path (default: BENCH_<suite>.json)",
    )
    bench.add_argument(
        "--compare",
        nargs=2,
        metavar=("OLD", "NEW"),
        help="instead of running, compare two bench documents and exit 1 "
        "on regressions",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="slowdown ratio treated as a regression under --compare "
        "(default 2.0)",
    )
    bench.set_defaults(handler=_cmd_bench)

    dash = commands.add_parser(
        "dash",
        help="live terminal dashboard from an exporter endpoint or a "
        "recorded snapshot stream",
    )
    dash.add_argument(
        "--url",
        default="",
        help="base URL of a running exporter (e.g. http://127.0.0.1:9477)",
    )
    dash.add_argument(
        "--replay",
        default="",
        help="replay a recorded --export-out NDJSON file offline",
    )
    dash.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="seconds between frames (default 1)",
    )
    dash.add_argument(
        "--frames", type=int, default=0, help="stop after this many frames (0 = run on)"
    )
    dash.add_argument(
        "--once",
        action="store_true",
        help="render a single frame (the final recorded one under --replay)",
    )
    dash.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of clearing the screen between them",
    )
    dash.set_defaults(handler=_cmd_dash)

    table = commands.add_parser("table", help="reproduce a paper table (1-8)")
    table.add_argument("number", type=int)
    table.add_argument("--seed", type=int, default=0)
    _add_profile_argument(table)
    table.set_defaults(handler=_cmd_table)

    figure = commands.add_parser("figure", help="reproduce a paper figure (4..9b)")
    figure.add_argument("name", help="4, 5, 6, 7, 8, 9a or 9b")
    _add_profile_argument(figure)
    figure.set_defaults(handler=_cmd_figure)

    report = commands.add_parser(
        "report", help="collate archived benchmark results into one markdown report"
    )
    report.add_argument(
        "--results-dir",
        default="benchmarks/results",
        help="directory of archived results (default: benchmarks/results)",
    )
    report.add_argument("--out", default="", help="output path (default: <results>/REPORT.<profile>.md)")
    _add_profile_argument(report)
    report.set_defaults(handler=_cmd_report)

    lister = commands.add_parser("list", help="list scenarios/tables/figures")
    lister.set_defaults(handler=_cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream reader (e.g. `| head`) closed the pipe mid-run; point
        # stdout at devnull so the interpreter's exit-time flush does not
        # traceback, and exit with the conventional SIGPIPE status.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 128 + 13


if __name__ == "__main__":
    sys.exit(main())
