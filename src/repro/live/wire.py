"""Binary wire format of the live BADABING runtime.

Every datagram starts with one fixed 30-byte header, packed in network
byte order (``!`` — big-endian on every host, so captures are portable
across architectures):

====== ===== =========================================================
offset bytes field
====== ===== =========================================================
0      2     magic ``0xBADA``
2      1     protocol version (``VERSION``)
3      1     message kind (:data:`HELLO` … :data:`FIN_ACK`)
4      8     session id (u64)
12     4     datagram sequence number (u32, per session, monotonic)
16     4     slot index (u32; 0 for control messages)
20     1     packet index within the probe train (u8)
21     1     packets per probe (u8, ≥ 1; 1 for control messages)
22     8     send timestamp, nanoseconds of the sender's clock (u64)
====== ===== =========================================================

* ``PROBE`` datagrams append zero padding up to the configured probe
  size, so live probes load the path like the paper's 600-byte probes.
* ``ECHO`` datagrams are the probe header re-stamped by the reflector: a
  trailing u64 carries the reflector's receive timestamp (its own clock)
  so the sender can form one-way delay samples; the padding is *not*
  echoed (the reverse path is not part of the measured forward path).
* ``HELLO`` datagrams append a :class:`SessionSpec` — everything the
  reflector needs to regenerate the sender's geometric schedule
  deterministically and estimate one-way, receiver-side.

Decoding is fuzz-resistant by contract: every decoder validates length,
magic, version, kind, and field ranges, and raises *only*
:class:`~repro.errors.WireFormatError` on any malformed input. A
reflector therefore counts-and-drops garbage instead of crashing
(``live.wire_errors`` in the metrics registry).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

from time import perf_counter

from repro import profiling as _profiling
from repro.errors import WireFormatError

#: First two header bytes of every live datagram.
MAGIC = 0xBADA
#: Wire protocol version; bumped on any incompatible layout change.
VERSION = 1

# Message kinds.
HELLO = 1
HELLO_ACK = 2
PROBE = 3
ECHO = 4
FIN = 5
FIN_ACK = 6
#: HELLO rejected by admission control; carries a retry-after trailer.
BUSY = 7
#: "I don't know this session" — sent (rate-limited) in answer to PROBEs
#: for sessions the reflector has no state for, so a sender can detect a
#: reflector restart mid-session instead of probing into a void.
NAK = 8

_KINDS = frozenset((HELLO, HELLO_ACK, PROBE, ECHO, FIN, FIN_ACK, BUSY, NAK))
KIND_NAMES = {
    HELLO: "hello",
    HELLO_ACK: "hello-ack",
    PROBE: "probe",
    ECHO: "echo",
    FIN: "fin",
    FIN_ACK: "fin-ack",
    BUSY: "busy",
    NAK: "nak",
}

#: BUSY reason codes carried in the trailer.
BUSY_SESSIONS = 1  #: concurrent-session cap reached
BUSY_RATE = 2  #: aggregate probe-rate cap reached
BUSY_REASONS = {BUSY_SESSIONS: "sessions", BUSY_RATE: "rate"}

#: magic, version, kind, session, sequence, slot, index, k, send_ns.
_HEADER = struct.Struct("!HBBQIIBBQ")
#: Reflector receive timestamp appended to ECHO datagrams.
_ECHO_TRAILER = struct.Struct("!Q")
#: schedule_seed, n_slots, slot_ns, p_ppm, packets_per_probe, improved,
#: probe_size.
_SPEC = struct.Struct("!QIQIBBH")
#: retry_after_ms, reason code — appended to BUSY datagrams.
_BUSY_TRAILER = struct.Struct("!IB")

HEADER_SIZE = _HEADER.size
ECHO_SIZE = HEADER_SIZE + _ECHO_TRAILER.size
HELLO_SIZE = HEADER_SIZE + _SPEC.size
BUSY_SIZE = HEADER_SIZE + _BUSY_TRAILER.size

_U8 = (1 << 8) - 1
_U16 = (1 << 16) - 1
_U32 = (1 << 32) - 1
_U64 = (1 << 64) - 1

#: Parts-per-million fixed-point base used to carry ``p`` on the wire.
PPM = 1_000_000


@dataclass(frozen=True)
class ProbeHeader:
    """One decoded datagram header (all message kinds share it)."""

    kind: int
    session: int
    sequence: int
    slot: int
    index: int
    packets_per_probe: int
    send_ns: int

    @property
    def key(self) -> Tuple[int, int]:
        """The (slot, packet index) sequence key used by the log joins."""
        return (self.slot, self.index)


@dataclass(frozen=True)
class SessionSpec:
    """Schedule parameters carried by HELLO.

    The reflector regenerates ``GeometricSchedule(p, n_slots,
    random.Random(schedule_seed), improved)`` from these and can then
    assemble the exact experiment plan the sender is walking — the
    architectural trick that makes true one-way, receiver-side estimation
    possible without shipping the schedule itself.
    """

    schedule_seed: int
    n_slots: int
    slot_ns: int
    p_ppm: int
    packets_per_probe: int
    improved: bool
    probe_size: int

    @property
    def p(self) -> float:
        return self.p_ppm / PPM

    @property
    def slot_seconds(self) -> float:
        return self.slot_ns / 1e9

    @property
    def duration_seconds(self) -> float:
        return self.n_slots * self.slot_seconds

    def validate(self) -> "SessionSpec":
        if not 0 < self.p_ppm <= PPM:
            raise WireFormatError(f"p_ppm out of (0, {PPM}]: {self.p_ppm}")
        if self.n_slots < 2:
            raise WireFormatError(f"n_slots must be >= 2, got {self.n_slots}")
        if self.slot_ns <= 0:
            raise WireFormatError(f"slot_ns must be positive, got {self.slot_ns}")
        if not 1 <= self.packets_per_probe <= _U8:
            raise WireFormatError(
                f"packets_per_probe out of [1, {_U8}]: {self.packets_per_probe}"
            )
        if not HEADER_SIZE <= self.probe_size <= _U16:
            raise WireFormatError(
                f"probe_size out of [{HEADER_SIZE}, {_U16}]: {self.probe_size}"
            )
        return self


def _check_range(name: str, value: int, ceiling: int) -> int:
    if not isinstance(value, int) or not 0 <= value <= ceiling:
        raise WireFormatError(f"{name} out of [0, {ceiling}]: {value!r}")
    return value


def encode_header(header: ProbeHeader) -> bytes:
    """Pack a header, validating every field range first."""
    # Every encoder funnels through here, so this one leaf record covers
    # the whole encode surface (probe/echo/hello/control/busy).
    prof = _profiling.ACTIVE
    if prof is None:
        return _encode_header(header)
    started = perf_counter()
    try:
        return _encode_header(header)
    finally:
        prof.record("wire.encode", perf_counter() - started)


def _encode_header(header: ProbeHeader) -> bytes:
    if header.kind not in _KINDS:
        raise WireFormatError(f"unknown message kind {header.kind!r}")
    _check_range("session", header.session, _U64)
    _check_range("sequence", header.sequence, _U32)
    _check_range("slot", header.slot, _U32)
    _check_range("index", header.index, _U8)
    k = header.packets_per_probe
    if not isinstance(k, int) or not 1 <= k <= _U8:
        raise WireFormatError(f"packets_per_probe out of [1, {_U8}]: {k!r}")
    if header.index >= k:
        raise WireFormatError(
            f"packet index {header.index} >= packets_per_probe {k}"
        )
    _check_range("send_ns", header.send_ns, _U64)
    return _HEADER.pack(
        MAGIC,
        VERSION,
        header.kind,
        header.session,
        header.sequence,
        header.slot,
        header.index,
        k,
        header.send_ns,
    )


def decode_header(data: bytes) -> ProbeHeader:
    """Unpack and validate the fixed header of any live datagram."""
    prof = _profiling.ACTIVE
    if prof is None:
        return _decode_header(data)
    started = perf_counter()
    try:
        return _decode_header(data)
    finally:
        prof.record("wire.decode", perf_counter() - started)


def _decode_header(data: bytes) -> ProbeHeader:
    if len(data) < HEADER_SIZE:
        raise WireFormatError(
            f"short datagram: {len(data)} bytes < header {HEADER_SIZE}"
        )
    magic, version, kind, session, sequence, slot, index, k, send_ns = (
        _HEADER.unpack_from(data)
    )
    if magic != MAGIC:
        raise WireFormatError(f"bad magic 0x{magic:04X} (want 0x{MAGIC:04X})")
    if version != VERSION:
        raise WireFormatError(f"version skew: got {version}, speak {VERSION}")
    if kind not in _KINDS:
        raise WireFormatError(f"unknown message kind {kind}")
    if k < 1:
        raise WireFormatError("packets_per_probe must be >= 1")
    if index >= k:
        raise WireFormatError(f"packet index {index} >= packets_per_probe {k}")
    return ProbeHeader(
        kind=kind,
        session=session,
        sequence=sequence,
        slot=slot,
        index=index,
        packets_per_probe=k,
        send_ns=send_ns,
    )


# --------------------------------------------------------------------- probes
def encode_probe(
    session: int,
    sequence: int,
    slot: int,
    index: int,
    packets_per_probe: int,
    send_ns: int,
    probe_size: int = HEADER_SIZE,
) -> bytes:
    """A PROBE datagram, zero-padded to ``probe_size`` bytes."""
    header = encode_header(
        ProbeHeader(PROBE, session, sequence, slot, index, packets_per_probe, send_ns)
    )
    if probe_size < HEADER_SIZE:
        raise WireFormatError(
            f"probe_size {probe_size} smaller than header {HEADER_SIZE}"
        )
    return header + b"\x00" * (probe_size - HEADER_SIZE)


def encode_echo(probe: ProbeHeader, recv_ns: int) -> bytes:
    """Reflect a PROBE header back with the reflector's receive stamp."""
    if probe.kind != PROBE:
        raise WireFormatError(f"can only echo PROBE headers, got kind {probe.kind}")
    header = encode_header(
        ProbeHeader(
            ECHO,
            probe.session,
            probe.sequence,
            probe.slot,
            probe.index,
            probe.packets_per_probe,
            probe.send_ns,
        )
    )
    return header + _ECHO_TRAILER.pack(_check_range("recv_ns", recv_ns, _U64))


def decode_echo(data: bytes) -> Tuple[ProbeHeader, int]:
    """Decode an ECHO datagram into (original header, reflector recv_ns)."""
    header = decode_header(data)
    if header.kind != ECHO:
        raise WireFormatError(f"expected ECHO, got kind {header.kind}")
    if len(data) < ECHO_SIZE:
        raise WireFormatError(
            f"short echo: {len(data)} bytes < {ECHO_SIZE}"
        )
    (recv_ns,) = _ECHO_TRAILER.unpack_from(data, HEADER_SIZE)
    return header, recv_ns


# ------------------------------------------------------------------ handshake
def encode_hello(session: int, spec: SessionSpec, send_ns: int) -> bytes:
    """HELLO: open a session, carrying the schedule spec."""
    spec.validate()
    header = encode_header(ProbeHeader(HELLO, session, 0, 0, 0, 1, send_ns))
    return header + _SPEC.pack(
        _check_range("schedule_seed", spec.schedule_seed, _U64),
        spec.n_slots,
        spec.slot_ns,
        spec.p_ppm,
        spec.packets_per_probe,
        1 if spec.improved else 0,
        spec.probe_size,
    )


def decode_hello(data: bytes) -> Tuple[ProbeHeader, SessionSpec]:
    """Decode a HELLO datagram into (header, session spec)."""
    header = decode_header(data)
    if header.kind != HELLO:
        raise WireFormatError(f"expected HELLO, got kind {header.kind}")
    if len(data) < HELLO_SIZE:
        raise WireFormatError(f"short hello: {len(data)} bytes < {HELLO_SIZE}")
    seed, n_slots, slot_ns, p_ppm, k, improved, probe_size = _SPEC.unpack_from(
        data, HEADER_SIZE
    )
    if improved not in (0, 1):
        raise WireFormatError(f"improved flag must be 0/1, got {improved}")
    spec = SessionSpec(
        schedule_seed=seed,
        n_slots=n_slots,
        slot_ns=slot_ns,
        p_ppm=p_ppm,
        packets_per_probe=k,
        improved=bool(improved),
        probe_size=probe_size,
    ).validate()
    return header, spec


def encode_control(kind: int, session: int, send_ns: int) -> bytes:
    """A bare control datagram: HELLO_ACK, FIN, FIN_ACK, or NAK."""
    if kind not in (HELLO_ACK, FIN, FIN_ACK, NAK):
        raise WireFormatError(f"not a bare control kind: {kind}")
    return encode_header(ProbeHeader(kind, session, 0, 0, 0, 1, send_ns))


# ----------------------------------------------------------- admission control
def encode_busy(
    session: int, retry_after_seconds: float, reason: int, send_ns: int
) -> bytes:
    """BUSY: HELLO rejected; retry after the carried hint (seconds)."""
    if reason not in BUSY_REASONS:
        raise WireFormatError(f"unknown BUSY reason code {reason!r}")
    retry_after_ms = int(round(retry_after_seconds * 1000.0))
    if not 0 <= retry_after_ms <= _U32:
        raise WireFormatError(
            f"retry_after out of range: {retry_after_seconds!r} seconds"
        )
    header = encode_header(ProbeHeader(BUSY, session, 0, 0, 0, 1, send_ns))
    return header + _BUSY_TRAILER.pack(retry_after_ms, reason)


def decode_busy(data: bytes) -> Tuple[ProbeHeader, float, int]:
    """Decode a BUSY datagram into (header, retry_after_seconds, reason)."""
    header = decode_header(data)
    if header.kind != BUSY:
        raise WireFormatError(f"expected BUSY, got kind {header.kind}")
    if len(data) < BUSY_SIZE:
        raise WireFormatError(f"short busy: {len(data)} bytes < {BUSY_SIZE}")
    retry_after_ms, reason = _BUSY_TRAILER.unpack_from(data, HEADER_SIZE)
    if reason not in BUSY_REASONS:
        raise WireFormatError(f"unknown BUSY reason code {reason}")
    return header, retry_after_ms / 1000.0, reason
