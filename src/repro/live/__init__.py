"""Live-wire probing runtime: BADABING over real UDP sockets.

Everything else in this repository measures a *simulated* path; this
subpackage runs the identical geometric probe process against a real
network using asyncio UDP endpoints and the monotonic wall clock:

* :mod:`repro.live.wire` — the compact binary wire format (30-byte
  header, fuzz-resistant decoding),
* :mod:`repro.live.session` — spec quantization, schedule regeneration,
  and the send/receive log join shared by both ends,
* :mod:`repro.live.sender` — the schedule walker (absolute-deadline
  pacing, graceful budget/Ctrl-C degradation),
* :mod:`repro.live.reflector` — the crash-proof echo/sink far end,
* :mod:`repro.live.fleet` — the multi-tenant hardening layer (admission
  control, idle eviction, token-bucket backpressure, session watchdog)
  and the many-session loopback soak harness,
* :mod:`repro.live.impair` — deterministic receiver-side loss emulation
  for loopback testing,
* :mod:`repro.live.runtime` — orchestration, streaming validation, and
  the synchronous ``live_send`` / ``live_reflect`` / ``live_loopback``
  entry points behind the CLI,
* :mod:`repro.live.controller` — the adaptive fleet controller: a
  deterministic, fake-clock-drivable rebalancing loop that spends one
  global probe budget across a roster of paths, weighted toward the
  ones whose §5.4 validator signals have not converged (asyncio driver
  in :mod:`repro.experiments.fleetrun`).

Estimation never forks: live records funnel into the same
:func:`repro.core.badabing.assemble_result` path as simulator runs, so a
live result is a plain :class:`~repro.core.badabing.BadabingResult` that
``analyze``, ``obs audit``, and the report tooling consume unchanged.
"""

from repro.live.controller import (
    CONTROLLER_SCHEMA,
    ControllerPolicy,
    FleetController,
    LaunchDirective,
    PathTarget,
    read_controller_events,
    shard_label,
    validate_controller_file,
    validate_controller_record,
)
from repro.live.fleet import (
    FleetLoopbackResult,
    FleetPolicy,
    FleetReflectorProtocol,
    SessionReport,
    TokenBucket,
    fleet_loopback,
    run_fleet_loopback,
    start_fleet_reflector,
)
from repro.live.impair import ReceiverImpairment, bernoulli_drop, build_impairment
from repro.live.reflector import ReflectorProtocol, ReflectorSession, start_reflector
from repro.live.runtime import (
    LiveRunResult,
    ReflectorSummary,
    StreamingMonitor,
    live_loopback,
    live_reflect,
    live_send,
    run_live_loopback,
    run_live_reflector,
    run_live_send,
)
from repro.live.sender import LiveSender, SenderProtocol, SenderStats, open_sender
from repro.live.session import (
    config_from_spec,
    make_session_id,
    probe_records_from_arrivals,
    probe_records_from_logs,
    schedule_from_spec,
    spec_for,
)
from repro.live.wire import ProbeHeader, SessionSpec

__all__ = [
    "CONTROLLER_SCHEMA",
    "ControllerPolicy",
    "FleetController",
    "LaunchDirective",
    "PathTarget",
    "read_controller_events",
    "shard_label",
    "validate_controller_file",
    "validate_controller_record",
    "FleetLoopbackResult",
    "FleetPolicy",
    "FleetReflectorProtocol",
    "LiveRunResult",
    "LiveSender",
    "SessionReport",
    "TokenBucket",
    "fleet_loopback",
    "run_fleet_loopback",
    "start_fleet_reflector",
    "ProbeHeader",
    "ReceiverImpairment",
    "ReflectorProtocol",
    "ReflectorSession",
    "ReflectorSummary",
    "SenderProtocol",
    "SenderStats",
    "SessionSpec",
    "StreamingMonitor",
    "bernoulli_drop",
    "build_impairment",
    "config_from_spec",
    "live_loopback",
    "live_reflect",
    "live_send",
    "make_session_id",
    "open_sender",
    "probe_records_from_arrivals",
    "probe_records_from_logs",
    "run_live_loopback",
    "run_live_reflector",
    "run_live_send",
    "schedule_from_spec",
    "spec_for",
    "start_reflector",
]
